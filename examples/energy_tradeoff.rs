//! The time–energy trade-off the paper is built on, made visible.
//!
//! Sweeps a single device's CPU frequency and prints compute time, energy,
//! and the resulting system cost for several λ — then shows the
//! model-based solver finding the same optimum, and the closed-form
//! single-device solution `δ* = (2λα)^(-1/3)` for comparison.
//!
//! ```bash
//! cargo run --release --example energy_tradeoff
//! ```

use fl_ctrl::{model_cost, optimize_frequencies, SolverParams};
use fl_sim::MobileDevice;

fn main() {
    let device = MobileDevice {
        id: 0,
        cycles_per_bit: 20.0,
        data_mb: 10.0, // 1.6 Gcycles per pass
        alpha: 0.4,
        delta_max_ghz: 2.0,
        tx_power_w: 0.2,
        trace_idx: 0,
    };
    let bandwidth = 3.0; // MB/s
    println!(
        "device: {:.2} Gcycles/pass, alpha={}, delta_max={} GHz, upload at {} MB/s\n",
        device.gcycles_per_pass(),
        device.alpha,
        device.delta_max_ghz,
        bandwidth
    );

    // Manual sweep: the U-shaped cost curve.
    println!("frequency sweep (lambda = 0.5):");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "freq(GHz)", "t_cmp(s)", "E_cmp(J)", "cost"
    );
    let params = SolverParams {
        tau: 1,
        model_size_mb: 10.0,
        lambda: 0.5,
        min_freq_frac: 0.05,
    };
    for i in 1..=10 {
        let f = 0.2 * i as f64;
        let t = device.compute_time(1, f);
        let e = device.compute_energy(1, f);
        let cost = model_cost(std::slice::from_ref(&device), &params, &[bandwidth], &[f]).unwrap();
        println!("{f:>10.2} {t:>12.3} {e:>12.3} {cost:>12.3}");
    }

    // The solver against the closed form, across lambda.
    println!("\nsolver vs closed form  (delta* = (2*lambda*alpha)^(-1/3), clamped):");
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "lambda", "solver (GHz)", "closed (GHz)", "cost"
    );
    for &lambda in &[0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0] {
        let p = SolverParams { lambda, ..params };
        let plan = optimize_frequencies(std::slice::from_ref(&device), &p, &[bandwidth]).unwrap();
        let closed = (1.0 / (2.0 * lambda * device.alpha))
            .powf(1.0 / 3.0)
            .clamp(0.05 * device.delta_max_ghz, device.delta_max_ghz);
        println!(
            "{lambda:>8.2} {:>14.4} {closed:>14.4} {:>10.3}",
            plan.freqs[0], plan.predicted_cost
        );
    }

    println!("\ntakeaway: larger lambda -> lower optimal frequency -> slower but cooler,");
    println!("exactly the knob Eq. 9 gives the federated-learning operator.");
}
