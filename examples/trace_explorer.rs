//! Explore the synthetic bandwidth models: generate traces from every
//! profile, print their statistics, and export one as CSV/JSON.
//!
//! ```bash
//! cargo run --release --example trace_explorer
//! ```

use fl_net::stats;
use fl_net::synth::Profile;
use fl_net::{io, TraceSet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2026);
    let duration = 1200;

    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "profile", "min", "mean", "max", "std", "autocorr1", "autocorr60"
    );
    for profile in Profile::all() {
        let t = profile.generate(duration, 1.0, &mut rng).expect("generate");
        let s = stats::Summary::of(t.slots()).expect("non-empty");
        println!(
            "{:<12} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>10.2} {:>10.2}",
            format!("{profile:?}"),
            s.min,
            s.mean,
            s.max,
            s.std,
            stats::autocorrelation(t.slots(), 1),
            stats::autocorrelation(t.slots(), 60),
        );
    }

    // Upload-time distribution: how long does a 10 MB model take from a
    // random instant of a walking trace?
    let t = Profile::Walking4G
        .generate(3600, 1.0, &mut rng)
        .expect("generate")
        .cyclic();
    let uploads: Vec<f64> = (0..500)
        .map(|i| t.transfer_time(i as f64 * 7.0, 10.0).expect("transfer"))
        .collect();
    let cdf = stats::EmpiricalCdf::new(&uploads);
    println!("\n10 MB upload time on a walking trace (500 random starts):");
    println!("  P(upload <= 5 s) = {:.2}", cdf.eval(5.0));
    for p in [10.0, 50.0, 90.0, 99.0] {
        println!(
            "  p{p:<4} {:>8.2} s",
            stats::percentile(&uploads, p).expect("non-empty")
        );
    }
    println!(
        "  min {:.2} s / max {:.2} s — the straggler variability the scheduler rides",
        uploads.iter().copied().fold(f64::INFINITY, f64::min),
        uploads.iter().copied().fold(0.0f64, f64::max)
    );

    // Pool assignment, like the paper's "each device randomly selects one
    // dataset".
    let set = TraceSet::from_profile(Profile::Walking4G, 5, 600, 1.0, &mut rng).expect("pool");
    let assignment = set.assign(12, &mut rng);
    println!("\n12 devices over a 5-trace pool: assignment {assignment:?}");

    // Export: CSV for spreadsheets, JSON for tooling.
    let csv = io::to_csv(set.get(0).expect("exists"));
    println!(
        "\nCSV export preview (first 3 lines of {} total):",
        csv.lines().count()
    );
    for line in csv.lines().take(3) {
        println!("  {line}");
    }
    let json = io::to_json(set.get(0).expect("exists")).expect("serialize");
    println!("JSON export: {} bytes", json.len());
}
