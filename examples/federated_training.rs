//! The full stack in one run: real federated averaging (hand-built FedAvg
//! on non-IID synthetic data) executing *under* the frequency scheduler.
//!
//! Every FedAvg round is also one synchronized timing/energy iteration of
//! the system model: the controller picks CPU frequencies, the simulator
//! charges time and joules, and the learner's global loss falls toward the
//! ε threshold of constraint (10). Two schedules are compared end-to-end:
//! always-max-frequency versus the heuristic energy-aware plan.
//!
//! ```bash
//! cargo run --release --example federated_training
//! ```

use fl_ctrl::{build_system_with, FrequencyController, HeuristicController, MaxFreqController};
use fl_learn::{data, FedAvg, FedAvgConfig, LocalTrainer};
use fl_net::synth::Profile;
use fl_sim::{DeviceSampler, FlConfig, Range, SessionLedger};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let n_devices = 4;

    // The physical system: devices + bandwidth traces + cost model.
    let sampler = DeviceSampler {
        data_mb: Range { lo: 6.25, hi: 12.5 },
        alpha: Range { lo: 0.2, hi: 0.8 },
        ..DeviceSampler::default()
    };
    let sys = build_system_with(
        n_devices,
        3,
        Profile::Walking4G,
        3600,
        FlConfig {
            tau: 1,
            model_size_mb: 10.0,
            lambda: 0.5,
        },
        &sampler,
        &mut rng,
    )
    .expect("valid system");

    // The learning task: non-IID binary classification shards.
    let dataset = data::gaussian_blobs(800, 2, 3.0, &mut rng).expect("dataset");
    let shards = data::split_non_iid(&dataset, n_devices, 0.8, &mut rng).expect("shards");
    println!("shard label balance (positive fraction per device):");
    for (i, s) in shards.iter().enumerate() {
        println!(
            "  device {i}: {:>5.2} ({} samples)",
            s.positive_fraction(),
            s.len()
        );
    }

    let epsilon = 0.06; // constraint (10) threshold
    for schedule in ["maxfreq", "heuristic"] {
        let mut ctrl: Box<dyn FrequencyController> = match schedule {
            "maxfreq" => Box::new(MaxFreqController),
            _ => Box::new(HeuristicController::default()),
        };
        let model = {
            let mut model_rng = ChaCha8Rng::seed_from_u64(99);
            LocalTrainer::default_model(2, &mut model_rng).expect("model")
        };
        let mut fed = FedAvg::new(model, FedAvgConfig::default()).expect("fedavg");
        let mut fed_rng = ChaCha8Rng::seed_from_u64(123);

        let mut ledger = SessionLedger::new(sys.config().lambda);
        let mut t = 200.0;
        let mut prev = None;
        let mut rounds = 0;
        println!("\n=== schedule: {schedule} ===");
        println!(
            "{:>6} {:>12} {:>10} {:>12} {:>12}",
            "round", "global loss", "accuracy", "iter time", "iter energy"
        );
        loop {
            // Physics: the controller schedules frequencies, the simulator
            // executes the synchronized iteration.
            let freqs = ctrl
                .decide(rounds, t, &sys, prev.as_ref())
                .expect("controller decision");
            let report = sys.run_iteration(t, &freqs).expect("iteration");
            t = report.end_time();

            // Learning: one FedAvg round on the devices' shards.
            let round = fed.round(&shards, &mut fed_rng).expect("fedavg round");

            if rounds % 5 == 0 {
                println!(
                    "{rounds:>6} {:>12.4} {:>10.3} {:>12.3} {:>12.3}",
                    round.global_loss,
                    round.accuracy,
                    report.duration,
                    report.total_energy()
                );
            }
            ledger.push(report.clone());
            prev = Some(report);
            rounds += 1;
            if round.global_loss < epsilon || rounds >= 60 {
                println!(
                    "{rounds:>6} {:>12.4} {:>10.3}   <- stopped (F(w) < {epsilon} or cap)",
                    round.global_loss, round.accuracy
                );
                break;
            }
        }
        println!(
            "totals after {rounds} rounds: wall-clock {:.1} s, energy {:.1} J, cost {:.1}",
            ledger.time_series().iter().sum::<f64>(),
            ledger.energy_series().iter().sum::<f64>(),
            ledger.total_cost()
        );
    }

    println!("\nsame learner, same data, same rounds — the energy-aware schedule");
    println!("reaches the loss threshold with measurably fewer joules.");
}
