//! Quickstart: train a DRL frequency controller and compare it with the
//! paper's baselines on a small federated-learning fleet.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use fl_ctrl::{
    build_system_with, compare_controllers, train_drl, FrequencyController, HeuristicController,
    MaxFreqController, StaticController, TrainConfig,
};
use fl_net::synth::Profile;
use fl_sim::{DeviceSampler, FlConfig, Range};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. Build a federated-learning system: 3 mobile devices, each following
    //    a synthetic 4G walking-bandwidth trace, with the paper's cost
    //    weights (τ local passes, ξ MB model uploads, λ energy weight).
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    // Device ranges follow the paper's Section V-A, with the calibration
    // documented in EXPERIMENTS.md (data size read in Mbit; higher-kappa
    // silicon so energy is a meaningful cost share).
    let sampler = DeviceSampler {
        data_mb: Range { lo: 6.25, hi: 12.5 },
        alpha: Range { lo: 0.2, hi: 0.8 },
        ..DeviceSampler::default()
    };
    let sys = build_system_with(
        3,                  // devices
        3,                  // traces in the pool
        Profile::Walking4G, // bandwidth model
        3600,               // seconds of trace
        FlConfig {
            tau: 1,
            model_size_mb: 10.0,
            lambda: 0.5,
        },
        &sampler,
        &mut rng,
    )
    .expect("valid system");
    println!("built a fleet of {} devices:", sys.num_devices());
    for d in sys.devices() {
        println!(
            "  device {}: {:.1} MB data, {:.0} cycles/bit, max {:.2} GHz, trace #{}",
            d.id, d.data_mb, d.cycles_per_bit, d.delta_max_ghz, d.trace_idx
        );
    }

    // 2. Train the DRL agent offline (Algorithm 1). A short run for the
    //    quickstart; the figure binaries train for hundreds of episodes.
    println!("\ntraining the DRL agent (400 episodes)...");
    let config = TrainConfig {
        episodes: 400,
        ..TrainConfig::default()
    };
    let out = train_drl(&sys, &config, &mut rng).expect("training succeeds");
    let early: f64 = out.episodes[..40].iter().map(|e| e.mean_cost).sum::<f64>() / 40.0;
    println!(
        "training cost: first-40-episode mean {:.2} -> final plateau {:.2}",
        early,
        out.final_mean_cost(40)
    );

    // 3. Evaluate online against the baselines, all on the same timeline.
    let stat = StaticController::new(&sys, 500, 0.1, &mut rng).expect("static");
    let controllers: Vec<Box<dyn FrequencyController + Send>> = vec![
        Box::new(out.controller),
        Box::new(HeuristicController::default()),
        Box::new(stat),
        Box::new(MaxFreqController),
    ];
    let runs = compare_controllers(&sys, controllers, 200, 200.0).expect("evaluation");

    println!(
        "\n{:<12} {:>10} {:>10} {:>10}",
        "approach", "cost", "time(s)", "energy(J)"
    );
    for r in &runs {
        let (c, t, e) = r.summary();
        println!("{:<12} {:>10.3} {:>10.3} {:>10.3}", r.name, c, t, e);
    }
    println!("\n(cost = T^k + lambda * sum_i E_i^k, averaged per iteration — Eq. 9 of the paper)");
}
