//! The observability contract, tested end to end.
//!
//! 1. **Recording is invisible**: training with an enabled recorder is
//!    bit-identical to training with the disabled one — same episode
//!    stats, same final agent, same master-RNG position — at any worker
//!    count, with or without fault injection. Observability never
//!    consumes RNG and never branches training.
//! 2. **Deterministic events are invariant**: the det projection of the
//!    event log (det-only, `wall` stripped, deduped by `(ev, key)`,
//!    sorted) is byte-identical across worker counts and across a
//!    kill-at-50%/resume boundary, including supervisor interventions.
//! 3. The metric primitives (histogram buckets, quantile estimation)
//!    match hand-computed values.

use fl_ctrl::{
    build_system, train_drl_opt, train_drl_parallel_opt, CheckpointOptions, EnvConfig,
    ParallelConfig, RunOptions, SupervisorPolicy, TrainConfig, TrainOutput,
};
use fl_net::synth::Profile;
use fl_obs::Recorder;
use fl_rl::PpoConfig;
use fl_sim::{FaultModel, FlConfig, FlSystem};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn system(seed: u64) -> FlSystem {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    build_system(
        2,
        2,
        Profile::Walking4G,
        1200,
        FlConfig::default(),
        &mut rng,
    )
    .unwrap()
}

fn quick_config(episodes: usize, faults: bool) -> TrainConfig {
    TrainConfig {
        episodes,
        ppo: PpoConfig {
            hidden: vec![16],
            buffer_capacity: 64,
            minibatch_size: 32,
            epochs: 4,
            actor_lr: 1e-3,
            critic_lr: 3e-3,
            target_kl: None,
            ..PpoConfig::default()
        },
        env: EnvConfig {
            episode_len: 8,
            history_len: 3,
            faults: faults.then(|| FaultModel::chaos(0.2, 0.2, Some(120.0))),
            ..EnvConfig::default()
        },
        arch: fl_ctrl::PolicyArch::Joint,
        reward_scale: 0.05,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("fl-obs-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Everything observable from a finished run, bit-exact, plus the
/// master-RNG position after training (one draw) — a recorder that
/// consumed RNG anywhere would shift it.
fn fingerprint(out: &TrainOutput, rng: &mut ChaCha8Rng) -> (Vec<[u64; 6]>, String, u64) {
    let eps = out
        .episodes
        .iter()
        .map(|e| {
            [
                e.episode as u64,
                e.mean_cost.to_bits(),
                e.total_reward.to_bits(),
                e.policy_loss.to_bits(),
                e.value_loss.to_bits(),
                e.updates_so_far as u64,
            ]
        })
        .collect();
    (eps, out.agent.to_json().unwrap(), rng.next_u64())
}

/// Recording on vs off: bit-identical training on the serial path, with
/// and without fault injection.
#[test]
fn serial_recording_is_invisible_to_training() {
    let sys = system(1);
    for faults in [false, true] {
        let config = quick_config(10, faults);
        let run = |obs: Recorder| {
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            let opts = RunOptions {
                obs,
                ..RunOptions::default()
            };
            let out = train_drl_opt(&sys, &config, &mut rng, &opts).unwrap();
            fingerprint(&out, &mut rng)
        };
        let silent = run(Recorder::disabled());
        let recorded = run(Recorder::in_memory());
        assert_eq!(
            silent, recorded,
            "faults={faults}: an enabled recorder changed serial training"
        );
    }
}

/// Recording on vs off: bit-identical training on the parallel path, at
/// 1 and 4 workers, with and without fault injection.
#[test]
fn parallel_recording_is_invisible_to_training() {
    let sys = system(2);
    for faults in [false, true] {
        let config = quick_config(12, faults);
        let run = |workers: usize, obs: Recorder| {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            let par = ParallelConfig { n_envs: 4, workers };
            let opts = RunOptions {
                obs,
                ..RunOptions::default()
            };
            let out = train_drl_parallel_opt(&sys, &config, &par, &mut rng, &opts)
                .unwrap()
                .output;
            fingerprint(&out, &mut rng)
        };
        let reference = run(1, Recorder::disabled());
        for workers in [1, 4] {
            assert_eq!(
                run(workers, Recorder::in_memory()),
                reference,
                "faults={faults} workers={workers}: recorder changed parallel training"
            );
        }
    }
}

/// The det projection of the event stream is identical at every worker
/// count — including a supervisor intervention healing a poisoned update.
#[test]
fn det_projection_is_worker_count_invariant() {
    let sys = system(3);
    let mut config = quick_config(12, false);
    // Smaller buffer → one PPO update per round, so the poisoned second
    // update (and its intervention event) lands early in the run.
    config.ppo.buffer_capacity = 32;
    config.ppo.minibatch_size = 16;
    let project = |workers: usize| -> Vec<String> {
        let rec = Recorder::in_memory();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let par = ParallelConfig { n_envs: 4, workers };
        let opts = RunOptions {
            supervisor: Some(SupervisorPolicy::default()),
            poison_update: Some(1),
            obs: rec.clone(),
            ..RunOptions::default()
        };
        let out = train_drl_parallel_opt(&sys, &config, &par, &mut rng, &opts)
            .unwrap()
            .output;
        assert_eq!(out.interventions.len(), 1, "poison must trigger a strike");
        fl_obs::det_projection(&rec.events_text()).unwrap()
    };
    let reference = project(1);
    // The stream contains every deterministic event family.
    for family in [
        "\"ev\":\"ppo_update\"",
        "\"ev\":\"episode\"",
        "\"ev\":\"fl_round\"",
        "\"ev\":\"intervention\"",
    ] {
        assert!(
            reference.iter().any(|l| l.contains(family)),
            "missing {family} in det projection"
        );
    }
    assert_eq!(project(4), reference, "det projection drifted with workers");
}

/// Kill a recorded run at 50%, resume it with the same file-backed sink:
/// the det projection equals the uninterrupted run's, byte for byte
/// (resume overwrites replayed events instead of duplicating them), and
/// every line of the on-disk log validates against the schema. The two
/// halves even use different worker counts.
#[test]
fn det_projection_survives_kill_and_resume() {
    let sys = system(4);
    let config = quick_config(16, true);

    // Uninterrupted reference (in-memory recorder).
    let reference = {
        let rec = Recorder::in_memory();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let par = ParallelConfig {
            n_envs: 4,
            workers: 2,
        };
        let opts = RunOptions {
            obs: rec.clone(),
            ..RunOptions::default()
        };
        train_drl_parallel_opt(&sys, &config, &par, &mut rng, &opts).unwrap();
        fl_obs::det_projection(&rec.events_text()).unwrap()
    };

    // Killed at 50% (episode 8 of 16), then resumed — two processes, one
    // JSONL file, different worker counts on each side of the crash.
    let dir = temp_dir("resume");
    let log = dir.join("events.jsonl");
    for (stop, workers) in [(Some(8usize), 2usize), (None, 4)] {
        let rec = Recorder::to_file(&log).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let par = ParallelConfig { n_envs: 4, workers };
        let opts = RunOptions {
            checkpoint: Some(CheckpointOptions {
                dir: dir.join("ckpt"),
                every_episodes: 4,
                resume: true,
            }),
            stop_after_episodes: stop,
            obs: rec.clone(),
            ..RunOptions::default()
        };
        train_drl_parallel_opt(&sys, &config, &par, &mut rng, &opts).unwrap();
        rec.finish().unwrap();
    }
    let text = std::fs::read_to_string(&log).unwrap();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        fl_obs::validate_line(line).unwrap();
    }
    let resumed = fl_obs::det_projection(&text).unwrap();
    assert_eq!(
        resumed, reference,
        "kill/resume changed the deterministic event stream"
    );
}

/// The serial path's det projection also survives kill/resume, with a
/// checkpoint cadence misaligned with the kill point (the resumed run
/// replays episodes 3–4 and must overwrite, not duplicate, their events).
#[test]
fn serial_det_projection_survives_kill_and_resume() {
    let sys = system(5);
    let config = quick_config(10, false);
    let reference = {
        let rec = Recorder::in_memory();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let opts = RunOptions {
            obs: rec.clone(),
            ..RunOptions::default()
        };
        train_drl_opt(&sys, &config, &mut rng, &opts).unwrap();
        fl_obs::det_projection(&rec.events_text()).unwrap()
    };
    let dir = temp_dir("serial-resume");
    let log = dir.join("events.jsonl");
    for stop in [Some(5usize), None] {
        let rec = Recorder::to_file(&log).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let opts = RunOptions {
            checkpoint: Some(CheckpointOptions {
                dir: dir.join("ckpt"),
                every_episodes: 3, // misaligned with the kill at 5
                resume: true,
            }),
            stop_after_episodes: stop,
            obs: rec.clone(),
            ..RunOptions::default()
        };
        train_drl_opt(&sys, &config, &mut rng, &opts).unwrap();
        rec.finish().unwrap();
    }
    let resumed = fl_obs::det_projection(&std::fs::read_to_string(&log).unwrap()).unwrap();
    assert_eq!(resumed, reference);
}

/// Histogram bucket boundaries: a value exactly on an upper edge lands in
/// that bucket (`v <= bound`), everything past the last edge overflows
/// into a bucket that reports the last finite edge.
#[test]
fn histogram_buckets_hand_computed() {
    let rec = Recorder::in_memory();
    let h = rec.histogram("t", &[1.0, 2.0, 4.0]);
    for v in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0] {
        h.observe(v);
    }
    // Buckets: <=1 gets {0.5, 1.0}; <=2 gets {1.5, 2.0}; <=4 gets
    // {3.0, 4.0}; overflow gets {9.0} → counts [2, 2, 2, 1].
    assert_eq!(h.count(), 7);
    // Median: rank 3.5 of 7 → second bucket (cumulative 2..4), 1.5 of its
    // 2 ranks past the lower edge → 1 + 0.75 × (2 − 1) = 1.75. Any other
    // bucket assignment of the edge values 1.0/2.0/4.0 would move this.
    assert!(
        (h.quantile(0.5) - 1.75).abs() < 1e-12,
        "{}",
        h.quantile(0.5)
    );
    // q=1 lands in the overflow bucket → last finite edge.
    assert!((h.quantile(1.0) - 4.0).abs() < 1e-12);

    // A single observation exactly on the first edge: inclusive upper
    // bound means q(1) interpolates to 1.0, not 2.0.
    let edge = rec.histogram("edge", &[1.0, 2.0]);
    edge.observe(1.0);
    assert!((edge.quantile(1.0) - 1.0).abs() < 1e-12);

    // Disabled recorders hand out inert histograms.
    let off = Recorder::disabled().histogram("t", &[1.0]);
    off.observe(3.0);
    assert_eq!(off.count(), 0);
    assert!(off.quantile(0.5).is_nan());
}

/// [`fl_obs::histogram_quantile`] against hand-computed values.
#[test]
fn histogram_quantiles_hand_computed() {
    // counts [2, 2, 2, 1] over edges [1, 2, 4]: 7 observations.
    let q = |p: f64| fl_obs::histogram_quantile(&[1.0, 2.0, 4.0], &[2, 2, 2, 1], p);
    // rank 0 → start of the first bucket (implicit lower edge 0).
    assert!((q(0.0) - 0.0).abs() < 1e-12);
    // Median as in the bucket test above.
    assert!((q(0.5) - 1.75).abs() < 1e-12, "{}", q(0.5));
    // q=0.25: rank 1.75 of 7 → first bucket, 1.75 of its 2 ranks past
    // 0 → 0.875.
    assert!((q(0.25) - 0.875).abs() < 1e-12, "{}", q(0.25));
    // Anything needing the overflow bucket returns the last finite edge.
    assert!((q(1.0) - 4.0).abs() < 1e-12);
    // Empty histogram → NaN.
    assert!(fl_obs::histogram_quantile(&[1.0], &[0, 0], 0.5).is_nan());
}

/// Trace events (schema v2) are physical: interleaving them anywhere in
/// a log leaves the deterministic projection byte-identical, and the
/// versioned validator accepts them while the v1 allowlist does not.
#[test]
fn trace_events_do_not_perturb_the_det_projection() {
    use fl_obs::trace::TraceRecord;
    use fl_obs::Event;

    let det_events = |rec: &Recorder| {
        rec.emit(Event::det("episode", "ep:1").f("mean_cost", 1.5));
        rec.emit(Event::det("fl_round", "round:1:1").u("completed", 2));
    };
    let trace_event = |attempt: u64| {
        TraceRecord {
            trace_id: "feedc0de12345678".to_string(),
            attempt,
            op: "decide".to_string(),
            outcome: "ok".to_string(),
            shed_stage: None,
            seq: Some(1),
            stages_us: [
                ("queue_wait".to_string(), 4.0),
                ("inference".to_string(), 90.0),
            ]
            .into_iter()
            .collect(),
            total_us: 101.0,
        }
        .into_event()
    };

    // Reference: deterministic events only.
    let plain = Recorder::in_memory();
    det_events(&plain);
    let reference = fl_obs::det_projection(&plain.events_text()).unwrap();
    assert_eq!(reference.len(), 2);

    // Same det events with trace events woven before, between, and after.
    let traced = Recorder::in_memory();
    traced.emit(trace_event(0));
    det_events(&traced);
    traced.emit(trace_event(1));
    let text = traced.events_text();
    assert_eq!(
        fl_obs::det_projection(&text).unwrap(),
        reference,
        "physical trace events leaked into the det projection"
    );

    // Every line of the traced log passes the v2 schema; the trace lines
    // are exactly what the v1 allowlist rejects.
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        fl_obs::validate_line_versioned(line, fl_obs::SCHEMA_VERSION).unwrap();
        let v1 = fl_obs::validate_line_versioned(line, 1);
        if line.contains("\"ev\":\"trace\"") {
            assert!(v1.is_err(), "v1 must not know the trace kind: {line}");
        } else {
            v1.unwrap();
        }
    }
}

/// Exact-sample quantiles (type-7 linear interpolation) against
/// hand-computed values.
#[test]
fn sample_quantiles_hand_computed() {
    let vals = [1.0, 2.0, 3.0, 4.0];
    assert!((fl_obs::quantile_sorted(&vals, 0.0) - 1.0).abs() < 1e-12);
    // pos = 0.5 × 3 = 1.5 → halfway between the 2nd and 3rd samples.
    assert!((fl_obs::quantile_sorted(&vals, 0.5) - 2.5).abs() < 1e-12);
    assert!((fl_obs::quantile_sorted(&vals, 1.0) - 4.0).abs() < 1e-12);
    // The 3 gaps span [0,1] in thirds: q(1/3) is the second sample.
    assert!((fl_obs::quantile_sorted(&vals, 1.0 / 3.0) - 2.0).abs() < 1e-9);
    assert!(fl_obs::quantile_sorted(&[], 0.5).is_nan());
    assert!((fl_obs::quantile_sorted(&[7.0], 0.9) - 7.0).abs() < 1e-12);
}
