//! The fault layer's determinism contract, tested end to end: fault-injected
//! DRL training and evaluation must be **bit-identical** across worker counts
//! {1, 2, 4} — dropouts, stragglers, upload failures, and blackout windows
//! all land on the same devices at the same iterations no matter how the
//! rollout work is scheduled. And `FaultModel::none()` must be *inert*: a
//! config carrying it trains to bit-for-bit the same controller as one with
//! no fault model at all.

use fl_ctrl::{
    build_system, run_controller_faulty, train_drl_parallel, EnvConfig, EpisodeStats,
    ParallelConfig, TrainConfig,
};
use fl_net::synth::Profile;
use fl_rl::PpoConfig;
use fl_sim::{FaultModel, FaultPlan, FlConfig, FlSystem, OutcomeTally};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const WORKER_MATRIX: [usize; 3] = [1, 2, 4];

fn system(seed: u64) -> FlSystem {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    build_system(
        3,
        3,
        Profile::Walking4G,
        2400,
        FlConfig::default(),
        &mut rng,
    )
    .unwrap()
}

/// The chaos model used throughout: meaningful rates on every fault channel
/// so the test exercises dropouts, stragglers, lost uploads, blackouts, and
/// the timeout cutoff at once.
fn chaos() -> FaultModel {
    FaultModel::chaos(0.15, 0.2, Some(60.0))
}

fn quick_config(episodes: usize, faults: Option<FaultModel>) -> TrainConfig {
    TrainConfig {
        episodes,
        ppo: PpoConfig {
            hidden: vec![16],
            buffer_capacity: 64,
            minibatch_size: 32,
            epochs: 4,
            actor_lr: 1e-3,
            critic_lr: 3e-3,
            target_kl: None,
            ..PpoConfig::default()
        },
        env: EnvConfig {
            episode_len: 8,
            history_len: 3,
            faults,
            ..EnvConfig::default()
        },
        arch: fl_ctrl::PolicyArch::Joint,
        reward_scale: 0.05,
    }
}

/// `(episode, mean_cost bits, total_reward bits, updates)` per episode.
type EpisodeFingerprint = Vec<(usize, u64, u64, usize)>;

/// Per-episode fingerprints plus the final actor parameters, bit-exact.
fn train_fingerprint(
    sys: &FlSystem,
    workers: usize,
    faults: Option<FaultModel>,
) -> (EpisodeFingerprint, Vec<u64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let par = ParallelConfig { n_envs: 4, workers };
    let out = train_drl_parallel(sys, &quick_config(12, faults), &par, &mut rng).unwrap();
    let episodes = out
        .output
        .episodes
        .iter()
        .map(|e: &EpisodeStats| {
            (
                e.episode,
                e.mean_cost.to_bits(),
                e.total_reward.to_bits(),
                e.updates_so_far,
            )
        })
        .collect();
    let params = out
        .output
        .controller
        .policy()
        .mean_net()
        .export_params()
        .iter()
        .map(|p| p.to_bits())
        .collect();
    (episodes, params)
}

#[test]
fn fault_training_identical_across_worker_matrix() {
    let sys = system(1);
    let reference = train_fingerprint(&sys, WORKER_MATRIX[0], Some(chaos()));
    assert_eq!(reference.0.len(), 12, "12 episodes requested");
    for &workers in &WORKER_MATRIX[1..] {
        let candidate = train_fingerprint(&sys, workers, Some(chaos()));
        assert_eq!(
            candidate, reference,
            "fault-injected training with {workers} workers diverged from 1 worker"
        );
    }
}

#[test]
fn fault_evaluation_identical_across_worker_matrix() {
    // Beyond training stats: deploy each trained controller under a pinned
    // chaos schedule and compare the cost series *and* the per-device
    // outcome tallies bit for bit.
    let sys = system(2);
    let mut per_workers: Vec<(Vec<u64>, OutcomeTally)> = Vec::new();
    for &workers in &WORKER_MATRIX {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let par = ParallelConfig { n_envs: 2, workers };
        let out =
            train_drl_parallel(&sys, &quick_config(6, Some(chaos())), &par, &mut rng).unwrap();
        let mut ctrl = out.output.controller;
        let plan = FaultPlan::new(chaos(), sys.num_devices(), 99).unwrap();
        let run = run_controller_faulty(&sys, &mut ctrl, 15, 800.0, Some(&plan)).unwrap();
        let bits: Vec<u64> = run
            .ledger
            .cost_series()
            .iter()
            .map(|c| c.to_bits())
            .collect();
        per_workers.push((bits, run.ledger.outcome_tally()));
    }
    let chaos_hit = per_workers[0].1;
    assert!(
        chaos_hit.dropped + chaos_hit.failed + chaos_hit.straggled > 0,
        "chaos schedule should actually perturb the evaluation: {chaos_hit:?}"
    );
    for (i, candidate) in per_workers.iter().enumerate().skip(1) {
        assert_eq!(
            candidate, &per_workers[0],
            "fault-injected evaluation diverged at workers={}",
            WORKER_MATRIX[i]
        );
    }
}

#[test]
fn none_model_training_matches_fault_free() {
    // `FaultModel::none()` must not consume RNG, widen observations, or
    // otherwise leave a trace: training with it is bit-identical to training
    // with no fault model configured at all.
    let sys = system(3);
    let with_none = train_fingerprint(&sys, 2, Some(FaultModel::none()));
    let without = train_fingerprint(&sys, 2, None);
    assert_eq!(
        with_none, without,
        "FaultModel::none() changed the training trajectory"
    );
}
