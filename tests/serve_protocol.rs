//! Protocol robustness suite for the fl-serve decision server.
//!
//! Contract under test: every malformed input — truncated headers,
//! corrupted magic, oversized length prefixes, zero-length payloads,
//! garbage JSON, semantically invalid requests, config-digest mismatches —
//! is answered with a structured error code on the wire (or, where no
//! response is possible, counted), and the server *survives* to answer the
//! next well-formed request: on the same connection whenever the stream is
//! still in sync, on a fresh connection otherwise. Never a panic, never a
//! silently closed socket.

#[path = "serve_common.rs"]
mod common;

use fl_rl::snapshot::CheckpointStore;
use fl_serve::protocol::{codes, DRAIN_CAP, FRAME_MAGIC, MAX_PAYLOAD};
use fl_serve::{DecisionServer, ServeClient, ServeError, ServeOptions, WireRequest};
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::Duration;

/// One server shared by every test in this suite: surviving all of them
/// concurrently *is* the property under test.
fn server() -> &'static DecisionServer {
    static SERVER: OnceLock<DecisionServer> = OnceLock::new();
    SERVER.get_or_init(|| {
        let dir = common::temp_dir("proto");
        let (_sys, snap) = common::make_snapshot(11);
        let store = CheckpointStore::new(&dir).unwrap();
        snap.save(&store).unwrap();
        DecisionServer::start(&dir, "127.0.0.1:0", ServeOptions::default()).unwrap()
    })
}

fn client() -> ServeClient {
    let mut c = ServeClient::connect(server().local_addr()).unwrap();
    // No assertion below should ever block forever on a silent server.
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c
}

/// Asserts `resp` is a structured error with `code`.
fn expect_code(resp: Result<fl_serve::WireResponse, ServeError>, code: &str) {
    let resp = resp.expect("server must answer with a frame, not silence");
    assert!(!resp.ok, "expected error {code}, got ok response {resp:?}");
    assert_eq!(resp.error_parts().0, code);
}

/// The server must still serve well-formed traffic on this connection.
fn assert_alive(client: &mut ServeClient) {
    let (seq, digest) = client.ping().expect("server must survive");
    assert_eq!(seq, 1);
    assert_eq!(digest, server().config_digest());
}

/// ... and always on a fresh connection.
fn assert_alive_fresh() {
    assert_alive(&mut client());
}

#[test]
fn well_formed_decide_roundtrip() {
    let mut c = client();
    let obs = vec![0.25; server().obs_dim()];
    let (seq, freqs) = c.decide(&obs).unwrap();
    assert_eq!(seq, 1);
    assert_eq!(freqs.len(), server().action_dim());
    for f in &freqs {
        assert!(f.is_finite() && *f > 0.0, "served frequency {f} invalid");
    }
    // Pinning the correct digest also works.
    let (_, pinned) = c.decide_pinned(&obs, server().config_digest()).unwrap();
    assert_eq!(freqs, pinned);
}

#[test]
fn truncated_header_drops_cleanly() {
    {
        let mut c = client();
        c.send_raw(&FRAME_MAGIC[..2]).unwrap();
        // Drop mid-header.
    }
    {
        let mut c = client();
        let mut frame = Vec::new();
        frame.extend_from_slice(&FRAME_MAGIC);
        frame.extend_from_slice(&64u32.to_le_bytes());
        frame.extend_from_slice(b"only twenty bytes...");
        c.send_raw(&frame).unwrap();
        // Drop mid-payload.
    }
    assert_alive_fresh();
}

#[test]
fn bad_magic_answered_then_closed() {
    let mut c = client();
    c.send_raw(b"GET / HTTP/1.1\r\n").unwrap();
    expect_code(c.read_response(), codes::BAD_MAGIC);
    // The stream cannot be resynchronized: the server closes it.
    assert!(c.read_response().is_err());
    assert_alive_fresh();
}

#[test]
fn zero_length_payload_survives_same_connection() {
    let mut c = client();
    let mut frame = Vec::new();
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&0u32.to_le_bytes());
    c.send_raw(&frame).unwrap();
    expect_code(c.read_response(), codes::EMPTY_PAYLOAD);
    assert_alive(&mut c);
}

#[test]
fn oversized_drainable_survives_same_connection() {
    let mut c = client();
    let declared = MAX_PAYLOAD + 1;
    let mut frame = Vec::new();
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&declared.to_le_bytes());
    frame.extend_from_slice(&vec![b'x'; declared as usize]);
    c.send_raw(&frame).unwrap();
    expect_code(c.read_response(), codes::OVERSIZED);
    assert_alive(&mut c);
}

#[test]
fn oversized_beyond_drain_cap_answered_then_closed() {
    let mut c = client();
    let mut frame = Vec::new();
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&(DRAIN_CAP + 1).to_le_bytes());
    c.send_raw(&frame).unwrap();
    expect_code(c.read_response(), codes::OVERSIZED);
    assert!(c.read_response().is_err(), "connection must close");
    assert_alive_fresh();
}

#[test]
fn garbage_json_survives_same_connection() {
    let mut c = client();
    for payload in [
        &b"{\"kind\": \"decide\", obs"[..],
        &b"\xff\xfe binary trash"[..],
        &b"[1, 2, 3]"[..],
        &b"null"[..],
    ] {
        c.send_payload(payload).unwrap();
        expect_code(c.read_response(), codes::BAD_JSON);
    }
    assert_alive(&mut c);
}

#[test]
fn semantic_errors_survive_same_connection() {
    let mut c = client();
    let obs_dim = server().obs_dim();

    // Unknown request kind.
    let mut req = WireRequest::ping();
    req.kind = "frobnicate".to_string();
    expect_code(c.request(&req), codes::BAD_REQUEST);

    // decide without an observation.
    let no_obs = WireRequest {
        kind: "decide".to_string(),
        obs: None,
        digest: None,
        deadline_ms: None,
        trace: None,
    };
    expect_code(c.request(&no_obs), codes::BAD_REQUEST);

    // Wrong observation dimension.
    expect_code(
        c.request(&WireRequest::decide(vec![0.0; obs_dim + 1])),
        codes::DIM_MISMATCH,
    );
    expect_code(
        c.request(&WireRequest::decide(Vec::new())),
        codes::DIM_MISMATCH,
    );

    // Non-finite observation values (JSON null round-trips to NaN).
    let mut obs = vec![0.0; obs_dim];
    obs[0] = f64::NAN;
    expect_code(c.request(&WireRequest::decide(obs)), codes::BAD_REQUEST);

    // Config-digest mismatch.
    expect_code(
        c.request(&WireRequest::decide_pinned(
            vec![0.0; obs_dim],
            server().config_digest().wrapping_add(1),
        )),
        codes::DIGEST_MISMATCH,
    );

    assert_alive(&mut c);
}

#[test]
fn stats_expose_error_counters() {
    let mut c = client();
    // Trigger one error of each in-band kind on this connection.
    c.send_payload(b"not json").unwrap();
    expect_code(c.read_response(), codes::BAD_JSON);
    expect_code(
        c.request(&WireRequest::decide(vec![1.0])),
        codes::DIM_MISMATCH,
    );
    let stats = c.stats().unwrap();
    assert!(stats.errors.bad_json >= 1);
    assert!(stats.errors.dim_mismatch >= 1);
    assert_eq!(stats.seq, 1);
    assert_eq!(stats.obs_dim, server().obs_dim());
    // Latency was recorded for the error responses too.
    assert!(stats.latency_us.count >= 2);
    assert!(stats.latency_us.p99_us >= stats.latency_us.p50_us);
}

/// What a generated corruption should produce.
enum Expected {
    /// Structured error, stream still in sync: assert code, then reuse the
    /// connection.
    ErrorThenAlive(&'static str),
    /// Structured error, then the server closes: assert code, fresh
    /// connection must work.
    ErrorThenClose(&'static str),
    /// No response possible (mid-frame drop): just drop and verify the
    /// server on a fresh connection.
    DropThenFresh,
}

fn apply_corruption(case: u8, garbage: &[u8], c: &mut ServeClient) -> Expected {
    match case {
        // Corrupted magic: prepend garbage where the magic belongs.
        0 => {
            let mut frame = Vec::from(*b"ZZV1");
            frame.extend_from_slice(&(4u32).to_le_bytes());
            frame.extend_from_slice(b"ping");
            c.send_raw(&frame).unwrap();
            Expected::ErrorThenClose(codes::BAD_MAGIC)
        }
        // Truncated header: a prefix of a valid frame, then drop.
        1 => {
            let cut = 1 + garbage.len() % 7; // 1..=7 of the 8 header bytes
            let mut frame = Vec::new();
            frame.extend_from_slice(&FRAME_MAGIC);
            frame.extend_from_slice(&(8u32).to_le_bytes());
            c.send_raw(&frame[..cut]).unwrap();
            Expected::DropThenFresh
        }
        // Declared more than sent, then drop mid-payload.
        2 => {
            let mut frame = Vec::new();
            frame.extend_from_slice(&FRAME_MAGIC);
            frame.extend_from_slice(&(garbage.len() as u32 + 64).to_le_bytes());
            frame.extend_from_slice(garbage);
            c.send_raw(&frame).unwrap();
            Expected::DropThenFresh
        }
        // Zero-length payload.
        3 => {
            let mut frame = Vec::new();
            frame.extend_from_slice(&FRAME_MAGIC);
            frame.extend_from_slice(&0u32.to_le_bytes());
            c.send_raw(&frame).unwrap();
            Expected::ErrorThenAlive(codes::EMPTY_PAYLOAD)
        }
        // Garbage JSON in a well-formed frame.
        4 => {
            let payload = if garbage.is_empty() {
                b"{" as &[u8]
            } else {
                garbage
            };
            c.send_payload(payload).unwrap();
            Expected::ErrorThenAlive(codes::BAD_JSON)
        }
        // Oversized-but-drainable length prefix.
        _ => {
            let declared = MAX_PAYLOAD + 1 + (garbage.len() as u32);
            let mut frame = Vec::new();
            frame.extend_from_slice(&FRAME_MAGIC);
            frame.extend_from_slice(&declared.to_le_bytes());
            frame.extend_from_slice(&vec![0u8; declared as usize]);
            c.send_raw(&frame).unwrap();
            Expected::ErrorThenAlive(codes::OVERSIZED)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated corruption yields its structured error code (where a
    /// response is possible) and the server answers the next well-formed
    /// request — on the same connection when the stream is in sync.
    #[test]
    fn generated_corruptions_get_structured_errors(
        case in 0u8..6,
        garbage in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let mut c = client();
        match apply_corruption(case, &garbage, &mut c) {
            Expected::ErrorThenAlive(code) => {
                let resp = c.read_response().expect("structured error expected");
                prop_assert!(!resp.ok);
                prop_assert_eq!(resp.error_parts().0, code);
                let (seq, _) = c.ping().expect("same connection must survive");
                prop_assert_eq!(seq, 1);
            }
            Expected::ErrorThenClose(code) => {
                let resp = c.read_response().expect("structured error expected");
                prop_assert!(!resp.ok);
                prop_assert_eq!(resp.error_parts().0, code);
                prop_assert!(c.read_response().is_err(), "connection must close");
            }
            Expected::DropThenFresh => drop(c),
        }
        let (seq, _) = client().ping().expect("fresh connection must work");
        prop_assert_eq!(seq, 1);
    }
}
