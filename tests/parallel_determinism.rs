//! The parallel engine's headline guarantee, tested end to end: one master
//! seed, worker counts {1, 2, 4, 8} — every layer (vectorized DRL training,
//! controller comparison, seed sweeps) must produce **bit-identical**
//! results, with thread count changing wall-clock time and nothing else.

use fl_ctrl::{
    build_system, compare_controllers, run_parallel_sweep, train_drl_parallel, EnvConfig,
    EpisodeStats, MaxFreqController, ParallelConfig, StaticController, TrainConfig,
};
use fl_net::synth::Profile;
use fl_rl::PpoConfig;
use fl_sim::{FlConfig, FlSystem};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const WORKER_MATRIX: [usize; 4] = [1, 2, 4, 8];

fn system(seed: u64) -> FlSystem {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    build_system(
        3,
        3,
        Profile::Walking4G,
        2400,
        FlConfig::default(),
        &mut rng,
    )
    .unwrap()
}

fn quick_config(episodes: usize) -> TrainConfig {
    TrainConfig {
        episodes,
        ppo: PpoConfig {
            hidden: vec![16],
            buffer_capacity: 64,
            minibatch_size: 32,
            epochs: 4,
            actor_lr: 1e-3,
            critic_lr: 3e-3,
            target_kl: None,
            ..PpoConfig::default()
        },
        env: EnvConfig {
            episode_len: 8,
            history_len: 3,
            ..EnvConfig::default()
        },
        arch: fl_ctrl::PolicyArch::Joint,
        reward_scale: 0.05,
    }
}

/// `(episode, mean_cost bits, total_reward bits, updates)` per episode.
type EpisodeFingerprint = Vec<(usize, u64, u64, usize)>;

/// Everything observable from a training run, bit-exact: per-episode stats
/// and the final actor parameters.
fn train_fingerprint(sys: &FlSystem, workers: usize) -> (EpisodeFingerprint, Vec<u64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let par = ParallelConfig { n_envs: 4, workers };
    let out = train_drl_parallel(sys, &quick_config(12), &par, &mut rng).unwrap();
    let episodes: EpisodeFingerprint = out
        .output
        .episodes
        .iter()
        .map(|e: &EpisodeStats| {
            (
                e.episode,
                e.mean_cost.to_bits(),
                e.total_reward.to_bits(),
                e.updates_so_far,
            )
        })
        .collect();
    let params = out
        .output
        .controller
        .policy()
        .mean_net()
        .export_params()
        .iter()
        .map(|p| p.to_bits())
        .collect();
    (episodes, params)
}

#[test]
fn training_identical_across_worker_matrix() {
    let sys = system(1);
    let reference = train_fingerprint(&sys, WORKER_MATRIX[0]);
    assert_eq!(reference.0.len(), 12, "12 episodes requested");
    for &workers in &WORKER_MATRIX[1..] {
        let candidate = train_fingerprint(&sys, workers);
        assert_eq!(
            candidate, reference,
            "training with {workers} workers diverged from 1 worker"
        );
    }
}

#[test]
fn trained_controller_final_costs_identical_across_worker_matrix() {
    // Beyond training stats: deploy each trained controller and compare the
    // online evaluation cost series bit for bit.
    let sys = system(2);
    let mut costs_per_workers = Vec::new();
    for &workers in &WORKER_MATRIX {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let par = ParallelConfig { n_envs: 2, workers };
        let out = train_drl_parallel(&sys, &quick_config(6), &par, &mut rng).unwrap();
        let runs =
            compare_controllers(&sys, vec![Box::new(out.output.controller)], 15, 800.0).unwrap();
        let bits: Vec<u64> = runs[0]
            .ledger
            .cost_series()
            .iter()
            .map(|c| c.to_bits())
            .collect();
        costs_per_workers.push(bits);
    }
    for (i, bits) in costs_per_workers.iter().enumerate().skip(1) {
        assert_eq!(
            bits, &costs_per_workers[0],
            "final cost series diverged at workers={}",
            WORKER_MATRIX[i]
        );
    }
}

#[test]
fn controller_comparison_matches_serial_reference() {
    let sys = system(3);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let stat = StaticController::new(&sys, 200, 0.1, &mut rng).unwrap();
    let runs = compare_controllers(
        &sys,
        vec![Box::new(MaxFreqController), Box::new(stat.clone())],
        12,
        500.0,
    )
    .unwrap();
    assert_eq!(runs.len(), 2);
    assert_eq!(runs[0].name, "maxfreq");
    assert_eq!(runs[1].name, "static");
    // Serial re-run of the same controllers must match bit for bit.
    let mut maxf = MaxFreqController;
    let serial = fl_ctrl::run_controller(&sys, &mut maxf, 12, 500.0).unwrap();
    assert_eq!(runs[0].ledger.cost_series(), serial.ledger.cost_series());
}

#[test]
fn seed_sweep_order_and_values_invariant_to_workers() {
    // A miniature abl_seeds: train on 5 seeds, each task self-seeded. The
    // sweep must return results in seed order with identical values for
    // every worker count.
    let sys = system(5);
    let sweep = |workers: usize| {
        let seeds: Vec<u64> = (0..5).collect();
        let (results, report) = run_parallel_sweep(workers, seeds, |_, seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let par = ParallelConfig {
                n_envs: 2,
                workers: 1,
            };
            let out = train_drl_parallel(&sys, &quick_config(4), &par, &mut rng)?;
            Ok(out.output.final_mean_cost(2).to_bits())
        })
        .unwrap();
        let tasks: usize = report.workers.iter().map(|w| w.tasks).sum();
        assert_eq!(tasks, 5);
        results
    };
    let reference = sweep(1);
    for &workers in &WORKER_MATRIX[1..] {
        assert_eq!(sweep(workers), reference, "sweep diverged at {workers}");
    }
}
