//! Overload and deadline suite for the fl-serve decision server.
//!
//! Contract under test (DESIGN.md §8): a server past capacity degrades
//! *structurally*, never silently — the bounded admission queue sheds
//! with `overloaded` + a `retry_after_ms` hint, queued requests whose
//! deadline budget expires are shed with `deadline_exceeded` *before*
//! burning a policy forward, a draining server refuses new decides with
//! `shutting_down` while finishing admitted work, and a peer that stops
//! reading responses is disconnected by the write timeout instead of
//! wedging its connection thread. Every shed is visible in `stats`
//! (`shed_total`, `queue_depth`, per-code error counters).
//!
//! All timing here is coarse (tens of ms vs. ms-scale deadlines) so the
//! assertions hold on slow CI machines.

#[path = "serve_common.rs"]
mod common;

use fl_rl::snapshot::CheckpointStore;
use fl_serve::protocol::{codes, encode_json};
use fl_serve::{DecisionServer, ServeClient, ServeError, ServeOptions, WireRequest};
use std::time::Duration;

/// A dedicated slow server: single-row batches and an artificial 100 ms
/// per-batch inference delay, so a handful of clients is already "past
/// capacity" and queue/deadline behavior is reachable deterministically.
fn slow_server(tag: &str, max_queue: usize, default_deadline: Option<Duration>) -> DecisionServer {
    let dir = common::temp_dir(tag);
    let (_sys, snap) = common::make_snapshot(23);
    let store = CheckpointStore::new(&dir).unwrap();
    snap.save(&store).unwrap();
    DecisionServer::start(
        &dir,
        "127.0.0.1:0",
        ServeOptions {
            max_batch: 1,
            linger: Duration::ZERO,
            max_queue,
            default_deadline,
            inference_slowdown: Duration::from_millis(100),
            write_timeout: Some(Duration::from_millis(500)),
            ..ServeOptions::default()
        },
    )
    .unwrap()
}

fn client(server: &DecisionServer) -> ServeClient {
    let mut c = ServeClient::connect(server.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    c
}

#[test]
fn expired_deadlines_are_shed_before_inference() {
    let server = slow_server("deadline", 64, None);
    let obs = vec![0.25; server.obs_dim()];

    // Build a backlog: three no-deadline decides keep the single-row,
    // 100 ms/batch inference thread busy for ~300 ms.
    let backlog: Vec<_> = (0..3)
        .map(|_| {
            let addr = server.local_addr();
            let obs = obs.clone();
            std::thread::spawn(move || {
                let mut c = ServeClient::connect(addr).unwrap();
                c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                c.decide(&obs)
            })
        })
        .collect();
    // Let the backlog get admitted, then join the queue with a 1 ms
    // budget — it cannot possibly be served in time and must be shed.
    std::thread::sleep(Duration::from_millis(50));
    let mut c = client(&server);
    let request = WireRequest::decide(obs.clone()).with_deadline(1);
    let err = c.decide_request(&request).unwrap_err();
    match &err {
        ServeError::Server { code, msg, .. } => {
            assert_eq!(code, codes::DEADLINE_EXCEEDED);
            assert!(
                msg.contains("ms"),
                "message should say how long it waited: {msg}"
            );
        }
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }
    assert!(err.is_retryable(), "deadline_exceeded must be retryable");

    // The backlog itself is unharmed — deadline shedding is per-request.
    for handle in backlog {
        let (seq, freqs) = handle
            .join()
            .unwrap()
            .expect("no-deadline decide must succeed");
        assert_eq!(seq, 1);
        assert_eq!(freqs.len(), server.action_dim());
    }
    // A generous deadline is comfortably met on the now-idle server.
    let generous = WireRequest::decide(obs).with_deadline(10_000);
    c.decide_request(&generous)
        .expect("generous deadline must be served");

    let stats = server.stats();
    assert!(stats.shed_total >= 1, "shed_total must count the expiry");
    assert!(stats.errors.deadline_exceeded >= 1);
    assert_eq!(stats.errors.overloaded, 0);
}

#[test]
fn server_default_deadline_applies_to_undecorated_requests() {
    let server = slow_server("default-deadline", 64, Some(Duration::from_millis(1)));
    let obs = vec![0.25; server.obs_dim()];

    // Occupy the inference thread so the probe request has to queue past
    // its (server-supplied) 1 ms budget. The occupier carries its own
    // generous per-request deadline, which must override the default.
    let occupier = {
        let addr = server.local_addr();
        let obs = obs.clone();
        std::thread::spawn(move || {
            let mut c = ServeClient::connect(addr).unwrap();
            c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            c.decide_request(&WireRequest::decide(obs).with_deadline(30_000))
        })
    };
    std::thread::sleep(Duration::from_millis(40));
    let err = client(&server).decide(&obs).unwrap_err();
    match err {
        ServeError::Server { ref code, .. } => assert_eq!(code, codes::DEADLINE_EXCEEDED),
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }
    occupier
        .join()
        .unwrap()
        .expect("per-request deadline must override the server default");
}

#[test]
fn full_admission_queue_sheds_with_overloaded_and_retry_hint() {
    let server = slow_server("overload", 2, None);
    let obs = vec![0.25; server.obs_dim()];

    // 8 concurrent decides against capacity 1-in-flight + 2 queued:
    // most must be shed immediately with `overloaded`.
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let addr = server.local_addr();
            let obs = obs.clone();
            std::thread::spawn(move || {
                let mut c = ServeClient::connect(addr).unwrap();
                c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                c.decide(&obs)
            })
        })
        .collect();
    let mut ok = 0usize;
    let mut overloaded = 0usize;
    for handle in handles {
        match handle.join().unwrap() {
            Ok((seq, freqs)) => {
                assert_eq!(seq, 1);
                assert_eq!(freqs.len(), server.action_dim());
                ok += 1;
            }
            Err(err @ ServeError::Server { .. }) => {
                let ServeError::Server { ref code, .. } = err else {
                    unreachable!()
                };
                assert_eq!(code, codes::OVERLOADED, "only overloaded sheds expected");
                assert!(err.is_retryable(), "overloaded must be retryable");
                let hint = err
                    .retry_after()
                    .expect("overloaded must carry retry_after_ms");
                assert!(hint > Duration::ZERO && hint <= Duration::from_secs(10));
                overloaded += 1;
            }
            Err(other) => panic!("unexpected failure kind: {other:?}"),
        }
    }
    assert_eq!(ok + overloaded, 8);
    assert!(ok >= 1, "the in-flight + queued requests must be served");
    assert!(overloaded >= 1, "past-capacity requests must be shed");

    let stats = server.stats();
    assert_eq!(stats.errors.overloaded as usize, overloaded);
    assert_eq!(stats.shed_total as usize, overloaded);
    assert_eq!(stats.queue_depth, 0, "queue must drain back to empty");
    // Shedding never costs a forward: decisions == served requests.
    assert_eq!(stats.decisions as usize, ok);
}

#[test]
fn draining_refuses_new_work_while_finishing_inflight() {
    let server = slow_server("drain", 64, None);
    let obs = vec![0.25; server.obs_dim()];

    // Admit one decide (send the frame, then read the response later) so
    // there is provably in-flight work when the drain begins.
    let mut inflight = client(&server);
    inflight
        .send_payload(&encode_json(&WireRequest::decide(obs.clone())).unwrap())
        .unwrap();
    std::thread::sleep(Duration::from_millis(40));

    assert!(!server.is_draining());
    server.begin_drain();
    assert!(server.is_draining());

    // New decides are refused with a structured, retryable code...
    let mut late = client(&server);
    let err = late.decide(&obs).unwrap_err();
    match err {
        ServeError::Server { ref code, .. } => assert_eq!(code, codes::SHUTTING_DOWN),
        other => panic!("expected shutting_down, got {other:?}"),
    }
    assert!(
        err.is_retryable(),
        "shutting_down must steer clients elsewhere, retryably"
    );

    // ...liveness and observability survive the drain window...
    late.ping().expect("ping must work while draining");
    let stats = late.stats().expect("stats must work while draining");
    assert!(stats.errors.shutting_down >= 1);

    // ...and the admitted request is finished, not abandoned.
    let response = inflight
        .read_response()
        .expect("in-flight decide must be answered");
    assert!(response.ok, "in-flight decide must succeed: {response:?}");
    assert_eq!(response.seq, Some(1));

    let final_stats = server.shutdown();
    assert!(final_stats.decisions >= 1);
}

#[test]
fn stalled_reader_is_disconnected_not_wedged() {
    let server = slow_server("stall", 64, None);
    let obs = vec![0.25; server.obs_dim()];

    // Pipeline tens of thousands of stats requests and never read a
    // response: ~26 MB of responses against ~4 MB of kernel buffering
    // forces the server's write to stall until its write timeout fires.
    {
        let mut hog = ServeClient::connect(server.local_addr()).unwrap();
        hog.set_write_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let frame = encode_json(&WireRequest::stats()).unwrap();
        for _ in 0..40_000 {
            if hog.send_payload(&frame).is_err() {
                break; // server already cut us loose — that's the point
            }
        }
        // Hold the socket open (still not reading) until the server's
        // write timeout must have fired.
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        loop {
            if server.stats().errors.stalled_write >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "server never recorded a stalled write"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    // The server survives to serve fresh, well-behaved connections.
    let (seq, freqs) = client(&server)
        .decide(&obs)
        .expect("server must survive a stalled peer");
    assert_eq!(seq, 1);
    assert_eq!(freqs.len(), server.action_dim());
    assert!(server.stats().errors.stalled_write >= 1);
}

#[test]
fn stats_surface_queue_depth_and_shed_total_at_rest() {
    let server = slow_server("stats-rest", 4, None);
    let stats = client(&server).stats().unwrap();
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.shed_total, 0);
    assert_eq!(stats.errors.overloaded, 0);
    assert_eq!(stats.errors.deadline_exceeded, 0);
    assert_eq!(stats.errors.shutting_down, 0);
    assert_eq!(stats.errors.stalled_write, 0);
}
