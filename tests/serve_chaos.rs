//! Network-chaos soak suite for the fl-serve serving path.
//!
//! A [`fl_serve::ChaosProxy`] sits between the client and the decision
//! server, replaying a pinned, seeded [`fl_serve::ChaosPlan`] — latency
//! bursts, connection resets, torn (tiny-chunk) writes, and single-byte
//! corruption. Contract under test:
//!
//! * the server never panics, hangs, or serves a torn frame — every
//!   failure a client observes is a structured error or a clean
//!   transport failure;
//! * every decide the resilient client *completes* is bit-identical to
//!   the in-process `ControllerSnapshot::decide_rows` answer (which the
//!   fl-ctrl suite pins bit-for-bit to `DrlController::decide`) — chaos
//!   may delay or kill answers, never alter them;
//! * the [`fl_serve::ResilientClient`] converges under chaos that the
//!   raw single-connection client provably does not survive;
//! * the whole run is reproducible from the plan seed: two runs of the
//!   same workload under the same plan produce identical injected-fault
//!   logs and identical decisions.
//!
//! The bit-exactness runs use *downstream-only* corruption by design: a
//! corrupted response always fails framing or JSON decoding at the
//! client and is retried on a fresh connection, so success implies an
//! uncorrupted answer. Upstream corruption could craft a
//! parseable-but-different request — that is exercised separately as a
//! robustness property, with no bit assertions.

#[path = "serve_common.rs"]
mod common;

use fl_rl::snapshot::CheckpointStore;
use fl_serve::chaos::{ChaosEventKind, Direction};
use fl_serve::{
    ChaosModel, ChaosPlan, ChaosProxy, DecisionServer, ResilientClient, RetryPolicy, ServeClient,
    ServeError, ServeOptions,
};
use proptest::prelude::*;
use std::time::Duration;

/// Decisions per soak run.
const SOAK_DECIDES: usize = 40;

/// Starts a default-tuned server over the shared fixture snapshot and
/// returns it with the in-process bit-exact expectations.
fn server_with_expected(
    tag: &str,
    snap_seed: u64,
) -> (DecisionServer, Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let dir = common::temp_dir(tag);
    let (sys, snap) = common::make_snapshot(snap_seed);
    let rows = common::obs_rows(&sys, &common::obs_times(SOAK_DECIDES));
    let expected = snap.decide_rows(&rows).unwrap();
    let store = CheckpointStore::new(&dir).unwrap();
    snap.save(&store).unwrap();
    let server = DecisionServer::start(&dir, "127.0.0.1:0", ServeOptions::default()).unwrap();
    (server, rows, expected)
}

/// The retry discipline the soak clients run under: tight seeded backoff
/// so chaos runs stay fast, generous attempt count so convergence is
/// about correctness, not luck.
fn soak_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 30,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(30),
        jitter_frac: 0.5,
        seed,
        budget: Some(Duration::from_secs(20)),
        io_timeout: Some(Duration::from_millis(800)),
    }
}

/// The pinned hostile network for the convergence soaks; tear chunks are
/// widened from the preset so torn relays stay well inside `io_timeout`.
fn soak_model() -> ChaosModel {
    ChaosModel {
        tear_chunk: 16,
        ..ChaosModel::hostile()
    }
}

#[test]
fn clean_proxy_is_a_transparent_relay() {
    let (server, rows, expected) = server_with_expected("chaos-clean", 31);
    let proxy =
        ChaosProxy::start(server.local_addr(), ChaosPlan::new(ChaosModel::none(), 5)).unwrap();
    let mut c = ServeClient::connect(proxy.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for (row, want) in rows.iter().zip(&expected).take(10) {
        let (seq, freqs) = c.decide(row).unwrap();
        assert_eq!(seq, 1);
        assert_eq!(&freqs, want, "a chaos-free proxy must not change bits");
    }
    assert!(
        proxy.events().is_empty(),
        "a none-model proxy must inject nothing"
    );
}

#[test]
fn resilient_client_converges_bit_identical_under_pinned_chaos() {
    let (server, rows, expected) = server_with_expected("chaos-soak", 31);
    let plan = ChaosPlan::new(soak_model(), 13);
    let proxy = ChaosProxy::start(server.local_addr(), plan).unwrap();
    let mut client = ResilientClient::new(proxy.local_addr(), soak_policy(42)).unwrap();

    for (row, want) in rows.iter().zip(&expected) {
        let (seq, freqs) = client
            .decide(row)
            .expect("the resilient client must complete every decide under chaos");
        assert_eq!(seq, 1);
        assert_eq!(
            &freqs, want,
            "chaos may delay or kill answers, never alter them"
        );
    }
    // The run must actually have been chaotic, or this test proves
    // nothing: the proxy injected faults and the client had to retry.
    assert!(
        !proxy.events().is_empty(),
        "pinned plan injected no faults — chaos seed regressed"
    );
    assert!(
        client.retries_total() >= 1 && client.reconnects_total() >= 1,
        "soak must exercise the retry path (retries {}, reconnects {})",
        client.retries_total(),
        client.reconnects_total()
    );
    // Structured degradation server-side: whatever the chaos did, the
    // server is alive and its counters are coherent.
    let stats = server.stats();
    assert!(stats.decisions as usize >= SOAK_DECIDES);
}

#[test]
fn raw_client_does_not_survive_the_same_chaos() {
    let (server, rows, _) = server_with_expected("chaos-raw", 31);
    let plan = ChaosPlan::new(soak_model(), 13);
    // Deterministic precondition: under this pinned seed the very first
    // connection is dealt damage a single-connection client cannot out-wait
    // (a reset or a corrupted response, not merely latency).
    let lethal = [Direction::Upstream, Direction::Downstream]
        .into_iter()
        .map(|d| plan.conn_chaos(0, d))
        .any(|c| c.reset_after.is_some() || c.corrupt_at.is_some());
    assert!(
        lethal,
        "pinned seed no longer maims conn 0 — pick another seed"
    );

    let proxy = ChaosProxy::start(server.local_addr(), plan).unwrap();
    let mut c = ServeClient::connect(proxy.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_millis(800)))
        .unwrap();
    c.set_write_timeout(Some(Duration::from_millis(800)))
        .unwrap();
    let failures = rows.iter().filter(|row| c.decide(row).is_err()).count();
    assert!(
        failures >= 1,
        "the raw client somehow survived chaos the resilient client needs retries for"
    );
}

#[test]
fn chaos_run_is_reproducible_from_the_plan_seed() {
    // Timing-free chaos (no latency, no torn writes): resets and
    // downstream corruption are keyed purely to byte offsets, so with a
    // serial client the injected-fault log is a function of the seed.
    let model = ChaosModel {
        reset_prob: 0.35,
        reset_min_bytes: 8,
        reset_max_bytes: 200,
        corrupt_prob: 0.5,
        corrupt_min_byte: 0,
        corrupt_max_byte: 100,
        corrupt_upstream: false,
        corrupt_downstream: true,
        ..ChaosModel::none()
    };
    let run = |tag: &str| {
        let (server, rows, expected) = server_with_expected(tag, 31);
        let proxy = ChaosProxy::start(server.local_addr(), ChaosPlan::new(model, 8)).unwrap();
        let mut client = ResilientClient::new(proxy.local_addr(), soak_policy(7)).unwrap();
        let mut freqs = Vec::new();
        for (row, want) in rows.iter().zip(&expected) {
            let (_, f) = client.decide(row).expect("must converge");
            assert_eq!(&f, want);
            freqs.push(f);
        }
        // Give the last relay threads a beat to log trailing events.
        std::thread::sleep(Duration::from_millis(100));
        (proxy.events(), proxy.connections(), freqs)
    };
    let (events_a, conns_a, freqs_a) = run("chaos-repro-a");
    let (events_b, conns_b, freqs_b) = run("chaos-repro-b");
    assert!(
        !events_a.is_empty(),
        "seed must inject something or this proves nothing"
    );
    assert_eq!(
        events_a, events_b,
        "injected-fault log must replay bit-for-bit"
    );
    assert_eq!(conns_a, conns_b, "reconnect pattern must replay");
    assert_eq!(freqs_a, freqs_b);
    assert!(
        events_a.iter().any(|e| e.kind == ChaosEventKind::Reset)
            || events_a.iter().any(|e| e.kind == ChaosEventKind::Corrupt),
        "expected resets/corruption in the log, got {events_a:?}"
    );
}

#[test]
fn upstream_corruption_is_survived_with_structured_errors() {
    let (server, rows, expected) = server_with_expected("chaos-upstream", 31);
    let model = ChaosModel {
        corrupt_prob: 1.0,
        corrupt_min_byte: 0,
        corrupt_max_byte: 200,
        corrupt_upstream: true,
        corrupt_downstream: false,
        ..ChaosModel::none()
    };
    let proxy = ChaosProxy::start(server.local_addr(), ChaosPlan::new(model, 3)).unwrap();
    let mut c = ServeClient::connect(proxy.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    // Every connection's first request gets one byte flipped somewhere in
    // its first 200 bytes. Whatever the flip hits — magic, length
    // prefix, JSON payload — the damage must surface as an error (a
    // structured server code, or a clean transport failure when the
    // frame could not even be answered). Never a silently-wrong answer.
    match c.decide(&rows[0]) {
        Ok((_, freqs)) => panic!("corrupted request served an answer: {freqs:?}"),
        Err(ServeError::Server { code, .. }) => {
            assert!(
                [
                    "bad_magic",
                    "bad_json",
                    "oversized",
                    "empty_payload",
                    "bad_request"
                ]
                .contains(&code.as_str()),
                "unexpected structured code for corrupted request: {code}"
            );
        }
        Err(
            ServeError::ConnectionClosed
            | ServeError::TimedOut
            | ServeError::Protocol(_)
            | ServeError::Io(_),
        ) => {}
        Err(other) => panic!("unexpected error kind: {other:?}"),
    }
    // The server itself is unharmed and still bit-exact, straight past
    // the proxy.
    let mut direct = ServeClient::connect(server.local_addr()).unwrap();
    direct
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let (_, freqs) = direct.decide(&rows[0]).unwrap();
    assert_eq!(freqs, expected[0]);
}

#[test]
fn backoff_schedule_is_bit_stable_across_client_instances() {
    // The delay before retry k is a pure function of (policy seed, k):
    // a client that reconnects any number of times — or a freshly built
    // replacement — plans the identical schedule.
    let a = ResilientClient::new("127.0.0.1:1", soak_policy(9)).unwrap();
    let b = ResilientClient::new("127.0.0.1:1", soak_policy(9)).unwrap();
    let sched_a = a.policy().planned_delays();
    let sched_b = b.policy().planned_delays();
    assert_eq!(sched_a, sched_b);
    assert!(!sched_a.is_empty());
    let again: Vec<_> = (0..sched_a.len() as u32)
        .map(|k| a.policy().backoff_delay(k))
        .collect();
    assert_eq!(
        sched_a, again,
        "re-deriving the schedule must be bit-identical"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Satellite contract: the retry loop can never sleep past its
    /// wall-clock budget — the planned schedule (what `with_retries`
    /// walks) always sums to strictly less than the budget, for every
    /// policy shape.
    #[test]
    fn planned_retries_never_exceed_the_budget(
        max_retries in 0u32..12,
        base_ms in 1u64..50,
        cap_ms in 1u64..500,
        jitter in 0.0f64..1.0,
        seed in 0u64..u64::MAX,
        budget_ms in 1u64..2_000,
    ) {
        let policy = RetryPolicy {
            max_retries,
            base: Duration::from_millis(base_ms),
            cap: Duration::from_millis(cap_ms),
            jitter_frac: jitter,
            seed,
            budget: Some(Duration::from_millis(budget_ms)),
            io_timeout: None,
        };
        let delays = policy.planned_delays();
        let total: Duration = delays.iter().sum();
        prop_assert!(total < Duration::from_millis(budget_ms),
            "schedule {delays:?} sums to {total:?}, budget {budget_ms} ms");
        for (k, d) in delays.iter().enumerate() {
            prop_assert!(*d <= policy.cap, "attempt {k} delay {d:?} above cap");
        }
    }
}
