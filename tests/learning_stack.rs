//! Integration tests for the learning side: FedAvg running under the
//! frequency scheduler — constraint (10), Eq. (7)/(8), and the interplay
//! between the physical and statistical halves of the system.

use fl_ctrl::{build_system, FrequencyController, HeuristicController, MaxFreqController};
use fl_learn::{data, FedAvg, FedAvgConfig, LocalTrainer};
use fl_net::synth::Profile;
use fl_sim::{FlConfig, SessionLedger};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runs FedAvg rounds where each round is also one scheduled+simulated FL
/// iteration; returns (rounds, final loss, ledger).
fn fedavg_under_schedule(
    ctrl: &mut dyn FrequencyController,
    epsilon: f64,
    max_rounds: usize,
) -> (usize, f64, SessionLedger) {
    let n_devices = 3;
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let sys = build_system(
        n_devices,
        3,
        Profile::Walking4G,
        2400,
        FlConfig {
            tau: 1,
            model_size_mb: 10.0,
            lambda: 0.5,
        },
        &mut rng,
    )
    .expect("system");
    let dataset = data::gaussian_blobs(450, 2, 5.0, &mut rng).expect("data");
    let shards = data::split_non_iid(&dataset, n_devices, 0.4, &mut rng).expect("shards");
    let model = LocalTrainer::default_model(2, &mut rng).expect("model");
    let mut fed = FedAvg::new(model, FedAvgConfig::default()).expect("fedavg");

    let mut ledger = SessionLedger::new(sys.config().lambda);
    let mut t = 200.0;
    let mut prev = None;
    let mut loss = f64::INFINITY;
    let mut rounds = 0;
    while rounds < max_rounds {
        let freqs = ctrl.decide(rounds, t, &sys, prev.as_ref()).expect("decide");
        let report = sys.run_iteration(t, &freqs).expect("iteration");
        t = report.end_time();
        let round = fed.round(&shards, &mut rng).expect("round");
        loss = round.global_loss;
        ledger.push(report.clone());
        prev = Some(report);
        rounds += 1;
        if loss < epsilon {
            break;
        }
    }
    (rounds, loss, ledger)
}

/// Constraint (10) end to end: the federated model reaches the loss
/// threshold while the scheduler charges time and energy for every round.
#[test]
fn fedavg_reaches_epsilon_under_scheduler() {
    let mut ctrl = HeuristicController::default();
    let (rounds, loss, ledger) = fedavg_under_schedule(&mut ctrl, 0.15, 40);
    assert!(loss < 0.15, "loss {loss} after {rounds} rounds");
    assert_eq!(ledger.len(), rounds);
    assert!(ledger.total_cost() > 0.0);
}

/// The motivating claim of the paper, measured end to end: for the same
/// learning outcome (same rounds, same data, same aggregation), the
/// energy-aware schedule spends fewer joules than full speed — and more
/// compute power does NOT buy faster convergence (the learner's trajectory
/// is identical by construction of the synchronized protocol).
#[test]
fn energy_aware_schedule_reaches_same_loss_cheaper() {
    let mut fast = MaxFreqController;
    let (rounds_fast, loss_fast, ledger_fast) = fedavg_under_schedule(&mut fast, 0.15, 40);
    let mut smart = HeuristicController::default();
    let (rounds_smart, loss_smart, ledger_smart) = fedavg_under_schedule(&mut smart, 0.15, 40);

    // Same statistical trajectory: identical rounds-to-threshold and loss
    // (the learner RNG and shards are the same in both runs).
    assert_eq!(rounds_fast, rounds_smart);
    assert!((loss_fast - loss_smart).abs() < 1e-12);

    // Different physical bill.
    let energy_fast: f64 = ledger_fast.energy_series().iter().sum();
    let energy_smart: f64 = ledger_smart.energy_series().iter().sum();
    assert!(
        energy_smart < energy_fast,
        "heuristic energy {energy_smart} vs maxfreq {energy_fast}"
    );
}

/// Non-IID severity degrades convergence speed monotonically-ish: the
/// fully-skewed split needs at least as many rounds as the IID split to
/// reach the same loss (a FedAvg sanity property the paper presumes).
#[test]
fn non_iid_skew_slows_convergence() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let dataset = data::gaussian_blobs(600, 2, 5.0, &mut rng).expect("data");
    let rounds_to = |skew: f64| -> usize {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let shards = data::split_non_iid(&dataset, 4, skew, &mut rng).expect("split");
        let model = {
            let mut mrng = ChaCha8Rng::seed_from_u64(7);
            LocalTrainer::default_model(2, &mut mrng).expect("model")
        };
        let mut fed = FedAvg::new(model, FedAvgConfig::default()).expect("fedavg");
        for round in 1..=60 {
            let r = fed.round(&shards, &mut rng).expect("round");
            if r.global_loss < 0.12 {
                return round;
            }
        }
        61
    };
    let iid = rounds_to(0.0);
    let skewed = rounds_to(1.0);
    assert!(
        skewed >= iid,
        "skewed split converged faster ({skewed}) than IID ({iid})"
    );
}

/// Eq. (8) consistency: the weighted global loss equals the direct loss on
/// the concatenated data.
#[test]
fn weighted_global_loss_matches_pooled_loss() {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let dataset = data::gaussian_blobs(300, 2, 4.0, &mut rng).expect("data");
    let shards = data::split_non_iid(&dataset, 3, 0.7, &mut rng).expect("split");
    let model = LocalTrainer::default_model(2, &mut rng).expect("model");
    let fed = FedAvg::new(model, FedAvgConfig::default()).expect("fedavg");

    let weighted = fed.global_loss(&shards).expect("weighted");
    // Pool the shards back together and evaluate directly.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for s in &shards {
        xs.extend_from_slice(s.x.data());
        ys.extend_from_slice(s.y.data());
    }
    let pooled = data::LabeledData::new(
        fl_nn::Matrix::from_vec(ys.len(), 2, xs).expect("x"),
        fl_nn::Matrix::from_vec(ys.len(), 1, ys).expect("y"),
    )
    .expect("pooled");
    let direct = LocalTrainer::default()
        .evaluate_loss(fed.global(), &pooled)
        .expect("direct");
    assert!(
        (weighted - direct).abs() < 1e-9,
        "weighted {weighted} vs pooled {direct}"
    );
}
