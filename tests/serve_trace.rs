//! End-to-end contract for request tracing and metrics exposition.
//!
//! * A [`fl_serve::ResilientClient`] with tracing enabled stamps every
//!   request with a deterministic trace context; the server answers each
//!   with exactly one physical `trace` event carrying per-stage wall
//!   durations — and the deterministic projection of the log is
//!   untouched by any of it.
//! * Malformed trace contexts are a *request*-level error: structured
//!   `bad_request`, never a panic, never a dropped connection
//!   (proptest-fuzzed).
//! * The trace-id stream is a pure function of the retry seed, so two
//!   identical runs attribute the same ids in the same order.
//! * Under pinned network chaos, retry attempts appear as sibling spans:
//!   same trace id, strictly increasing attempt numbers.
//! * The `metrics` op and the `--metrics-port` scrape listener serve
//!   Prometheus-style exposition (the scrape smoke speaks raw TCP — no
//!   HTTP client involved).

#[path = "serve_common.rs"]
mod common;

use fl_obs::trace::{collect_spans, TraceSpan};
use fl_obs::Recorder;
use fl_rl::snapshot::CheckpointStore;
use fl_serve::protocol::codes;
use fl_serve::{
    trace_id, ChaosModel, ChaosPlan, ChaosProxy, DecisionServer, ResilientClient, RetryPolicy,
    ServeClient, ServeOptions, WireRequest,
};
use proptest::prelude::*;
use serde_json::Value;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Decides per traced workload.
const DECIDES: usize = 16;

/// Starts a server over the shared fixture snapshot with an in-memory
/// recorder (returned for span inspection) and optional extra tuning.
fn traced_server(tag: &str, opts: ServeOptions) -> (DecisionServer, Recorder, Vec<Vec<f64>>) {
    let dir = common::temp_dir(tag);
    let (sys, snap) = common::make_snapshot(31);
    let rows = common::obs_rows(&sys, &common::obs_times(DECIDES));
    let store = CheckpointStore::new(&dir).unwrap();
    snap.save(&store).unwrap();
    let recorder = Recorder::in_memory();
    let opts = ServeOptions {
        recorder: recorder.clone(),
        ..opts
    };
    let server = DecisionServer::start(&dir, "127.0.0.1:0", opts).unwrap();
    (server, recorder, rows)
}

/// The client's retry discipline for these suites: tight, seeded, bounded.
fn policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 30,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(30),
        jitter_frac: 0.5,
        seed,
        budget: Some(Duration::from_secs(20)),
        io_timeout: Some(Duration::from_millis(800)),
    }
}

#[test]
fn traced_decides_emit_one_span_per_request_and_leave_det_projection_alone() {
    let (server, rec, rows) = traced_server("trace-e2e", ServeOptions::default());
    let mut client = ResilientClient::new(server.local_addr(), policy(42)).unwrap();
    client.set_tracing(true);
    for row in &rows {
        client.decide(row).unwrap();
    }
    client.ping().unwrap();
    server.shutdown();

    let text = rec.events_text();
    let spans = collect_spans(&text);
    let decides: Vec<&TraceSpan> = spans.iter().filter(|s| s.op == "decide").collect();
    assert_eq!(decides.len(), DECIDES, "one span per traced decide");
    for (i, span) in decides.iter().enumerate() {
        assert_eq!(span.trace_id, trace_id(42, i as u64), "id stream mismatch");
        assert_eq!(span.attempt, 0, "no retries happened on a clean network");
        assert_eq!(span.outcome, "ok");
        assert_eq!(span.seq, Some(1));
        for stage in ["queue_wait", "batch_linger", "inference", "write"] {
            assert!(
                span.stages_us.contains_key(stage),
                "decide span missing stage {stage}: {span:?}"
            );
        }
        let staged: f64 = span.stages_us.values().sum();
        assert!(
            span.total_us >= 0.0 && staged <= span.total_us * 1.5 + 1.0,
            "stage sum {staged} wildly exceeds total {}",
            span.total_us
        );
    }
    // The ping rode the trace stream too — next id after the decides.
    // Pings never enter the batcher, so the span carries only the
    // end-to-end duration, no per-stage breakdown.
    let ping = spans.iter().find(|s| s.op == "ping").expect("ping span");
    assert_eq!(ping.trace_id, trace_id(42, DECIDES as u64));
    assert_eq!(ping.outcome, "ok");
    assert!(ping.stages_us.is_empty());
    assert!(ping.total_us >= 0.0);

    // Trace events are physical: none of them survives into the
    // deterministic projection.
    let det = fl_obs::det_projection(&text).unwrap();
    assert!(
        det.iter().all(|l| !l.contains("\"ev\":\"trace\"")),
        "trace events leaked into the det projection"
    );
}

#[test]
fn untraced_requests_emit_no_trace_events() {
    let (server, rec, rows) = traced_server("trace-off", ServeOptions::default());
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for row in rows.iter().take(4) {
        client.decide(row).unwrap();
    }
    client.ping().unwrap();
    server.shutdown();
    assert!(
        collect_spans(&rec.events_text()).is_empty(),
        "untraced traffic must not fabricate trace events"
    );
}

#[test]
fn stats_carry_the_stage_summary() {
    let (server, _rec, rows) = traced_server("trace-stats", ServeOptions::default());
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for row in &rows {
        client.decide(row).unwrap();
    }
    let stats = client.stats().unwrap();
    let stages = stats.stages.expect("stats must carry the stage summary");
    // Stage histograms are observed for every decide, traced or not.
    assert_eq!(stages.queue_wait_us.count, DECIDES as u64);
    assert_eq!(stages.inference_us.count, DECIDES as u64);
    assert!(stages.write_us.count >= DECIDES as u64);
    assert_eq!(stages.shed_admission, 0);
    assert_eq!(stages.shed_queue, 0);
    server.shutdown();
}

#[test]
fn metrics_op_serves_prometheus_exposition() {
    let (server, _rec, rows) = traced_server("trace-metrics", ServeOptions::default());
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for row in rows.iter().take(3) {
        client.decide(row).unwrap();
    }
    let text = client.metrics().unwrap();
    assert!(
        text.contains("# TYPE serve_stage_queue_wait_us histogram"),
        "missing stage histogram:\n{text}"
    );
    assert!(text.contains("serve_decisions 3"), "{text}");
    assert!(text.contains("le=\"+Inf\""), "{text}");
    assert!(text.contains("serve_stage_inference_us_count 3"), "{text}");
    server.shutdown();
}

#[test]
fn scrape_listener_answers_http_and_raw_tcp() {
    let opts = ServeOptions {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServeOptions::default()
    };
    let (server, _rec, rows) = traced_server("trace-scrape", opts);
    let addr = server.metrics_addr().expect("scrape listener bound");
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    client.decide(&rows[0]).unwrap();

    // HTTP/1.0-shaped scrape, raw sockets only.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
    assert!(response.contains("Content-Type: text/plain"), "{response}");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or_default();
    assert!(body.contains("serve_decisions 1"), "{body}");
    assert!(body.contains("le=\"+Inf\""), "{body}");

    // A silent raw-TCP peer gets the same snapshot after the read grace.
    let mut mute = TcpStream::connect(addr).unwrap();
    let mut again = String::new();
    mute.read_to_string(&mut again).unwrap();
    assert!(again.starts_with("HTTP/1.0 200 OK\r\n"), "{again}");
    server.shutdown();
}

/// An object-shaped `trace` value built from key/value pairs.
fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<String, Value>>(),
    )
}

/// Draws a trace context that is malformed *by construction* — every
/// variant violates one documented validation rule.
fn draw_malformed_trace(rng: &mut rand_chacha::ChaCha8Rng) -> Value {
    let variant = (0usize..14).sample(rng);
    let num = (-1e9f64..1e9).sample(rng);
    let valid_id = Value::String("aaaa".to_string());
    match variant {
        // Not an object at all.
        0 => Value::Bool((0u64..2).sample(rng) == 1),
        1 => Value::Number(num),
        2 => Value::String(format!("s{}", (0u64..1_000).sample(rng))),
        3 => Value::Array(vec![Value::Number(1.0)]),
        // NB: a bare `null` is NOT malformed — it decodes as "no trace".
        // id missing or of the wrong type.
        4 => obj(vec![("id", Value::Null)]),
        5 => obj(vec![]),
        6 => obj(vec![("id", Value::Number(num))]),
        // id empty, oversized, or with characters outside the allowlist.
        7 => obj(vec![("id", Value::String(String::new()))]),
        8 => obj(vec![(
            "id",
            Value::String("x".repeat((65usize..200).sample(rng))),
        )]),
        9 => obj(vec![(
            "id",
            Value::String(format!("a{} b", (0u64..1_000).sample(rng))),
        )]),
        // attempt negative, fractional, too large, or the wrong type.
        10 => obj(vec![
            ("id", valid_id),
            (
                "attempt",
                Value::Number(-((1u64..1_000).sample(rng) as f64)),
            ),
        ]),
        11 => obj(vec![("id", valid_id), ("attempt", Value::Number(0.5))]),
        12 => obj(vec![
            ("id", valid_id),
            (
                "attempt",
                Value::Number((1_000_001u64..10_000_000).sample(rng) as f64),
            ),
        ]),
        _ => obj(vec![
            ("id", valid_id),
            ("attempt", Value::String("3".to_string())),
        ]),
    }
}

#[test]
fn malformed_trace_is_bad_request_and_the_connection_survives() {
    let (server, _rec, rows) = traced_server("trace-fuzz", ServeOptions::default());
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let client = std::cell::RefCell::new(client);
    proptest::run_proptest(
        &ProptestConfig::with_cases(128),
        "malformed_trace_is_bad_request",
        |rng| {
            let junk = draw_malformed_trace(rng);
            let mut c = client.borrow_mut();
            let request = WireRequest::decide(rows[0].clone()).with_trace(junk.clone());
            let response = c.request(&request).expect("connection must stay usable");
            prop_assert!(!response.ok, "malformed trace accepted: {junk:?}");
            prop_assert_eq!(response.code.as_deref(), Some(codes::BAD_REQUEST));
            // The same connection still serves the next clean decide.
            let (seq, _) = c.decide(&rows[0]).expect("connection must survive");
            prop_assert_eq!(seq, 1);
            Ok(())
        },
    );
    server.shutdown();
}

#[test]
fn trace_id_stream_is_deterministic_across_runs() {
    let run = |tag: &str| -> Vec<(String, u64, String, String, Option<u64>)> {
        let (server, rec, rows) = traced_server(tag, ServeOptions::default());
        let mut client = ResilientClient::new(server.local_addr(), policy(7)).unwrap();
        client.set_tracing(true);
        for row in rows.iter().take(12) {
            client.decide(row).unwrap();
        }
        server.shutdown();
        collect_spans(&rec.events_text())
            .into_iter()
            .map(|s| (s.trace_id, s.attempt, s.op, s.outcome, s.seq))
            .collect()
    };
    let a = run("trace-det-a");
    let b = run("trace-det-b");
    assert_eq!(a, b, "trace structure must replay exactly");
    assert_eq!(a.len(), 12);
    for (i, (id, attempt, op, outcome, seq)) in a.iter().enumerate() {
        assert_eq!(id, &trace_id(7, i as u64));
        assert_eq!((*attempt, op.as_str()), (0, "decide"));
        assert_eq!((outcome.as_str(), *seq), ("ok", Some(1)));
    }
}

#[test]
fn chaos_retries_share_a_trace_id_with_increasing_attempts() {
    let (server, rec, rows) = traced_server("trace-chaos", ServeOptions::default());
    let plan = ChaosPlan::new(
        ChaosModel {
            tear_chunk: 16,
            ..ChaosModel::hostile()
        },
        13,
    );
    let proxy = ChaosProxy::start(server.local_addr(), plan).unwrap();
    let mut client = ResilientClient::new(proxy.local_addr(), policy(42)).unwrap();
    client.set_tracing(true);
    for row in &rows {
        client.decide(row).unwrap();
    }
    assert!(
        client.retries_total() >= 1,
        "pinned chaos seed no longer forces retries — pick another seed"
    );
    server.shutdown();

    let spans = collect_spans(&rec.events_text());
    assert!(!spans.is_empty());
    // Every server-side span belongs to the deterministic id stream the
    // client was issuing.
    let expected: Vec<String> = (0..rows.len() as u64).map(|i| trace_id(42, i)).collect();
    let mut by_trace: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for span in &spans {
        assert!(
            expected.contains(&span.trace_id),
            "span carries an id the client never issued: {span:?}"
        );
        by_trace
            .entry(span.trace_id.as_str())
            .or_default()
            .push(span.attempt);
    }
    // Sibling attempts under one trace arrive in strictly increasing
    // attempt order (chaos may eat attempts, so gaps are fine; going
    // backwards or repeating is not).
    for (id, attempts) in &by_trace {
        assert!(
            attempts.windows(2).all(|w| w[0] < w[1]),
            "trace {id}: attempts not strictly increasing: {attempts:?}"
        );
    }
    // Retries happened, so some attempt past the first reached the server.
    assert!(
        spans.iter().any(|s| s.attempt >= 1),
        "no sibling attempt ever reached the server despite {} retries",
        client.retries_total()
    );
}
