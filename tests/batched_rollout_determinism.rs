//! Batched-rollout determinism suite (integration tier).
//!
//! The parallel trainer can schedule its rollout phase two ways: `PerEnv`
//! (each environment's whole chunk is one pool task that interleaves policy
//! forwards with env steps) and `Batched` (a split-step loop that stacks all
//! live observations into one `[n_envs x obs]` matrix, runs a single frozen
//! forward, then fans the env steps out across the pool). The bit-exactness
//! contract says the choice is *physical*, like the worker count or the
//! kernel family: it may change wall-clock, never bits.
//!
//! This suite proves that end to end:
//!
//! - full `train_drl_parallel` runs are fingerprint-identical across
//!   rollout mode x worker count x kernel family, with and without fault
//!   injection;
//! - a run checkpointed under one rollout mode and resumed under the other
//!   still matches the uninterrupted reference bit for bit (mode is not
//!   serialized in `RunnerState`, so a resume may legally switch modes);
//! - the `FL_ROLLOUT` environment knob resolves exactly as documented.

use fl_ctrl::{
    build_system, train_drl_parallel_opt, CheckpointOptions, EnvConfig, ParallelConfig, RunOptions,
    TrainConfig, TrainOutput,
};
use fl_net::synth::Profile;
use fl_nn::KernelKind;
use fl_rl::runner::RolloutMode;
use fl_rl::PpoConfig;
use fl_sim::{FaultModel, FlConfig, FlSystem};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Serializes tests that touch process-global state (the kernel-kind global
/// and the `FL_ROLLOUT` environment variable).
static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

fn lock_global() -> std::sync::MutexGuard<'static, ()> {
    // A poisoned lock only means another test failed; the global state is
    // still safe to reset, so don't cascade the panic.
    GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn system(seed: u64) -> FlSystem {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    build_system(
        2,
        2,
        Profile::Walking4G,
        1200,
        FlConfig::default(),
        &mut rng,
    )
    .unwrap()
}

fn quick_config(episodes: usize, faults: bool) -> TrainConfig {
    TrainConfig {
        episodes,
        ppo: PpoConfig {
            hidden: vec![16],
            buffer_capacity: 64,
            minibatch_size: 32,
            epochs: 4,
            actor_lr: 1e-3,
            critic_lr: 3e-3,
            target_kl: None,
            ..PpoConfig::default()
        },
        env: EnvConfig {
            episode_len: 8,
            history_len: 3,
            faults: faults.then(|| FaultModel::chaos(0.2, 0.2, Some(120.0))),
            ..EnvConfig::default()
        },
        arch: fl_ctrl::PolicyArch::Joint,
        reward_scale: 0.05,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("fl-rollout-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Bit-exact run fingerprint: every episode-stat field as bits plus the
/// fully serialized agent (parameters, optimizer moments, normalizers).
fn fingerprint(out: &TrainOutput) -> (Vec<[u64; 6]>, String) {
    let eps = out
        .episodes
        .iter()
        .map(|e| {
            [
                e.episode as u64,
                e.mean_cost.to_bits(),
                e.total_reward.to_bits(),
                e.policy_loss.to_bits(),
                e.value_loss.to_bits(),
                e.updates_so_far as u64,
            ]
        })
        .collect();
    (eps, out.agent.to_json().unwrap())
}

fn run_with(
    kind: KernelKind,
    mode: RolloutMode,
    sys: &FlSystem,
    config: &TrainConfig,
    workers: usize,
) -> (Vec<[u64; 6]>, String) {
    assert_eq!(fl_nn::set_kernel_kind(kind), kind);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let par = ParallelConfig { n_envs: 4, workers };
    let opts = RunOptions {
        rollout: Some(mode),
        ..RunOptions::default()
    };
    fingerprint(
        &train_drl_parallel_opt(sys, config, &par, &mut rng, &opts)
            .unwrap()
            .output,
    )
}

/// The headline contract: a full parallel PPO training run produces
/// bit-identical episode stats and a bit-identical final agent whether the
/// rollout phase runs per-env or batched, at every worker count, under both
/// kernel families, with and without fault injection.
#[test]
fn training_is_bit_identical_across_rollout_modes() {
    assert!(fl_nn::naive_kernels_available());
    let _guard = lock_global();
    let before = fl_nn::kernel_kind();
    let sys = system(1);
    for faults in [false, true] {
        let config = quick_config(12, faults);
        let reference = run_with(KernelKind::Blocked, RolloutMode::PerEnv, &sys, &config, 1);
        assert_eq!(reference.0.len(), 12);
        for (kind, mode, workers) in [
            (KernelKind::Blocked, RolloutMode::Batched, 1),
            (KernelKind::Blocked, RolloutMode::Batched, 4),
            (KernelKind::Blocked, RolloutMode::PerEnv, 4),
            (KernelKind::Naive, RolloutMode::Batched, 1),
            (KernelKind::Naive, RolloutMode::Batched, 4),
        ] {
            let got = run_with(kind, mode, &sys, &config, workers);
            assert_eq!(
                got, reference,
                "faults={faults} {kind:?} {mode:?} workers={workers} diverged \
                 from blocked/per-env/1-worker"
            );
        }
    }
    fl_nn::set_kernel_kind(before);
}

/// Rollout-mode invariance composes with crash-safe resume: checkpoint a
/// run under the per-env scheduler, kill it, resume it under the *batched*
/// scheduler, and the completed run still matches the uninterrupted per-env
/// reference bit for bit. This is only possible because the batched path
/// consumes every per-env RNG stream at exactly the same positions the
/// per-env path does, so the serialized streams line up at the boundary.
#[test]
fn resume_across_rollout_mode_switch_is_bit_identical() {
    let _guard = lock_global();
    let before = fl_nn::kernel_kind();
    assert_eq!(
        fl_nn::set_kernel_kind(KernelKind::Blocked),
        KernelKind::Blocked
    );
    let sys = system(2);
    let config = quick_config(12, false);
    let par = ParallelConfig {
        n_envs: 4,
        workers: 2,
    };

    let reference = {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let opts = RunOptions {
            rollout: Some(RolloutMode::PerEnv),
            ..RunOptions::default()
        };
        fingerprint(
            &train_drl_parallel_opt(&sys, &config, &par, &mut rng, &opts)
                .unwrap()
                .output,
        )
    };

    let dir = temp_dir("switch");
    let ckpt = |mode: RolloutMode, stop: Option<usize>| RunOptions {
        checkpoint: Some(CheckpointOptions {
            dir: dir.clone(),
            every_episodes: 3,
            resume: true,
        }),
        stop_after_episodes: stop,
        rollout: Some(mode),
        ..RunOptions::default()
    };

    // First half scheduled per-env...
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let first = train_drl_parallel_opt(
        &sys,
        &config,
        &par,
        &mut rng,
        &ckpt(RolloutMode::PerEnv, Some(6)),
    )
    .unwrap();
    assert!(first.output.episodes.len() < 12, "should be interrupted");

    // ...resumed to completion with the batched scheduler.
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let resumed = train_drl_parallel_opt(
        &sys,
        &config,
        &par,
        &mut rng,
        &ckpt(RolloutMode::Batched, None),
    )
    .unwrap();
    fl_nn::set_kernel_kind(before);

    assert_eq!(
        fingerprint(&resumed.output),
        reference,
        "rollout-mode switch across a kill/resume boundary changed the run"
    );
}

/// `FL_ROLLOUT` resolves exactly as documented: the per-env spellings pick
/// `PerEnv`, everything else (including unset) defaults to `Batched`.
#[test]
fn rollout_mode_env_resolution() {
    let _guard = lock_global();
    let saved = std::env::var("FL_ROLLOUT").ok();

    for spelling in ["per-env", "per_env", "perenv", "PerEnv", "PER-ENV"] {
        std::env::set_var("FL_ROLLOUT", spelling);
        assert_eq!(
            RolloutMode::from_env(),
            RolloutMode::PerEnv,
            "FL_ROLLOUT={spelling}"
        );
    }
    for spelling in ["batched", "Batched", "", "anything-else"] {
        std::env::set_var("FL_ROLLOUT", spelling);
        assert_eq!(
            RolloutMode::from_env(),
            RolloutMode::Batched,
            "FL_ROLLOUT={spelling}"
        );
    }
    std::env::remove_var("FL_ROLLOUT");
    assert_eq!(RolloutMode::from_env(), RolloutMode::Batched, "unset");

    match saved {
        Some(v) => std::env::set_var("FL_ROLLOUT", v),
        None => std::env::remove_var("FL_ROLLOUT"),
    }
}
