//! Bit-determinism suite: a frequency served over the wire is
//! bit-identical to evaluating `DrlController::decide` in-process on the
//! same snapshot — across kernel backends (`FL_KERNEL={blocked,naive}`)
//! and across micro-batch sizes {1, 7, 32}.
//!
//! Three properties compose to make this hold by construction, and this
//! suite is the end-to-end check that they actually do:
//!
//! 1. the blocked kernels compute each output element with a row-count
//!    independent IEEE-754 op sequence (fl-nn's conformance suite),
//! 2. the Welford normalizer is per-element (row-independent),
//! 3. JSON round-trips finite f64 bit-exactly (shortest-round-trip
//!    printing in the vendored serde).

#[path = "serve_common.rs"]
mod common;

use fl_ctrl::FrequencyController;
use fl_nn::{kernel_kind, naive_kernels_available, set_kernel_kind, KernelKind};
use fl_rl::snapshot::CheckpointStore;
use fl_serve::{DecisionServer, ServeClient, ServeOptions};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// In-process reference decisions at the given trace times, under the
/// currently selected kernel.
fn reference_freqs(
    sys: &fl_sim::FlSystem,
    snap: &fl_ctrl::ControllerSnapshot,
    times: &[f64],
) -> Vec<Vec<f64>> {
    let mut ctrl = snap.controller.clone();
    times
        .iter()
        .map(|&t| ctrl.decide(0, t, sys, None).unwrap())
        .collect()
}

fn assert_bits_eq(served: &[f64], expected: &[f64], ctx: &str) {
    assert_eq!(served.len(), expected.len(), "{ctx}: length");
    for (i, (s, e)) in served.iter().zip(expected).enumerate() {
        assert_eq!(
            s.to_bits(),
            e.to_bits(),
            "{ctx}: device {i}: served {s:?} != in-process {e:?}"
        );
    }
}

/// Fires `n` concurrent decide requests through their own connections
/// (barrier-released so they land inside one linger window) and checks
/// every response bit-wise against its in-process reference.
fn hammer_batch(server: &DecisionServer, rows: &[Vec<f64>], expected: &[Vec<f64>], ctx: &str) {
    let n = rows.len();
    let barrier = Arc::new(Barrier::new(n));
    let addr = server.local_addr();
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let row = rows[i].clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                barrier.wait();
                client.decide(&row).unwrap()
            })
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let (seq, freqs) = h.join().unwrap();
        assert_eq!(seq, 1, "{ctx}: request {i} served by wrong snapshot");
        assert_bits_eq(&freqs, &expected[i], &format!("{ctx}: request {i}"));
    }
}

/// The full matrix in one test: the kernel selector is process-global, so
/// the two backends must run sequentially, not as concurrent #[test]s.
#[test]
fn served_bits_match_in_process_across_kernels_and_batch_sizes() {
    let (sys, snap) = common::make_snapshot(21);
    let dir = common::temp_dir("det");
    let store = CheckpointStore::new(&dir).unwrap();
    snap.save(&store).unwrap();
    let times = common::obs_times(32);
    let rows = common::obs_rows(&sys, &times);

    let mut kinds = vec![KernelKind::Blocked];
    if naive_kernels_available() {
        kinds.push(KernelKind::Naive);
    } else {
        eprintln!("serve_determinism: naive kernels compiled out; blocked only");
    }
    let original = kernel_kind();
    for kind in kinds {
        set_kernel_kind(kind);
        // References computed under the same kernel the server will use.
        let expected = reference_freqs(&sys, &snap, &times);
        let opts = ServeOptions {
            // A generous linger so barrier-released bursts coalesce into
            // real micro-batches.
            linger: Duration::from_millis(100),
            max_batch: 32,
            ..ServeOptions::default()
        };
        let server = DecisionServer::start(&dir, "127.0.0.1:0", opts).unwrap();
        for &n in &[1usize, 7, 32] {
            hammer_batch(
                &server,
                &rows[..n],
                &expected[..n],
                &format!("kernel {kind:?}, batch {n}"),
            );
        }
        let stats = server.shutdown();
        assert!(
            stats.max_batch_observed >= 2,
            "kernel {kind:?}: micro-batching never engaged (max batch {})",
            stats.max_batch_observed
        );
        assert_eq!(stats.decisions, 1 + 7 + 32, "kernel {kind:?}");
    }
    set_kernel_kind(original);
}

/// Mixed-size sequential traffic on one connection: every answer equals
/// its singleton in-process reference regardless of what batches formed
/// around it.
#[test]
fn sequential_traffic_is_batch_size_invariant() {
    let (sys, snap) = common::make_snapshot(22);
    let dir = common::temp_dir("seq");
    let store = CheckpointStore::new(&dir).unwrap();
    snap.save(&store).unwrap();
    let times = common::obs_times(16);
    let rows = common::obs_rows(&sys, &times);
    let expected = reference_freqs(&sys, &snap, &times);

    let server = DecisionServer::start(&dir, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    for (i, row) in rows.iter().enumerate() {
        let (seq, freqs) = client.decide(row).unwrap();
        assert_eq!(seq, 1);
        assert_bits_eq(&freqs, &expected[i], &format!("sequential request {i}"));
    }
    // And the batched entry point agrees with the served bits directly.
    let batched = snap.decide_rows(&rows).unwrap();
    for (i, b) in batched.iter().enumerate() {
        assert_bits_eq(b, &expected[i], &format!("decide_rows row {i}"));
    }
}
