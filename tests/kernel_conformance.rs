//! Differential kernel-conformance suite: the blocked fast kernels must be
//! **bit-identical** to the streaming reference kernels on every shape and
//! every input — including NaN/Inf/signed-zero (NaN payload bits excepted;
//! see [`bits`]) — and swapping kernel families mid-training (even across a
//! kill/resume boundary) must not move a single bit of a training run.
//!
//! Strategy: every linear-algebra kernel pair (`matmul`, `matmul_tn`,
//! `matmul_nt`, fused `matmul_add_bias`, `transpose`, `axpy`,
//! `add_row_broadcast`) is compared with `f64::to_bits` equality over
//! proptest-drawn shapes (degenerate `0xN` / `Nx0` / `1xN` included) and
//! special-value injections; golden hand-computed products pin absolute
//! values; and full `train_drl_parallel` runs are fingerprinted under both
//! `KernelKind`s at 1 and 4 workers, with and without fault injection.
//!
//! The pool-parallel extension: the row-split GEMM path is forced at
//! explicit worker counts (1/2/4/8) via `matmul_par_with_workers` /
//! `matmul_nt_par_with_workers` and compared bitwise against the serial
//! kernels on shapes straddling the dispatch threshold, the threshold edge
//! itself is pinned as a pure function of shape, and batched-forward row
//! independence (the batched-rollout contract) gets a hand-computed golden.

use fl_ctrl::{
    build_system, train_drl_parallel, train_drl_parallel_opt, CheckpointOptions, EnvConfig,
    ParallelConfig, RunOptions, TrainConfig, TrainOutput,
};
use fl_net::synth::Profile;
use fl_nn::{KernelKind, Matrix};
use fl_rl::PpoConfig;
use fl_sim::{FaultModel, FlConfig, FlSystem};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Serializes tests that flip the process-global kernel selection. The
/// differential property tests below use the explicit `*_with` APIs and are
/// unaffected; only the end-to-end fingerprint tests contend here.
static KERNEL_LOCK: Mutex<()> = Mutex::new(());

fn lock_kernel() -> std::sync::MutexGuard<'static, ()> {
    // A failed assertion in another test poisons the mutex; the lock only
    // serializes access, so the poison flag itself is irrelevant.
    KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Shape + per-element bits: NaN-safe equality for matrices.
///
/// NaN *payloads* are canonicalized before comparison: IEEE-754 leaves
/// payload propagation unspecified, and LLVM freely commutes `fadd`/`fmul`
/// operands at -O3, so two compilations of the *same* source can pick
/// different payload/sign bits when both addends are NaN (SSE keeps the
/// first operand's payload). The contract is therefore: NaN-ness itself
/// must agree per element, and every non-NaN value must match to the bit.
fn bits(m: &Matrix) -> (usize, usize, Vec<u64>) {
    (
        m.rows(),
        m.cols(),
        m.data()
            .iter()
            .map(|v| {
                if v.is_nan() {
                    f64::NAN.to_bits()
                } else {
                    v.to_bits()
                }
            })
            .collect(),
    )
}

/// Draws a dimension favoring small and degenerate shapes but reaching 64
/// (the exact parallel-dispatch threshold for a cubic matmul).
fn dim(rng: &mut ChaCha8Rng) -> usize {
    match rng.gen_range(0..10u32) {
        0 => 0,
        1 => 1,
        2..=7 => rng.gen_range(2..=24),
        _ => rng.gen_range(25..=64),
    }
}

const SPECIALS: [f64; 5] = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0];

/// Random matrix; with `specials`, ~15% of entries are NaN/±Inf/±0 to
/// exercise the IEEE edge semantics of the zero-skip rule.
fn rand_matrix(rng: &mut ChaCha8Rng, r: usize, c: usize, specials: bool) -> Matrix {
    Matrix::from_fn(r, c, |_, _| {
        if specials && rng.gen_range(0..100u32) < 15 {
            SPECIALS[rng.gen_range(0..SPECIALS.len())]
        } else {
            rng.gen_range(-3.0..3.0)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `matmul`: blocked == naive, bit for bit, serial and (row-split)
    /// parallel, on arbitrary shapes with special values.
    #[test]
    fn prop_matmul_families_bit_identical(seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (m, k, n) = (dim(&mut rng), dim(&mut rng), dim(&mut rng));
        let specials = seed % 2 == 0;
        let a = rand_matrix(&mut rng, m, k, specials);
        let b = rand_matrix(&mut rng, k, n, specials);
        let naive = a.matmul_with(&b, KernelKind::Naive, false).unwrap();
        for parallel in [false, true] {
            let blocked = a.matmul_with(&b, KernelKind::Blocked, parallel).unwrap();
            prop_assert!(bits(&blocked) == bits(&naive), "{}x{}x{} specials={} parallel={}", m, k, n, specials, parallel
            );
        }
    }

    /// Fused `matmul_add_bias`: bit-identical to the unfused
    /// `matmul` + `add_row_broadcast` composition, in both families.
    #[test]
    fn prop_fused_bias_families_bit_identical(seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (m, k, n) = (dim(&mut rng), dim(&mut rng), dim(&mut rng));
        let specials = seed % 2 == 0;
        let a = rand_matrix(&mut rng, m, k, specials);
        let b = rand_matrix(&mut rng, k, n, specials);
        let bias = rand_matrix(&mut rng, 1, n, specials).into_data();
        let mut unfused = a.matmul_with(&b, KernelKind::Naive, false).unwrap();
        unfused.naive_add_row_broadcast(&bias).unwrap();
        for kind in [KernelKind::Blocked, KernelKind::Naive] {
            let fused = a.matmul_add_bias_with(&b, &bias, kind).unwrap();
            prop_assert!(bits(&fused) == bits(&unfused), "{}x{}x{} specials={} {:?}", m, k, n, specials, kind
            );
        }
    }

    /// `matmul_tn`: blocked == naive == explicit-transpose matmul, bitwise.
    /// The last leg pins the contract that `a^T * b` computed without
    /// materializing `a^T` accumulates in the same order as the
    /// materialized form.
    #[test]
    fn prop_matmul_tn_families_bit_identical(seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (k, m, n) = (dim(&mut rng), dim(&mut rng), dim(&mut rng));
        let specials = seed % 2 == 0;
        let a = rand_matrix(&mut rng, k, m, specials);
        let b = rand_matrix(&mut rng, k, n, specials);
        let naive = a.naive_matmul_tn(&b).unwrap();
        let blocked = a.matmul_tn_with(&b, KernelKind::Blocked).unwrap();
        prop_assert!(bits(&blocked) == bits(&naive), "{}x{}x{} specials={}", k, m, n, specials);
        let via_transpose = a.transpose().matmul_with(&b, KernelKind::Blocked, false).unwrap();
        prop_assert!(bits(&blocked) == bits(&via_transpose), "tn vs transpose-matmul");
    }

    /// `matmul_nt`: blocked == naive, bitwise.
    #[test]
    fn prop_matmul_nt_families_bit_identical(seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (m, k, n) = (dim(&mut rng), dim(&mut rng), dim(&mut rng));
        let specials = seed % 2 == 0;
        let a = rand_matrix(&mut rng, m, k, specials);
        let b = rand_matrix(&mut rng, n, k, specials);
        let naive = a.naive_matmul_nt(&b).unwrap();
        let blocked = a.matmul_nt_with(&b, KernelKind::Blocked).unwrap();
        prop_assert!(bits(&blocked) == bits(&naive), "{}x{}x{} specials={}", m, k, n, specials);
    }

    /// Blocked `transpose`: a pure permutation — involution restores the
    /// exact bits, and it agrees with the element-wise reference copy.
    #[test]
    fn prop_transpose_blocked_is_exact_permutation(seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (m, n) = (dim(&mut rng), dim(&mut rng));
        let a = rand_matrix(&mut rng, m, n, true);
        prop_assert!(bits(&a.transpose()) == bits(&a.naive_transpose()), "{}x{}", m, n);
        prop_assert!(bits(&a.transpose().transpose()) == bits(&a), "involution {}x{}", m, n);
    }

    /// Unrolled `axpy` and `chunks_exact` `add_row_broadcast`: bit-identical
    /// to their element-wise reference forms on every shape and input.
    #[test]
    fn prop_axpy_and_broadcast_match_reference(seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (m, n) = (dim(&mut rng), dim(&mut rng));
        let alpha = if seed % 4 == 0 {
            SPECIALS[rng.gen_range(0..SPECIALS.len())]
        } else {
            rng.gen_range(-2.0..2.0)
        };
        let base = rand_matrix(&mut rng, m, n, true);
        let other = rand_matrix(&mut rng, m, n, true);
        let bias = rand_matrix(&mut rng, 1, n, true).into_data();

        let mut fast = base.clone();
        fast.axpy(alpha, &other).unwrap();
        let mut reference = base.clone();
        reference.naive_axpy(alpha, &other).unwrap();
        prop_assert!(bits(&fast) == bits(&reference), "axpy {}x{} alpha={}", m, n, alpha);

        let mut fast = base.clone();
        fast.add_row_broadcast(&bias).unwrap();
        let mut reference = base.clone();
        reference.naive_add_row_broadcast(&bias).unwrap();
        prop_assert!(bits(&fast) == bits(&reference), "broadcast {}x{}", m, n);
    }
}

/// Draws a dimension that frequently lands at or above the parallel
/// threshold (64..=80 — `64³ = 2^18` is exactly the cutoff), so the pool
/// path row-splits into non-trivial chunks, while still visiting
/// degenerate and tiny shapes.
fn dim_par(rng: &mut ChaCha8Rng) -> usize {
    match rng.gen_range(0..5u32) {
        0 => rng.gen_range(0..=2),
        1 => rng.gen_range(3..=32),
        2 => rng.gen_range(33..=63),
        _ => rng.gen_range(64..=80),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Row-split pool parallelism is bit-invariant: for both kernel
    /// families, forcing the pool path at 1/2/4/8 workers reproduces the
    /// serial kernels' bits exactly — on shapes below, at, and above the
    /// dispatch threshold, with NaN/Inf/±0 injection.
    #[test]
    fn prop_parallel_matmul_any_worker_count_bit_identical(seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA5A5_0000);
        let (m, k, n) = (dim_par(&mut rng), dim_par(&mut rng), dim_par(&mut rng));
        let specials = seed % 2 == 0;
        let a = rand_matrix(&mut rng, m, k, specials);
        let b = rand_matrix(&mut rng, k, n, specials);
        let serial = a.matmul_with(&b, KernelKind::Blocked, false).unwrap();
        prop_assert!(bits(&serial) == bits(&a.matmul_with(&b, KernelKind::Naive, false).unwrap()));
        for kind in [KernelKind::Blocked, KernelKind::Naive] {
            for workers in [1usize, 2, 4, 8] {
                let par = a.matmul_par_with_workers(&b, kind, workers).unwrap();
                prop_assert!(
                    bits(&par) == bits(&serial),
                    "{}x{}x{} specials={} {:?} workers={}", m, k, n, specials, kind, workers
                );
            }
        }
    }

    /// The same sweep for `matmul_nt` — the *no-skip* family, where a
    /// `0·∞` term must manufacture the same NaN in every row chunk.
    #[test]
    fn prop_parallel_matmul_nt_any_worker_count_bit_identical(seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5A5A_0000);
        let (m, k, n) = (dim_par(&mut rng), dim_par(&mut rng), dim_par(&mut rng));
        let specials = seed % 2 == 0;
        let a = rand_matrix(&mut rng, m, k, specials);
        let b = rand_matrix(&mut rng, n, k, specials);
        let serial = a.matmul_nt_with(&b, KernelKind::Blocked).unwrap();
        prop_assert!(bits(&serial) == bits(&a.naive_matmul_nt(&b).unwrap()));
        for kind in [KernelKind::Blocked, KernelKind::Naive] {
            for workers in [1usize, 2, 4, 8] {
                let par = a.matmul_nt_par_with_workers(&b, kind, workers).unwrap();
                prop_assert!(
                    bits(&par) == bits(&serial),
                    "nt {}x{}x{} specials={} {:?} workers={}", m, k, n, specials, kind, workers
                );
            }
        }
    }
}

/// The parallel-dispatch decision is a pure function of the shape — never
/// of core count or `FL_WORKERS` — so a matrix exactly at the cutoff picks
/// the same path on every machine and under every pool width. `64³ = 2^18`
/// is exactly the threshold.
#[test]
fn parallel_dispatch_threshold_edge_is_deterministic() {
    // Exactly at the cutoff: parallel.
    assert!(Matrix::parallel_dispatch(64, 64, 64));
    // One short of the cutoff product in any dimension: serial.
    assert!(!Matrix::parallel_dispatch(63, 64, 64));
    assert!(!Matrix::parallel_dispatch(64, 63, 64));
    assert!(!Matrix::parallel_dispatch(64, 64, 63));
    // A single row can never split, no matter how heavy.
    assert!(!Matrix::parallel_dispatch(1, 1 << 20, 1 << 20));
    // Two rows qualify exactly when the flop product reaches the threshold.
    assert!(Matrix::parallel_dispatch(2, 512, 256));
    assert!(!Matrix::parallel_dispatch(2, 512, 255));
    // Degenerate shapes never dispatch; enormous ones saturate, not wrap.
    assert!(!Matrix::parallel_dispatch(0, 1 << 20, 1 << 20));
    assert!(Matrix::parallel_dispatch(usize::MAX, usize::MAX, 2));

    // At the exact edge, the chosen path is bit-invariant anyway: the auto
    // path (whatever `FL_WORKERS` resolves to on this host) equals the
    // forced-serial kernel and every forced pool width, in both families.
    let mut rng = ChaCha8Rng::seed_from_u64(64);
    let a = rand_matrix(&mut rng, 64, 64, true);
    let b = rand_matrix(&mut rng, 64, 64, true);
    let serial = a.matmul_with(&b, KernelKind::Blocked, false).unwrap();
    let auto = a.matmul_with(&b, KernelKind::Blocked, true).unwrap();
    assert_eq!(bits(&auto), bits(&serial));
    for kind in [KernelKind::Blocked, KernelKind::Naive] {
        for workers in [1usize, 2, 4, 8] {
            let par = a.matmul_par_with_workers(&b, kind, workers).unwrap();
            assert_eq!(bits(&par), bits(&serial), "{kind:?} workers={workers}");
        }
    }
}

/// Batched-forward row independence, pinned with a hand-computed golden:
/// `[1, 2] · [[7,8,9],[10,11,12]] = [27, 30, 33]`. A row's output bits are
/// identical whether it sits in a batch of 1, 7, or 32 rows — serial or
/// pool-parallel, both families. This is the property that lets the
/// batched rollout stack per-environment observations into one forward
/// without changing trained bits.
#[test]
fn golden_batched_forward_is_row_independent() {
    let b = Matrix::from_vec(2, 3, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
    let golden_row = [27.0, 30.0, 33.0];
    let single = Matrix::from_vec(1, 2, vec![1.0, 2.0])
        .unwrap()
        .matmul_with(&b, KernelKind::Blocked, false)
        .unwrap();
    assert_eq!(single.data(), &golden_row);

    for batch_rows in [1usize, 7, 32] {
        // The golden row sits mid-batch, surrounded by varied filler rows
        // (including special values) that must not perturb it.
        let mid = batch_rows / 2;
        let a = Matrix::from_fn(batch_rows, 2, |r, c| {
            if r == mid {
                [1.0, 2.0][c]
            } else if r % 5 == 3 {
                SPECIALS[(r + c) % SPECIALS.len()]
            } else {
                (r * 2 + c) as f64 * 0.37 - 1.0
            }
        });
        for kind in [KernelKind::Blocked, KernelKind::Naive] {
            for workers in [1usize, 4] {
                let out = a.matmul_par_with_workers(&b, kind, workers).unwrap();
                assert_eq!(
                    out.row(mid),
                    &golden_row,
                    "{kind:?} workers={workers} batch={batch_rows}"
                );
                // Every row equals its batch-of-one product, bitwise.
                for r in 0..batch_rows {
                    let one = Matrix::from_vec(1, 2, a.row(r).to_vec())
                        .unwrap()
                        .matmul_with(&b, kind, false)
                        .unwrap();
                    let one_bits = bits(&one).2;
                    let row_bits: Vec<u64> = out
                        .row(r)
                        .iter()
                        .map(|v| {
                            if v.is_nan() {
                                f64::NAN.to_bits()
                            } else {
                                v.to_bits()
                            }
                        })
                        .collect();
                    assert_eq!(
                        row_bits, one_bits,
                        "{kind:?} workers={workers} batch={batch_rows} row {r}"
                    );
                }
            }
        }
    }
}

/// The zero-skip rule is *semantics*, not an optimization: a literal `0.0`
/// in the left operand suppresses its term entirely, so `0 * Inf` never
/// manufactures a NaN — in either family, identically.
#[test]
fn zero_skip_semantics_are_identical_across_families() {
    let a = Matrix::from_vec(1, 2, vec![0.0, 2.0]).unwrap();
    let b = Matrix::from_vec(2, 1, vec![f64::INFINITY, 3.0]).unwrap();
    for parallel in [false, true] {
        let blocked = a.matmul_with(&b, KernelKind::Blocked, parallel).unwrap();
        assert_eq!(blocked.get(0, 0), 6.0, "0*Inf term must be skipped");
    }
    let naive = a.matmul_with(&b, KernelKind::Naive, false).unwrap();
    assert_eq!(naive.get(0, 0), 6.0);

    // The skip is on the left operand only: Inf on the left with 0.0 on the
    // right *does* produce NaN, in both families.
    let a = Matrix::from_vec(1, 1, vec![f64::INFINITY]).unwrap();
    let b = Matrix::from_vec(1, 1, vec![0.0]).unwrap();
    let blocked = a.matmul_with(&b, KernelKind::Blocked, false).unwrap();
    let naive = a.matmul_with(&b, KernelKind::Naive, false).unwrap();
    assert!(blocked.get(0, 0).is_nan());
    assert_eq!(bits(&blocked), bits(&naive));

    // Signed zero: an all-zero (skipped) row yields the +0.0 of the zeroed
    // output buffer, never -0.0, in both families.
    let a = Matrix::from_vec(1, 1, vec![0.0]).unwrap();
    let b = Matrix::from_vec(1, 1, vec![-0.0]).unwrap();
    let blocked = a.matmul_with(&b, KernelKind::Blocked, false).unwrap();
    let naive = a.matmul_with(&b, KernelKind::Naive, false).unwrap();
    assert_eq!(blocked.get(0, 0).to_bits(), 0.0f64.to_bits());
    assert_eq!(bits(&blocked), bits(&naive));
}

/// Hand-computed golden products: exact integer-valued f64 constants, no
/// tolerance. Both kernel families must hit them exactly.
#[test]
fn golden_matmul_and_fused_bias() {
    let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
    let b = Matrix::from_vec(2, 3, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
    let expected = [27.0, 30.0, 33.0, 61.0, 68.0, 75.0, 95.0, 106.0, 117.0];
    let bias = [0.5, -1.5, 2.5];
    let expected_biased = [
        27.5, 28.5, 35.5, //
        61.5, 66.5, 77.5, //
        95.5, 104.5, 119.5,
    ];
    for kind in [KernelKind::Blocked, KernelKind::Naive] {
        let c = a.matmul_with(&b, kind, false).unwrap();
        assert_eq!(c.data(), &expected, "{kind:?}");
        let cb = a.matmul_add_bias_with(&b, &bias, kind).unwrap();
        assert_eq!(cb.data(), &expected_biased, "{kind:?} fused");
    }
}

/// Golden `matmul_tn` / `matmul_nt` pair on the same left operand.
#[test]
fn golden_matmul_tn_nt() {
    let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();

    // a^T (3x2) * b (2x2)
    let b = Matrix::from_vec(2, 2, vec![7.0, 8.0, 9.0, 10.0]).unwrap();
    let expected_tn = [43.0, 48.0, 59.0, 66.0, 75.0, 84.0];

    // a (2x3) * c^T (3x2)
    let c = Matrix::from_vec(2, 3, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
    let expected_nt = [50.0, 68.0, 122.0, 167.0];

    for kind in [KernelKind::Blocked, KernelKind::Naive] {
        assert_eq!(
            a.matmul_tn_with(&b, kind).unwrap().data(),
            &expected_tn,
            "{kind:?} tn"
        );
        assert_eq!(
            a.matmul_nt_with(&c, kind).unwrap().data(),
            &expected_nt,
            "{kind:?} nt"
        );
    }
}

// ---------------------------------------------------------------------------
// End-to-end: whole training runs are kernel-family invariant.
// ---------------------------------------------------------------------------

fn system(seed: u64) -> FlSystem {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    build_system(
        2,
        2,
        Profile::Walking4G,
        1200,
        FlConfig::default(),
        &mut rng,
    )
    .unwrap()
}

fn quick_config(episodes: usize, faults: bool) -> TrainConfig {
    TrainConfig {
        episodes,
        ppo: PpoConfig {
            hidden: vec![16],
            buffer_capacity: 64,
            minibatch_size: 32,
            epochs: 4,
            actor_lr: 1e-3,
            critic_lr: 3e-3,
            target_kl: None,
            ..PpoConfig::default()
        },
        env: EnvConfig {
            episode_len: 8,
            history_len: 3,
            faults: faults.then(|| FaultModel::chaos(0.2, 0.2, Some(120.0))),
            ..EnvConfig::default()
        },
        arch: fl_ctrl::PolicyArch::Joint,
        reward_scale: 0.05,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("fl-kernel-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Bit-exact run fingerprint: every episode-stat field as bits plus the
/// fully serialized agent (parameters, optimizer moments, normalizers).
fn fingerprint(out: &TrainOutput) -> (Vec<[u64; 6]>, String) {
    let eps = out
        .episodes
        .iter()
        .map(|e| {
            [
                e.episode as u64,
                e.mean_cost.to_bits(),
                e.total_reward.to_bits(),
                e.policy_loss.to_bits(),
                e.value_loss.to_bits(),
                e.updates_so_far as u64,
            ]
        })
        .collect();
    (eps, out.agent.to_json().unwrap())
}

fn run_under(
    kind: KernelKind,
    sys: &FlSystem,
    config: &TrainConfig,
    workers: usize,
) -> (Vec<[u64; 6]>, String) {
    assert_eq!(fl_nn::set_kernel_kind(kind), kind);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let par = ParallelConfig { n_envs: 4, workers };
    fingerprint(
        &train_drl_parallel(sys, config, &par, &mut rng)
            .unwrap()
            .output,
    )
}

/// The headline contract: a full parallel PPO training run — rollouts,
/// updates, normalizers, fault injection and all — produces bit-identical
/// episode stats and a bit-identical final agent under the blocked and
/// naive kernels, at every worker count.
#[test]
fn training_is_bit_identical_across_kernel_families() {
    assert!(fl_nn::naive_kernels_available());
    let _guard = lock_kernel();
    let before = fl_nn::kernel_kind();
    let sys = system(1);
    for faults in [false, true] {
        let config = quick_config(12, faults);
        let reference = run_under(KernelKind::Blocked, &sys, &config, 1);
        assert_eq!(reference.0.len(), 12);
        for (kind, workers) in [
            (KernelKind::Blocked, 4),
            (KernelKind::Naive, 1),
            (KernelKind::Naive, 4),
        ] {
            let got = run_under(kind, &sys, &config, workers);
            assert_eq!(
                got, reference,
                "faults={faults} {kind:?} workers={workers} diverged from blocked/1-worker"
            );
        }
    }
    fl_nn::set_kernel_kind(before);
}

/// Kernel invariance composes with crash-safe resume: checkpoint a run
/// under the blocked kernels, kill it, resume it under the *naive* kernels,
/// and the completed run still matches the uninterrupted blocked reference
/// bit for bit.
#[test]
fn resume_across_kernel_switch_is_bit_identical() {
    let _guard = lock_kernel();
    let before = fl_nn::kernel_kind();
    let sys = system(2);
    let config = quick_config(12, false);
    let par = ParallelConfig {
        n_envs: 4,
        workers: 2,
    };

    let reference = {
        assert_eq!(
            fl_nn::set_kernel_kind(KernelKind::Blocked),
            KernelKind::Blocked
        );
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        fingerprint(
            &train_drl_parallel(&sys, &config, &par, &mut rng)
                .unwrap()
                .output,
        )
    };

    let dir = temp_dir("switch");
    let ckpt = |stop: Option<usize>| RunOptions {
        checkpoint: Some(CheckpointOptions {
            dir: dir.clone(),
            every_episodes: 3,
            resume: true,
        }),
        stop_after_episodes: stop,
        ..RunOptions::default()
    };

    // First half under the blocked kernels...
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let first = train_drl_parallel_opt(&sys, &config, &par, &mut rng, &ckpt(Some(6))).unwrap();
    assert!(first.output.episodes.len() < 12, "should be interrupted");

    // ...resumed to completion under the naive kernels.
    assert_eq!(fl_nn::set_kernel_kind(KernelKind::Naive), KernelKind::Naive);
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let resumed = train_drl_parallel_opt(&sys, &config, &par, &mut rng, &ckpt(None)).unwrap();
    fl_nn::set_kernel_kind(before);

    assert_eq!(
        fingerprint(&resumed.output),
        reference,
        "kernel switch across a kill/resume boundary changed the run"
    );
}
