//! The crash-safe training contract, tested end to end: interrupt a
//! checkpointed training run anywhere — any quartile, any worker count,
//! with or without fault injection — resume it, and the result must be
//! **bit-identical** to the run that was never interrupted: same
//! per-episode stats, same final agent (every parameter, optimizer moment,
//! and normalizer statistic), same controller. Plus the failure half of the
//! story: corrupted checkpoint slots fall back or fail with structured
//! errors, and the NaN-poison supervisor heals a poisoned run without
//! breaking determinism.

use fl_ctrl::{
    build_system, train_drl_opt, train_drl_parallel, train_drl_parallel_opt, CheckpointOptions,
    CtrlError, DivergenceCause, EnvConfig, ParallelConfig, RunOptions, SupervisorPolicy,
    TrainConfig, TrainOutput,
};
use fl_net::synth::Profile;
use fl_rl::snapshot::CheckpointStore;
use fl_rl::PpoConfig;
use fl_sim::{FaultModel, FlConfig, FlSystem};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn system(seed: u64) -> FlSystem {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    build_system(
        2,
        2,
        Profile::Walking4G,
        1200,
        FlConfig::default(),
        &mut rng,
    )
    .unwrap()
}

fn quick_config(episodes: usize, faults: bool) -> TrainConfig {
    TrainConfig {
        episodes,
        ppo: PpoConfig {
            hidden: vec![16],
            buffer_capacity: 64,
            minibatch_size: 32,
            epochs: 4,
            actor_lr: 1e-3,
            critic_lr: 3e-3,
            target_kl: None,
            ..PpoConfig::default()
        },
        env: EnvConfig {
            episode_len: 8,
            history_len: 3,
            faults: faults.then(|| FaultModel::chaos(0.2, 0.2, Some(120.0))),
            ..EnvConfig::default()
        },
        arch: fl_ctrl::PolicyArch::Joint,
        reward_scale: 0.05,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("fl-resume-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ckpt_opts(dir: &std::path::Path, every: usize) -> RunOptions {
    RunOptions {
        checkpoint: Some(CheckpointOptions {
            dir: dir.to_path_buf(),
            every_episodes: every,
            resume: true,
        }),
        ..RunOptions::default()
    }
}

/// Everything observable from a finished run, bit-exact: every
/// [`fl_ctrl::EpisodeStats`] field as bits (NaN-safe) plus the complete
/// serialized agent (parameters, optimizer moments, normalizer counts).
fn fingerprint(out: &TrainOutput) -> (Vec<[u64; 6]>, String) {
    let eps = out
        .episodes
        .iter()
        .map(|e| {
            [
                e.episode as u64,
                e.mean_cost.to_bits(),
                e.total_reward.to_bits(),
                e.policy_loss.to_bits(),
                e.value_loss.to_bits(),
                e.updates_so_far as u64,
            ]
        })
        .collect();
    (eps, out.agent.to_json().unwrap())
}

/// Runs parallel training to completion in `segments` chained processes:
/// each run stops cleanly after its quota (simulating a kill between
/// rounds), the next resumes from disk. Returns the final fingerprint.
fn chained_parallel(
    sys: &FlSystem,
    config: &TrainConfig,
    workers: usize,
    every: usize,
    stops: &[usize],
) -> (Vec<[u64; 6]>, String) {
    let dir = temp_dir("chain");
    let par = ParallelConfig { n_envs: 4, workers };
    let mut last = None;
    for (i, &stop) in stops.iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut opts = ckpt_opts(&dir, every);
        if stop != usize::MAX {
            opts.stop_after_episodes = Some(stop);
        }
        let out = train_drl_parallel_opt(sys, config, &par, &mut rng, &opts).unwrap();
        if stop != usize::MAX {
            assert!(
                out.output.episodes.len() < config.episodes,
                "segment {i} should have been interrupted"
            );
        }
        last = Some(out.output);
    }
    fingerprint(&last.expect("at least one segment"))
}

/// Kill-at-every-quartile, any worker count, clean and faulty: all
/// bit-identical to the uninterrupted (checkpoint-free) reference.
#[test]
fn parallel_resume_is_bit_identical_across_quartiles_and_workers() {
    let sys = system(1);
    for faults in [false, true] {
        let config = quick_config(16, faults);
        let reference = {
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            let par = ParallelConfig {
                n_envs: 4,
                workers: 1,
            };
            fingerprint(
                &train_drl_parallel(&sys, &config, &par, &mut rng)
                    .unwrap()
                    .output,
            )
        };
        assert_eq!(reference.0.len(), 16);
        for workers in [1, 2, 4] {
            // Killed at 25%, 50%, 75%, then run to completion — four
            // processes, one training run.
            let resumed = chained_parallel(&sys, &config, workers, 4, &[4, 8, 12, usize::MAX]);
            assert_eq!(
                resumed, reference,
                "faults={faults} workers={workers}: resumed run diverged from reference"
            );
        }
    }
}

/// The serial path honors the same contract, including a checkpoint
/// cadence deliberately misaligned with the kill points (resume recomputes
/// forward from an earlier checkpoint).
#[test]
fn serial_resume_is_bit_identical() {
    let sys = system(2);
    let config = quick_config(12, false);
    let reference = {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        fingerprint(&train_drl_opt(&sys, &config, &mut rng, &RunOptions::default()).unwrap())
    };
    let dir = temp_dir("serial");
    let mut last = None;
    for stop in [3, 6, 9, usize::MAX] {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut opts = ckpt_opts(&dir, 2); // misaligned with stops at 3/6/9
        if stop != usize::MAX {
            opts.stop_after_episodes = Some(stop);
        }
        last = Some(train_drl_opt(&sys, &config, &mut rng, &opts).unwrap());
    }
    assert_eq!(fingerprint(&last.unwrap()), reference);
}

/// Corrupting the newest checkpoint slot forces resume onto the surviving
/// older slot — and the recomputed run is still bit-identical. Corrupting
/// both slots fails with a structured checksum error, never a panic.
#[test]
fn corrupt_slots_fall_back_then_fail_structured() {
    let sys = system(3);
    let config = quick_config(16, false);
    let par = ParallelConfig {
        n_envs: 4,
        workers: 2,
    };
    let reference = {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        fingerprint(
            &train_drl_parallel(&sys, &config, &par, &mut rng)
                .unwrap()
                .output,
        )
    };

    let dir = temp_dir("corrupt");
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut opts = ckpt_opts(&dir, 4);
    opts.stop_after_episodes = Some(8);
    train_drl_parallel_opt(&sys, &config, &par, &mut rng, &opts).unwrap();

    // Two checkpoints exist (episodes 4 and 8). Corrupt the newest, chosen
    // by decoding each slot's sequence number.
    let store = CheckpointStore::new(&dir).unwrap();
    let newest = store
        .slot_paths()
        .into_iter()
        .max_by_key(|p| {
            let bytes = std::fs::read(p).unwrap();
            fl_rl::snapshot::decode_frame(&bytes).unwrap().0
        })
        .unwrap();
    let mut bytes = std::fs::read(&newest).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&newest, &bytes).unwrap();

    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let out = train_drl_parallel_opt(&sys, &config, &par, &mut rng, &ckpt_opts(&dir, 4)).unwrap();
    assert_eq!(
        fingerprint(&out.output),
        reference,
        "fallback to the surviving slot must still converge to the reference"
    );

    // Now corrupt both slots: structured error, no panic, no silent fresh
    // restart.
    for p in store.slot_paths() {
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let err = train_drl_parallel_opt(&sys, &config, &par, &mut rng, &ckpt_opts(&dir, 4))
        .expect_err("corrupt checkpoints must not be silently ignored");
    assert!(
        matches!(
            err,
            CtrlError::Snapshot(fl_rl::snapshot::SnapshotError::BadChecksum)
        ),
        "got {err:?}"
    );
}

/// Resuming under a different configuration or fan-out is refused with a
/// structured error instead of silently diverging.
#[test]
fn resume_guards_config_and_shape() {
    let sys = system(4);
    let config = quick_config(8, false);
    let par = ParallelConfig {
        n_envs: 4,
        workers: 2,
    };
    let dir = temp_dir("guard");
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut opts = ckpt_opts(&dir, 4);
    opts.stop_after_episodes = Some(4);
    train_drl_parallel_opt(&sys, &config, &par, &mut rng, &opts).unwrap();

    // Different hyperparameters → digest mismatch.
    let mut other = config.clone();
    other.ppo.actor_lr *= 2.0;
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    assert!(matches!(
        train_drl_parallel_opt(&sys, &other, &par, &mut rng, &ckpt_opts(&dir, 4)),
        Err(CtrlError::InvalidArgument(_))
    ));

    // Different n_envs → shape mismatch.
    let par8 = ParallelConfig {
        n_envs: 8,
        workers: 2,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    assert!(matches!(
        train_drl_parallel_opt(&sys, &config, &par8, &mut rng, &ckpt_opts(&dir, 4)),
        Err(CtrlError::InvalidArgument(_))
    ));

    // Serial resume of a parallel checkpoint → shape mismatch.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    assert!(matches!(
        train_drl_opt(&sys, &config, &mut rng, &ckpt_opts(&dir, 4)),
        Err(CtrlError::InvalidArgument(_))
    ));
}

fn poison_config(episodes: usize) -> TrainConfig {
    let mut config = quick_config(episodes, false);
    // Smaller buffer → one PPO update every 4 episodes, so the poisoned
    // second update lands early in the run.
    config.ppo.buffer_capacity = 32;
    config.ppo.minibatch_size = 16;
    config
}

/// The self-healing supervisor: one poisoned gradient step produces one
/// rollback intervention, the run completes with finite diagnostics, and
/// the healed run is still bit-identical across worker counts.
#[test]
fn supervisor_heals_nan_poisoned_run() {
    let sys = system(5);
    let config = poison_config(12);
    let opts = RunOptions {
        supervisor: Some(SupervisorPolicy::default()),
        poison_update: Some(1),
        ..RunOptions::default()
    };

    // Serial.
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let out = train_drl_opt(&sys, &config, &mut rng, &opts).unwrap();
    assert_eq!(out.episodes.len(), 12);
    assert_eq!(out.interventions.len(), 1, "{:?}", out.interventions);
    assert_eq!(out.interventions[0].cause, DivergenceCause::NonFinite);
    assert!(out.final_mean_cost(4).is_finite());
    for p in out.agent.policy().mean_net().export_params() {
        assert!(p.is_finite(), "NaN leaked into the healed parameters");
    }

    // Parallel: healed and still worker-count invariant.
    let run = |workers| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let par = ParallelConfig { n_envs: 4, workers };
        let out = train_drl_parallel_opt(&sys, &config, &par, &mut rng, &opts)
            .unwrap()
            .output;
        assert_eq!(out.interventions.len(), 1, "{:?}", out.interventions);
        fingerprint(&out)
    };
    let reference = run(1);
    assert_eq!(run(2), reference);
    assert_eq!(run(4), reference);
}

/// Supervision composes with resume: kill a poisoned+supervised run after
/// the intervention, resume it, and the result matches the uninterrupted
/// supervised run — interventions and strike bookkeeping included.
#[test]
fn supervised_run_resumes_bit_identically() {
    let sys = system(6);
    let config = poison_config(12);
    let base = RunOptions {
        supervisor: Some(SupervisorPolicy::default()),
        poison_update: Some(1),
        ..RunOptions::default()
    };
    let par = ParallelConfig {
        n_envs: 4,
        workers: 2,
    };
    let reference = {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let out = train_drl_parallel_opt(&sys, &config, &par, &mut rng, &base)
            .unwrap()
            .output;
        (fingerprint(&out), out.interventions.clone())
    };
    assert_eq!(reference.1.len(), 1);

    let dir = temp_dir("sup-resume");
    let mut last = None;
    for stop in [8, usize::MAX] {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut opts = ckpt_opts(&dir, 4);
        opts.supervisor = base.supervisor;
        opts.poison_update = base.poison_update;
        if stop != usize::MAX {
            opts.stop_after_episodes = Some(stop);
        }
        last = Some(
            train_drl_parallel_opt(&sys, &config, &par, &mut rng, &opts)
                .unwrap()
                .output,
        );
    }
    let resumed = last.unwrap();
    assert_eq!(
        (fingerprint(&resumed), resumed.interventions.clone()),
        reference
    );
}
