//! Shared fixture for the fl-serve integration suites: a small trained-ish
//! controller snapshot over the paper's 3-device testbed, checkpoint
//! stores in throwaway temp dirs, and observation rows sampled from the
//! bandwidth traces.
//!
//! Included from each suite via `#[path]` — integration tests are separate
//! crates, so a plain `mod` cannot share this file.

#![allow(dead_code)] // each suite uses a subset of the fixture

use fl_ctrl::{build_system, ControllerSnapshot, DrlController};
use fl_net::synth::Profile;
use fl_rl::{GaussianPolicy, RunningNorm};
use fl_sim::{FlConfig, FlSystem};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Slot width (seconds) the fixture controller observes bandwidth with.
pub const SLOT_H: f64 = 10.0;
/// History length `H`: the observation carries `H + 1` slot averages per
/// device.
pub const HIST: usize = 4;

/// A fresh per-process temp directory.
pub fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("fedfreq-serve-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds a 3-device testbed system and a deployable snapshot over it:
/// random policy weights (decision *bits* are what the suites compare, not
/// decision quality) and Welford statistics warmed on real observations.
pub fn make_snapshot(seed: u64) -> (FlSystem, ControllerSnapshot) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sys = build_system(
        3,
        3,
        Profile::Walking4G,
        1200,
        FlConfig::default(),
        &mut rng,
    )
    .unwrap();
    let obs_dim = 3 * (HIST + 1);
    let policy = GaussianPolicy::new(obs_dim, &[8], 3, -0.5, &mut rng).unwrap();
    let mut norm = RunningNorm::new(obs_dim, 10.0);
    for k in 0..20 {
        let obs = sys
            .observe_bandwidth_state(100.0 + 7.0 * k as f64, SLOT_H, HIST)
            .unwrap();
        norm.update(&obs);
    }
    let ctrl = DrlController::new(policy, norm, SLOT_H, HIST, 0.1).unwrap();
    let snap = ControllerSnapshot::from_system(ctrl, &sys).unwrap();
    (sys, snap)
}

/// A snapshot with fresh policy weights but the identical serving config
/// (same normalizer, env constants, and frequency caps — same digest):
/// the hot-reload target. Different `weight_seed`s give bit-distinct
/// decisions, which is what makes reload attribution testable.
pub fn variant_snapshot(base: &ControllerSnapshot, weight_seed: u64) -> ControllerSnapshot {
    let mut rng = ChaCha8Rng::seed_from_u64(weight_seed);
    let policy =
        GaussianPolicy::new(base.obs_dim(), &[8], base.action_dim(), -0.5, &mut rng).unwrap();
    let ctrl = DrlController::new(
        policy,
        base.controller.obs_norm().clone(),
        base.controller.slot_h,
        base.controller.history_len,
        base.controller.min_freq_frac,
    )
    .unwrap();
    ControllerSnapshot::new(ctrl, base.delta_max_ghz.clone()).unwrap()
}

/// `n` deterministic trace times, strided away from both trace ends.
pub fn obs_times(n: usize) -> Vec<f64> {
    (0..n).map(|k| 120.0 + ((k * 83) % 900) as f64).collect()
}

/// Observation rows at the given trace times.
pub fn obs_rows(sys: &FlSystem, times: &[f64]) -> Vec<Vec<f64>> {
    times
        .iter()
        .map(|&t| sys.observe_bandwidth_state(t, SLOT_H, HIST).unwrap())
        .collect()
}
