//! Hot-reload race suite: client threads hammer `decide` while checkpoints
//! swap underneath in a loop.
//!
//! Contract under test:
//! * zero dropped or failed requests during reloads,
//! * every response is attributable to exactly one snapshot: its `seq`
//!   maps to one known weight variant, and its frequencies are bit-equal
//!   to that variant's in-process decision (no torn reads — a batch can
//!   never mix weights from two snapshots),
//! * a reload pointing at a corrupt newest slot falls back per
//!   `CheckpointStore` semantics; all-corrupt and config-drift reloads
//!   fail with a structured `reload_failed` while the loaded snapshot
//!   keeps serving.

#[path = "serve_common.rs"]
mod common;

use fl_ctrl::ControllerSnapshot;
use fl_rl::snapshot::CheckpointStore;
use fl_serve::protocol::codes;
use fl_serve::{DecisionServer, ServeClient, ServeError, ServeOptions};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CLIENT_THREADS: usize = 4;
const DECIDES_PER_THREAD: usize = 150;

/// Which variant's bits a response carries, or proof of a torn read.
fn match_variant(freqs: &[f64], per_variant: &[Vec<f64>]) -> Option<usize> {
    per_variant.iter().position(|expected| {
        freqs.len() == expected.len()
            && freqs
                .iter()
                .zip(expected)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    })
}

#[test]
fn hammer_while_reloading_zero_drops_zero_torn_reads() {
    let (sys, snap_a) = common::make_snapshot(31);
    let snap_b = common::variant_snapshot(&snap_a, 777);
    assert_eq!(
        snap_a.config_digest().unwrap(),
        snap_b.config_digest().unwrap(),
        "variants must share the serving config"
    );
    let dir = common::temp_dir("soak");
    let store = CheckpointStore::new(&dir).unwrap();
    snap_a.save(&store).unwrap(); // seq 1

    let times = common::obs_times(CLIENT_THREADS);
    let rows = common::obs_rows(&sys, &times);
    // Expected bits per (row, variant), via the same batched path the
    // server uses. Variant index 0 = A, 1 = B.
    let expected_a = snap_a.decide_rows(&rows).unwrap();
    let expected_b = snap_b.decide_rows(&rows).unwrap();

    let opts = ServeOptions {
        linger: Duration::from_micros(200),
        ..ServeOptions::default()
    };
    let server = DecisionServer::start(&dir, "127.0.0.1:0", opts).unwrap();
    let addr = server.local_addr();

    // Swapper: keep saving A/B alternately and asking the server to adopt.
    let stop = Arc::new(AtomicBool::new(false));
    let swapper = {
        let stop = Arc::clone(&stop);
        let (snap_a, snap_b) = (snap_a.clone(), snap_b.clone());
        std::thread::spawn(move || {
            let store = CheckpointStore::new(&dir).unwrap();
            let mut client = ServeClient::connect(addr).unwrap();
            let mut flip = 0u64;
            let mut swaps = 0u64;
            while !stop.load(Ordering::Acquire) {
                flip += 1;
                let saved_seq = if flip.is_multiple_of(2) {
                    snap_a.save(&store).unwrap()
                } else {
                    snap_b.save(&store).unwrap()
                };
                let (swapped, serving_seq) = client.reload().unwrap();
                assert!(swapped, "a fresh save must always swap");
                assert_eq!(serving_seq, saved_seq);
                swaps += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            swaps
        })
    };

    // Hammer threads: every decide must succeed and carry untorn bits.
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|tid| {
            let row = rows[tid].clone();
            let (ea, eb) = (expected_a[tid].clone(), expected_b[tid].clone());
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                // (seq -> variant) observed by this thread.
                let mut attribution: HashMap<u64, usize> = HashMap::new();
                for i in 0..DECIDES_PER_THREAD {
                    let (seq, freqs) = client
                        .decide(&row)
                        .unwrap_or_else(|e| panic!("thread {tid} request {i} dropped: {e}"));
                    let variant =
                        match_variant(&freqs, &[ea.clone(), eb.clone()]).unwrap_or_else(|| {
                            panic!(
                                "thread {tid} request {i}: torn read — seq {seq} bits match \
                                 neither variant: {freqs:?}"
                            )
                        });
                    attribution.insert(seq, variant);
                }
                attribution
            })
        })
        .collect();

    let mut global: HashMap<u64, usize> = HashMap::new();
    let mut total_seqs_seen = 0usize;
    for h in handles {
        let attribution = h.join().unwrap();
        total_seqs_seen += attribution.len();
        for (seq, variant) in attribution {
            // Across all threads, one seq must always mean one variant.
            if let Some(prev) = global.insert(seq, variant) {
                assert_eq!(
                    prev, variant,
                    "snapshot seq {seq} served two different weight variants"
                );
            }
        }
    }
    stop.store(true, Ordering::Release);
    let swaps = swapper.join().unwrap();
    let stats = server.shutdown();

    assert!(swaps >= 3, "soak too short: only {swaps} reloads happened");
    assert_eq!(stats.reloads, swaps);
    assert_eq!(stats.reload_errors, 0);
    assert_eq!(
        stats.decisions,
        (CLIENT_THREADS * DECIDES_PER_THREAD) as u64,
        "every request must be served exactly once"
    );
    assert!(total_seqs_seen > 0);
    // Consistency of the attribution map with the save parity: even seqs
    // were saves of B (flip starts at 1 → seq 2 is B? seq 1 is A), odd = A.
    for (seq, variant) in &global {
        let expected_variant = if seq % 2 == 1 { 0 } else { 1 };
        assert_eq!(
            *variant, expected_variant,
            "seq {seq} attributed to the wrong saved variant"
        );
    }
}

#[test]
fn reload_with_corrupt_newest_slot_falls_back() {
    let (sys, snap) = common::make_snapshot(32);
    let dir = common::temp_dir("fallback");
    let store = CheckpointStore::new(&dir).unwrap();
    snap.save(&store).unwrap(); // seq 1
    let server = DecisionServer::start(&dir, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    let row = common::obs_rows(&sys, &common::obs_times(1)).remove(0);
    let expected = snap
        .decide_rows(std::slice::from_ref(&row))
        .unwrap()
        .remove(0);

    // Save seq 2 and corrupt its slot: reload must fall back to seq 1 (a
    // no-op swap) per the store's survivor semantics.
    let variant = common::variant_snapshot(&snap, 999);
    variant.save(&store).unwrap(); // seq 2
    for path in store.slot_paths() {
        let bytes = std::fs::read(&path).unwrap();
        if fl_rl::snapshot::decode_frame(&bytes).unwrap().0 == 2 {
            let mut bad = bytes;
            let last = bad.len() - 1;
            bad[last] ^= 0xFF;
            std::fs::write(&path, &bad).unwrap();
        }
    }
    let (swapped, seq) = client.reload().unwrap();
    assert!(!swapped, "fallback to the already-serving seq is a no-op");
    assert_eq!(seq, 1);
    let (seq, freqs) = client.decide(&row).unwrap();
    assert_eq!(seq, 1);
    assert_eq!(freqs, expected);

    // Corrupt the survivor too (different byte, so the first corruption is
    // not undone): reload fails structurally, serving continues.
    for path in store.slot_paths() {
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
    }
    match client.reload() {
        Err(ServeError::Server { code, .. }) => assert_eq!(code, codes::RELOAD_FAILED),
        other => panic!("expected reload_failed, got {other:?}"),
    }
    let (seq, freqs) = client.decide(&row).unwrap();
    assert_eq!(seq, 1, "the loaded snapshot must keep serving");
    assert_eq!(freqs, expected);
    let stats = client.stats().unwrap();
    assert!(stats.reload_errors >= 1);
    assert_eq!(stats.reloads, 0);
}

#[test]
fn reload_refuses_config_drift() {
    let (sys, snap) = common::make_snapshot(33);
    let dir = common::temp_dir("drift");
    let store = CheckpointStore::new(&dir).unwrap();
    snap.save(&store).unwrap(); // seq 1
    let server = DecisionServer::start(&dir, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    let row = common::obs_rows(&sys, &common::obs_times(1)).remove(0);
    let expected = snap
        .decide_rows(std::slice::from_ref(&row))
        .unwrap()
        .remove(0);

    // A snapshot with different frequency caps: valid on disk, but its
    // config digest differs — adopting it would silently change what
    // served actions mean.
    let mut caps = snap.delta_max_ghz.clone();
    caps[0] += 0.5;
    let drifted = ControllerSnapshot::new(snap.controller.clone(), caps).unwrap();
    assert_ne!(
        snap.config_digest().unwrap(),
        drifted.config_digest().unwrap()
    );
    drifted.save(&store).unwrap(); // seq 2

    match client.reload() {
        Err(ServeError::Server { code, msg, .. }) => {
            assert_eq!(code, codes::RELOAD_FAILED);
            assert!(msg.contains("digest"), "unhelpful message: {msg}");
        }
        other => panic!("expected reload_failed, got {other:?}"),
    }
    // Still serving seq 1 with the original bits; digest pin still holds.
    let (seq, freqs) = client.decide_pinned(&row, server.config_digest()).unwrap();
    assert_eq!(seq, 1);
    assert_eq!(freqs, expected);
}
