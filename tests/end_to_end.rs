//! Cross-crate integration tests: the full pipeline from synthetic traces
//! through the simulator, the DRL training loop, and the online
//! controllers. These are the repository's "does the paper's system
//! actually work end to end" checks; per-module behaviour is covered by
//! the unit tests inside each crate.

use fl_ctrl::{
    build_system, compare_controllers, run_controller, train_drl, DrlController, EnvConfig,
    FrequencyController, HeuristicController, MaxFreqController, OracleController, PolicyArch,
    StaticController, TrainConfig,
};
use fl_net::synth::Profile;
use fl_rl::PpoConfig;
use fl_sim::FlConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn small_system(seed: u64, n: usize) -> fl_sim::FlSystem {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    build_system(
        n,
        n.min(3),
        Profile::Walking4G,
        2400,
        FlConfig {
            tau: 1,
            model_size_mb: 10.0,
            lambda: 0.5,
        },
        &mut rng,
    )
    .expect("valid system")
}

fn quick_train_config(episodes: usize, arch: PolicyArch) -> TrainConfig {
    TrainConfig {
        episodes,
        ppo: PpoConfig {
            hidden: vec![24],
            buffer_capacity: 200,
            minibatch_size: 50,
            epochs: 8,
            actor_lr: 1.5e-3,
            critic_lr: 3e-3,
            entropy_coef: 0.001,
            gamma: 0.5,
            gae_lambda: 0.9,
            target_kl: None,
            ..PpoConfig::default()
        },
        env: EnvConfig {
            episode_len: 25,
            history_len: 4,
            ..EnvConfig::default()
        },
        arch,
        reward_scale: 0.05,
    }
}

/// The headline property at test scale: a trained DRL controller achieves
/// lower mean system cost than running every device flat out.
#[test]
fn trained_drl_beats_maxfreq_on_cost() {
    let sys = small_system(1, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let out =
        train_drl(&sys, &quick_train_config(600, PolicyArch::Joint), &mut rng).expect("training");
    let mut drl = out.controller;
    let drl_run = run_controller(&sys, &mut drl, 150, 300.0).expect("drl run");
    let mut maxf = MaxFreqController;
    let maxf_run = run_controller(&sys, &mut maxf, 150, 300.0).expect("maxfreq run");
    assert!(
        drl_run.ledger.mean_cost() < maxf_run.ledger.mean_cost(),
        "drl {} vs maxfreq {}",
        drl_run.ledger.mean_cost(),
        maxf_run.ledger.mean_cost()
    );
    // And it does so by spending less energy, not by magic.
    assert!(drl_run.ledger.mean_energy() < maxf_run.ledger.mean_energy());
}

/// The clairvoyant oracle lower-bounds every deployable controller.
#[test]
fn oracle_is_the_floor() {
    let sys = small_system(3, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let stat = StaticController::new(&sys, 300, 0.1, &mut rng).expect("static");
    let runs = compare_controllers(
        &sys,
        vec![
            Box::new(OracleController::default()),
            Box::new(HeuristicController::default()),
            Box::new(stat),
            Box::new(MaxFreqController),
        ],
        60,
        250.0,
    )
    .expect("comparison");
    let oracle_cost = runs[0].ledger.mean_cost();
    for r in &runs[1..] {
        assert!(
            oracle_cost <= r.ledger.mean_cost() + 1e-9,
            "oracle {} beaten by {} at {}",
            oracle_cost,
            r.name,
            r.ledger.mean_cost()
        );
    }
}

/// Trained controllers survive a JSON round-trip and keep making the exact
/// same decisions — the deployment path of Section V-B2.
#[test]
fn drl_controller_json_roundtrip_preserves_decisions() {
    let sys = small_system(5, 2);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let out =
        train_drl(&sys, &quick_train_config(30, PolicyArch::Joint), &mut rng).expect("training");
    let mut original = out.controller;
    let json = original.to_json().expect("serialize");
    let mut restored = DrlController::from_json(&json).expect("deserialize");
    for k in 0..5 {
        let t = 200.0 + k as f64 * 37.0;
        let a = original.decide(k, t, &sys, None).expect("original");
        let b = restored.decide(k, t, &sys, None).expect("restored");
        // JSON float text loses the last ULP; decisions must agree to
        // far better than any physically meaningful resolution.
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "decision drift: {x} vs {y}");
        }
    }
}

/// Both actor architectures train end-to-end and produce deployable
/// controllers on the same environment.
#[test]
fn joint_and_shared_architectures_both_train() {
    let sys = small_system(7, 4);
    for arch in [PolicyArch::Joint, PolicyArch::Shared] {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let out = train_drl(&sys, &quick_train_config(40, arch), &mut rng)
            .unwrap_or_else(|e| panic!("{arch:?} training failed: {e}"));
        let mut ctrl = out.controller;
        let run = run_controller(&sys, &mut ctrl, 20, 300.0).expect("evaluation");
        assert_eq!(run.ledger.len(), 20);
        assert!(run.ledger.mean_cost().is_finite());
        assert!(out.episodes.iter().all(|e| e.mean_cost.is_finite()));
    }
}

/// The whole pipeline is bit-for-bit deterministic under a fixed seed.
#[test]
fn full_pipeline_is_deterministic() {
    let run_once = || {
        let sys = small_system(9, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let out = train_drl(&sys, &quick_train_config(20, PolicyArch::Joint), &mut rng)
            .expect("training");
        let mut ctrl = out.controller;
        let run = run_controller(&sys, &mut ctrl, 30, 400.0).expect("evaluation");
        run.ledger.cost_series()
    };
    assert_eq!(run_once(), run_once());
}

/// Cross-validation of the two optimizers: on *constant*-bandwidth traces
/// the model-based solver's plan (fed the exact bandwidths) and the
/// trace-walking Oracle must agree — same cost, and per-device frequencies
/// within search tolerance.
#[test]
fn oracle_agrees_with_solver_on_flat_traces() {
    use fl_ctrl::{model_cost, optimize_frequencies, SolverParams};
    use fl_net::{BandwidthTrace, TraceSet};
    use fl_sim::{DeviceSampler, FlSystem};

    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let bws = [1.2, 3.0, 0.7];
    let traces = TraceSet::new(
        bws.iter()
            .map(|&b| {
                BandwidthTrace::new(1.0, vec![b; 8])
                    .expect("trace")
                    .cyclic()
            })
            .collect(),
    )
    .expect("trace set");
    let devices = DeviceSampler::default().sample_fleet(&[0, 1, 2], &mut rng);
    let sys = FlSystem::new(devices, traces, FlConfig::default()).expect("system");

    let params = SolverParams {
        tau: sys.config().tau,
        model_size_mb: sys.config().model_size_mb,
        lambda: sys.config().lambda,
        min_freq_frac: 0.1,
    };
    let plan = optimize_frequencies(sys.devices(), &params, &bws).expect("solver");

    let mut oracle = OracleController::default();
    let oracle_freqs = oracle.decide(0, 100.0, &sys, None).expect("oracle");
    let oracle_cost = sys
        .run_iteration(100.0, &oracle_freqs)
        .expect("oracle iteration")
        .cost(sys.config().lambda);
    // The solver's model cost IS the exact cost on flat traces.
    let solver_sim_cost = sys
        .run_iteration(100.0, &plan.freqs)
        .expect("solver iteration")
        .cost(sys.config().lambda);
    let model = model_cost(sys.devices(), &params, &bws, &plan.freqs).expect("model");
    assert!(
        (solver_sim_cost - model).abs() < 1e-6,
        "model {model} vs simulated {solver_sim_cost}"
    );
    assert!(
        (oracle_cost - solver_sim_cost).abs() < 0.01 * solver_sim_cost,
        "oracle {oracle_cost} vs solver {solver_sim_cost}"
    );
}

/// Time accounting holds across a long multi-controller run: iterations
/// tile the timeline exactly (Eq. 11) and idle times are consistent with
/// the synchronization barrier (Eq. 5).
#[test]
fn timeline_and_idle_accounting() {
    let sys = small_system(11, 3);
    let mut ctrl = HeuristicController::default();
    let run = run_controller(&sys, &mut ctrl, 80, 500.0).expect("run");
    let iters = run.ledger.iterations();
    for w in iters.windows(2) {
        assert!((w[0].end_time() - w[1].start_time).abs() < 1e-9);
    }
    for it in iters {
        let max_total = it
            .devices
            .iter()
            .map(|d| d.total_time())
            .fold(0.0f64, f64::max);
        assert!((it.duration - max_total).abs() < 1e-9);
        let min_idle = it
            .devices
            .iter()
            .map(|d| d.idle_time)
            .fold(f64::INFINITY, f64::min);
        assert!(min_idle.abs() < 1e-9, "someone must be the straggler");
        assert!(it.devices.iter().all(|d| d.idle_time >= -1e-9));
    }
}
