//! The critic `V(s; θ_v)`.

use crate::Result;
use fl_nn::{Activation, Matrix, Mlp};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Value-function network: MLP with a single linear output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValueNet {
    net: Mlp,
}

impl ValueNet {
    /// Builds a critic with tanh hidden layers.
    pub fn new(obs_dim: usize, hidden: &[usize], rng: &mut impl Rng) -> Result<Self> {
        let mut sizes = Vec::with_capacity(hidden.len() + 2);
        sizes.push(obs_dim);
        sizes.extend_from_slice(hidden);
        sizes.push(1);
        Ok(ValueNet {
            net: Mlp::try_new(&sizes, Activation::Tanh, Activation::Identity, rng)?,
        })
    }

    /// Observation dimensionality.
    pub fn obs_dim(&self) -> usize {
        self.net.in_dim()
    }

    /// Access to the underlying network (for optimizer binding).
    pub fn net_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// Read-only access to the underlying network.
    pub fn net(&self) -> &Mlp {
        &self.net
    }

    /// Value of a single observation (inference path).
    pub fn predict(&self, obs: &[f64]) -> Result<f64> {
        let out = self.net.infer(&Matrix::row_vector(obs))?;
        Ok(out.get(0, 0))
    }

    /// Values of an observation batch (inference path). The critic head is
    /// a single column, so the network output *is* the value vector — moved
    /// out without the strided column copy.
    pub fn predict_batch(&self, obs: &Matrix) -> Result<Vec<f64>> {
        let out = self.net.infer(obs)?;
        debug_assert_eq!(out.cols(), 1);
        Ok(out.into_data())
    }

    /// Training forward pass (caches activations for backprop).
    pub fn forward(&mut self, obs: &Matrix) -> Result<Matrix> {
        Ok(self.net.try_forward(obs)?)
    }

    /// True when all parameters are finite.
    pub fn is_finite(&self) -> bool {
        self.net.export_params().iter().all(|p| p.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_nn::{loss, Adam, Optimizer};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn shapes_and_prediction() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let v = ValueNet::new(4, &[8, 8], &mut rng).unwrap();
        assert_eq!(v.obs_dim(), 4);
        let x = v.predict(&[0.1, 0.2, 0.3, 0.4]).unwrap();
        assert!(x.is_finite());
        let batch = Matrix::zeros(5, 4);
        assert_eq!(v.predict_batch(&batch).unwrap().len(), 5);
        assert!(v.is_finite());
    }

    #[test]
    fn critic_learns_simple_value_function() {
        // V(s) = 3 s0 - s1.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut v = ValueNet::new(2, &[16], &mut rng).unwrap();
        let mut opt = Adam::new(v.net().num_params(), 0.01);
        use rand::Rng;
        let n = 64;
        let x = Matrix::from_fn(n, 2, |_, _| rng.gen_range(-1.0..1.0));
        let y = Matrix::from_fn(n, 1, |r, _| 3.0 * x.get(r, 0) - x.get(r, 1));
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..400 {
            let pred = v.forward(&x).unwrap();
            let (l, dl) = loss::mse(&pred, &y).unwrap();
            first.get_or_insert(l);
            last = l;
            v.net_mut().zero_grad();
            v.net_mut().backward(&dl).unwrap();
            opt.step(v.net_mut());
        }
        assert!(
            last < first.unwrap() * 0.05,
            "no learning: {first:?} -> {last}"
        );
    }
}
