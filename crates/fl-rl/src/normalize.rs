//! Running observation normalization (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Online per-dimension mean/variance tracker used to whiten observations.
///
/// Raw FL states are bandwidth histories whose magnitude spans two orders of
/// magnitude across trace profiles (0.05–9.5 MB/s); whitening keeps the
/// policy network in its responsive range. Updates are only applied during
/// data collection (the agent freezes the statistics for evaluation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningNorm {
    count: f64,
    mean: Vec<f64>,
    m2: Vec<f64>,
    clip: f64,
}

impl RunningNorm {
    /// Tracker for `dim`-dimensional observations; normalized outputs are
    /// clipped to `[-clip, clip]`.
    pub fn new(dim: usize, clip: f64) -> Self {
        RunningNorm {
            count: 0.0,
            mean: vec![0.0; dim],
            m2: vec![0.0; dim],
            clip,
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Number of observations absorbed.
    pub fn count(&self) -> f64 {
        self.count
    }

    /// Current mean estimate.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Current per-dimension standard deviation estimate (1.0 until two
    /// samples are seen).
    pub fn std(&self) -> Vec<f64> {
        if self.count < 2.0 {
            return vec![1.0; self.mean.len()];
        }
        self.m2
            .iter()
            .map(|&m2| (m2 / self.count).sqrt().max(1e-8))
            .collect()
    }

    /// Absorbs one observation (Welford update).
    #[allow(clippy::needless_range_loop)] // lockstep update of two fields
    pub fn update(&mut self, obs: &[f64]) {
        debug_assert_eq!(obs.len(), self.mean.len());
        self.count += 1.0;
        for i in 0..self.mean.len() {
            let delta = obs[i] - self.mean[i];
            self.mean[i] += delta / self.count;
            let delta2 = obs[i] - self.mean[i];
            self.m2[i] += delta * delta2;
        }
    }

    /// Whitens an observation with the current statistics.
    pub fn normalize(&self, obs: &[f64]) -> Vec<f64> {
        let std = self.std();
        obs.iter()
            .zip(self.mean.iter().zip(&std))
            .map(|(&x, (&m, &s))| ((x - m) / s).clamp(-self.clip, self.clip))
            .collect()
    }

    /// Convenience: update then normalize.
    pub fn update_and_normalize(&mut self, obs: &[f64]) -> Vec<f64> {
        self.update(obs);
        self.normalize(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matches_batch_statistics() {
        let data = [
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ];
        let mut n = RunningNorm::new(2, 10.0);
        for d in &data {
            n.update(d);
        }
        assert_eq!(n.count(), 4.0);
        assert!((n.mean()[0] - 2.5).abs() < 1e-12);
        assert!((n.mean()[1] - 25.0).abs() < 1e-12);
        // Population std of {1,2,3,4} = sqrt(1.25).
        assert!((n.std()[0] - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn normalize_before_data_is_identityish() {
        let n = RunningNorm::new(2, 5.0);
        assert_eq!(n.normalize(&[1.0, -2.0]), vec![1.0, -2.0]);
    }

    #[test]
    fn clipping_applies() {
        let mut n = RunningNorm::new(1, 2.0);
        for x in [0.0, 1.0, 0.5, 0.6] {
            n.update(&[x]);
        }
        let z = n.normalize(&[1000.0]);
        assert_eq!(z[0], 2.0);
        let z = n.normalize(&[-1000.0]);
        assert_eq!(z[0], -2.0);
    }

    #[test]
    fn constant_dimension_does_not_divide_by_zero() {
        let mut n = RunningNorm::new(1, 10.0);
        for _ in 0..5 {
            n.update(&[3.0]);
        }
        let z = n.normalize(&[3.0]);
        assert!(z[0].is_finite());
        assert!(z[0].abs() < 1e-6);
    }

    proptest! {
        /// After many samples, normalizing the sample stream yields roughly
        /// zero mean and unit variance.
        #[test]
        fn prop_whitening(seed in 0u64..100) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut n = RunningNorm::new(1, 10.0);
            let xs: Vec<f64> = (0..500).map(|_| rng.gen_range(5.0..9.0)).collect();
            for x in &xs {
                n.update(&[*x]);
            }
            let zs: Vec<f64> = xs.iter().map(|x| n.normalize(&[*x])[0]).collect();
            let mean = zs.iter().sum::<f64>() / zs.len() as f64;
            let var = zs.iter().map(|z| (z - mean) * (z - mean)).sum::<f64>() / zs.len() as f64;
            prop_assert!(mean.abs() < 0.05, "mean={mean}");
            prop_assert!((var - 1.0).abs() < 0.1, "var={var}");
        }
    }
}
