//! The PPO actor–critic agent of Algorithm 1.

use crate::buffer::RolloutBuffer;
use crate::gae::{gae, normalize_advantages};
use crate::normalize::RunningNorm;
use crate::policy::GaussianPolicy;
use crate::value::ValueNet;
use crate::{Result, RlError};
use fl_nn::{loss, Adam, Matrix, Optimizer};
use fl_obs::{Event, Recorder};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Hyperparameters for the PPO agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Hidden layer widths shared by actor and critic.
    pub hidden: Vec<usize>,
    /// Discount factor γ.
    pub gamma: f64,
    /// GAE λ (0.0 reduces to Algorithm 1's one-step TD errors).
    pub gae_lambda: f64,
    /// PPO clip range ε.
    pub clip: f64,
    /// `M`: optimization epochs per buffer (Algorithm 1 line 18).
    pub epochs: usize,
    /// Minibatch size within each epoch.
    pub minibatch_size: usize,
    /// Actor (mean-net) Adam learning rate.
    pub actor_lr: f64,
    /// Critic Adam learning rate.
    pub critic_lr: f64,
    /// Entropy bonus coefficient.
    pub entropy_coef: f64,
    /// Global gradient-norm clip.
    pub max_grad_norm: f64,
    /// Initial log-std of the Gaussian policy.
    pub init_log_std: f64,
    /// Observation normalization clip.
    pub obs_clip: f64,
    /// `|D|`: replay buffer capacity (Algorithm 1 line 17).
    pub buffer_capacity: usize,
    /// Early-stop threshold on approximate KL (1.5× this value stops the
    /// epoch loop); `None` disables.
    pub target_kl: Option<f64>,
    /// Multiplier applied to both learning rates after every
    /// [`PpoAgent::update`] (1.0 = constant; e.g. 0.999 for slow
    /// annealing).
    pub lr_decay: f64,
    /// PPO2-style clipped value loss: the critic prediction may move at
    /// most this far from its at-sampling-time estimate per update.
    /// `None` uses the plain MSE of Algorithm 1 line 20.
    pub value_clip: Option<f64>,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            hidden: vec![64, 64],
            gamma: 0.99,
            gae_lambda: 0.95,
            clip: 0.2,
            epochs: 10,
            minibatch_size: 64,
            actor_lr: 3e-4,
            critic_lr: 1e-3,
            entropy_coef: 0.01,
            max_grad_norm: 0.5,
            init_log_std: -0.5,
            obs_clip: 10.0,
            buffer_capacity: 2048,
            target_kl: Some(0.05),
            lr_decay: 1.0,
            value_clip: None,
        }
    }
}

impl PpoConfig {
    /// Validates the hyperparameters.
    pub fn validate(&self) -> Result<()> {
        let positive = [
            ("clip", self.clip),
            ("actor_lr", self.actor_lr),
            ("critic_lr", self.critic_lr),
            ("max_grad_norm", self.max_grad_norm),
            ("obs_clip", self.obs_clip),
        ];
        for (name, v) in positive {
            if !(v > 0.0) || !v.is_finite() {
                return Err(RlError::InvalidArgument(format!(
                    "{name} must be positive and finite, got {v}"
                )));
            }
        }
        if !(0.0..=1.0).contains(&self.gamma) || !(0.0..=1.0).contains(&self.gae_lambda) {
            return Err(RlError::InvalidArgument(
                "gamma and gae_lambda must be in [0, 1]".to_string(),
            ));
        }
        if self.epochs == 0 || self.minibatch_size == 0 || self.buffer_capacity == 0 {
            return Err(RlError::InvalidArgument(
                "epochs, minibatch_size, buffer_capacity must be nonzero".to_string(),
            ));
        }
        if !(self.entropy_coef >= 0.0) {
            return Err(RlError::InvalidArgument(
                "entropy_coef must be non-negative".to_string(),
            ));
        }
        if !(self.lr_decay > 0.0 && self.lr_decay <= 1.0) {
            return Err(RlError::InvalidArgument(format!(
                "lr_decay must be in (0, 1], got {}",
                self.lr_decay
            )));
        }
        if let Some(vc) = self.value_clip {
            if !(vc > 0.0) || !vc.is_finite() {
                return Err(RlError::InvalidArgument(format!(
                    "value_clip must be positive and finite, got {vc}"
                )));
            }
        }
        Ok(())
    }
}

/// Diagnostics from one [`PpoAgent::update`] call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Mean clipped-surrogate loss across minibatches — the "training loss"
    /// series Fig. 6(a) plots.
    pub policy_loss: f64,
    /// Mean critic MSE across minibatches.
    pub value_loss: f64,
    /// Policy entropy after the update.
    pub entropy: f64,
    /// Mean approximate KL `E[logπ_old − logπ_new]` over the last epoch run.
    pub approx_kl: f64,
    /// Fraction of samples whose ratio was clipped.
    pub clip_fraction: f64,
    /// Number of minibatch steps performed.
    pub minibatches: usize,
    /// Number of epochs actually run (may stop early on KL).
    pub epochs_run: usize,
    /// Mean pre-clip actor gradient L2 norm across minibatches.
    pub grad_norm: f64,
    /// Mean reward over the buffer this update consumed.
    pub reward_mean: f64,
    /// Population standard deviation of the buffer rewards.
    pub reward_std: f64,
}

/// Output of one [`PpoAgent::act`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct ActOutput {
    /// Normalized observation actually fed to the networks — store *this*
    /// in the rollout buffer.
    pub norm_obs: Vec<f64>,
    /// Raw Gaussian action (the environment squashes it).
    pub action: Vec<f64>,
    /// `log π(a|s; θ_a^old)`.
    pub log_prob: f64,
    /// Critic estimate `V(s; θ_v)`.
    pub value: f64,
}

/// One frozen forward over a stack of raw observations — the batched half
/// of [`PpoAgent::act_frozen`]. The rows are independent by the kernel
/// bit-exactness contract, so row `i` holds exactly the bits a standalone
/// `act_frozen` on observation `i` would have produced; only the Gaussian
/// noise draw is deferred (to [`PpoAgent::sample_frozen_row`], which pulls
/// from whichever RNG stream owns that row).
#[derive(Debug, Clone)]
pub struct FrozenBatch {
    /// Normalized observations, one row per input observation.
    pub norm_obs: Matrix,
    /// `θ_a^old` action means, one row per observation.
    pub means: Matrix,
    /// Critic values `V(s; θ_v)`, one per observation.
    pub values: Vec<f64>,
}

/// Adam state for the standalone log-std parameter vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AdamVec {
    lr: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl AdamVec {
    fn new(dim: usize, lr: f64) -> Self {
        AdamVec {
            lr,
            t: 0,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
        }
    }

    /// Returns the parameter deltas for a gradient-descent step.
    fn step(&mut self, grads: &[f64]) -> Vec<f64> {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t as i32);
        let bc2 = 1.0 - B2.powi(self.t as i32);
        grads
            .iter()
            .enumerate()
            .map(|(i, &g)| {
                self.m[i] = B1 * self.m[i] + (1.0 - B1) * g;
                self.v[i] = B2 * self.v[i] + (1.0 - B2) * g * g;
                let mhat = self.m[i] / bc1;
                let vhat = self.v[i] / bc2;
                -self.lr * mhat / (vhat.sqrt() + EPS)
            })
            .collect()
    }
}

/// The DRL agent: current policy `θ_a`, frozen sampling policy `θ_a^old`,
/// critic `θ_v`, optimizers, and observation normalization.
///
/// Mirrors Algorithm 1: [`PpoAgent::act`] samples with `θ_a^old` (line 12);
/// [`PpoAgent::update`] runs `M` PPO epochs over the full buffer (lines
/// 18–21) and then syncs `θ_a^old ← θ_a` (line 22).
///
/// The agent is fully serializable (networks, optimizer moments,
/// observation statistics), so training runs can checkpoint and resume
/// exactly — see [`PpoAgent::to_json`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PpoAgent {
    config: PpoConfig,
    policy: GaussianPolicy,
    policy_old: GaussianPolicy,
    value: ValueNet,
    actor_opt: Adam,
    critic_opt: Adam,
    log_std_opt: AdamVec,
    obs_norm: RunningNorm,
    training: bool,
    /// Completed [`PpoAgent::update`] calls — the supervisor's poison hook
    /// and intervention log key on it.
    updates_done: u64,
    /// Test-only fault injection: when `Some(k)`, the `k`-th update (0-based
    /// by [`PpoAgent::updates_done`]) corrupts one actor parameter to NaN
    /// right before the post-update finiteness check, producing the exact
    /// divergence signature a real numeric blow-up would. Deliberately
    /// `#[serde(skip)]`: a rollback that restores a serialized snapshot
    /// clears the poison, so the fault fires exactly once.
    #[serde(skip)]
    test_poison: Option<u64>,
    /// Observability hub (disabled by default). `#[serde(skip)]`: restoring
    /// a snapshot — resume *or* supervisor rollback — detaches the
    /// recorder, so the restoring site decides whether to re-attach it.
    /// Recording never consumes RNG and never branches training.
    #[serde(skip)]
    recorder: Recorder,
}

impl PpoAgent {
    /// Builds an agent with the default joint-architecture policy for the
    /// given observation/action dimensions.
    pub fn new(
        obs_dim: usize,
        action_dim: usize,
        config: PpoConfig,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        config.validate()?;
        let policy = GaussianPolicy::new(
            obs_dim,
            &config.hidden,
            action_dim,
            config.init_log_std,
            rng,
        )?;
        Self::with_policy(policy, config, rng)
    }

    /// Builds an agent around a pre-constructed policy (e.g. the
    /// parameter-shared architecture from
    /// [`GaussianPolicy::new_shared`](crate::GaussianPolicy::new_shared)).
    /// The critic and observation normalizer are sized from the policy.
    pub fn with_policy(
        policy: GaussianPolicy,
        config: PpoConfig,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        config.validate()?;
        let policy_old = policy.clone();
        let value = ValueNet::new(policy.obs_dim(), &config.hidden, rng)?;
        let actor_opt = Adam::new(policy.mean_net().num_params(), config.actor_lr);
        let critic_opt = Adam::new(value.net().num_params(), config.critic_lr);
        let log_std_opt = AdamVec::new(policy.action_dim(), config.actor_lr);
        let obs_norm = RunningNorm::new(policy.obs_dim(), config.obs_clip);
        Ok(PpoAgent {
            config,
            policy,
            policy_old,
            value,
            actor_opt,
            critic_opt,
            log_std_opt,
            obs_norm,
            training: true,
            updates_done: 0,
            test_poison: None,
            recorder: Recorder::disabled(),
        })
    }

    /// The hyperparameters.
    pub fn config(&self) -> &PpoConfig {
        &self.config
    }

    /// The current (trained) policy `θ_a`.
    pub fn policy(&self) -> &GaussianPolicy {
        &self.policy
    }

    /// The observation normalizer (export alongside the policy for
    /// inference).
    pub fn obs_norm(&self) -> &RunningNorm {
        &self.obs_norm
    }

    /// Enables/disables training mode. In evaluation mode, observation
    /// statistics freeze.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Number of completed [`PpoAgent::update`] calls over this agent's
    /// lifetime (survives checkpoint/resume).
    pub fn updates_done(&self) -> u64 {
        self.updates_done
    }

    /// Current `(actor, critic)` learning rates — diagnostics for LR
    /// schedules and the supervisor's backoff policy.
    pub fn learning_rates(&self) -> (f64, f64) {
        (
            self.actor_opt.learning_rate(),
            self.critic_opt.learning_rate(),
        )
    }

    /// Multiplies every learning rate (actor, critic, log-std) by `factor`
    /// — the supervisor's deterministic divergence backoff.
    pub fn scale_learning_rates(&mut self, factor: f64) {
        let lr = self.actor_opt.learning_rate() * factor;
        self.actor_opt.set_learning_rate(lr);
        let lr = self.critic_opt.learning_rate() * factor;
        self.critic_opt.set_learning_rate(lr);
        self.log_std_opt.lr *= factor;
    }

    /// Attaches an observability recorder: [`PpoAgent::update`] will time
    /// its GAE/epoch phases and emit one deterministic `ppo_update` event
    /// per completed update. The recorder is not serialized, so any
    /// snapshot restore detaches it — re-attach after resume or rollback.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Arms the test-only NaN fault: the update whose 0-based index (per
    /// [`PpoAgent::updates_done`]) equals `update_index` will corrupt one
    /// actor parameter and fail with [`RlError::Diverged`], exactly like a
    /// real numeric blow-up. The flag is not serialized, so restoring a
    /// checkpoint disarms it.
    pub fn poison_update_for_test(&mut self, update_index: u64) {
        self.test_poison = Some(update_index);
    }

    /// Serializes the complete agent state (networks, optimizer moments,
    /// normalization statistics) for exact checkpoint/resume.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| RlError::InvalidArgument(format!("serialize agent: {e}")))
    }

    /// Restores an agent saved by [`PpoAgent::to_json`].
    pub fn from_json(text: &str) -> Result<Self> {
        serde_json::from_str(text)
            .map_err(|e| RlError::InvalidArgument(format!("deserialize agent: {e}")))
    }

    /// Allocates a rollout buffer with the configured capacity.
    pub fn make_buffer(&self) -> Result<RolloutBuffer> {
        RolloutBuffer::new(
            self.config.buffer_capacity,
            self.policy.obs_dim(),
            self.policy.action_dim(),
        )
    }

    /// Normalizes an observation with the current (frozen) statistics.
    pub fn normalize_obs(&self, obs: &[f64]) -> Vec<f64> {
        self.obs_norm.normalize(obs)
    }

    fn check_obs(&self, obs: &[f64]) -> Result<()> {
        if obs.len() != self.policy.obs_dim() {
            return Err(RlError::InvalidArgument(format!(
                "expected obs of dim {}, got {}",
                self.policy.obs_dim(),
                obs.len()
            )));
        }
        Ok(())
    }

    /// Samples an action from `θ_a^old` (Algorithm 1 line 12). Updates the
    /// observation statistics when in training mode.
    pub fn act(&mut self, obs: &[f64], rng: &mut ChaCha8Rng) -> Result<ActOutput> {
        self.check_obs(obs)?;
        if self.training {
            self.obs_norm.update(obs);
        }
        self.act_frozen(obs, rng)
    }

    /// Samples an action from `θ_a^old` **without** mutating the agent: the
    /// observation statistics are read, never updated. This is the act path
    /// of the parallel rollout engine, where worker threads share one agent
    /// snapshot and the normalizer absorbs the raw observations later, at
    /// merge time, in a fixed order ([`PpoAgent::absorb_obs`]).
    pub fn act_frozen(&self, obs: &[f64], rng: &mut ChaCha8Rng) -> Result<ActOutput> {
        self.check_obs(obs)?;
        let norm_obs = self.obs_norm.normalize(obs);
        let (action, log_prob) = self.policy_old.sample(&norm_obs, rng)?;
        let value = self.value.predict(&norm_obs)?;
        Ok(ActOutput {
            norm_obs,
            action,
            log_prob,
            value,
        })
    }

    /// Runs the frozen act path over a whole stack of raw observations in
    /// one batched forward: per-row normalization with the frozen
    /// statistics, a single `θ_a^old` mean forward, and a single critic
    /// forward. Because every kernel computes each output row with a
    /// row-count-independent operation sequence, row `i` of the result is
    /// bit-identical to what [`PpoAgent::act_frozen`] computes for
    /// observation `i` alone — batching across environments never changes
    /// trained bits. The noise draw is deliberately *not* part of this
    /// call; see [`PpoAgent::sample_frozen_row`].
    pub fn forward_frozen_batch(&self, raw_obs: &[Vec<f64>]) -> Result<FrozenBatch> {
        let d = self.policy.obs_dim();
        let mut data = Vec::with_capacity(raw_obs.len() * d);
        for obs in raw_obs {
            self.check_obs(obs)?;
            data.extend(self.obs_norm.normalize(obs));
        }
        let norm_obs = Matrix::from_vec(raw_obs.len(), d, data)?;
        let means = self.policy_old.mean_actions(&norm_obs)?;
        let values = self.value.predict_batch(&norm_obs)?;
        Ok(FrozenBatch {
            norm_obs,
            means,
            values,
        })
    }

    /// Completes row `row` of a [`FrozenBatch`] into a full [`ActOutput`]
    /// by drawing the Gaussian noise from `rng` — the same draws, in the
    /// same order, that [`PpoAgent::act_frozen`] would have made on that
    /// observation with that RNG ([`GaussianPolicy::sample_with_mean`]
    /// shares the op sequence with `sample` by construction).
    pub fn sample_frozen_row(
        &self,
        batch: &FrozenBatch,
        row: usize,
        rng: &mut ChaCha8Rng,
    ) -> Result<ActOutput> {
        if row >= batch.means.rows() {
            return Err(RlError::InvalidArgument(format!(
                "frozen batch has {} rows, asked for row {row}",
                batch.means.rows()
            )));
        }
        let (action, log_prob) = self.policy_old.sample_with_mean(batch.means.row(row), rng);
        Ok(ActOutput {
            norm_obs: batch.norm_obs.row(row).to_vec(),
            action,
            log_prob,
            value: batch.values[row],
        })
    }

    /// Absorbs a raw observation into the normalizer statistics (training
    /// mode only) — the deferred half of [`PpoAgent::act_frozen`]. Calling
    /// `absorb_obs` then `act_frozen` on the same observation reproduces
    /// exactly what [`PpoAgent::act`] does in one step.
    pub fn absorb_obs(&mut self, obs: &[f64]) -> Result<()> {
        self.check_obs(obs)?;
        if self.training {
            self.obs_norm.update(obs);
        }
        Ok(())
    }

    /// Deterministic action — the current policy's mean. This is the online
    /// reasoning mode of Section V-B2 ("we only use the trained actor
    /// network to generate its action").
    pub fn act_mean(&self, obs: &[f64]) -> Result<Vec<f64>> {
        let norm = self.obs_norm.normalize(obs);
        self.policy.mean_action(&norm)
    }

    /// Critic value for bootstrapping the final transition of a rollout.
    pub fn bootstrap_value(&self, obs: &[f64]) -> Result<f64> {
        let norm = self.obs_norm.normalize(obs);
        self.value.predict(&norm)
    }

    /// Runs the Algorithm-1 update on a full (or partial) buffer:
    /// GAE advantages → `M` epochs of clipped-surrogate minibatch SGD on
    /// `θ_a` plus TD-target regression on `θ_v` → `θ_a^old ← θ_a`.
    ///
    /// `last_value` bootstraps value beyond the final stored transition
    /// (pass 0.0 if it terminated an episode). The caller clears the buffer
    /// afterwards.
    pub fn update(
        &mut self,
        buffer: &RolloutBuffer,
        last_value: f64,
        rng: &mut ChaCha8Rng,
    ) -> Result<UpdateStats> {
        let n = buffer.len();
        if n == 0 {
            return Err(RlError::InvalidArgument(
                "update called with empty buffer".to_string(),
            ));
        }
        let _update_span = self.recorder.span("update");
        let rewards = buffer.rewards();
        let (mut adv, returns) = {
            let _gae_span = self.recorder.span("gae");
            gae(
                &rewards,
                &buffer.values(),
                &buffer.dones(),
                last_value,
                self.config.gamma,
                self.config.gae_lambda,
            )
        };
        normalize_advantages(&mut adv);
        let reward_mean = rewards.iter().sum::<f64>() / n as f64;
        let reward_std = (rewards
            .iter()
            .map(|r| (r - reward_mean) * (r - reward_mean))
            .sum::<f64>()
            / n as f64)
            .sqrt();

        let obs = buffer.obs_matrix();
        let actions = buffer.action_matrix();
        let logp_old = buffer.log_probs();
        let values_old = buffer.values();
        let mb_size = self.config.minibatch_size.min(n);
        let clip = self.config.clip;

        let mut total_ploss = 0.0;
        let mut total_vloss = 0.0;
        let mut total_kl = 0.0;
        let mut total_clipped = 0usize;
        let mut total_samples = 0usize;
        let mut minibatches = 0usize;
        let mut epochs_run = 0usize;
        let mut total_gnorm = 0.0;

        let _epochs_span = self.recorder.span("epochs");
        let mut indices: Vec<usize> = (0..n).collect();
        'epochs: for _epoch in 0..self.config.epochs {
            epochs_run += 1;
            indices.shuffle(rng);
            let mut epoch_kl = 0.0;
            let mut epoch_batches = 0usize;
            for chunk in indices.chunks(mb_size) {
                let obs_mb = obs.gather_rows(chunk)?;
                let act_mb = actions.gather_rows(chunk)?;
                let bs = chunk.len() as f64;

                // ---- actor: clipped surrogate + entropy bonus ----
                self.policy.zero_grad();
                let means = self.policy.forward_means(&obs_mb)?;
                let logp_new = self.policy.log_prob_batch(&means, &act_mb)?;
                let mut dl_dlogp = vec![0.0; chunk.len()];
                let mut ploss = 0.0;
                let mut kl = 0.0;
                for (i, &gi) in chunk.iter().enumerate() {
                    let ratio = (logp_new[i] - logp_old[gi]).exp();
                    let a = adv[gi];
                    let surr1 = ratio * a;
                    let clipped_ratio = ratio.clamp(1.0 - clip, 1.0 + clip);
                    let surr2 = clipped_ratio * a;
                    ploss -= surr1.min(surr2);
                    if surr1 <= surr2 {
                        // Unclipped branch active: gradient flows.
                        dl_dlogp[i] = -a * ratio / bs;
                    } else {
                        total_clipped += 1;
                    }
                    kl += logp_old[gi] - logp_new[i];
                }
                ploss /= bs;
                kl /= bs;
                let ent = self.policy.entropy();
                let full_loss = ploss - self.config.entropy_coef * ent;
                if !full_loss.is_finite() {
                    return Err(RlError::Diverged(format!(
                        "non-finite policy loss {full_loss}"
                    )));
                }
                self.policy
                    .accumulate_logprob_grads(&means, &act_mb, &dl_dlogp)?;
                // d(−c_ent · H)/d lnσ_d = −c_ent.
                self.policy
                    .add_uniform_log_std_grad(-self.config.entropy_coef);
                total_gnorm += self
                    .policy
                    .mean_net_mut()
                    .clip_grad_norm(self.config.max_grad_norm);
                self.actor_opt.step(self.policy.mean_net_mut());
                let ls_grads = self.policy.log_std_grad().to_vec();
                let deltas = self.log_std_opt.step(&ls_grads);
                self.policy.apply_log_std_delta(&deltas);

                // ---- critic: regression onto GAE returns (λ_GAE = 0 makes
                // these exactly the TD targets of Algorithm 1 line 20);
                // optionally PPO2-clipped against the at-sampling values ----
                let ret_mb = Matrix::from_vec(
                    chunk.len(),
                    1,
                    chunk.iter().map(|&gi| returns[gi]).collect(),
                )?;
                let pred = self.value.forward(&obs_mb)?;
                let (vloss, dv) = match self.config.value_clip {
                    None => loss::mse(&pred, &ret_mb)?,
                    Some(vclip) => {
                        let bs_f = chunk.len().max(1) as f64;
                        let mut l = 0.0;
                        let mut grad = Matrix::zeros(pred.rows(), 1);
                        let gdata = grad.data_mut();
                        for (i, &gi) in chunk.iter().enumerate() {
                            let v = pred.get(i, 0);
                            let vo = values_old[gi];
                            let ret = returns[gi];
                            let vc = vo + (v - vo).clamp(-vclip, vclip);
                            let l1 = (v - ret) * (v - ret);
                            let l2 = (vc - ret) * (vc - ret);
                            if l1 >= l2 {
                                l += l1;
                                gdata[i] = 2.0 * (v - ret) / bs_f;
                            } else {
                                // Clipped branch dominates; if the clamp is
                                // binding the gradient through v vanishes.
                                l += l2;
                            }
                        }
                        (l / bs_f, grad)
                    }
                };
                if !vloss.is_finite() {
                    return Err(RlError::Diverged(format!("non-finite value loss {vloss}")));
                }
                self.value.net_mut().zero_grad();
                self.value.net_mut().backward(&dv)?;
                self.value
                    .net_mut()
                    .clip_grad_norm(self.config.max_grad_norm);
                self.critic_opt.step(self.value.net_mut());

                total_ploss += ploss;
                total_vloss += vloss;
                total_kl += kl;
                epoch_kl += kl;
                epoch_batches += 1;
                total_samples += chunk.len();
                minibatches += 1;
            }
            if let Some(tkl) = self.config.target_kl {
                if epoch_kl / epoch_batches.max(1) as f64 > 1.5 * tkl {
                    break 'epochs;
                }
            }
        }

        drop(_epochs_span);

        // Optional learning-rate annealing.
        if self.config.lr_decay < 1.0 {
            let d = self.config.lr_decay;
            let lr = self.actor_opt.learning_rate() * d;
            self.actor_opt.set_learning_rate(lr);
            let lr = self.critic_opt.learning_rate() * d;
            self.critic_opt.set_learning_rate(lr);
            self.log_std_opt.lr *= d;
        }

        // Algorithm 1 line 22: θ_a^old ← θ_a.
        self.policy_old.copy_params_from(&self.policy)?;
        if self.test_poison == Some(self.updates_done) {
            // Armed fault: corrupt one actor weight so the finiteness check
            // below fires with a genuine NaN in the parameters.
            self.test_poison = None;
            let mut first = true;
            self.policy.mean_net_mut().visit_params(|p, _| {
                if first {
                    *p = f64::NAN;
                    first = false;
                }
            });
        }
        if !self.policy.is_finite() || !self.value.is_finite() {
            return Err(RlError::Diverged(
                "non-finite parameters after update".to_string(),
            ));
        }
        self.updates_done += 1;

        let mbf = minibatches.max(1) as f64;
        let stats = UpdateStats {
            policy_loss: total_ploss / mbf,
            value_loss: total_vloss / mbf,
            entropy: self.policy.entropy(),
            approx_kl: total_kl / mbf,
            clip_fraction: total_clipped as f64 / total_samples.max(1) as f64,
            minibatches,
            epochs_run,
            grad_norm: total_gnorm / mbf,
            reward_mean,
            reward_std,
        };
        self.emit_update_event(&stats);
        Ok(stats)
    }

    /// Emits the deterministic `ppo_update` event for a just-completed
    /// update. Every field is a pure function of training state, so the
    /// event is invariant to worker count and resume boundaries; the key
    /// is the lifetime update index, which survives checkpoints.
    fn emit_update_event(&self, stats: &UpdateStats) {
        if !self.recorder.is_enabled() {
            return;
        }
        let idx = self.updates_done - 1;
        let (lr_actor, lr_critic) = self.learning_rates();
        let l2 = |xs: &[f64]| xs.iter().map(|x| x * x).sum::<f64>().sqrt();
        self.recorder.emit(
            Event::det("ppo_update", format!("u{idx:08}"))
                .u("update", idx)
                .f("policy_loss", stats.policy_loss)
                .f("value_loss", stats.value_loss)
                .f("entropy", stats.entropy)
                .f("approx_kl", stats.approx_kl)
                .f("clip_fraction", stats.clip_fraction)
                .f("grad_norm", stats.grad_norm)
                .f("reward_mean", stats.reward_mean)
                .f("reward_std", stats.reward_std)
                .u("minibatches", stats.minibatches as u64)
                .u("epochs_run", stats.epochs_run as u64)
                .f("lr_actor", lr_actor)
                .f("lr_critic", lr_critic)
                .f("obs_norm_count", self.obs_norm.count())
                .f("obs_norm_mean_l2", l2(self.obs_norm.mean()))
                .f("obs_norm_std_l2", l2(&self.obs_norm.std())),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Transition;
    use crate::env::testenv::QuadEnv;
    use crate::env::Environment;
    use rand::SeedableRng;

    fn small_config() -> PpoConfig {
        PpoConfig {
            hidden: vec![16],
            epochs: 5,
            minibatch_size: 64,
            actor_lr: 3e-3,
            critic_lr: 3e-3,
            buffer_capacity: 256,
            entropy_coef: 0.001,
            target_kl: None,
            ..PpoConfig::default()
        }
    }

    /// Runs episodes, returns mean reward of first and last quarter.
    fn train_quad(episodes: usize, seed: u64) -> (f64, f64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut env = QuadEnv::new(16);
        let mut agent = PpoAgent::new(1, 1, small_config(), &mut rng).unwrap();
        let mut buffer = agent.make_buffer().unwrap();
        let mut episode_rewards = Vec::new();
        for _ in 0..episodes {
            let mut obs = env.reset(&mut rng).unwrap();
            let mut total = 0.0;
            loop {
                let out = agent.act(&obs, &mut rng).unwrap();
                let step = env.step(&out.action).unwrap();
                total += step.reward;
                buffer
                    .push(Transition {
                        obs: out.norm_obs,
                        action: out.action,
                        log_prob: out.log_prob,
                        reward: step.reward,
                        value: out.value,
                        done: step.done,
                    })
                    .unwrap();
                if buffer.is_full() {
                    let last_v = if step.done {
                        0.0
                    } else {
                        agent.bootstrap_value(&step.obs).unwrap()
                    };
                    agent.update(&buffer, last_v, &mut rng).unwrap();
                    buffer.clear();
                }
                obs = step.obs;
                if step.done {
                    break;
                }
            }
            episode_rewards.push(total);
        }
        let q = episodes / 4;
        let first: f64 = episode_rewards[..q].iter().sum::<f64>() / q as f64;
        let last: f64 = episode_rewards[episodes - q..].iter().sum::<f64>() / q as f64;
        (first, last)
    }

    #[test]
    fn config_validation() {
        let mut c = PpoConfig::default();
        assert!(c.validate().is_ok());
        c.clip = 0.0;
        assert!(c.validate().is_err());
        let c = PpoConfig {
            gamma: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = PpoConfig {
            epochs: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = PpoConfig {
            entropy_coef: -0.1,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn act_shapes_and_obs_dim_check() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut agent = PpoAgent::new(3, 2, small_config(), &mut rng).unwrap();
        let out = agent.act(&[0.1, 0.2, 0.3], &mut rng).unwrap();
        assert_eq!(out.action.len(), 2);
        assert_eq!(out.norm_obs.len(), 3);
        assert!(out.log_prob.is_finite());
        assert!(out.value.is_finite());
        assert!(agent.act(&[0.1], &mut rng).is_err());
    }

    #[test]
    fn eval_mode_freezes_obs_stats() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut agent = PpoAgent::new(1, 1, small_config(), &mut rng).unwrap();
        agent.act(&[5.0], &mut rng).unwrap();
        let count_before = agent.obs_norm().count();
        agent.set_training(false);
        agent.act(&[7.0], &mut rng).unwrap();
        assert_eq!(agent.obs_norm().count(), count_before);
    }

    #[test]
    fn update_rejects_empty_buffer() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut agent = PpoAgent::new(1, 1, small_config(), &mut rng).unwrap();
        let buffer = agent.make_buffer().unwrap();
        assert!(agent.update(&buffer, 0.0, &mut rng).is_err());
    }

    #[test]
    fn update_produces_finite_stats_and_syncs_old_policy() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut env = QuadEnv::new(8);
        let mut agent = PpoAgent::new(1, 1, small_config(), &mut rng).unwrap();
        let mut buffer = agent.make_buffer().unwrap();
        let mut obs = env.reset(&mut rng).unwrap();
        while !buffer.is_full() {
            let out = agent.act(&obs, &mut rng).unwrap();
            let step = env.step(&out.action).unwrap();
            buffer
                .push(Transition {
                    obs: out.norm_obs,
                    action: out.action,
                    log_prob: out.log_prob,
                    reward: step.reward,
                    value: out.value,
                    done: step.done,
                })
                .unwrap();
            obs = if step.done {
                env.reset(&mut rng).unwrap()
            } else {
                step.obs
            };
        }
        let stats = agent.update(&buffer, 0.0, &mut rng).unwrap();
        assert!(stats.policy_loss.is_finite());
        assert!(stats.value_loss.is_finite());
        assert!(stats.entropy.is_finite());
        assert!(stats.minibatches > 0);
        assert!(stats.epochs_run >= 1);
        assert!((0.0..=1.0).contains(&stats.clip_fraction));
        // θ_old synced to θ.
        assert_eq!(
            agent.policy.mean_net().export_params(),
            agent.policy_old.mean_net().export_params()
        );
    }

    #[test]
    fn ppo_learns_quadratic_tracking() {
        let (first, last) = train_quad(400, 42);
        // Initial random policy is far off; trained policy should close most
        // of the gap toward 0 (the optimum).
        assert!(
            last > first * 0.5 && last > -2.0,
            "no learning: first={first}, last={last}"
        );
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let a = train_quad(40, 7);
        let b = train_quad(40, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn act_mean_is_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let agent = PpoAgent::new(2, 1, small_config(), &mut rng).unwrap();
        let a1 = agent.act_mean(&[0.5, -0.5]).unwrap();
        let a2 = agent.act_mean(&[0.5, -0.5]).unwrap();
        assert_eq!(a1, a2);
    }

    /// Fills a buffer from QuadEnv for update-path tests.
    fn filled_buffer(agent: &mut PpoAgent, rng: &mut ChaCha8Rng) -> crate::RolloutBuffer {
        let mut env = QuadEnv::new(8);
        let mut buffer = agent.make_buffer().unwrap();
        let mut obs = env.reset(rng).unwrap();
        while !buffer.is_full() {
            let out = agent.act(&obs, rng).unwrap();
            let step = env.step(&out.action).unwrap();
            buffer
                .push(Transition {
                    obs: out.norm_obs,
                    action: out.action,
                    log_prob: out.log_prob,
                    reward: step.reward,
                    value: out.value,
                    done: step.done,
                })
                .unwrap();
            obs = if step.done {
                env.reset(rng).unwrap()
            } else {
                step.obs
            };
        }
        buffer
    }

    /// Checkpoint/resume is exact: a restored agent takes the same
    /// deterministic actions and — given the same RNG stream — performs the
    /// same update as the original.
    #[test]
    fn agent_checkpoint_roundtrip_is_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(30);
        let mut agent = PpoAgent::new(1, 1, small_config(), &mut rng).unwrap();
        // Move past the initial state so optimizer moments are non-trivial.
        let buffer = filled_buffer(&mut agent, &mut rng);
        agent.update(&buffer, 0.0, &mut rng).unwrap();

        let json = agent.to_json().unwrap();
        let mut restored = PpoAgent::from_json(&json).unwrap();
        assert_eq!(
            agent.act_mean(&[0.3]).unwrap(),
            restored.act_mean(&[0.3]).unwrap()
        );
        // Same RNG stream → identical subsequent update.
        let mut r1 = ChaCha8Rng::seed_from_u64(31);
        let mut r2 = ChaCha8Rng::seed_from_u64(31);
        let s1 = agent.update(&buffer, 0.0, &mut r1).unwrap();
        let s2 = restored.update(&buffer, 0.0, &mut r2).unwrap();
        assert!((s1.policy_loss - s2.policy_loss).abs() < 1e-12);
        assert!((s1.value_loss - s2.value_loss).abs() < 1e-12);
        assert!(PpoAgent::from_json("{broken").is_err());
    }

    #[test]
    fn poison_hook_fires_once_and_restore_disarms_it() {
        let mut rng = ChaCha8Rng::seed_from_u64(40);
        let mut agent = PpoAgent::new(1, 1, small_config(), &mut rng).unwrap();
        let buffer = filled_buffer(&mut agent, &mut rng);
        let snapshot = agent.to_json().unwrap();

        agent.poison_update_for_test(agent.updates_done());
        let err = agent.update(&buffer, 0.0, &mut rng).unwrap_err();
        assert!(matches!(err, RlError::Diverged(_)), "got {err:?}");
        assert_eq!(agent.updates_done(), 0, "failed update must not count");

        // Restoring the pre-poison snapshot clears the (skip-serialized)
        // poison flag: the same update now succeeds.
        let mut restored = PpoAgent::from_json(&snapshot).unwrap();
        restored.update(&buffer, 0.0, &mut rng).unwrap();
        assert_eq!(restored.updates_done(), 1);
    }

    #[test]
    fn scale_learning_rates_hits_all_three_optimizers() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let mut agent = PpoAgent::new(1, 1, small_config(), &mut rng).unwrap();
        let (a0, c0) = agent.learning_rates();
        let ls0 = agent.log_std_opt.lr;
        agent.scale_learning_rates(0.5);
        let (a1, c1) = agent.learning_rates();
        assert!((a1 - a0 * 0.5).abs() < 1e-15);
        assert!((c1 - c0 * 0.5).abs() < 1e-15);
        assert!((agent.log_std_opt.lr - ls0 * 0.5).abs() < 1e-15);
    }

    #[test]
    fn lr_decay_anneals_learning_rates() {
        let mut rng = ChaCha8Rng::seed_from_u64(20);
        let mut config = small_config();
        config.lr_decay = 0.5;
        let lr0 = config.actor_lr;
        let mut agent = PpoAgent::new(1, 1, config, &mut rng).unwrap();
        let buffer = filled_buffer(&mut agent, &mut rng);
        agent.update(&buffer, 0.0, &mut rng).unwrap();
        assert!((agent.actor_opt.learning_rate() - lr0 * 0.5).abs() < 1e-12);
        agent.update(&buffer, 0.0, &mut rng).unwrap();
        assert!((agent.actor_opt.learning_rate() - lr0 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn value_clip_update_is_finite_and_learns() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut config = small_config();
        config.value_clip = Some(0.2);
        let mut agent = PpoAgent::new(1, 1, config, &mut rng).unwrap();
        let buffer = filled_buffer(&mut agent, &mut rng);
        let stats = agent.update(&buffer, 0.0, &mut rng).unwrap();
        assert!(stats.value_loss.is_finite());
        assert!(stats.policy_loss.is_finite());
    }

    #[test]
    fn config_rejects_bad_extensions() {
        let c = PpoConfig {
            lr_decay: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = PpoConfig {
            lr_decay: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = PpoConfig {
            value_clip: Some(0.0),
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    /// Batched-rollout contract at the agent level: for any batch size, the
    /// frozen batched forward plus a per-row noise draw reproduces
    /// `act_frozen` bit-for-bit — normalized obs, action, log-prob, value,
    /// and the RNG position afterwards.
    #[test]
    fn frozen_batch_rows_match_act_frozen_bitwise() {
        let mut rng = ChaCha8Rng::seed_from_u64(50);
        let mut agent = PpoAgent::new(3, 2, small_config(), &mut rng).unwrap();
        // Warm the normalizer so normalization is non-trivial.
        for i in 0..16 {
            let o = [(i as f64 * 0.3).sin(), i as f64 * 0.1, -0.2 * i as f64];
            agent.act(&o, &mut rng).unwrap();
        }
        for n in [1usize, 7, 32] {
            let obs: Vec<Vec<f64>> = (0..n)
                .map(|i| (0..3).map(|j| ((i * 3 + j) as f64 * 0.23).cos()).collect())
                .collect();
            let batch = agent.forward_frozen_batch(&obs).unwrap();
            for (i, o) in obs.iter().enumerate() {
                let mut r1 = ChaCha8Rng::seed_from_u64(60 + i as u64);
                let mut r2 = r1.clone();
                let single = agent.act_frozen(o, &mut r1).unwrap();
                let from_batch = agent.sample_frozen_row(&batch, i, &mut r2).unwrap();
                let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(
                    bits(&single.norm_obs),
                    bits(&from_batch.norm_obs),
                    "n={n} row {i}"
                );
                assert_eq!(
                    bits(&single.action),
                    bits(&from_batch.action),
                    "n={n} row {i}"
                );
                assert_eq!(single.log_prob.to_bits(), from_batch.log_prob.to_bits());
                assert_eq!(single.value.to_bits(), from_batch.value.to_bits());
                assert_eq!(r1, r2, "identical RNG consumption");
            }
        }
        // Out-of-range row and bad obs dims are rejected.
        let batch = agent.forward_frozen_batch(&[vec![0.0; 3]]).unwrap();
        assert!(agent.sample_frozen_row(&batch, 1, &mut rng).is_err());
        assert!(agent.forward_frozen_batch(&[vec![0.0; 2]]).is_err());
    }

    #[test]
    fn kl_early_stop_limits_epochs() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut config = small_config();
        config.target_kl = Some(1e-9); // stop immediately after first epoch
        config.epochs = 10;
        let mut env = QuadEnv::new(8);
        let mut agent = PpoAgent::new(1, 1, config, &mut rng).unwrap();
        let mut buffer = agent.make_buffer().unwrap();
        let mut obs = env.reset(&mut rng).unwrap();
        while !buffer.is_full() {
            let out = agent.act(&obs, &mut rng).unwrap();
            let step = env.step(&out.action).unwrap();
            buffer
                .push(Transition {
                    obs: out.norm_obs,
                    action: out.action,
                    log_prob: out.log_prob,
                    reward: step.reward,
                    value: out.value,
                    done: step.done,
                })
                .unwrap();
            obs = if step.done {
                env.reset(&mut rng).unwrap()
            } else {
                step.obs
            };
        }
        let stats = agent.update(&buffer, 0.0, &mut rng).unwrap();
        assert!(
            stats.epochs_run < 10,
            "expected early stop, ran {}",
            stats.epochs_run
        );
    }
}
