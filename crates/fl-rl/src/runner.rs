//! Generic rollout collection and policy evaluation helpers.
//!
//! These wrap the act → step → store loop that every user of
//! [`PpoAgent`] + [`Environment`] otherwise hand-writes (Algorithm 1
//! lines 11–16), including the buffer-full update trigger and episode
//! bookkeeping.

use crate::buffer::{RolloutBuffer, Transition};
use crate::env::Environment;
use crate::ppo::{PpoAgent, UpdateStats};
use crate::Result;
use rand_chacha::ChaCha8Rng;

/// Outcome of [`train_steps`].
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutSummary {
    /// Environment steps executed.
    pub steps: usize,
    /// Episodes completed (terminal `done` seen).
    pub episodes_completed: usize,
    /// Total (undiscounted, unscaled) reward collected.
    pub total_reward: f64,
    /// PPO updates triggered by buffer fills.
    pub updates: Vec<UpdateStats>,
}

/// Runs the agent against `env` for exactly `steps` environment steps,
/// pushing transitions into `buffer` and performing a PPO update (then
/// clearing the buffer) every time it fills — Algorithm 1's inner loop,
/// detached from any particular environment.
///
/// Episodes reset automatically at terminal states; the rollout may start
/// and stop mid-episode (values bootstrap across the boundary).
pub fn train_steps<E: Environment>(
    agent: &mut PpoAgent,
    env: &mut E,
    buffer: &mut RolloutBuffer,
    steps: usize,
    rng: &mut ChaCha8Rng,
) -> Result<RolloutSummary> {
    let mut obs = env.reset(rng)?;
    let mut summary = RolloutSummary {
        steps: 0,
        episodes_completed: 0,
        total_reward: 0.0,
        updates: Vec::new(),
    };
    for _ in 0..steps {
        let out = agent.act(&obs, rng)?;
        let step = env.step(&out.action)?;
        summary.total_reward += step.reward;
        summary.steps += 1;
        buffer.push(Transition {
            obs: out.norm_obs,
            action: out.action,
            log_prob: out.log_prob,
            reward: step.reward,
            value: out.value,
            done: step.done,
        })?;
        if buffer.is_full() {
            let last_value = if step.done {
                0.0
            } else {
                agent.bootstrap_value(&step.obs)?
            };
            summary.updates.push(agent.update(buffer, last_value, rng)?);
            buffer.clear();
        }
        if step.done {
            summary.episodes_completed += 1;
            obs = env.reset(rng)?;
        } else {
            obs = step.obs;
        }
    }
    Ok(summary)
}

/// Evaluates the current (deterministic, mean-action) policy for
/// `episodes` episodes and returns the mean episode reward. Does not touch
/// observation statistics or parameters.
pub fn evaluate_mean_reward<E: Environment>(
    agent: &PpoAgent,
    env: &mut E,
    episodes: usize,
    max_steps_per_episode: usize,
    rng: &mut ChaCha8Rng,
) -> Result<f64> {
    let mut total = 0.0;
    for _ in 0..episodes.max(1) {
        let mut obs = env.reset(rng)?;
        for _ in 0..max_steps_per_episode {
            let action = agent.act_mean(&obs)?;
            let step = env.step(&action)?;
            total += step.reward;
            if step.done {
                break;
            }
            obs = step.obs;
        }
    }
    Ok(total / episodes.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::testenv::QuadEnv;
    use crate::ppo::PpoConfig;
    use rand::SeedableRng;

    fn agent(rng: &mut ChaCha8Rng) -> PpoAgent {
        PpoAgent::new(
            1,
            1,
            PpoConfig {
                hidden: vec![16],
                buffer_capacity: 128,
                minibatch_size: 64,
                epochs: 4,
                actor_lr: 3e-3,
                critic_lr: 3e-3,
                target_kl: None,
                ..PpoConfig::default()
            },
            rng,
        )
        .unwrap()
    }

    #[test]
    fn train_steps_bookkeeping() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut a = agent(&mut rng);
        let mut env = QuadEnv::new(10);
        let mut buffer = a.make_buffer().unwrap();
        let summary = train_steps(&mut a, &mut env, &mut buffer, 300, &mut rng).unwrap();
        assert_eq!(summary.steps, 300);
        // 300 steps / 10-step episodes, resets inclusive.
        assert_eq!(summary.episodes_completed, 30);
        // 300 / 128 → 2 updates, remainder left in the buffer.
        assert_eq!(summary.updates.len(), 2);
        assert_eq!(buffer.len(), 300 - 2 * 128);
        assert!(summary.total_reward.is_finite());
    }

    #[test]
    fn runner_training_improves_policy() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut a = agent(&mut rng);
        let mut env = QuadEnv::new(16);
        let before =
            evaluate_mean_reward(&a, &mut env, 20, 16, &mut rng).unwrap();
        let mut buffer = a.make_buffer().unwrap();
        train_steps(&mut a, &mut env, &mut buffer, 4000, &mut rng).unwrap();
        let after = evaluate_mean_reward(&a, &mut env, 20, 16, &mut rng).unwrap();
        assert!(
            after > before,
            "no improvement: before={before}, after={after}"
        );
    }

    #[test]
    fn evaluation_is_side_effect_free() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = agent(&mut rng);
        let params = a.policy().mean_net().export_params();
        let count = a.obs_norm().count();
        let mut env = QuadEnv::new(5);
        evaluate_mean_reward(&a, &mut env, 5, 5, &mut rng).unwrap();
        assert_eq!(a.policy().mean_net().export_params(), params);
        assert_eq!(a.obs_norm().count(), count);
    }
}
