//! Generic rollout collection and policy evaluation helpers.
//!
//! These wrap the act → step → store loop that every user of
//! [`PpoAgent`] + [`Environment`] otherwise hand-writes (Algorithm 1
//! lines 11–16), including the buffer-full update trigger and episode
//! bookkeeping.

use crate::buffer::{RolloutBuffer, Transition};
use crate::env::{Environment, SnapshotEnv, Step};
use crate::pool::{self, WorkerStats};
use crate::ppo::{PpoAgent, UpdateStats};
use crate::snapshot::RngState;
use crate::{Result, RlError};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize, Value};
use std::time::{Duration, Instant};

/// Outcome of [`train_steps`].
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutSummary {
    /// Environment steps executed.
    pub steps: usize,
    /// Episodes completed (terminal `done` seen).
    pub episodes_completed: usize,
    /// Total (undiscounted, unscaled) reward collected.
    pub total_reward: f64,
    /// PPO updates triggered by buffer fills.
    pub updates: Vec<UpdateStats>,
}

/// Runs the agent against `env` for exactly `steps` environment steps,
/// pushing transitions into `buffer` and performing a PPO update (then
/// clearing the buffer) every time it fills — Algorithm 1's inner loop,
/// detached from any particular environment.
///
/// Episodes reset automatically at terminal states; the rollout may start
/// and stop mid-episode (values bootstrap across the boundary).
pub fn train_steps<E: Environment>(
    agent: &mut PpoAgent,
    env: &mut E,
    buffer: &mut RolloutBuffer,
    steps: usize,
    rng: &mut ChaCha8Rng,
) -> Result<RolloutSummary> {
    let mut obs = env.reset(rng)?;
    let mut summary = RolloutSummary {
        steps: 0,
        episodes_completed: 0,
        total_reward: 0.0,
        updates: Vec::new(),
    };
    for _ in 0..steps {
        let out = agent.act(&obs, rng)?;
        let step = env.step(&out.action)?;
        summary.total_reward += step.reward;
        summary.steps += 1;
        buffer.push(Transition {
            obs: out.norm_obs,
            action: out.action,
            log_prob: out.log_prob,
            reward: step.reward,
            value: out.value,
            done: step.done,
        })?;
        if buffer.is_full() {
            let last_value = if step.done {
                0.0
            } else {
                agent.bootstrap_value(&step.obs)?
            };
            summary.updates.push(agent.update(buffer, last_value, rng)?);
            buffer.clear();
        }
        if step.done {
            summary.episodes_completed += 1;
            obs = env.reset(rng)?;
        } else {
            obs = step.obs;
        }
    }
    Ok(summary)
}

/// Evaluates the current (deterministic, mean-action) policy for
/// `episodes` episodes and returns the mean episode reward. Does not touch
/// observation statistics or parameters.
pub fn evaluate_mean_reward<E: Environment>(
    agent: &PpoAgent,
    env: &mut E,
    episodes: usize,
    max_steps_per_episode: usize,
    rng: &mut ChaCha8Rng,
) -> Result<f64> {
    let mut total = 0.0;
    for _ in 0..episodes.max(1) {
        let mut obs = env.reset(rng)?;
        for _ in 0..max_steps_per_episode {
            let action = agent.act_mean(&obs)?;
            let step = env.step(&action)?;
            total += step.reward;
            if step.done {
                break;
            }
            obs = step.obs;
        }
    }
    Ok(total / episodes.max(1) as f64)
}

/// One completed episode observed by [`VecEnvRunner::train_steps`].
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeReport {
    /// Index of the environment instance the episode ran in.
    pub env: usize,
    /// Total (undiscounted, unscaled) episode reward.
    pub total_reward: f64,
    /// Mean of [`Environment::step_metric`] over the episode (falls back to
    /// `-reward` per step when the environment reports `None`).
    pub mean_metric: f64,
    /// Episode length in steps.
    pub steps: usize,
}

/// How [`VecEnvRunner::train_steps`] schedules policy inference during
/// collection. The two modes are **bit-identical** by construction (see the
/// determinism contract on [`VecEnvRunner`]); the choice is purely
/// physical, like the worker cap, and is therefore not part of
/// [`RunnerState`] — a resumed run may switch modes freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutMode {
    /// One pool task per environment: each task advances its environment
    /// through the whole chunk, calling the frozen agent once per step
    /// (`1 × obs_dim` forwards).
    PerEnv,
    /// Split-step lockstep: every step gathers all environments'
    /// observations, runs ONE `n_envs × obs_dim` frozen forward through the
    /// policy and value heads, scatters the per-environment Gaussian draws
    /// back in environment order, and fans the RNG-free `env.step` calls
    /// out over the pool. Amortizes per-forward overhead across the fleet.
    Batched,
}

impl RolloutMode {
    /// Resolves the mode from the `FL_ROLLOUT` environment variable:
    /// `per-env` (or `per_env`/`perenv`) selects [`RolloutMode::PerEnv`];
    /// everything else — including unset — selects the default,
    /// [`RolloutMode::Batched`]. Batched is a safe default because the two
    /// modes produce identical bits.
    pub fn from_env() -> Self {
        match std::env::var("FL_ROLLOUT") {
            Ok(raw) => {
                let v = raw.trim().to_ascii_lowercase();
                if v == "per-env" || v == "per_env" || v == "perenv" {
                    RolloutMode::PerEnv
                } else {
                    RolloutMode::Batched
                }
            }
            Err(_) => RolloutMode::Batched,
        }
    }
}

/// Outcome of one [`VecEnvRunner::train_steps`] collection round.
#[derive(Debug, Clone)]
pub struct VecRolloutSummary {
    /// Environment steps executed (`n_envs × steps_per_env`).
    pub steps: usize,
    /// Episodes that completed this round, in merge (environment) order.
    pub episodes: Vec<EpisodeReport>,
    /// Total raw reward collected across all environments.
    pub total_reward: f64,
    /// PPO updates triggered by buffer fills during the merge.
    pub updates: Vec<UpdateStats>,
    /// Per-worker execution telemetry from the collection fan-out.
    pub workers: Vec<WorkerStats>,
    /// Wall-clock duration of the collection fan-out (excludes the merge).
    pub collect_wall: Duration,
}

/// Everything a worker records about one environment step. `raw_obs` is
/// kept so the merge can replay the normalizer updates the frozen-agent
/// fan-out deferred; `next_raw_obs` feeds the bootstrap value when a buffer
/// fill lands on this transition.
struct StepRecord {
    raw_obs: Vec<f64>,
    norm_obs: Vec<f64>,
    action: Vec<f64>,
    log_prob: f64,
    reward: f64,
    value: f64,
    done: bool,
    next_raw_obs: Vec<f64>,
}

struct ChunkOutput {
    records: Vec<StepRecord>,
    episodes: Vec<EpisodeReport>,
}

struct EnvSlot<E> {
    env: E,
    rng: ChaCha8Rng,
    /// Raw observation the next action will see; `None` before first reset.
    obs: Option<Vec<f64>>,
    // Accumulators for the episode in progress (episodes may span rounds).
    ep_reward: f64,
    ep_metric_sum: f64,
    ep_steps: usize,
}

/// Serialized state of one environment slot — everything [`EnvSlot`] holds,
/// with the environment flattened through [`SnapshotEnv`] and the RNG
/// through [`RngState`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotState {
    /// Environment state ([`SnapshotEnv::export_env_state`]).
    pub env: Value,
    /// Exact per-slot RNG stream position.
    pub rng: RngState,
    /// Pending raw observation (`None` before the slot's first reset).
    pub obs: Option<Vec<f64>>,
    /// Reward accumulated in the episode in progress.
    pub ep_reward: f64,
    /// Metric sum of the episode in progress.
    pub ep_metric_sum: f64,
    /// Steps taken in the episode in progress.
    pub ep_steps: usize,
}

/// Complete mutable state of a [`VecEnvRunner`], captured at a round
/// boundary. Restoring it into a runner of the same shape reproduces the
/// original's future bit-for-bit (see the determinism contract).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunnerState {
    /// Per-environment slot states, in environment order.
    pub slots: Vec<SlotState>,
}

/// Steps `N` independent environment instances in parallel on a
/// work-stealing pool, feeding one shared rollout buffer — the vectorized
/// form of [`train_steps`].
///
/// # Determinism contract
///
/// For a fixed master seed and `n_envs`, results are **bit-identical for
/// every worker count** (1 thread, 8 threads, or anything else). Three
/// mechanisms make that hold:
///
/// 1. **Per-environment RNG streams.** Environment `i` owns a
///    [`ChaCha8Rng`] seeded from the master seed on stream `i + 1`
///    (stream 0 is left to the caller's master RNG, which only drives PPO
///    minibatch shuffling). No worker ever touches another's stream.
/// 2. **Frozen agent during collection.** Workers act through
///    [`PpoAgent::act_frozen`] on a snapshot taken at round start, so a
///    trajectory depends only on (snapshot, env state, env stream) — never
///    on scheduling.
/// 3. **Fixed merge order.** Transitions enter the shared buffer in
///    environment-index order; deferred normalizer updates
///    ([`PpoAgent::absorb_obs`]) and buffer-fill PPO updates replay in that
///    same order on the calling thread.
///
/// The results *do* depend on `n_envs`: vectorization changes the data
/// order relative to serial [`train_steps`], which is why the contract is
/// stated per-configuration, not against the serial path.
///
/// A fourth mechanism extends the contract across [`RolloutMode`]s: the
/// batched split-step path computes the same per-row bits as the per-env
/// path because every kernel evaluates each output row with a
/// row-count-independent operation sequence, and it consumes each slot's
/// RNG stream at exactly the same positions (reset draws and per-step noise
/// draws interleave identically per stream). So `PerEnv` vs `Batched` is
/// bit-invisible too — only wall-clock changes.
pub struct VecEnvRunner<E> {
    slots: Vec<EnvSlot<E>>,
    workers: usize,
    rollout: RolloutMode,
    /// Observability hub (disabled by default): times the rollout fan-out
    /// and records per-round pool telemetry. Never consumes RNG, never
    /// branches collection.
    recorder: fl_obs::Recorder,
}

impl<E: Environment + Send> VecEnvRunner<E> {
    /// Builds a runner over `envs` instances. Environment `i` draws from
    /// ChaCha8 stream `i + 1` of `master_seed`; `workers` caps the thread
    /// pool (pass 1 to force the serial reference behavior).
    pub fn new(envs: Vec<E>, master_seed: u64, workers: usize) -> Result<Self> {
        if envs.is_empty() {
            return Err(RlError::InvalidArgument(
                "VecEnvRunner needs at least one environment".to_string(),
            ));
        }
        let slots = envs
            .into_iter()
            .enumerate()
            .map(|(i, env)| {
                let mut rng = ChaCha8Rng::seed_from_u64(master_seed);
                rng.set_stream(i as u64 + 1);
                EnvSlot {
                    env,
                    rng,
                    obs: None,
                    ep_reward: 0.0,
                    ep_metric_sum: 0.0,
                    ep_steps: 0,
                }
            })
            .collect();
        Ok(VecEnvRunner {
            slots,
            workers: workers.max(1),
            rollout: RolloutMode::from_env(),
            recorder: fl_obs::Recorder::disabled(),
        })
    }

    /// Attaches an observability recorder for rollout spans and
    /// `pool_round` events. Purely additive: collection behaves
    /// identically with or without it.
    pub fn set_recorder(&mut self, recorder: fl_obs::Recorder) {
        self.recorder = recorder;
    }

    /// Number of environment instances.
    pub fn n_envs(&self) -> usize {
        self.slots.len()
    }

    /// Current worker cap.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Changes the worker cap (results are unaffected — that is the point).
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Current rollout scheduling mode.
    pub fn rollout_mode(&self) -> RolloutMode {
        self.rollout
    }

    /// Overrides the rollout scheduling mode. Results are unaffected — both
    /// modes are bit-identical; only scheduling and wall-clock change.
    pub fn set_rollout_mode(&mut self, mode: RolloutMode) {
        self.rollout = mode;
    }

    /// Re-derives every slot's RNG stream from `salt` (keeping each slot's
    /// key): slot `i` moves to stream `salt · n_envs + i + 1`, rewound to
    /// position 0. `salt = 0` reproduces the constructor's assignment;
    /// distinct salts never collide across slots. This is the supervisor's
    /// "reseed the offending env streams" escalation — deterministic, so a
    /// resumed run reseeds identically.
    pub fn reseed_streams(&mut self, salt: u64) {
        let n = self.slots.len() as u64;
        for (i, slot) in self.slots.iter_mut().enumerate() {
            slot.rng
                .set_stream(salt.wrapping_mul(n).wrapping_add(i as u64 + 1));
        }
    }

    /// Runs one collection round: every environment advances exactly
    /// `steps_per_env` steps under a frozen snapshot of `agent`, then the
    /// per-env chunks merge into `buffer` in environment order, triggering
    /// a PPO update (and clear) at every fill, exactly like the serial
    /// loop. Rewards are scaled by `reward_scale` on their way into the
    /// buffer; diagnostics stay unscaled.
    ///
    /// For one update per round, size the buffer so that
    /// `n_envs × steps_per_env == buffer_capacity`.
    pub fn train_steps(
        &mut self,
        agent: &mut PpoAgent,
        buffer: &mut RolloutBuffer,
        steps_per_env: usize,
        reward_scale: f64,
        rng: &mut ChaCha8Rng,
    ) -> Result<VecRolloutSummary> {
        if steps_per_env == 0 {
            return Err(RlError::InvalidArgument(
                "steps_per_env must be nonzero".to_string(),
            ));
        }
        if !(reward_scale > 0.0) || !reward_scale.is_finite() {
            return Err(RlError::InvalidArgument(format!(
                "reward_scale must be positive and finite, got {reward_scale}"
            )));
        }

        // Snapshot the agent; the collection fan-out acts through the
        // frozen copy while the live agent stays on this thread for the
        // merge.
        let snapshot = agent.clone();
        let (chunks, worker_stats, collect_wall) = {
            let _rollout_span = self.recorder.span("rollout");
            match self.rollout {
                RolloutMode::PerEnv => {
                    let items: Vec<&mut EnvSlot<E>> = self.slots.iter_mut().collect();
                    let run = pool::run_indexed(self.workers, items, |env_idx, slot| {
                        collect_chunk(&snapshot, slot, env_idx, steps_per_env)
                    });
                    let chunks = run.results.into_iter().collect::<Result<Vec<_>>>()?;
                    (chunks, run.workers, run.wall)
                }
                RolloutMode::Batched => self.collect_batched(&snapshot, steps_per_env)?,
            }
        };
        if self.recorder.is_enabled() {
            self.recorder
                .emit(pool::round_event("rollout", &worker_stats, collect_wall));
        }

        let mut summary = VecRolloutSummary {
            steps: 0,
            episodes: Vec::new(),
            total_reward: 0.0,
            updates: Vec::new(),
            workers: worker_stats,
            collect_wall,
        };
        // Merge in environment order — the only place the shared agent,
        // normalizer, and buffer mutate, so worker scheduling is invisible.
        for chunk in chunks {
            for record in chunk.records {
                agent.absorb_obs(&record.raw_obs)?;
                summary.total_reward += record.reward;
                summary.steps += 1;
                buffer.push(Transition {
                    obs: record.norm_obs,
                    action: record.action,
                    log_prob: record.log_prob,
                    reward: record.reward * reward_scale,
                    value: record.value,
                    done: record.done,
                })?;
                if buffer.is_full() {
                    let last_value = if record.done {
                        0.0
                    } else {
                        agent.bootstrap_value(&record.next_raw_obs)?
                    };
                    summary.updates.push(agent.update(buffer, last_value, rng)?);
                    buffer.clear();
                }
            }
            summary.episodes.extend(chunk.episodes);
        }
        Ok(summary)
    }

    /// Split-step collection ([`RolloutMode::Batched`]): all environments
    /// advance in lockstep. Each step (1) runs ONE batched frozen forward
    /// over every environment's observation, (2) scatters the Gaussian
    /// noise draws serially in environment order — each from its own
    /// stream, at the same stream position the per-env path would use,
    /// (3) fans the RNG-free `env.step` calls out over the pool, and
    /// (4) does episode bookkeeping, including the immediate post-terminal
    /// reset, serially in environment order. Records accumulate into
    /// per-environment chunks so the caller's merge is byte-for-byte the
    /// per-env merge.
    fn collect_batched(
        &mut self,
        snapshot: &PpoAgent,
        steps_per_env: usize,
    ) -> Result<(Vec<ChunkOutput>, Vec<WorkerStats>, Duration)> {
        let start = Instant::now();
        let n = self.slots.len();
        let mut chunks: Vec<ChunkOutput> = (0..n)
            .map(|_| ChunkOutput {
                records: Vec::with_capacity(steps_per_env),
                episodes: Vec::new(),
            })
            .collect();
        // Current raw observations, environment order. The first-round
        // reset here and the post-terminal resets below consume each
        // slot's stream exactly where the per-env path's resets do.
        let mut obs: Vec<Vec<f64>> = Vec::with_capacity(n);
        for slot in &mut self.slots {
            obs.push(match slot.obs.take() {
                Some(o) => o,
                None => slot.env.reset(&mut slot.rng)?,
            });
        }
        let mut agg: Vec<WorkerStats> = Vec::new();
        for _ in 0..steps_per_env {
            // One frozen forward for the whole fleet.
            let batch = snapshot.forward_frozen_batch(&obs)?;
            // Scatter: per-env noise draws from per-env streams, env order.
            let mut acts = Vec::with_capacity(n);
            for (i, slot) in self.slots.iter_mut().enumerate() {
                acts.push(snapshot.sample_frozen_row(&batch, i, &mut slot.rng)?);
            }
            // Environment stepping takes no RNG, so it parallelizes; the
            // pool returns results slot-indexed regardless of scheduling.
            let items: Vec<(&mut E, &[f64])> = self
                .slots
                .iter_mut()
                .map(|s| &mut s.env)
                .zip(acts.iter().map(|a| a.action.as_slice()))
                .collect();
            let run = pool::run_indexed(self.workers, items, |_i, (env, action)| {
                let step = env.step(action)?;
                let metric = env.step_metric().unwrap_or(-step.reward);
                Ok::<(Step, f64), RlError>((step, metric))
            });
            merge_worker_stats(&mut agg, &run.workers);
            for (i, ((slot, act), stepped)) in
                self.slots.iter_mut().zip(acts).zip(run.results).enumerate()
            {
                let (step, metric) = stepped?;
                slot.ep_reward += step.reward;
                slot.ep_metric_sum += metric;
                slot.ep_steps += 1;
                let next_obs = if step.done {
                    chunks[i].episodes.push(EpisodeReport {
                        env: i,
                        total_reward: slot.ep_reward,
                        mean_metric: slot.ep_metric_sum / slot.ep_steps.max(1) as f64,
                        steps: slot.ep_steps,
                    });
                    slot.ep_reward = 0.0;
                    slot.ep_metric_sum = 0.0;
                    slot.ep_steps = 0;
                    slot.env.reset(&mut slot.rng)?
                } else {
                    step.obs.clone()
                };
                chunks[i].records.push(StepRecord {
                    raw_obs: std::mem::replace(&mut obs[i], next_obs),
                    norm_obs: act.norm_obs,
                    action: act.action,
                    log_prob: act.log_prob,
                    reward: step.reward,
                    value: act.value,
                    done: step.done,
                    next_raw_obs: step.obs,
                });
            }
        }
        for (slot, o) in self.slots.iter_mut().zip(obs) {
            slot.obs = Some(o);
        }
        Ok((chunks, agg, start.elapsed()))
    }
}

/// Element-wise accumulation of per-worker telemetry across the per-step
/// pool rounds of a batched collection, so [`VecRolloutSummary::workers`]
/// reports one aggregate entry per worker in either mode.
fn merge_worker_stats(agg: &mut Vec<WorkerStats>, round: &[WorkerStats]) {
    while agg.len() < round.len() {
        agg.push(WorkerStats {
            worker: agg.len(),
            tasks: 0,
            steals: 0,
            busy: Duration::ZERO,
        });
    }
    for w in round {
        let a = &mut agg[w.worker];
        a.tasks += w.tasks;
        a.steals += w.steals;
        a.busy += w.busy;
    }
}

impl<E: SnapshotEnv + Send> VecEnvRunner<E> {
    /// Captures the complete runner state (environments, RNG streams,
    /// pending observations, episode accumulators) for checkpointing. Call
    /// at a round boundary — mid-round there is no consistent state to
    /// capture, by construction.
    pub fn export_state(&self) -> RunnerState {
        RunnerState {
            slots: self
                .slots
                .iter()
                .map(|s| SlotState {
                    env: s.env.export_env_state(),
                    rng: RngState::capture(&s.rng),
                    obs: s.obs.clone(),
                    ep_reward: s.ep_reward,
                    ep_metric_sum: s.ep_metric_sum,
                    ep_steps: s.ep_steps,
                })
                .collect(),
        }
    }

    /// Restores state captured by [`VecEnvRunner::export_state`]. The
    /// runner must have the same number of environments; everything mutable
    /// is overwritten, so the constructor's seed is irrelevant after this
    /// call.
    pub fn import_state(&mut self, state: &RunnerState) -> Result<()> {
        if state.slots.len() != self.slots.len() {
            return Err(RlError::InvalidArgument(format!(
                "runner state has {} env slots, runner has {}",
                state.slots.len(),
                self.slots.len()
            )));
        }
        for (slot, saved) in self.slots.iter_mut().zip(&state.slots) {
            slot.env.import_env_state(&saved.env)?;
            slot.rng = saved
                .rng
                .restore()
                .map_err(|e| RlError::InvalidArgument(e.to_string()))?;
            slot.obs = saved.obs.clone();
            slot.ep_reward = saved.ep_reward;
            slot.ep_metric_sum = saved.ep_metric_sum;
            slot.ep_steps = saved.ep_steps;
        }
        Ok(())
    }
}

/// Worker body: advances one environment `steps_per_env` steps under the
/// frozen agent, recording everything the merge needs.
fn collect_chunk<E: Environment>(
    snapshot: &PpoAgent,
    slot: &mut EnvSlot<E>,
    env_idx: usize,
    steps_per_env: usize,
) -> Result<ChunkOutput> {
    let mut out = ChunkOutput {
        records: Vec::with_capacity(steps_per_env),
        episodes: Vec::new(),
    };
    let mut obs = match slot.obs.take() {
        Some(obs) => obs,
        None => slot.env.reset(&mut slot.rng)?,
    };
    for _ in 0..steps_per_env {
        let act = snapshot.act_frozen(&obs, &mut slot.rng)?;
        let step = slot.env.step(&act.action)?;
        let metric = slot.env.step_metric().unwrap_or(-step.reward);
        slot.ep_reward += step.reward;
        slot.ep_metric_sum += metric;
        slot.ep_steps += 1;
        out.records.push(StepRecord {
            raw_obs: obs,
            norm_obs: act.norm_obs,
            action: act.action,
            log_prob: act.log_prob,
            reward: step.reward,
            value: act.value,
            done: step.done,
            next_raw_obs: step.obs.clone(),
        });
        if step.done {
            out.episodes.push(EpisodeReport {
                env: env_idx,
                total_reward: slot.ep_reward,
                mean_metric: slot.ep_metric_sum / slot.ep_steps.max(1) as f64,
                steps: slot.ep_steps,
            });
            slot.ep_reward = 0.0;
            slot.ep_metric_sum = 0.0;
            slot.ep_steps = 0;
            obs = slot.env.reset(&mut slot.rng)?;
        } else {
            obs = step.obs;
        }
    }
    slot.obs = Some(obs);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::testenv::QuadEnv;
    use crate::ppo::PpoConfig;
    use rand::SeedableRng;

    fn agent(rng: &mut ChaCha8Rng) -> PpoAgent {
        PpoAgent::new(
            1,
            1,
            PpoConfig {
                hidden: vec![16],
                buffer_capacity: 128,
                minibatch_size: 64,
                epochs: 4,
                actor_lr: 3e-3,
                critic_lr: 3e-3,
                target_kl: None,
                ..PpoConfig::default()
            },
            rng,
        )
        .unwrap()
    }

    #[test]
    fn train_steps_bookkeeping() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut a = agent(&mut rng);
        let mut env = QuadEnv::new(10);
        let mut buffer = a.make_buffer().unwrap();
        let summary = train_steps(&mut a, &mut env, &mut buffer, 300, &mut rng).unwrap();
        assert_eq!(summary.steps, 300);
        // 300 steps / 10-step episodes, resets inclusive.
        assert_eq!(summary.episodes_completed, 30);
        // 300 / 128 → 2 updates, remainder left in the buffer.
        assert_eq!(summary.updates.len(), 2);
        assert_eq!(buffer.len(), 300 - 2 * 128);
        assert!(summary.total_reward.is_finite());
    }

    #[test]
    fn runner_training_improves_policy() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut a = agent(&mut rng);
        let mut env = QuadEnv::new(16);
        let before = evaluate_mean_reward(&a, &mut env, 20, 16, &mut rng).unwrap();
        let mut buffer = a.make_buffer().unwrap();
        train_steps(&mut a, &mut env, &mut buffer, 4000, &mut rng).unwrap();
        let after = evaluate_mean_reward(&a, &mut env, 20, 16, &mut rng).unwrap();
        assert!(
            after > before,
            "no improvement: before={before}, after={after}"
        );
    }

    /// Full snapshot of everything a training round mutates, for exact
    /// cross-thread-count (and cross-mode) comparison.
    fn vec_train_fingerprint(
        n_envs: usize,
        workers: usize,
        mode: RolloutMode,
    ) -> (Vec<u64>, Vec<u64>, usize) {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut a = agent(&mut rng);
        let mut runner = VecEnvRunner::new(
            (0..n_envs).map(|_| QuadEnv::new(8)).collect::<Vec<_>>(),
            77,
            workers,
        )
        .unwrap();
        runner.set_rollout_mode(mode);
        let mut buffer = a.make_buffer().unwrap();
        let mut episode_bits = Vec::new();
        let mut updates = 0;
        for _ in 0..4 {
            let summary = runner
                .train_steps(&mut a, &mut buffer, 32, 1.0, &mut rng)
                .unwrap();
            for e in &summary.episodes {
                episode_bits.push(e.total_reward.to_bits());
                episode_bits.push(e.mean_metric.to_bits());
                episode_bits.push(e.env as u64);
            }
            updates += summary.updates.len();
        }
        let params = a
            .policy()
            .mean_net()
            .export_params()
            .iter()
            .map(|p| p.to_bits())
            .collect();
        (episode_bits, params, updates)
    }

    #[test]
    fn vec_rollout_identical_for_any_worker_count() {
        for mode in [RolloutMode::PerEnv, RolloutMode::Batched] {
            let reference = vec_train_fingerprint(4, 1, mode);
            for workers in [2, 4, 8] {
                assert_eq!(
                    vec_train_fingerprint(4, workers, mode),
                    reference,
                    "workers={workers} diverged from the serial reference ({mode:?})"
                );
            }
            assert!(reference.2 > 0, "rounds large enough to trigger updates");
        }
    }

    /// The cross-mode half of the contract: the batched split-step path is
    /// bit-identical to the per-env path — episodes, update count, and
    /// final policy parameters — at any worker count.
    #[test]
    fn batched_rollout_matches_per_env_bit_for_bit() {
        let reference = vec_train_fingerprint(4, 1, RolloutMode::PerEnv);
        for workers in [1, 4] {
            assert_eq!(
                vec_train_fingerprint(4, workers, RolloutMode::Batched),
                reference,
                "batched mode at workers={workers} diverged from per-env"
            );
        }
    }

    #[test]
    fn vec_rollout_bookkeeping() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut a = agent(&mut rng);
        let mut runner =
            VecEnvRunner::new((0..4).map(|_| QuadEnv::new(8)).collect::<Vec<_>>(), 5, 2).unwrap();
        // Pin per-env mode: the task accounting below (one pool task per
        // env) is specific to it.
        runner.set_rollout_mode(RolloutMode::PerEnv);
        let mut buffer = a.make_buffer().unwrap();
        // 4 envs × 32 steps = 128 = buffer capacity → exactly one update.
        let summary = runner
            .train_steps(&mut a, &mut buffer, 32, 1.0, &mut rng)
            .unwrap();
        assert_eq!(summary.steps, 128);
        assert_eq!(summary.updates.len(), 1);
        assert_eq!(buffer.len(), 0);
        // 8-step episodes: each env completes 32/8 = 4 → 16 total, reported
        // grouped by environment index (the merge order).
        assert_eq!(summary.episodes.len(), 16);
        let envs: Vec<usize> = summary.episodes.iter().map(|e| e.env).collect();
        let mut sorted = envs.clone();
        sorted.sort_unstable();
        assert_eq!(envs, sorted, "episodes must arrive in env order");
        // QuadEnv has no step_metric → mean_metric falls back to -reward.
        for e in &summary.episodes {
            assert!((e.mean_metric + e.total_reward / e.steps as f64).abs() < 1e-12);
        }
        let worker_tasks: usize = summary.workers.iter().map(|w| w.tasks).sum();
        assert_eq!(worker_tasks, 4);
    }

    #[test]
    fn batched_rollout_bookkeeping() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut a = agent(&mut rng);
        let mut runner =
            VecEnvRunner::new((0..4).map(|_| QuadEnv::new(8)).collect::<Vec<_>>(), 5, 2).unwrap();
        runner.set_rollout_mode(RolloutMode::Batched);
        assert_eq!(runner.rollout_mode(), RolloutMode::Batched);
        let mut buffer = a.make_buffer().unwrap();
        let summary = runner
            .train_steps(&mut a, &mut buffer, 32, 1.0, &mut rng)
            .unwrap();
        assert_eq!(summary.steps, 128);
        assert_eq!(summary.updates.len(), 1);
        assert_eq!(buffer.len(), 0);
        // Episodes still arrive grouped in env order: the batched collector
        // stores them in per-env chunks, so the merge sees per-env order.
        assert_eq!(summary.episodes.len(), 16);
        let envs: Vec<usize> = summary.episodes.iter().map(|e| e.env).collect();
        let mut sorted = envs.clone();
        sorted.sort_unstable();
        assert_eq!(envs, sorted, "episodes must arrive in env order");
        // One `env.step` pool task per env per step.
        let worker_tasks: usize = summary.workers.iter().map(|w| w.tasks).sum();
        assert_eq!(worker_tasks, 4 * 32);
    }

    #[test]
    fn vec_runner_rejects_bad_arguments() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut a = agent(&mut rng);
        assert!(VecEnvRunner::<QuadEnv>::new(vec![], 0, 1).is_err());
        let mut runner = VecEnvRunner::new(vec![QuadEnv::new(4)], 0, 1).unwrap();
        let mut buffer = a.make_buffer().unwrap();
        assert!(runner
            .train_steps(&mut a, &mut buffer, 0, 1.0, &mut rng)
            .is_err());
        assert!(runner
            .train_steps(&mut a, &mut buffer, 4, 0.0, &mut rng)
            .is_err());
        assert!(runner
            .train_steps(&mut a, &mut buffer, 4, f64::NAN, &mut rng)
            .is_err());
    }

    /// Runs `rounds` collection rounds and fingerprints everything the
    /// round mutates (episode stats and final policy params, as bits).
    fn run_rounds(
        runner: &mut VecEnvRunner<QuadEnv>,
        a: &mut PpoAgent,
        buffer: &mut RolloutBuffer,
        rng: &mut ChaCha8Rng,
        rounds: usize,
    ) -> Vec<u64> {
        let mut bits = Vec::new();
        for _ in 0..rounds {
            let summary = runner.train_steps(a, buffer, 32, 1.0, rng).unwrap();
            for e in &summary.episodes {
                bits.push(e.total_reward.to_bits());
                bits.push(e.mean_metric.to_bits());
                bits.push(e.env as u64);
            }
        }
        bits.extend(
            a.policy()
                .mean_net()
                .export_params()
                .iter()
                .map(|p| p.to_bits()),
        );
        bits
    }

    #[test]
    fn runner_state_roundtrip_continues_bit_identically() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut a = agent(&mut rng);
        let mut runner =
            VecEnvRunner::new((0..4).map(|_| QuadEnv::new(8)).collect::<Vec<_>>(), 99, 2).unwrap();
        let mut buffer = a.make_buffer().unwrap();
        run_rounds(&mut runner, &mut a, &mut buffer, &mut rng, 2);

        // Capture at a round boundary, through the serialized form (the
        // same path a checkpoint takes).
        let state = runner.export_state();
        let json = crate::snapshot::encode_payload(&state).unwrap();
        let restored: RunnerState = crate::snapshot::decode_payload(&json).unwrap();
        assert_eq!(restored, state);
        let mut a2 = a.clone();
        let mut buffer2 = buffer.clone();
        let mut rng2 = rng.clone();

        let reference = run_rounds(&mut runner, &mut a, &mut buffer, &mut rng, 2);

        // Fresh runner with a *different* constructor seed: import_state
        // must overwrite every bit of mutable state. The rollout mode is
        // flipped relative to the original — like the worker count it is
        // physical state, so resuming under the other mode must continue
        // bit-identically.
        let mut runner2 = VecEnvRunner::new(
            (0..4).map(|_| QuadEnv::new(8)).collect::<Vec<_>>(),
            12345,
            4,
        )
        .unwrap();
        runner2.set_rollout_mode(match runner.rollout_mode() {
            RolloutMode::PerEnv => RolloutMode::Batched,
            RolloutMode::Batched => RolloutMode::PerEnv,
        });
        runner2.import_state(&restored).unwrap();
        let resumed = run_rounds(&mut runner2, &mut a2, &mut buffer2, &mut rng2, 2);
        assert_eq!(resumed, reference);
    }

    #[test]
    fn import_state_rejects_wrong_slot_count() {
        let runner3 =
            VecEnvRunner::new((0..3).map(|_| QuadEnv::new(4)).collect::<Vec<_>>(), 0, 1).unwrap();
        let state = runner3.export_state();
        let mut runner2 =
            VecEnvRunner::new((0..2).map(|_| QuadEnv::new(4)).collect::<Vec<_>>(), 0, 1).unwrap();
        assert!(runner2.import_state(&state).is_err());
    }

    #[test]
    fn reseed_streams_zero_matches_constructor() {
        let mut runner =
            VecEnvRunner::new((0..3).map(|_| QuadEnv::new(4)).collect::<Vec<_>>(), 7, 1).unwrap();
        let fresh = runner.export_state();
        // Drain some randomness, then reseed with salt 0: streams rewind to
        // the constructor layout.
        for slot in &mut runner.slots {
            let _ = rand::RngCore::next_u64(&mut slot.rng);
        }
        assert_ne!(runner.export_state(), fresh);
        runner.reseed_streams(0);
        assert_eq!(runner.export_state(), fresh);
        // Distinct salts move every slot somewhere new.
        runner.reseed_streams(1);
        assert_ne!(runner.export_state(), fresh);
    }

    #[test]
    fn evaluation_is_side_effect_free() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = agent(&mut rng);
        let params = a.policy().mean_net().export_params();
        let count = a.obs_norm().count();
        let mut env = QuadEnv::new(5);
        evaluate_mean_reward(&a, &mut env, 5, 5, &mut rng).unwrap();
        assert_eq!(a.policy().mean_net().export_params(), params);
        assert_eq!(a.obs_norm().count(), count);
    }
}
