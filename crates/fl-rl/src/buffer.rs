//! The experience replay buffer `D` of Algorithm 1.

use crate::{Result, RlError};
use fl_nn::Matrix;
use serde::{Deserialize, Serialize};

/// One `(s_k, a_k, r_k, ...)` sample (Algorithm 1 line 16), augmented with
/// the sampling policy's log-probability and the critic's value estimate —
/// both required by the PPO surrogate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Observation (already normalized by the agent).
    pub obs: Vec<f64>,
    /// Raw (unsquashed) action emitted by the policy.
    pub action: Vec<f64>,
    /// `log π(a|s; θ_a^old)` at sampling time.
    pub log_prob: f64,
    /// Reward received.
    pub reward: f64,
    /// `V(s; θ_v)` at sampling time.
    pub value: f64,
    /// Whether the episode ended with this transition.
    pub done: bool,
}

/// Fixed-capacity rollout storage. Algorithm 1 triggers a PPO update every
/// time the buffer fills (line 17) and clears it afterwards (line 23).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RolloutBuffer {
    capacity: usize,
    obs_dim: usize,
    action_dim: usize,
    transitions: Vec<Transition>,
}

impl RolloutBuffer {
    /// Creates an empty buffer.
    pub fn new(capacity: usize, obs_dim: usize, action_dim: usize) -> Result<Self> {
        if capacity == 0 || obs_dim == 0 || action_dim == 0 {
            return Err(RlError::InvalidArgument(
                "buffer capacity and dims must be nonzero".to_string(),
            ));
        }
        Ok(RolloutBuffer {
            capacity,
            obs_dim,
            action_dim,
            transitions: Vec::with_capacity(capacity),
        })
    }

    /// Capacity `|D|`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Transitions currently stored.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// True when the buffer reached capacity (time to update).
    pub fn is_full(&self) -> bool {
        self.transitions.len() >= self.capacity
    }

    /// Stores one transition; rejects dimension mismatches and pushes into a
    /// full buffer.
    pub fn push(&mut self, t: Transition) -> Result<()> {
        if self.is_full() {
            return Err(RlError::InvalidArgument(
                "push into full buffer (call clear after updating)".to_string(),
            ));
        }
        if t.obs.len() != self.obs_dim || t.action.len() != self.action_dim {
            return Err(RlError::InvalidArgument(format!(
                "transition dims ({}, {}) do not match buffer dims ({}, {})",
                t.obs.len(),
                t.action.len(),
                self.obs_dim,
                self.action_dim
            )));
        }
        if !t.reward.is_finite() || !t.value.is_finite() || !t.log_prob.is_finite() {
            return Err(RlError::InvalidArgument(
                "transition contains non-finite scalars".to_string(),
            ));
        }
        self.transitions.push(t);
        Ok(())
    }

    /// Empties the buffer (Algorithm 1 line 23).
    pub fn clear(&mut self) {
        self.transitions.clear();
    }

    /// The stored transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// All observations as a `len x obs_dim` matrix.
    pub fn obs_matrix(&self) -> Matrix {
        let mut data = Vec::with_capacity(self.transitions.len() * self.obs_dim);
        for t in &self.transitions {
            data.extend_from_slice(&t.obs);
        }
        Matrix::from_vec(self.transitions.len(), self.obs_dim, data).expect("dims enforced on push")
    }

    /// All actions as a `len x action_dim` matrix.
    pub fn action_matrix(&self) -> Matrix {
        let mut data = Vec::with_capacity(self.transitions.len() * self.action_dim);
        for t in &self.transitions {
            data.extend_from_slice(&t.action);
        }
        Matrix::from_vec(self.transitions.len(), self.action_dim, data)
            .expect("dims enforced on push")
    }

    /// Per-step rewards.
    pub fn rewards(&self) -> Vec<f64> {
        self.transitions.iter().map(|t| t.reward).collect()
    }

    /// Per-step value estimates.
    pub fn values(&self) -> Vec<f64> {
        self.transitions.iter().map(|t| t.value).collect()
    }

    /// Per-step done flags.
    pub fn dones(&self) -> Vec<bool> {
        self.transitions.iter().map(|t| t.done).collect()
    }

    /// Per-step sampling log-probabilities.
    pub fn log_probs(&self) -> Vec<f64> {
        self.transitions.iter().map(|t| t.log_prob).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transition(v: f64) -> Transition {
        Transition {
            obs: vec![v, v + 1.0],
            action: vec![-v],
            log_prob: -0.5,
            reward: v * 2.0,
            value: v * 0.5,
            done: false,
        }
    }

    #[test]
    fn constructor_validation() {
        assert!(RolloutBuffer::new(0, 2, 1).is_err());
        assert!(RolloutBuffer::new(4, 0, 1).is_err());
        assert!(RolloutBuffer::new(4, 2, 0).is_err());
    }

    #[test]
    fn push_fill_clear_cycle() {
        let mut b = RolloutBuffer::new(2, 2, 1).unwrap();
        assert!(b.is_empty());
        b.push(transition(1.0)).unwrap();
        assert!(!b.is_full());
        b.push(transition(2.0)).unwrap();
        assert!(b.is_full());
        assert!(b.push(transition(3.0)).is_err());
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 2);
    }

    #[test]
    fn dimension_and_finiteness_checks() {
        let mut b = RolloutBuffer::new(4, 2, 1).unwrap();
        let mut bad = transition(1.0);
        bad.obs = vec![1.0];
        assert!(b.push(bad).is_err());
        let mut bad = transition(1.0);
        bad.action = vec![1.0, 2.0];
        assert!(b.push(bad).is_err());
        let mut bad = transition(1.0);
        bad.reward = f64::NAN;
        assert!(b.push(bad).is_err());
    }

    #[test]
    fn matrix_views_row_major() {
        let mut b = RolloutBuffer::new(4, 2, 1).unwrap();
        b.push(transition(1.0)).unwrap();
        b.push(transition(3.0)).unwrap();
        let obs = b.obs_matrix();
        assert_eq!(obs.shape(), (2, 2));
        assert_eq!(obs.row(1), &[3.0, 4.0]);
        let act = b.action_matrix();
        assert_eq!(act.shape(), (2, 1));
        assert_eq!(act.get(1, 0), -3.0);
        assert_eq!(b.rewards(), vec![2.0, 6.0]);
        assert_eq!(b.values(), vec![0.5, 1.5]);
        assert_eq!(b.dones(), vec![false, false]);
        assert_eq!(b.log_probs(), vec![-0.5, -0.5]);
    }

    #[test]
    fn accessors_preserve_push_order() {
        // PPO's determinism contract leans on the buffer being strictly
        // append-ordered: transition i must be row i of every view. Push
        // distinct, tagged transitions and check each accessor end-to-end.
        let k = 8;
        let mut b = RolloutBuffer::new(k, 2, 1).unwrap();
        for i in 0..k {
            let v = i as f64;
            b.push(Transition {
                obs: vec![v * 10.0, v * 10.0 + 1.0],
                action: vec![-v],
                log_prob: -0.1 * v,
                reward: v * 2.0,
                value: v * 0.5,
                done: i % 3 == 0,
            })
            .unwrap();
        }
        let ts = b.transitions();
        assert_eq!(ts.len(), k);
        let obs = b.obs_matrix();
        let act = b.action_matrix();
        for (i, t) in ts.iter().enumerate() {
            let v = i as f64;
            assert_eq!(t.obs, vec![v * 10.0, v * 10.0 + 1.0]);
            assert_eq!(obs.row(i), t.obs.as_slice());
            assert_eq!(act.row(i), t.action.as_slice());
            assert_eq!(b.rewards()[i], v * 2.0);
            assert_eq!(b.values()[i], v * 0.5);
            assert_eq!(b.log_probs()[i], -0.1 * v);
            assert_eq!(b.dones()[i], i % 3 == 0);
        }
    }

    #[test]
    fn clear_restarts_ordering_at_row_zero() {
        let mut b = RolloutBuffer::new(2, 2, 1).unwrap();
        b.push(transition(1.0)).unwrap();
        b.push(transition(2.0)).unwrap();
        b.clear();
        b.push(transition(9.0)).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.transitions()[0].reward, 18.0);
        assert_eq!(b.obs_matrix().row(0), &[9.0, 10.0]);
        assert_eq!(b.rewards(), vec![18.0]);
    }
}
