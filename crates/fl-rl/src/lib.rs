//! # fl-rl — deep reinforcement learning substrate (actor–critic PPO)
//!
//! A from-scratch implementation of the learning machinery the paper's DRL
//! agent needs (Section IV): a diagonal-Gaussian actor, a value-function
//! critic, generalized advantage estimation, and the PPO-clip update, all on
//! top of `fl-nn`'s manual-backprop MLPs.
//!
//! The pieces compose exactly as Algorithm 1 prescribes:
//!
//! * [`Environment`] — the interface the federated-learning system
//!   implements (state = bandwidth history, action = CPU frequencies,
//!   reward = negative system cost),
//! * [`GaussianPolicy`] — `π(a|s; θ_a)`: an MLP mean plus a trainable
//!   state-independent log-std; continuous actions as required by the
//!   infinite `{state, action}` space argument of Section IV-B2,
//! * [`ValueNet`] — `V(s; θ_v)`,
//! * [`RolloutBuffer`] — the experience replay buffer `D`, filled by the
//!   frozen sampling policy `θ_a^old`,
//! * [`PpoAgent`] — holds both `θ_a` and `θ_a^old`, performs the `M`-epoch
//!   PPO update when the buffer fills, then syncs `θ_a^old ← θ_a`
//!   (Algorithm 1 lines 17–23),
//! * [`RunningNorm`] — Welford observation normalization (raw bandwidths
//!   span two orders of magnitude across profiles).
//!
//! Every gradient path is validated against finite differences in the test
//! suite (`policy::tests`, and `fl-nn`'s gradcheck for the networks).

#![forbid(unsafe_code)]
// `!(x > 0.0)`-style guards reject NaN along with out-of-range values;
// clippy's suggested inversion (`x <= 0.0`) would silently accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

mod buffer;
mod env;
mod error;
pub mod gae;
mod normalize;
mod policy;
mod ppo;
pub mod runner;
pub mod snapshot;
mod value;

/// The deterministic work-stealing pool, re-exported from [`fl_pool`].
///
/// The pool moved to its own crate so `fl-nn`'s parallel matmul can share
/// it without a dependency cycle; every pre-existing `fl_rl::pool::*` path
/// keeps working through this alias.
pub use fl_pool as pool;

pub use buffer::{RolloutBuffer, Transition};
pub use env::{Environment, SnapshotEnv, Step};
pub use error::RlError;
pub use normalize::RunningNorm;
pub use policy::{GaussianPolicy, MeanArch};
pub use ppo::{PpoAgent, PpoConfig, UpdateStats};
pub use value::ValueNet;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, RlError>;
