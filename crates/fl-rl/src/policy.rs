//! Diagonal-Gaussian policy with manual gradients.

use crate::{Result, RlError};
use fl_nn::{Activation, Matrix, Mlp};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Bounds applied to the log standard deviation parameters. Projection back
/// into this interval after each optimizer step keeps exploration noise in
/// a sane range without distorting gradients.
pub const LOG_STD_MIN: f64 = -4.0;
/// Upper log-std bound; see [`LOG_STD_MIN`].
pub const LOG_STD_MAX: f64 = 1.0;

const HALF_LN_2PI: f64 = 0.918_938_533_204_672_7; // 0.5 * ln(2π)

/// Mean-network architecture.
///
/// * [`MeanArch::Joint`] — one MLP mapping the full state to all `N` action
///   means at once (positional device identity). The natural reading of the
///   paper's `π(a_k|s_k; θ_a)`.
/// * [`MeanArch::Shared`] — one *parameter-shared* MLP applied per device:
///   each device's mean comes from `MLP(own features ⊕ fleet mean/min/max
///   features ⊕ own static constants)`. With `N` devices the gradient
///   signal per weight is `N×` denser, which is what makes the 50-device
///   experiment train in reasonable budgets. The trade-off is explored by
///   the `abl_arch` bench.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum MeanArch {
    /// Monolithic state→actions network.
    Joint(Mlp),
    /// Weight sharing across devices.
    Shared {
        /// The per-device network (`4*feat_dim + statics.cols()` → 1).
        net: Mlp,
        /// Number of devices `N` (= action dim).
        n_devices: usize,
        /// Per-device observation features (the `H+1` bandwidth slots).
        feat_dim: usize,
        /// Per-device static constants (`N x S`), e.g. work, δ_max, α, e —
        /// fixed at construction, serialized with the policy.
        statics: Matrix,
    },
}

/// The actor network `π(a|s; θ_a)`: a mean architecture plus a trainable
/// state-independent log-std vector (the standard continuous PPO
/// parameterization).
///
/// Actions live in `R^action_dim`; bounded action spaces (the paper's
/// `δ ∈ (0, δ_max]`) are handled by the environment squashing raw actions,
/// which keeps these log-probabilities exact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianPolicy {
    arch: MeanArch,
    log_std: Vec<f64>,
    // Serialized (it is small) so checkpoint/restore round-trips exactly
    // even mid-accumulation.
    log_std_grad: Vec<f64>,
}

impl GaussianPolicy {
    /// Builds a joint-architecture policy with tanh hidden layers and an
    /// identity mean head.
    pub fn new(
        obs_dim: usize,
        hidden: &[usize],
        action_dim: usize,
        init_log_std: f64,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        let mut sizes = Vec::with_capacity(hidden.len() + 2);
        sizes.push(obs_dim);
        sizes.extend_from_slice(hidden);
        sizes.push(action_dim);
        let mean_net = Mlp::try_new(&sizes, Activation::Tanh, Activation::Identity, rng)?;
        if !init_log_std.is_finite() {
            return Err(RlError::InvalidArgument(
                "init_log_std must be finite".to_string(),
            ));
        }
        Ok(GaussianPolicy {
            arch: MeanArch::Joint(mean_net),
            log_std: vec![init_log_std.clamp(LOG_STD_MIN, LOG_STD_MAX); action_dim],
            log_std_grad: vec![0.0; action_dim],
        })
    }

    /// Builds a parameter-shared policy: the observation is interpreted as
    /// `n_devices` blocks of `feat_dim` features; every device's action
    /// mean is produced by the same MLP fed its own block, the fleet's
    /// mean/min/max aggregate blocks, and its row of `statics`.
    pub fn new_shared(
        n_devices: usize,
        feat_dim: usize,
        statics: Matrix,
        hidden: &[usize],
        init_log_std: f64,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if n_devices == 0 || feat_dim == 0 {
            return Err(RlError::InvalidArgument(
                "n_devices and feat_dim must be nonzero".to_string(),
            ));
        }
        if statics.rows() != n_devices {
            return Err(RlError::InvalidArgument(format!(
                "statics has {} rows, expected {}",
                statics.rows(),
                n_devices
            )));
        }
        if !init_log_std.is_finite() {
            return Err(RlError::InvalidArgument(
                "init_log_std must be finite".to_string(),
            ));
        }
        let in_dim = 4 * feat_dim + statics.cols();
        let mut sizes = Vec::with_capacity(hidden.len() + 2);
        sizes.push(in_dim);
        sizes.extend_from_slice(hidden);
        sizes.push(1);
        let net = Mlp::try_new(&sizes, Activation::Tanh, Activation::Identity, rng)?;
        Ok(GaussianPolicy {
            arch: MeanArch::Shared {
                net,
                n_devices,
                feat_dim,
                statics,
            },
            log_std: vec![init_log_std.clamp(LOG_STD_MIN, LOG_STD_MAX); n_devices],
            log_std_grad: vec![0.0; n_devices],
        })
    }

    /// Observation dimensionality.
    pub fn obs_dim(&self) -> usize {
        match &self.arch {
            MeanArch::Joint(net) => net.in_dim(),
            MeanArch::Shared {
                n_devices,
                feat_dim,
                ..
            } => n_devices * feat_dim,
        }
    }

    /// Action dimensionality.
    pub fn action_dim(&self) -> usize {
        match &self.arch {
            MeanArch::Joint(net) => net.out_dim(),
            MeanArch::Shared { n_devices, .. } => *n_devices,
        }
    }

    /// True when the policy shares weights across devices.
    pub fn is_shared(&self) -> bool {
        matches!(self.arch, MeanArch::Shared { .. })
    }

    /// The underlying network (for optimizer binding).
    pub fn mean_net_mut(&mut self) -> &mut Mlp {
        match &mut self.arch {
            MeanArch::Joint(net) => net,
            MeanArch::Shared { net, .. } => net,
        }
    }

    /// The underlying network (read-only).
    pub fn mean_net(&self) -> &Mlp {
        match &self.arch {
            MeanArch::Joint(net) => net,
            MeanArch::Shared { net, .. } => net,
        }
    }

    /// For the shared architecture: expands an observation batch
    /// (`n x N*F`) into the per-device input batch (`n*N x 4F+S`); rows are
    /// ordered sample-major (`sample 0 device 0, sample 0 device 1, ...`).
    ///
    /// Each device sees its own feature block plus three fleet aggregates
    /// per feature — mean, min, and max. The extremes matter because the
    /// synchronized iteration is paced by the *straggler*: a device cannot
    /// judge its slack without knowing how slow the slowest peer looks.
    fn shared_input(
        obs: &Matrix,
        n_devices: usize,
        feat_dim: usize,
        statics: &Matrix,
    ) -> Result<Matrix> {
        if obs.cols() != n_devices * feat_dim {
            return Err(RlError::InvalidArgument(format!(
                "obs width {} != n_devices*feat_dim {}",
                obs.cols(),
                n_devices * feat_dim
            )));
        }
        let s = statics.cols();
        let width = 4 * feat_dim + s;
        let mut out = Matrix::zeros(obs.rows() * n_devices, width);
        let mut mean = vec![0.0; feat_dim];
        let mut min = vec![0.0; feat_dim];
        let mut max = vec![0.0; feat_dim];
        for r in 0..obs.rows() {
            let row = obs.row(r);
            for f in 0..feat_dim {
                mean[f] = 0.0;
                min[f] = f64::INFINITY;
                max[f] = f64::NEG_INFINITY;
            }
            for d in 0..n_devices {
                for f in 0..feat_dim {
                    let v = row[d * feat_dim + f];
                    mean[f] += v;
                    min[f] = min[f].min(v);
                    max[f] = max[f].max(v);
                }
            }
            for m in mean.iter_mut() {
                *m /= n_devices as f64;
            }
            for d in 0..n_devices {
                let orow = out.row_mut(r * n_devices + d);
                orow[..feat_dim].copy_from_slice(&row[d * feat_dim..(d + 1) * feat_dim]);
                orow[feat_dim..2 * feat_dim].copy_from_slice(&mean);
                orow[2 * feat_dim..3 * feat_dim].copy_from_slice(&min);
                orow[3 * feat_dim..4 * feat_dim].copy_from_slice(&max);
                orow[4 * feat_dim..].copy_from_slice(statics.row(d));
            }
        }
        Ok(out)
    }

    /// Reshapes the shared net's `(n*N) x 1` output into `n x N` means.
    /// Row-major layout makes this a pure reinterpretation of the flat
    /// data — no per-element gathering.
    fn fold_shared_output(flat: Matrix, n: usize, n_devices: usize) -> Matrix {
        debug_assert_eq!(flat.shape(), (n * n_devices, 1));
        Matrix::from_vec(n, n_devices, flat.into_data())
            .expect("(n*N) x 1 output reshapes to n x N")
    }

    /// Inference-path mean batch for any architecture.
    fn infer_means(&self, obs: &Matrix) -> Result<Matrix> {
        match &self.arch {
            MeanArch::Joint(net) => Ok(net.infer(obs)?),
            MeanArch::Shared {
                net,
                n_devices,
                feat_dim,
                statics,
            } => {
                let input = Self::shared_input(obs, *n_devices, *feat_dim, statics)?;
                let flat = net.infer(&input)?;
                Ok(Self::fold_shared_output(flat, obs.rows(), *n_devices))
            }
        }
    }

    /// Current per-dimension standard deviations.
    pub fn std(&self) -> Vec<f64> {
        self.log_std.iter().map(|ls| ls.exp()).collect()
    }

    /// Current log-std parameters.
    pub fn log_std(&self) -> &[f64] {
        &self.log_std
    }

    /// Accumulated log-std gradients.
    pub fn log_std_grad(&self) -> &[f64] {
        &self.log_std_grad
    }

    /// Applies a raw update to the log-std parameters and projects back into
    /// `[LOG_STD_MIN, LOG_STD_MAX]`.
    pub fn apply_log_std_delta(&mut self, delta: &[f64]) {
        for (ls, d) in self.log_std.iter_mut().zip(delta) {
            *ls = (*ls + d).clamp(LOG_STD_MIN, LOG_STD_MAX);
        }
    }

    /// Deterministic action: the Gaussian mean at `obs` (used for
    /// evaluation / online reasoning where the paper uses the trained actor
    /// directly).
    pub fn mean_action(&self, obs: &[f64]) -> Result<Vec<f64>> {
        let m = self.infer_means(&Matrix::row_vector(obs))?;
        Ok(m.row(0).to_vec())
    }

    /// Batched deterministic actions: one Gaussian-mean row per observation
    /// row of `obs` (`n x obs_dim` in, `n x action_dim` out).
    ///
    /// This is the serving-path entry point: a decision server stacks
    /// concurrent observations into one forward batch. The blocked kernels
    /// compute each output element with a row-count-independent operation
    /// sequence, so row `i` of the batch is bit-identical to
    /// [`GaussianPolicy::mean_action`] on that row alone — micro-batching
    /// never changes served bits.
    pub fn mean_actions(&self, obs: &Matrix) -> Result<Matrix> {
        self.infer_means(obs)
    }

    /// Samples `a ~ N(μ(obs), σ²)` and returns `(action, log_prob)`.
    pub fn sample(&self, obs: &[f64], rng: &mut impl Rng) -> Result<(Vec<f64>, f64)> {
        let mean = self.mean_action(obs)?;
        Ok(self.sample_with_mean(&mean, rng))
    }

    /// Samples around a precomputed mean — the noise/log-prob tail of
    /// [`GaussianPolicy::sample`], factored out so the batched rollout path
    /// (one forward for many environments, then per-environment noise draws
    /// from per-environment RNG streams) executes *exactly* the same
    /// floating-point and RNG op sequence as the single-observation path:
    /// per dimension one [`gaussian`] draw (two `rng.gen::<f64>()` calls),
    /// `mean + std * noise`, then [`GaussianPolicy::log_prob_given_mean`].
    pub fn sample_with_mean(&self, mean: &[f64], rng: &mut impl Rng) -> (Vec<f64>, f64) {
        let std = self.std();
        let action: Vec<f64> = mean
            .iter()
            .zip(&std)
            .map(|(&m, &s)| m + s * gaussian(rng))
            .collect();
        let logp = self.log_prob_given_mean(mean, &action);
        (action, logp)
    }

    /// Log-probability of `action` under a Gaussian with the given mean and
    /// this policy's std.
    pub fn log_prob_given_mean(&self, mean: &[f64], action: &[f64]) -> f64 {
        debug_assert_eq!(mean.len(), action.len());
        let mut lp = 0.0;
        for ((&m, &a), &ls) in mean.iter().zip(action).zip(&self.log_std) {
            let s = ls.exp();
            let z = (a - m) / s;
            lp += -0.5 * z * z - ls - HALF_LN_2PI;
        }
        lp
    }

    /// Log-probability of `obs`'s action under the *current* parameters.
    pub fn log_prob(&self, obs: &[f64], action: &[f64]) -> Result<f64> {
        let mean = self.mean_action(obs)?;
        Ok(self.log_prob_given_mean(&mean, action))
    }

    /// Batched log-probabilities given a precomputed mean batch.
    pub fn log_prob_batch(&self, means: &Matrix, actions: &Matrix) -> Result<Vec<f64>> {
        if means.shape() != actions.shape() || means.cols() != self.action_dim() {
            return Err(RlError::InvalidArgument(format!(
                "log_prob_batch shape mismatch: means {:?}, actions {:?}, action_dim {}",
                means.shape(),
                actions.shape(),
                self.action_dim()
            )));
        }
        Ok((0..means.rows())
            .map(|i| self.log_prob_given_mean(means.row(i), actions.row(i)))
            .collect())
    }

    /// Differential entropy of the (state-independent-σ) Gaussian:
    /// `Σ_d (ln σ_d + ½ ln 2πe)`.
    pub fn entropy(&self) -> f64 {
        self.log_std.iter().map(|ls| ls + HALF_LN_2PI + 0.5).sum()
    }

    /// Training forward pass: computes the mean batch with gradient caches.
    pub fn forward_means(&mut self, obs: &Matrix) -> Result<Matrix> {
        match &mut self.arch {
            MeanArch::Joint(net) => Ok(net.try_forward(obs)?),
            MeanArch::Shared {
                net,
                n_devices,
                feat_dim,
                statics,
            } => {
                let input = Self::shared_input(obs, *n_devices, *feat_dim, statics)?;
                let flat = net.try_forward(&input)?;
                Ok(Self::fold_shared_output(flat, obs.rows(), *n_devices))
            }
        }
    }

    /// Accumulates gradients of a scalar loss `L` given `∂L/∂logp_i` for each
    /// sample of the batch last passed to [`GaussianPolicy::forward_means`].
    ///
    /// Chain rule for the diagonal Gaussian:
    /// `∂logp/∂μ_d = (a_d − μ_d)/σ_d²` and
    /// `∂logp/∂lnσ_d = ((a_d − μ_d)²/σ_d² − 1)`.
    /// Mean-net gradients accumulate via backprop; log-std gradients
    /// accumulate into an internal buffer read by the optimizer.
    pub fn accumulate_logprob_grads(
        &mut self,
        means: &Matrix,
        actions: &Matrix,
        dl_dlogp: &[f64],
    ) -> Result<()> {
        let n = means.rows();
        if actions.shape() != means.shape() || dl_dlogp.len() != n {
            return Err(RlError::InvalidArgument(
                "accumulate_logprob_grads shape mismatch".to_string(),
            ));
        }
        let d = self.action_dim();
        let std = self.std();
        let mut dmean = Matrix::zeros(n, d);
        for (i, &coef) in dl_dlogp.iter().enumerate() {
            let arow = actions.row(i);
            let mrow = means.row(i);
            let drow = dmean.row_mut(i);
            for j in 0..d {
                let diff = arow[j] - mrow[j];
                let var = std[j] * std[j];
                drow[j] = coef * diff / var;
                self.log_std_grad[j] += coef * (diff * diff / var - 1.0);
            }
        }
        match &mut self.arch {
            MeanArch::Joint(net) => {
                net.backward(&dmean)?;
            }
            MeanArch::Shared { net, n_devices, .. } => {
                // Unfold the n x N mean gradients back into the (n*N) x 1
                // layout the shared net's cached forward batch used — a
                // row-major reshape, so the flat data is reused as-is.
                let nd = *n_devices;
                let flat = Matrix::from_vec(n * nd, 1, dmean.into_data())
                    .expect("n x N reshapes to (n*N) x 1");
                net.backward(&flat)?;
            }
        }
        Ok(())
    }

    /// Adds `g` to every log-std gradient (used for the entropy bonus,
    /// whose gradient w.r.t. each `lnσ_d` is constant).
    pub fn add_uniform_log_std_grad(&mut self, g: f64) {
        for v in &mut self.log_std_grad {
            *v += g;
        }
    }

    /// Clears accumulated gradients in both the mean net and the log-std.
    pub fn zero_grad(&mut self) {
        self.mean_net_mut().zero_grad();
        self.log_std_grad.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Copies parameters from another policy of identical architecture —
    /// the `θ_a^old ← θ_a` sync of Algorithm 1 line 22.
    pub fn copy_params_from(&mut self, other: &GaussianPolicy) -> Result<()> {
        if self.log_std.len() != other.log_std.len() || self.is_shared() != other.is_shared() {
            return Err(RlError::InvalidArgument(
                "copy_params_from: architecture mismatch".to_string(),
            ));
        }
        let params = other.mean_net().export_params();
        self.mean_net_mut().import_params(&params)?;
        self.log_std.copy_from_slice(&other.log_std);
        Ok(())
    }

    /// True when all parameters are finite.
    pub fn is_finite(&self) -> bool {
        self.mean_net()
            .export_params()
            .iter()
            .all(|p| p.is_finite())
            && self.log_std.iter().all(|p| p.is_finite())
    }
}

/// Standard normal sample via Box–Muller.
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn policy(seed: u64) -> GaussianPolicy {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        GaussianPolicy::new(3, &[8], 2, -0.5, &mut rng).unwrap()
    }

    #[test]
    fn dims() {
        let p = policy(0);
        assert_eq!(p.obs_dim(), 3);
        assert_eq!(p.action_dim(), 2);
        assert_eq!(p.std().len(), 2);
        assert!((p.std()[0] - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn init_log_std_validation_and_clamping() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(GaussianPolicy::new(2, &[4], 1, f64::NAN, &mut rng).is_err());
        let p = GaussianPolicy::new(2, &[4], 1, -100.0, &mut rng).unwrap();
        assert_eq!(p.log_std()[0], LOG_STD_MIN);
    }

    #[test]
    fn log_prob_matches_closed_form() {
        let p = policy(2);
        // For mean=action the density is the mode: logp = Σ(−lnσ − ½ln2π).
        let mean = vec![0.3, -0.7];
        let lp = p.log_prob_given_mean(&mean, &mean);
        let expected: f64 = p.log_std().iter().map(|ls| -ls - HALF_LN_2PI).sum();
        assert!((lp - expected).abs() < 1e-12);
    }

    #[test]
    fn log_prob_decreases_away_from_mean() {
        let p = policy(3);
        let mean = vec![0.0, 0.0];
        let near = p.log_prob_given_mean(&mean, &[0.1, 0.0]);
        let far = p.log_prob_given_mean(&mean, &[2.0, 0.0]);
        assert!(near > far);
    }

    #[test]
    fn sample_log_prob_consistent() {
        let p = policy(4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let obs = [0.2, -0.1, 0.5];
        let (a, lp) = p.sample(&obs, &mut rng).unwrap();
        assert_eq!(a.len(), 2);
        let lp2 = p.log_prob(&obs, &a).unwrap();
        assert!((lp - lp2).abs() < 1e-12);
    }

    #[test]
    fn entropy_increases_with_std() {
        let mut p = policy(6);
        let h1 = p.entropy();
        p.apply_log_std_delta(&[0.5, 0.5]);
        assert!(p.entropy() > h1);
    }

    #[test]
    fn log_std_projection() {
        let mut p = policy(7);
        p.apply_log_std_delta(&[100.0, -100.0]);
        assert_eq!(p.log_std()[0], LOG_STD_MAX);
        assert_eq!(p.log_std()[1], LOG_STD_MIN);
    }

    #[test]
    fn copy_params_from_syncs() {
        let a = policy(8);
        let mut b = policy(9);
        assert_ne!(a.mean_net().export_params(), b.mean_net().export_params());
        b.copy_params_from(&a).unwrap();
        assert_eq!(a.mean_net().export_params(), b.mean_net().export_params());
        assert_eq!(a.log_std(), b.log_std());
    }

    /// The critical correctness test: analytic gradients of
    /// `L = Σ_i w_i · logp_i` versus finite differences over *all*
    /// parameters (mean net + log-std).
    #[test]
    fn logprob_gradients_match_finite_differences() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut p = policy(10);
        let n = 4;
        let obs = Matrix::from_fn(n, 3, |_, _| rng.gen_range(-1.0..1.0));
        let actions = Matrix::from_fn(n, 2, |_, _| rng.gen_range(-1.0..1.0));
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();

        let loss = |p: &GaussianPolicy| -> f64 {
            let means = p.mean_net().infer(&obs).unwrap();
            let lps = p.log_prob_batch(&means, &actions).unwrap();
            lps.iter().zip(&weights).map(|(lp, w)| lp * w).sum()
        };

        // Analytic.
        p.zero_grad();
        let means = p.forward_means(&obs).unwrap();
        p.accumulate_logprob_grads(&means, &actions, &weights)
            .unwrap();
        let mut analytic_mean_grads = Vec::new();
        p.mean_net_mut()
            .visit_params(|_, g| analytic_mean_grads.push(g));
        let analytic_ls = p.log_std_grad().to_vec();

        // Numeric over mean-net params.
        let eps = 1e-6;
        let base = p.mean_net().export_params();
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus[i] += eps;
            p.mean_net_mut().import_params(&plus).unwrap();
            let lp = loss(&p);
            let mut minus = base.clone();
            minus[i] -= eps;
            p.mean_net_mut().import_params(&minus).unwrap();
            let lm = loss(&p);
            p.mean_net_mut().import_params(&base).unwrap();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic_mean_grads[i]).abs() < 1e-5,
                "mean param {i}: fd={fd}, analytic={}",
                analytic_mean_grads[i]
            );
        }

        // Numeric over log-std params.
        for j in 0..2 {
            let mut pp = p.clone();
            let mut delta = vec![0.0; 2];
            delta[j] = eps;
            pp.apply_log_std_delta(&delta);
            let lp = loss(&pp);
            let mut pm = p.clone();
            delta[j] = -eps;
            pm.apply_log_std_delta(&delta);
            let lm = loss(&pm);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic_ls[j]).abs() < 1e-5,
                "log_std {j}: fd={fd}, analytic={}",
                analytic_ls[j]
            );
        }
    }

    fn shared_policy(seed: u64) -> GaussianPolicy {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // 3 devices, 2 features each, 2 static constants per device.
        let statics = Matrix::from_fn(3, 2, |r, c| (r + c) as f64 * 0.3 - 0.2);
        GaussianPolicy::new_shared(3, 2, statics, &[6], -0.5, &mut rng).unwrap()
    }

    #[test]
    fn shared_policy_dims() {
        let p = shared_policy(40);
        assert_eq!(p.obs_dim(), 6);
        assert_eq!(p.action_dim(), 3);
        assert!(p.is_shared());
        assert!(!policy(0).is_shared());
        // Per-device net: 4*2 feature blocks + 2 statics = 10 inputs, one
        // output.
        assert_eq!(p.mean_net().in_dim(), 10);
        assert_eq!(p.mean_net().out_dim(), 1);
    }

    #[test]
    fn shared_policy_constructor_validation() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let statics = Matrix::zeros(2, 1);
        assert!(GaussianPolicy::new_shared(3, 2, statics.clone(), &[4], -0.5, &mut rng).is_err());
        assert!(GaussianPolicy::new_shared(0, 2, statics.clone(), &[4], -0.5, &mut rng).is_err());
        assert!(GaussianPolicy::new_shared(2, 2, statics, &[4], f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn shared_policy_is_permutation_consistent() {
        // Devices with identical features and statics must get identical
        // means — weight sharing in action.
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let statics = Matrix::from_fn(3, 2, |_, c| c as f64 * 0.5);
        let p = GaussianPolicy::new_shared(3, 2, statics, &[6], -0.5, &mut rng).unwrap();
        let obs = vec![0.4, -0.1, 0.4, -0.1, 0.4, -0.1];
        let m = p.mean_action(&obs).unwrap();
        assert!((m[0] - m[1]).abs() < 1e-12);
        assert!((m[1] - m[2]).abs() < 1e-12);
        // Different feature block -> different mean.
        let obs2 = vec![0.4, -0.1, 0.9, 0.3, 0.4, -0.1];
        let m2 = p.mean_action(&obs2).unwrap();
        assert!((m2[0] - m2[2]).abs() < 1e-12);
        assert!((m2[0] - m2[1]).abs() > 1e-6);
    }

    #[test]
    fn shared_forward_matches_infer() {
        let mut p = shared_policy(43);
        let obs = Matrix::from_fn(4, 6, |r, c| ((r * 6 + c) as f64 * 0.17).sin());
        let trained = p.forward_means(&obs).unwrap();
        let inferred = p.infer_means(&obs).unwrap();
        assert_eq!(trained, inferred);
        assert_eq!(trained.shape(), (4, 3));
    }

    /// Finite-difference gradient check for the SHARED architecture — the
    /// reshape/aggregate plumbing must not corrupt backprop.
    #[test]
    fn shared_logprob_gradients_match_finite_differences() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(44);
        let mut p = shared_policy(44);
        let n = 3;
        let obs = Matrix::from_fn(n, 6, |_, _| rng.gen_range(-1.0..1.0));
        let actions = Matrix::from_fn(n, 3, |_, _| rng.gen_range(-1.0..1.0));
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();

        let loss = |p: &GaussianPolicy| -> f64 {
            let means = p.infer_means(&obs).unwrap();
            let lps = p.log_prob_batch(&means, &actions).unwrap();
            lps.iter().zip(&weights).map(|(lp, w)| lp * w).sum()
        };

        p.zero_grad();
        let means = p.forward_means(&obs).unwrap();
        p.accumulate_logprob_grads(&means, &actions, &weights)
            .unwrap();
        let mut analytic = Vec::new();
        p.mean_net_mut().visit_params(|_, g| analytic.push(g));

        let eps = 1e-6;
        let base = p.mean_net().export_params();
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus[i] += eps;
            p.mean_net_mut().import_params(&plus).unwrap();
            let lp = loss(&p);
            let mut minus = base.clone();
            minus[i] -= eps;
            p.mean_net_mut().import_params(&minus).unwrap();
            let lm = loss(&p);
            p.mean_net_mut().import_params(&base).unwrap();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic[i]).abs() < 1e-5,
                "shared param {i}: fd={fd}, analytic={}",
                analytic[i]
            );
        }
    }

    #[test]
    fn copy_params_rejects_arch_mismatch() {
        let joint = policy(45);
        let mut shared = shared_policy(45);
        // Same action_dim (3 vs 2?) — policy() has action dim 2, shared 3;
        // build a joint with 3 actions to isolate the arch check.
        let mut rng = ChaCha8Rng::seed_from_u64(46);
        let joint3 = GaussianPolicy::new(6, &[4], 3, -0.5, &mut rng).unwrap();
        assert!(shared.copy_params_from(&joint3).is_err());
        let _ = joint;
    }

    /// Serving-path contract: batched means are bit-identical to the
    /// single-row path for every row, for both architectures.
    #[test]
    fn mean_actions_batch_is_bitwise_row_independent() {
        for p in [policy(30), shared_policy(30)] {
            let dim = p.obs_dim();
            let obs = Matrix::from_fn(7, dim, |r, c| ((r * dim + c) as f64 * 0.31).sin());
            let batch = p.mean_actions(&obs).unwrap();
            assert_eq!(batch.shape(), (7, p.action_dim()));
            for r in 0..obs.rows() {
                let single = p.mean_action(obs.row(r)).unwrap();
                for (a, b) in batch.row(r).iter().zip(&single) {
                    assert_eq!(a.to_bits(), b.to_bits(), "row {r}");
                }
            }
        }
    }

    /// Split-step contract: `sample` must equal `mean_action` followed by
    /// `sample_with_mean` bit-for-bit, consuming the same RNG draws — this
    /// is what lets the batched rollout compute means in one forward and
    /// defer the noise to per-environment streams.
    #[test]
    fn sample_with_mean_matches_fused_sample_bitwise() {
        for p in [policy(31), shared_policy(31)] {
            let dim = p.obs_dim();
            let obs: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.37).sin()).collect();
            let mut r1 = ChaCha8Rng::seed_from_u64(9);
            let mut r2 = r1.clone();
            let (a1, lp1) = p.sample(&obs, &mut r1).unwrap();
            let mean = p.mean_action(&obs).unwrap();
            let (a2, lp2) = p.sample_with_mean(&mean, &mut r2);
            assert_eq!(lp1.to_bits(), lp2.to_bits());
            for (x, y) in a1.iter().zip(&a2) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(r1, r2, "both paths must consume identical RNG draws");
        }
    }

    #[test]
    fn batch_log_prob_shape_validation() {
        let p = policy(11);
        let means = Matrix::zeros(2, 2);
        let actions = Matrix::zeros(3, 2);
        assert!(p.log_prob_batch(&means, &actions).is_err());
    }

    #[test]
    fn finite_check() {
        let p = policy(12);
        assert!(p.is_finite());
    }
}
