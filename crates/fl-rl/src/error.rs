//! Error type for the fl-rl crate.

use std::fmt;

/// Errors raised by the RL machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum RlError {
    /// A configuration or argument was invalid.
    InvalidArgument(String),
    /// The environment reported a failure during `step`/`reset`.
    Environment(String),
    /// A numeric failure surfaced from the NN substrate.
    Nn(fl_nn::NnError),
    /// Training diverged (non-finite loss or parameters).
    Diverged(String),
}

impl fmt::Display for RlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RlError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            RlError::Environment(msg) => write!(f, "environment error: {msg}"),
            RlError::Nn(e) => write!(f, "nn error: {e}"),
            RlError::Diverged(msg) => write!(f, "training diverged: {msg}"),
        }
    }
}

impl std::error::Error for RlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RlError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fl_nn::NnError> for RlError {
    fn from(e: fl_nn::NnError) -> Self {
        RlError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: RlError = fl_nn::NnError::InvalidArgument("bad".into()).into();
        assert!(e.to_string().contains("bad"));
        assert!(RlError::Diverged("nan".into()).to_string().contains("nan"));
        assert!(RlError::Environment("x".into()).to_string().contains("x"));
    }
}
