//! Crash-safe training-state persistence.
//!
//! Checkpoints are the foundation of the resume-determinism contract: a
//! training run interrupted anywhere and resumed from its last checkpoint
//! must be **bit-identical** to the uninterrupted run. That only works if a
//! checkpoint captures the *complete* mutable state (network parameters,
//! optimizer moments, normalizer statistics, buffer contents, and — crucially
//! — every RNG's exact position) and if a crash mid-write can never destroy
//! the previous good checkpoint.
//!
//! This module supplies the storage half of that contract:
//!
//! * a versioned, CRC-checksummed binary envelope ([`encode_frame`] /
//!   [`decode_frame`]) around a JSON payload (the vendored `serde_json`
//!   prints finite `f64`s shortest-round-trip, so payloads are bit-exact),
//! * [`atomic_write`] — tmp file + fsync + rename, so a torn write leaves
//!   the old file untouched,
//! * [`CheckpointStore`] — a double-buffered `ckpt-A`/`ckpt-B` pair with a
//!   monotonic sequence number; writes alternate slots, loads pick the
//!   newest *valid* slot, so one corrupt/torn file still resumes,
//! * [`RngState`] — an exact [`ChaCha8Rng`] dump (key, stream, word
//!   position). 64-bit values are stored as `(lo, hi)` `u32` pairs because
//!   the vendored serde routes all numbers through `f64`, which is lossy
//!   above 2⁵³ — and seeds use all 64 bits.
//!
//! What goes *into* a training checkpoint is the caller's business
//! (`fl-ctrl` assembles its `TrainState` from the agent, buffer, and
//! environment states); this module only promises that what was saved is
//! what comes back, or a structured [`SnapshotError`] — never a panic, and
//! never a silently corrupted resume.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// File magic: identifies a fedfreq snapshot and its envelope revision.
pub const MAGIC: [u8; 8] = *b"FLSNAP01";

/// Current payload-format version. Bump when the checkpoint payload layout
/// changes incompatibly; old files then fail with
/// [`SnapshotError::BadVersion`] instead of deserializing garbage.
pub const VERSION: u32 = 1;

/// Envelope header size: magic (8) + version (4) + seq (8) + payload length
/// (8) + CRC32 (4).
pub const HEADER_LEN: usize = 32;

/// Structured failure modes of snapshot encode/decode/IO.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The stored CRC32 does not match the file contents.
    BadChecksum,
    /// The file is shorter than its header claims (torn write).
    Truncated,
    /// The payload-format version is not the one this build reads.
    BadVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// Filesystem failure (open/write/rename/fsync).
    Io(String),
    /// Payload (de)serialization failure.
    Encode(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::BadChecksum => write!(f, "snapshot checksum mismatch (corrupt file)"),
            SnapshotError::Truncated => write!(f, "snapshot file truncated"),
            SnapshotError::BadVersion { found, expected } => {
                write!(f, "snapshot version {found}, this build reads {expected}")
            }
            SnapshotError::Io(msg) => write!(f, "snapshot io error: {msg}"),
            SnapshotError::Encode(msg) => write!(f, "snapshot encode error: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Convenience alias for snapshot results.
pub type SnapResult<T> = std::result::Result<T, SnapshotError>;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the same
/// checksum gzip and PNG use. Implemented bitwise: checkpoint payloads are
/// small enough that a lookup table would be noise.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Splits a `u64` into `(lo, hi)` `u32` halves that survive the vendored
/// serde's number model (all JSON numbers are `f64`, exact only below 2⁵³).
pub fn split_u64(x: u64) -> (u32, u32) {
    (x as u32, (x >> 32) as u32)
}

/// Reassembles a `u64` split by [`split_u64`].
pub fn join_u64(lo: u32, hi: u32) -> u64 {
    (lo as u64) | ((hi as u64) << 32)
}

/// Wraps a payload in the versioned, checksummed envelope. `seq` is the
/// caller's monotonic checkpoint counter (slot election in
/// [`CheckpointStore`] keys on it).
pub fn encode_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    encode_frame_versioned(VERSION, seq, payload)
}

/// [`encode_frame`] with an explicit version — exposed so tests (and future
/// migration tooling) can fabricate frames of other versions.
pub fn encode_frame_versioned(version: u32, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    // The CRC covers everything after the magic except itself, so a flipped
    // bit in the version/seq/length fields is caught too, not just payload
    // damage.
    let mut crc_input = Vec::with_capacity(20 + payload.len());
    crc_input.extend_from_slice(&out[8..28]);
    crc_input.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates an envelope and returns `(seq, payload)`. Every corruption
/// mode maps to a structured error: wrong magic → [`SnapshotError::BadMagic`],
/// short file → [`SnapshotError::Truncated`], bit damage →
/// [`SnapshotError::BadChecksum`], format skew → [`SnapshotError::BadVersion`].
pub fn decode_frame(bytes: &[u8]) -> SnapResult<(u64, &[u8])> {
    if bytes.len() < HEADER_LEN {
        return if bytes.len() >= 8 && bytes[..8] != MAGIC {
            Err(SnapshotError::BadMagic)
        } else {
            Err(SnapshotError::Truncated)
        };
    }
    if bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let seq = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let payload_len = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes")) as usize;
    let stored_crc = u32::from_le_bytes(bytes[28..32].try_into().expect("4 bytes"));
    let Some(payload) = bytes[HEADER_LEN..].get(..payload_len) else {
        return Err(SnapshotError::Truncated);
    };
    let mut crc_input = Vec::with_capacity(20 + payload.len());
    crc_input.extend_from_slice(&bytes[8..28]);
    crc_input.extend_from_slice(payload);
    if crc32(&crc_input) != stored_crc {
        return Err(SnapshotError::BadChecksum);
    }
    // Version is checked *after* the checksum so random damage in the
    // version field reports as corruption, not as a phantom format skew.
    if version != VERSION {
        return Err(SnapshotError::BadVersion {
            found: version,
            expected: VERSION,
        });
    }
    Ok((seq, payload))
}

/// Serializes a value to the JSON payload bytes the envelope carries.
pub fn encode_payload<T: Serialize>(value: &T) -> SnapResult<Vec<u8>> {
    serde_json::to_string(value)
        .map(String::into_bytes)
        .map_err(|e| SnapshotError::Encode(e.to_string()))
}

/// Deserializes a value from payload bytes written by [`encode_payload`].
pub fn decode_payload<T: Deserialize>(bytes: &[u8]) -> SnapResult<T> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| SnapshotError::Encode(format!("not utf-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| SnapshotError::Encode(e.to_string()))
}

/// Writes `bytes` to `path` atomically: a sibling tmp file is written and
/// fsynced, then renamed over the destination (rename within one directory
/// is atomic on POSIX). A crash at any point leaves either the old file or
/// the new one — never a torn mix.
///
/// The implementation lives in [`fl_obs::atomic_write`] so checkpoints and
/// observability event logs share a single crash-safety primitive; this
/// wrapper keeps the historical name and `SnapResult` signature for
/// existing callers.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> SnapResult<()> {
    fl_obs::atomic_write(path, bytes).map_err(|e| match e {
        fl_obs::ObsError::Io(m) => SnapshotError::Io(m),
        other => SnapshotError::Io(other.to_string()),
    })
}

/// Exact serialized state of a [`ChaCha8Rng`]: key, stream selector, and
/// word position. All three survive the f64-only JSON number model (the key
/// as 8 `u32` words, the 64-bit stream/position as `(lo, hi)` pairs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RngState {
    /// The 256-bit key as 8 little-endian words.
    pub key: Vec<u32>,
    /// Stream selector, low half.
    pub stream_lo: u32,
    /// Stream selector, high half.
    pub stream_hi: u32,
    /// Word position, low half.
    pub pos_lo: u32,
    /// Word position, high half.
    pub pos_hi: u32,
}

impl RngState {
    /// Captures the generator's complete state.
    pub fn capture(rng: &ChaCha8Rng) -> Self {
        let seed = rng.get_seed();
        let key = (0..8)
            .map(|i| u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().expect("4-byte chunk")))
            .collect();
        let (stream_lo, stream_hi) = split_u64(rng.get_stream());
        let (pos_lo, pos_hi) = split_u64(rng.get_word_pos());
        RngState {
            key,
            stream_lo,
            stream_hi,
            pos_lo,
            pos_hi,
        }
    }

    /// Rebuilds a generator that continues exactly where the captured one
    /// stood.
    pub fn restore(&self) -> SnapResult<ChaCha8Rng> {
        if self.key.len() != 8 {
            return Err(SnapshotError::Encode(format!(
                "rng key has {} words, expected 8",
                self.key.len()
            )));
        }
        let mut seed = [0u8; 32];
        for (i, k) in self.key.iter().enumerate() {
            seed[4 * i..4 * i + 4].copy_from_slice(&k.to_le_bytes());
        }
        let mut rng = ChaCha8Rng::from_seed(seed);
        // Order matters: set_stream rewinds the position.
        rng.set_stream(join_u64(self.stream_lo, self.stream_hi));
        rng.set_word_pos(join_u64(self.pos_lo, self.pos_hi));
        Ok(rng)
    }
}

/// A double-buffered checkpoint directory: writes alternate between
/// `ckpt-A` and `ckpt-B`, each carrying a monotonic sequence number, so the
/// previous checkpoint is never touched while the next one is being
/// written. Combined with [`atomic_write`], *any* crash leaves at least one
/// loadable checkpoint once the first save completed.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

/// One slot's validated contents.
struct SlotRead {
    seq: u64,
    payload: Vec<u8>,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn new(dir: impl Into<PathBuf>) -> SnapResult<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", dir.display())))?;
        Ok(CheckpointStore { dir })
    }

    /// The two slot paths, `[ckpt-A, ckpt-B]`.
    pub fn slot_paths(&self) -> [PathBuf; 2] {
        [self.dir.join("ckpt-A"), self.dir.join("ckpt-B")]
    }

    /// Reads and validates one slot. `Ok(None)` when the file does not
    /// exist; structured error when it exists but cannot be decoded.
    fn read_slot(&self, path: &Path) -> SnapResult<Option<SlotRead>> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(SnapshotError::Io(format!("{}: {e}", path.display()))),
        };
        let (seq, payload) = decode_frame(&bytes)?;
        Ok(Some(SlotRead {
            seq,
            payload: payload.to_vec(),
        }))
    }

    /// Validates both slots. Returns `(valid slots ordered best-first,
    /// first error seen, whether any slot file exists)`.
    #[allow(clippy::type_complexity)]
    fn scan(&self) -> (Vec<(usize, SlotRead)>, Option<SnapshotError>, bool) {
        let mut valid = Vec::new();
        let mut first_err = None;
        let mut any_present = false;
        for (i, path) in self.slot_paths().iter().enumerate() {
            match self.read_slot(path) {
                Ok(Some(read)) => {
                    any_present = true;
                    valid.push((i, read));
                }
                Ok(None) => {}
                Err(e) => {
                    any_present = true;
                    first_err.get_or_insert(e);
                }
            }
        }
        valid.sort_by_key(|slot| std::cmp::Reverse(slot.1.seq));
        (valid, first_err, any_present)
    }

    /// Writes a new checkpoint. The payload goes to the slot **not**
    /// holding the newest valid checkpoint, with sequence number
    /// `newest + 1`; the previous good checkpoint survives any crash during
    /// this call. Returns the new sequence number.
    pub fn save(&self, payload: &[u8]) -> SnapResult<u64> {
        let (valid, _, _) = self.scan();
        let (target_slot, seq) = match valid.first() {
            Some((slot, read)) => (1 - *slot, read.seq + 1),
            None => (0, 1),
        };
        let frame = encode_frame(seq, payload);
        atomic_write(&self.slot_paths()[target_slot], &frame)?;
        Ok(seq)
    }

    /// Loads the newest valid checkpoint.
    ///
    /// * `Ok(Some((seq, payload)))` — at least one slot decoded; the newest
    ///   wins. A corrupt sibling is ignored (that is the point of the
    ///   double buffer).
    /// * `Ok(None)` — no slot file exists (fresh start).
    /// * `Err(_)` — slot files exist but none decodes: resuming silently
    ///   from nothing would discard work, so the caller must decide.
    pub fn load_latest(&self) -> SnapResult<Option<(u64, Vec<u8>)>> {
        let (mut valid, first_err, any_present) = self.scan();
        if let Some((_, read)) = valid.first_mut() {
            return Ok(Some((read.seq, std::mem::take(&mut read.payload))));
        }
        match (any_present, first_err) {
            (true, Some(e)) => Err(e),
            (true, None) => Err(SnapshotError::Truncated),
            (false, _) => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::RngCore;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("fedfreq-snap-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_ieee_check_value() {
        // The canonical CRC-32/IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let payload = b"{\"hello\": 1}";
        let frame = encode_frame(42, payload);
        let (seq, got) = decode_frame(&frame).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(got, payload);
    }

    #[test]
    fn corruption_in_every_region_is_detected() {
        let frame = encode_frame(7, b"payload bytes here");
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            let err = decode_frame(&bad).expect_err("corruption must not decode");
            match i {
                0..=7 => assert_eq!(err, SnapshotError::BadMagic, "byte {i}"),
                // Damage to the length field may claim more payload than the
                // file holds, which reports as truncation — still structured.
                20..=27 => assert!(
                    matches!(err, SnapshotError::BadChecksum | SnapshotError::Truncated),
                    "byte {i}: got {err:?}"
                ),
                _ => assert_eq!(err, SnapshotError::BadChecksum, "byte {i}"),
            }
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let frame = encode_frame(3, b"0123456789abcdef");
        for len in 0..frame.len() {
            let err = decode_frame(&frame[..len]).expect_err("truncation must not decode");
            assert!(
                matches!(err, SnapshotError::Truncated),
                "len {len}: got {err:?}"
            );
        }
        assert!(decode_frame(&frame).is_ok());
    }

    #[test]
    fn version_mismatch_is_structured() {
        let frame = encode_frame_versioned(VERSION + 1, 1, b"future payload");
        assert_eq!(
            decode_frame(&frame),
            Err(SnapshotError::BadVersion {
                found: VERSION + 1,
                expected: VERSION
            })
        );
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = temp_dir("aw");
        let path = dir.join("file.bin");
        atomic_write(&path, b"first").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let extras: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "file.bin")
            .collect();
        assert!(extras.is_empty(), "leftover files: {extras:?}");
    }

    #[test]
    fn rng_state_roundtrip_is_exact_even_past_2_53() {
        // Key, stream, and position all exercise the full 64-bit range —
        // precisely what naive f64 JSON numbers would corrupt.
        let mut rng = ChaCha8Rng::seed_from_u64(0xDEAD_BEEF_CAFE_F00D);
        rng.set_stream(u64::MAX - 3);
        for _ in 0..37 {
            rng.next_u32();
        }
        let state = RngState::capture(&rng);
        let json = encode_payload(&state).unwrap();
        let back: RngState = decode_payload(&json).unwrap();
        assert_eq!(back, state);
        let mut restored = back.restore().unwrap();
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
        // Bad key length is an error, not a panic.
        let bad = RngState {
            key: vec![1, 2, 3],
            ..state
        };
        assert!(bad.restore().is_err());
    }

    #[test]
    fn store_alternates_slots_and_loads_newest() {
        let dir = temp_dir("ab");
        let store = CheckpointStore::new(&dir).unwrap();
        assert_eq!(store.load_latest().unwrap(), None);

        assert_eq!(store.save(b"one").unwrap(), 1);
        assert_eq!(store.load_latest().unwrap(), Some((1, b"one".to_vec())));
        assert_eq!(store.save(b"two").unwrap(), 2);
        assert_eq!(store.load_latest().unwrap(), Some((2, b"two".to_vec())));
        assert_eq!(store.save(b"three").unwrap(), 3);
        assert_eq!(store.load_latest().unwrap(), Some((3, b"three".to_vec())));

        // Both slot files exist after two saves.
        let [a, b] = store.slot_paths();
        assert!(a.exists() && b.exists());
    }

    #[test]
    fn corrupting_one_slot_falls_back_to_survivor() {
        let dir = temp_dir("surv");
        let store = CheckpointStore::new(&dir).unwrap();
        store.save(b"old good").unwrap(); // seq 1 → slot A
        store.save(b"new good").unwrap(); // seq 2 → slot B
        let [a, b] = store.slot_paths();

        // Corrupt the *newest* slot (a payload byte): load falls back to
        // the older one.
        let mut bytes = std::fs::read(&b).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&b, &bytes).unwrap();
        assert_eq!(
            store.load_latest().unwrap(),
            Some((1, b"old good".to_vec()))
        );
        // And the next save overwrites the corrupt slot, not the survivor.
        assert_eq!(store.save(b"recovered").unwrap(), 2);
        assert_eq!(
            store.load_latest().unwrap(),
            Some((2, b"recovered".to_vec()))
        );

        // Corrupt both: structured error, never a panic, never Ok(None).
        for p in [&a, &b] {
            let mut bytes = std::fs::read(p).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
            std::fs::write(p, &bytes).unwrap();
        }
        assert_eq!(store.load_latest(), Err(SnapshotError::BadChecksum));
    }

    #[test]
    fn truncated_slot_is_tolerated_when_sibling_survives() {
        let dir = temp_dir("trunc");
        let store = CheckpointStore::new(&dir).unwrap();
        store.save(b"good").unwrap();
        store.save(b"newer").unwrap();
        let [_, b] = store.slot_paths();
        let bytes = std::fs::read(&b).unwrap();
        std::fs::write(&b, &bytes[..bytes.len() / 3]).unwrap();
        assert_eq!(store.load_latest().unwrap(), Some((1, b"good".to_vec())));
    }

    #[test]
    fn split_join_u64_is_identity() {
        for x in [
            0,
            1,
            u64::MAX,
            1 << 53,
            (1 << 53) + 1,
            0xDEAD_BEEF_0BAD_F00D,
        ] {
            let (lo, hi) = split_u64(x);
            assert_eq!(join_u64(lo, hi), x);
        }
    }

    proptest! {
        /// Roundtrip identity for arbitrary payloads and sequence numbers.
        #[test]
        fn prop_frame_roundtrip(payload in proptest::collection::vec(0u8..=255, 0..512), seq in 0u64..u64::MAX) {
            let frame = encode_frame(seq, &payload);
            let (got_seq, got) = decode_frame(&frame).unwrap();
            prop_assert_eq!(got_seq, seq);
            prop_assert_eq!(got, &payload[..]);
        }

        /// Any single-byte corruption yields a structured error — never a
        /// panic, never silent acceptance.
        #[test]
        fn prop_single_byte_corruption_never_decodes(
            payload in proptest::collection::vec(0u8..=255, 1..256),
            seq in 0u64..u64::MAX,
            idx in 0usize..usize::MAX,
            mask in 1u8..=255,
        ) {
            let mut frame = encode_frame(seq, &payload);
            let i = idx % frame.len();
            frame[i] ^= mask;
            prop_assert!(decode_frame(&frame).is_err());
        }

        /// Arbitrary truncation yields a structured error.
        #[test]
        fn prop_truncation_never_decodes(
            payload in proptest::collection::vec(0u8..=255, 1..256),
            cut in 0usize..usize::MAX,
        ) {
            let frame = encode_frame(1, &payload);
            let len = cut % frame.len(); // strictly shorter
            prop_assert!(decode_frame(&frame[..len]).is_err());
        }

        /// RNG capture/restore is exact for arbitrary (seed, stream, draws).
        #[test]
        fn prop_rng_state_roundtrip(seed in 0u64..u64::MAX, stream in 0u64..u64::MAX, draws in 0usize..70) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            rng.set_stream(stream);
            for _ in 0..draws {
                rng.next_u32();
            }
            let mut restored = RngState::capture(&rng).restore().unwrap();
            for _ in 0..20 {
                prop_assert_eq!(rng.next_u64(), restored.next_u64());
            }
        }
    }
}
