//! The environment interface.

use crate::Result;
use rand_chacha::ChaCha8Rng;
use serde::Value;

/// One environment transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Observation after the action.
    pub obs: Vec<f64>,
    /// Reward earned by the action.
    pub reward: f64,
    /// Whether the episode terminated with this step.
    pub done: bool,
}

/// A continuous-action reinforcement-learning environment.
///
/// Actions arrive as raw policy outputs in `R^action_dim`; the environment
/// owns the mapping into its feasible set (for the FL environment, a
/// sigmoid squash into `(0, δ_i^max]` per device). Keeping the squash on
/// the environment side keeps Gaussian log-probabilities exact.
pub trait Environment {
    /// Observation dimensionality.
    fn obs_dim(&self) -> usize;

    /// Action dimensionality.
    fn action_dim(&self) -> usize;

    /// Starts a new episode and returns the initial observation.
    fn reset(&mut self, rng: &mut ChaCha8Rng) -> Result<Vec<f64>>;

    /// Applies an action and advances one step.
    fn step(&mut self, action: &[f64]) -> Result<Step>;

    /// Optional scalar diagnostic for the most recent [`Environment::step`]
    /// — e.g. the unweighted system cost behind a shaped reward. Rollout
    /// runners aggregate it into per-episode means; environments that track
    /// nothing extra keep the default `None` (the runners then fall back to
    /// `-reward`).
    fn step_metric(&self) -> Option<f64> {
        None
    }
}

/// An environment whose mid-episode state can be captured and restored
/// exactly — the requirement for checkpointing a vectorized rollout, where
/// environments are always frozen mid-episode at a round boundary.
///
/// The state travels as a [`serde::Value`] tree so the trait stays
/// object-safe-ish and generic snapshot plumbing (`fl_rl::snapshot`) never
/// needs to know concrete environment types. The contract mirrors the rest
/// of the resume story: `import_env_state(export_env_state())` must leave
/// the environment bit-identical — same observations, same rewards, same
/// trajectory — for any sequence of subsequent steps.
pub trait SnapshotEnv: Environment {
    /// Captures the complete mutable environment state.
    fn export_env_state(&self) -> Value;

    /// Restores state captured by [`SnapshotEnv::export_env_state`].
    /// Implementations must validate shape (e.g. device counts) and return
    /// an error rather than panic on foreign values.
    fn import_env_state(&mut self, state: &Value) -> Result<()>;
}

#[cfg(test)]
pub(crate) mod testenv {
    //! A tiny analytically solvable environment shared by the crate tests:
    //! reward `-(a - target(s))²` where `target(s) = 0.5 s`, episode length
    //! fixed. The optimal policy is `a = 0.5 s`, mean reward 0.
    use super::*;
    use rand::Rng;

    pub struct QuadEnv {
        pub state: f64,
        pub steps_left: u32,
        pub horizon: u32,
    }

    impl QuadEnv {
        pub fn new(horizon: u32) -> Self {
            QuadEnv {
                state: 0.0,
                steps_left: horizon,
                horizon,
            }
        }
    }

    impl SnapshotEnv for QuadEnv {
        fn export_env_state(&self) -> Value {
            use serde::Serialize;
            let mut obj = std::collections::BTreeMap::new();
            obj.insert("state".to_string(), self.state.to_value());
            obj.insert("steps_left".to_string(), self.steps_left.to_value());
            obj.insert("horizon".to_string(), self.horizon.to_value());
            Value::Object(obj)
        }

        fn import_env_state(&mut self, state: &Value) -> Result<()> {
            use serde::Deserialize;
            let field = |k: &str| {
                state.get(k).ok_or_else(|| {
                    crate::RlError::InvalidArgument(format!("QuadEnv state missing {k}"))
                })
            };
            let bad = |e: serde::DeError| crate::RlError::InvalidArgument(e.to_string());
            self.state = f64::from_value(field("state")?).map_err(bad)?;
            self.steps_left = u32::from_value(field("steps_left")?).map_err(bad)?;
            self.horizon = u32::from_value(field("horizon")?).map_err(bad)?;
            Ok(())
        }
    }

    impl Environment for QuadEnv {
        fn obs_dim(&self) -> usize {
            1
        }

        fn action_dim(&self) -> usize {
            1
        }

        fn reset(&mut self, rng: &mut ChaCha8Rng) -> Result<Vec<f64>> {
            self.state = rng.gen_range(-1.0..1.0);
            self.steps_left = self.horizon;
            Ok(vec![self.state])
        }

        fn step(&mut self, action: &[f64]) -> Result<Step> {
            let target = 0.5 * self.state;
            let d = action[0] - target;
            let reward = -d * d;
            self.state = -self.state * 0.9; // deterministic drift
            self.steps_left -= 1;
            Ok(Step {
                obs: vec![self.state],
                reward,
                done: self.steps_left == 0,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testenv::QuadEnv;
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn quad_env_contract() {
        let mut env = QuadEnv::new(3);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let obs = env.reset(&mut rng).unwrap();
        assert_eq!(obs.len(), env.obs_dim());
        let s1 = env.step(&[0.0]).unwrap();
        assert!(!s1.done);
        assert!(s1.reward <= 0.0);
        env.step(&[0.0]).unwrap();
        let s3 = env.step(&[0.0]).unwrap();
        assert!(s3.done);
    }

    #[test]
    fn quad_env_optimal_action_zero_reward() {
        let mut env = QuadEnv::new(1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let obs = env.reset(&mut rng).unwrap();
        let s = env.step(&[0.5 * obs[0]]).unwrap();
        assert!(s.reward.abs() < 1e-12);
    }
}
