//! Generalized advantage estimation.
//!
//! Algorithm 1's critic objective (line 20) minimizes the squared one-step
//! TD error — the `λ_GAE = 0` member of this family. We expose the full
//! GAE(λ) estimator (Schulman et al. 2016) since PPO is typically run with
//! `λ_GAE ≈ 0.95`; the `abl_ppo` bench sweeps this back to 0 for fidelity
//! with the paper's pseudo-code.

/// Computes advantages and value targets for one rollout.
///
/// * `rewards[t]`, `values[t]`, `dones[t]` — per-step data.
/// * `last_value` — `V(s_T)` bootstrapping the value beyond the buffer (use
///   0.0 if the last transition ends an episode).
///
/// Returns `(advantages, returns)` where `returns[t] = advantages[t] +
/// values[t]` are the critic regression targets.
pub fn gae(
    rewards: &[f64],
    values: &[f64],
    dones: &[bool],
    last_value: f64,
    gamma: f64,
    lambda: f64,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(rewards.len(), values.len());
    assert_eq!(rewards.len(), dones.len());
    let n = rewards.len();
    let mut adv = vec![0.0; n];
    let mut acc = 0.0;
    for t in (0..n).rev() {
        let next_value = if t == n - 1 {
            last_value
        } else {
            values[t + 1]
        };
        let not_done = if dones[t] { 0.0 } else { 1.0 };
        let delta = rewards[t] + gamma * next_value * not_done - values[t];
        acc = delta + gamma * lambda * not_done * acc;
        adv[t] = acc;
    }
    let returns = adv.iter().zip(values).map(|(a, v)| a + v).collect();
    (adv, returns)
}

/// Normalizes advantages to zero mean / unit std in place (no-op for fewer
/// than two samples or a constant vector). Standard PPO stabilization.
pub fn normalize_advantages(adv: &mut [f64]) {
    if adv.len() < 2 {
        return;
    }
    let mean = adv.iter().sum::<f64>() / adv.len() as f64;
    let var = adv.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / adv.len() as f64;
    let std = var.sqrt();
    if std < 1e-8 {
        return;
    }
    for a in adv.iter_mut() {
        *a = (*a - mean) / std;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_step_terminal() {
        // One terminal step: advantage = r - V(s).
        let (adv, ret) = gae(&[2.0], &[0.5], &[true], 99.0, 0.9, 0.95);
        assert!((adv[0] - 1.5).abs() < 1e-12);
        assert!((ret[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_uses_last_value() {
        // Non-terminal single step: δ = r + γ·last_value − V(s).
        let (adv, _) = gae(&[1.0], &[0.0], &[false], 2.0, 0.5, 0.95);
        assert!((adv[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_zero_is_td_error() {
        // With λ=0, advantages are pure one-step TD errors — Algorithm 1's
        // critic objective.
        let rewards = [1.0, 2.0, 3.0];
        let values = [0.5, 1.0, 1.5];
        let dones = [false, false, true];
        let (adv, _) = gae(&rewards, &values, &dones, 0.0, 0.9, 0.0);
        assert!((adv[0] - (1.0 + 0.9 * 1.0 - 0.5)).abs() < 1e-12);
        assert!((adv[1] - (2.0 + 0.9 * 1.5 - 1.0)).abs() < 1e-12);
        assert!((adv[2] - (3.0 - 1.5)).abs() < 1e-12);
    }

    #[test]
    fn lambda_one_is_monte_carlo() {
        // With λ=1 and γ=1, returns are full discounted sums.
        let rewards = [1.0, 1.0, 1.0];
        let values = [0.0, 0.0, 0.0];
        let dones = [false, false, true];
        let (adv, ret) = gae(&rewards, &values, &dones, 0.0, 1.0, 1.0);
        assert!((adv[0] - 3.0).abs() < 1e-12);
        assert!((ret[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn done_blocks_credit_flow() {
        // Episode boundary at t=0: the huge reward at t=1 must not leak back.
        let rewards = [0.0, 1000.0];
        let values = [0.0, 0.0];
        let dones = [true, true];
        let (adv, _) = gae(&rewards, &values, &dones, 0.0, 0.99, 0.95);
        assert!(adv[0].abs() < 1e-12);
    }

    #[test]
    fn three_step_hand_computed() {
        // Full recursion worked by hand, with a mid-buffer episode boundary
        // AND a non-terminal bootstrap — the two paths through `not_done`.
        //
        //   rewards = [1.0, -0.5, 2.0], values = [0.2, 0.4, 0.1]
        //   dones   = [false, true, false], last_value = 0.7
        //   gamma = 0.9, lambda = 0.8
        //
        //   t=2 (bootstraps): δ₂ = 2.0 + 0.9·0.7 − 0.1 = 2.53; A₂ = 2.53
        //   t=1 (done):       δ₁ = −0.5 + 0 − 0.4 = −0.9;  A₁ = −0.9
        //                     (done zeroes both the bootstrap and the tail)
        //   t=0:              δ₀ = 1.0 + 0.9·0.4 − 0.2 = 1.16
        //                     A₀ = 1.16 + 0.9·0.8·(−0.9) = 0.512
        let (adv, ret) = gae(
            &[1.0, -0.5, 2.0],
            &[0.2, 0.4, 0.1],
            &[false, true, false],
            0.7,
            0.9,
            0.8,
        );
        let expected_adv = [0.512, -0.9, 2.53];
        let expected_ret = [0.712, -0.5, 2.63];
        for t in 0..3 {
            assert!(
                (adv[t] - expected_adv[t]).abs() < 1e-12,
                "adv[{t}]={}",
                adv[t]
            );
            assert!(
                (ret[t] - expected_ret[t]).abs() < 1e-12,
                "ret[{t}]={}",
                ret[t]
            );
        }
    }

    #[test]
    fn normalize_advantages_basic() {
        let mut adv = vec![1.0, 2.0, 3.0, 4.0];
        normalize_advantages(&mut adv);
        let mean: f64 = adv.iter().sum::<f64>() / 4.0;
        let var: f64 = adv.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_degenerate_cases() {
        let mut one = vec![5.0];
        normalize_advantages(&mut one);
        assert_eq!(one, vec![5.0]);
        let mut constant = vec![2.0, 2.0, 2.0];
        normalize_advantages(&mut constant);
        assert_eq!(constant, vec![2.0, 2.0, 2.0]);
    }

    proptest! {
        /// returns − values == advantages, definitionally.
        #[test]
        fn prop_returns_identity(
            rewards in proptest::collection::vec(-5.0f64..5.0, 1..20),
            gamma in 0.5f64..1.0,
            lambda in 0.0f64..1.0,
        ) {
            let n = rewards.len();
            let values: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let mut dones = vec![false; n];
            dones[n - 1] = true;
            let (adv, ret) = gae(&rewards, &values, &dones, 0.0, gamma, lambda);
            for i in 0..n {
                prop_assert!((ret[i] - values[i] - adv[i]).abs() < 1e-9);
            }
        }

        /// GAE with all-zero rewards and values yields zero advantages.
        #[test]
        fn prop_zero_inputs_zero_output(n in 1usize..20) {
            let (adv, ret) = gae(
                &vec![0.0; n],
                &vec![0.0; n],
                &vec![false; n],
                0.0,
                0.99,
                0.95,
            );
            prop_assert!(adv.iter().all(|a| a.abs() < 1e-12));
            prop_assert!(ret.iter().all(|r| r.abs() < 1e-12));
        }
    }
}
