//! Tiny shared CLI parser for the bench binaries and the `fl-serve`
//! daemon: value flags (`--ckpt DIR`), switch flags (`--write-baseline`),
//! and positional arguments, with typed accessors.
//!
//! Every binary used to hand-roll the same `while let Some(a) =
//! args.next()` loop; this module is that loop, extracted once. It is
//! deliberately std-only and free of `crate::` paths so `fl-serve` can
//! include the same source file via `#[path]` without depending on
//! fl-bench (which depends on fl-serve — the other direction would be a
//! cycle).
//!
//! Unrecognized `--flags` fall through to positionals, matching the
//! historical behavior of the bench binaries.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// Parsed command line: positionals in order, flag values by flag name.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    positional: Vec<String>,
    values: BTreeMap<String, String>,
    switches: BTreeSet<String>,
}

impl ParsedArgs {
    /// Parses the process arguments. `value_flags` each consume the next
    /// argument; `switch_flags` are booleans.
    ///
    /// Panics with a usage message when a value flag is last on the line —
    /// same contract as the `expect` calls it replaces.
    pub fn parse(value_flags: &[&str], switch_flags: &[&str]) -> Self {
        Self::parse_from(std::env::args().skip(1), value_flags, switch_flags)
    }

    /// [`ParsedArgs::parse`] over an explicit argument iterator (tests).
    pub fn parse_from(
        args: impl IntoIterator<Item = String>,
        value_flags: &[&str],
        switch_flags: &[&str],
    ) -> Self {
        let mut parsed = ParsedArgs::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            if value_flags.contains(&arg.as_str()) {
                let value = args.next().unwrap_or_else(|| panic!("{arg} needs a value"));
                parsed.values.insert(arg, value);
            } else if switch_flags.contains(&arg.as_str()) {
                parsed.switches.insert(arg);
            } else {
                parsed.positional.push(arg);
            }
        }
        parsed
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// The `i`-th positional parsed as `T`, or `default` when absent or
    /// unparseable (the historical `and_then(parse.ok()).unwrap_or(..)`).
    pub fn positional_or<T: std::str::FromStr>(&self, i: usize, default: T) -> T {
        self.positional
            .get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// A value flag's raw value.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    /// A value flag as a path (`--ckpt DIR`, `--obs DIR`).
    pub fn path(&self, flag: &str) -> Option<PathBuf> {
        self.values.get(flag).map(PathBuf::from)
    }

    /// A value flag parsed as `T`; panics with a usage message when the
    /// value does not parse.
    pub fn parsed<T: std::str::FromStr>(&self, flag: &str) -> Option<T> {
        self.values.get(flag).map(|s| match s.parse() {
            Ok(v) => v,
            Err(_) => panic!("{flag} got unparseable value {s:?}"),
        })
    }

    /// A value flag parsed as a fraction strictly inside `(0, 1)`
    /// (`--kill-after FRAC`); panics otherwise.
    pub fn fraction_01(&self, flag: &str) -> Option<f64> {
        self.parsed::<f64>(flag).inspect(|&frac| {
            assert!(
                frac > 0.0 && frac < 1.0,
                "{flag} must be in (0, 1), got {frac}"
            );
        })
    }

    /// Whether a switch flag was present.
    pub fn has(&self, flag: &str) -> bool {
        self.switches.contains(flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn splits_values_switches_and_positionals() {
        let parsed = ParsedArgs::parse_from(
            strs(&[
                "5",
                "--ckpt",
                "/tmp/x",
                "800",
                "--write-baseline",
                "--weird",
            ]),
            &["--ckpt"],
            &["--write-baseline"],
        );
        assert_eq!(parsed.positional_or(0, 0usize), 5);
        assert_eq!(parsed.positional_or(1, 0usize), 800);
        // Unknown flags fall through to positionals, as before.
        assert_eq!(parsed.positional(2), Some("--weird"));
        assert_eq!(parsed.path("--ckpt").unwrap(), PathBuf::from("/tmp/x"));
        assert!(parsed.has("--write-baseline"));
        assert!(!parsed.has("--other"));
        assert!(parsed.value("--obs").is_none());
    }

    #[test]
    fn typed_accessors() {
        let parsed = ParsedArgs::parse_from(
            strs(&["--kill-after", "0.25", "--linger-us", "300"]),
            &["--kill-after", "--linger-us"],
            &[],
        );
        assert_eq!(parsed.fraction_01("--kill-after"), Some(0.25));
        assert_eq!(parsed.parsed::<u64>("--linger-us"), Some(300));
        assert_eq!(parsed.positional_or(0, 7usize), 7);
    }

    #[test]
    #[should_panic(expected = "--kill-after must be in (0, 1)")]
    fn fraction_bounds_enforced() {
        let parsed = ParsedArgs::parse_from(strs(&["--kill-after", "1.5"]), &["--kill-after"], &[]);
        let _ = parsed.fraction_01("--kill-after");
    }

    #[test]
    #[should_panic(expected = "--ckpt needs a value")]
    fn trailing_value_flag_panics() {
        let _ = ParsedArgs::parse_from(strs(&["--ckpt"]), &["--ckpt"], &[]);
    }
}
