//! Ablation — wall-clock and energy to reach the learning target.
//!
//! The paper's closing observation: "blindly increasing the computational
//! speed not only can not accelerate the federated learning convergence
//! rate, but also will increase energy consumption". Synchronous FedAvg
//! fixes the *round count* to reach `F(ω) < ε` regardless of frequencies;
//! what the scheduler controls is the wall-clock and the joules that round
//! count costs. This bench measures exactly that for every controller.
//!
//! Usage: `cargo run --release -p fl-bench --bin abl_time_to_eps [episodes] [epsilon]`

use fl_bench::{dump_json, Scenario};
use fl_ctrl::{
    FrequencyController, HeuristicController, MaxFreqController, OracleController, StaticController,
};
use fl_learn::{data, FedAvg, FedAvgConfig, LocalTrainer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let episodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(800);
    let epsilon: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.04);

    let scenario = Scenario::testbed();
    let sys = scenario.build();
    let n = sys.num_devices();

    // The learning task (identical across controllers).
    let mut data_rng = ChaCha8Rng::seed_from_u64(404);
    let dataset = data::gaussian_blobs(600, 2, 3.5, &mut data_rng).expect("dataset");
    let shards = data::split_non_iid(&dataset, n, 0.8, &mut data_rng).expect("shards");

    let (drl, cached) = scenario.train_cached(&sys, episodes);
    println!("DRL controller ready (cache hit: {cached}); target F(w) < {epsilon}\n");
    let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0x7E5);
    let stat = StaticController::new(&sys, 1000, 0.1, &mut rng).expect("static");

    let mut controllers: Vec<Box<dyn FrequencyController>> = vec![
        Box::new(drl),
        Box::new(HeuristicController::default()),
        Box::new(stat),
        Box::new(MaxFreqController),
        Box::new(OracleController::default()),
    ];

    println!(
        "{:<12} {:>8} {:>14} {:>12} {:>10}",
        "approach", "rounds", "wall-clock(s)", "energy(J)", "final F(w)"
    );
    let mut results = Vec::new();
    for ctrl in controllers.iter_mut() {
        ctrl.reset();
        // Fresh learner with identical seeds: the statistical trajectory is
        // the same for every controller by construction.
        let model = {
            let mut mrng = ChaCha8Rng::seed_from_u64(405);
            LocalTrainer::default_model(2, &mut mrng).expect("model")
        };
        let mut fed = FedAvg::new(model, FedAvgConfig::default()).expect("fedavg");
        let mut fed_rng = ChaCha8Rng::seed_from_u64(406);

        let mut t = 200.0;
        let mut prev = None;
        let mut wall = 0.0;
        let mut energy = 0.0;
        let mut rounds = 0;
        let mut loss = f64::INFINITY;
        while loss >= epsilon && rounds < 200 {
            let freqs = ctrl.decide(rounds, t, &sys, prev.as_ref()).expect("decide");
            let report = sys.run_iteration(t, &freqs).expect("iteration");
            t = report.end_time();
            wall += report.duration;
            energy += report.total_energy();
            let round = fed.round(&shards, &mut fed_rng).expect("round");
            loss = round.global_loss;
            prev = Some(report);
            rounds += 1;
        }
        println!(
            "{:<12} {:>8} {:>14.1} {:>12.1} {:>10.4}",
            ctrl.name(),
            rounds,
            wall,
            energy,
            loss
        );
        results.push(serde_json::json!({
            "name": ctrl.name(),
            "rounds": rounds,
            "wall_clock_s": wall,
            "energy_j": energy,
        }));
    }
    println!(
        "\nround count is identical (synchronized protocol); the scheduler only\n\
         changes what those rounds cost — maxfreq pays the most joules for the\n\
         same model, and only marginal wall-clock savings."
    );
    dump_json(
        "abl_time_to_eps.json",
        &serde_json::json!({"epsilon": epsilon, "results": results}),
    );
}
