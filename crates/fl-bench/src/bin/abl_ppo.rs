//! Ablation — Algorithm-1 / PPO hyperparameters.
//!
//! Three sweeps over the knobs Algorithm 1 exposes:
//!   * `|D|` (replay-buffer capacity, line 17),
//!   * `M` (update epochs per buffer, line 18),
//!   * GAE λ, where `λ_GAE = 0` reduces the advantage estimator to the
//!     exact one-step TD errors written in Algorithm 1 line 20.
//!
//! Each configuration trains a fresh agent and reports the final training
//! plateau plus online cost.
//!
//! Usage: `cargo run --release -p fl-bench --bin abl_ppo [episodes] [iters]`

use fl_bench::{dump_json, Scenario};
use fl_ctrl::{run_controller, train_drl};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let episodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(400);
    let iterations: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300);

    let scenario = Scenario::testbed();
    let sys = scenario.build();
    let mut results = Vec::new();

    let mut eval = |label: String, mutate: &dyn Fn(&mut fl_ctrl::TrainConfig)| {
        let mut config = scenario.train_config(episodes);
        mutate(&mut config);
        let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0xAB3);
        let out = train_drl(&sys, &config, &mut rng).expect("training");
        let plateau = out.final_mean_cost(50);
        let mut ctrl = out.controller;
        let run = run_controller(&sys, &mut ctrl, iterations, 200.0).expect("evaluation");
        let (c, t, e) = run.summary();
        println!(
            "{label:<24} plateau={plateau:>8.3} online cost={c:>8.3} time={t:>7.3} energy={e:>7.3}"
        );
        results.push(serde_json::json!({
            "config": label,
            "train_plateau": plateau,
            "online_cost": c,
            "online_time": t,
            "online_energy": e,
        }));
    };

    println!("-- replay buffer capacity |D| --");
    for &cap in &[100usize, 250, 500, 1000] {
        eval(format!("|D|={cap}"), &move |c| {
            c.ppo.buffer_capacity = cap;
        });
    }

    println!("\n-- update epochs M --");
    for &m in &[1usize, 4, 10, 20] {
        eval(format!("M={m}"), &move |c| {
            c.ppo.epochs = m;
        });
    }

    println!("\n-- GAE lambda (0 = Algorithm 1's TD errors) --");
    for &gl in &[0.0, 0.5, 0.9, 1.0] {
        eval(format!("gae_lambda={gl}"), &move |c| {
            c.ppo.gae_lambda = gl;
        });
    }

    println!("\n-- PPO clip epsilon --");
    for &clip in &[0.05, 0.1, 0.2, 0.4] {
        eval(format!("clip={clip}"), &move |c| {
            c.ppo.clip = clip;
        });
    }

    println!("\n-- extensions: value clipping / lr annealing --");
    eval("value_clip=0.2".to_string(), &|c| {
        c.ppo.value_clip = Some(0.2);
    });
    eval("lr_decay=0.995".to_string(), &|c| {
        c.ppo.lr_decay = 0.995;
    });
    eval("both".to_string(), &|c| {
        c.ppo.value_clip = Some(0.2);
        c.ppo.lr_decay = 0.995;
    });

    dump_json("abl_ppo.json", &serde_json::json!({"sweep": results}));
}
