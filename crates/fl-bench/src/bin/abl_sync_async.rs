//! Ablation — synchronous vs asynchronous federated learning.
//!
//! Section III adopts the synchronized model, citing Chen et al. (ref. 14) for
//! synchronous SGD being the more efficient choice. This bench measures
//! that decision on our physics: the same fleet, traces, data shards, and
//! local optimizer run under (a) synchronized FedAvg — every round waits
//! for the straggler — and (b) asynchronous FedAsync-style aggregation —
//! updates land whenever devices finish, discounted by staleness. The
//! comparison is global loss as a function of *wall-clock time*.
//!
//! Usage: `cargo run --release -p fl-bench --bin abl_sync_async [wall_seconds]`

use fl_bench::{dump_json, Scenario};
use fl_learn::{data, AsyncFedAvg, AsyncFedAvgConfig, FedAvg, FedAvgConfig, LocalTrainer};
use fl_sim::run_async;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let wall: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(600.0);

    let scenario = Scenario::testbed();
    let sys = scenario.build();
    let n = sys.num_devices();
    let freqs: Vec<f64> = sys.devices().iter().map(|d| d.delta_max_ghz).collect();
    let t0 = 200.0;

    // Shared learning task (harder split so the race is visible).
    let mut rng = ChaCha8Rng::seed_from_u64(808);
    let dataset = data::gaussian_blobs(600, 2, 3.0, &mut rng).expect("dataset");
    let shards = data::split_non_iid(&dataset, n, 0.7, &mut rng).expect("shards");
    let model = {
        let mut mrng = ChaCha8Rng::seed_from_u64(809);
        LocalTrainer::default_model(2, &mut mrng).expect("model")
    };

    // ---- synchronous: rounds tile the timeline, paced by the straggler.
    let mut sync_points = Vec::new();
    let mut sync_energy = 0.0;
    {
        let mut fed = FedAvg::new(model.clone(), FedAvgConfig::default()).expect("fedavg");
        let mut fed_rng = ChaCha8Rng::seed_from_u64(810);
        let mut t = t0;
        while t - t0 < wall {
            let report = sys.run_iteration(t, &freqs).expect("iteration");
            t = report.end_time();
            if t - t0 > wall {
                break;
            }
            sync_energy += report.total_energy();
            let round = fed.round(&shards, &mut fed_rng).expect("round");
            sync_points.push((t - t0, round.global_loss));
        }
    }

    // ---- asynchronous: arrivals land at their own pace.
    let mut async_points = Vec::new();
    {
        let session = run_async(&sys, &freqs, t0, t0 + wall).expect("async session");
        let mut fed =
            AsyncFedAvg::new(model.clone(), n, AsyncFedAvgConfig::default()).expect("async fedavg");
        let mut fed_rng = ChaCha8Rng::seed_from_u64(810);
        let mut staleness_sum = 0usize;
        for a in &session.arrivals {
            let r = fed
                .apply_arrival(a.device, &shards, &mut fed_rng)
                .expect("arrival");
            staleness_sum += r.staleness;
            async_points.push((a.arrival_time - t0, r.global_loss));
        }
        println!(
            "async: {} updates in {wall:.0} s (throughput {:.3}/s), mean staleness {:.2}, energy {:.1} J",
            session.arrivals.len(),
            session.throughput(),
            staleness_sum as f64 / session.arrivals.len().max(1) as f64,
            session.total_energy
        );
    }
    println!(
        "sync:  {} rounds in {wall:.0} s, energy {sync_energy:.1} J\n",
        sync_points.len()
    );

    // Loss-vs-wall-clock table at shared checkpoints.
    println!("{:>12} {:>12} {:>12}", "wall(s)", "sync F(w)", "async F(w)");
    let loss_at = |points: &[(f64, f64)], t: f64| -> f64 {
        points
            .iter()
            .take_while(|(pt, _)| *pt <= t)
            .last()
            .map(|(_, l)| *l)
            .unwrap_or(f64::NAN)
    };
    // Early-heavy checkpoints: convergence differences live in the first
    // minute or two.
    let checkpoints: Vec<f64> = [0.02, 0.04, 0.07, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1.0]
        .iter()
        .map(|f| f * wall)
        .collect();
    for &c in &checkpoints {
        println!(
            "{c:>12.0} {:>12.4} {:>12.4}",
            loss_at(&sync_points, c),
            loss_at(&async_points, c)
        );
    }
    println!(
        "\nasync applies more (but staler, discounted) updates per second; sync\n\
         applies fewer, cleaner ones. Whichever curve is lower at your deadline\n\
         wins — the paper's synchronized choice corresponds to the right-hand\n\
         column staying competitive without staleness tuning."
    );

    dump_json(
        "abl_sync_async.json",
        &serde_json::json!({
            "wall_seconds": wall,
            "sync": sync_points.iter().map(|(t, l)| serde_json::json!([t, l])).collect::<Vec<_>>(),
            "async": async_points.iter().map(|(t, l)| serde_json::json!([t, l])).collect::<Vec<_>>(),
        }),
    );
}
