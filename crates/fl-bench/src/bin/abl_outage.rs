//! Ablation — robustness to coverage outages.
//!
//! The paper motivates DRL with unpredictable connectivity; the harshest
//! version of that is an on–off channel (tunnels, coverage holes — our
//! `Driving4G` profile), where uploads stall completely for stretches.
//! Every controller is evaluated on the same outage-ridden pool, with the
//! DRL agent trained on it. Predict-then-optimize is expected to suffer
//! most here: a point estimate cannot express "the link might vanish".
//!
//! Usage: `cargo run --release -p fl-bench --bin abl_outage [episodes] [iters]`

use fl_bench::{dump_json, print_relative, print_summary_table, Scenario};
use fl_ctrl::{
    compare_controllers, FrequencyController, HeuristicController, MaxFreqController,
    OracleController, StaticController,
};
use fl_net::synth::Profile;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let episodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(800);
    let iterations: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);

    let mut scenario = Scenario::testbed();
    scenario.name = "outage-n3".to_string();
    scenario.profile = Profile::Driving4G;
    let sys = scenario.build();
    println!(
        "abl_outage: N={} on on-off (Driving4G) traces, lambda={}",
        sys.num_devices(),
        sys.config().lambda
    );

    let (drl, cached) = scenario.train_cached(&sys, episodes);
    println!("DRL controller ready (cache hit: {cached})");
    let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0x0A7);
    let stat = StaticController::new(&sys, 1000, 0.1, &mut rng).expect("static");
    let controllers: Vec<Box<dyn FrequencyController + Send>> = vec![
        Box::new(drl),
        Box::new(HeuristicController::default()),
        Box::new(stat),
        Box::new(MaxFreqController),
        Box::new(OracleController::default()),
    ];
    let runs = compare_controllers(&sys, controllers, iterations, 200.0).expect("evaluation");
    print_summary_table("outage robustness (on-off channel)", &runs);
    print_relative(&runs);

    dump_json(
        "abl_outage.json",
        &serde_json::json!({
            "summary": runs.iter().map(|r| {
                let (c, t, e) = r.summary();
                serde_json::json!({"name": r.name, "mean_cost": c, "mean_time": t, "mean_energy": e})
            }).collect::<Vec<_>>(),
        }),
    );
}
