//! CI perf-regression gate for the blocked kernels.
//!
//! Re-measures every `kernel_perf` case and compares the blocked-vs-naive
//! *speedup ratio* against the committed baseline
//! (`crates/fl-bench/results/kernel_bench.json`). Ratios are
//! machine-portable — both families run in the same process — so the gate
//! works on any CI host. A case fails when its measured speedup drops more
//! than 25% below the baseline ratio; `matmul_64` additionally carries an
//! absolute >= 2x floor (the headline claim of the blocked kernels).
//!
//! Two cases gate *scheduling* rather than kernels: `matmul_256_par4`
//! (4 workers vs 1 on the same blocked kernel) and
//! `rollout_forward_batched_32` (one batched policy/value forward vs 32
//! single-row forwards). The parallel case is only gated on hosts with at
//! least 4 cores — below that the 4-worker arm degenerates to time-slicing
//! and its ratio is noise, so it is reported but not enforced.
//!
//! Timing noise is absorbed by retrying the full sweep up to three times;
//! the gate fails only if every attempt regresses. Run with `--release` —
//! debug builds measure the optimizer, not the kernels.
//!
//! The gate also re-runs the serving load sweep (`serve_perf`) against
//! its committed baseline (`crates/fl-bench/results/serve_bench.json`):
//! throughput may drop to 1/4 of baseline and p99 may grow 8x (with a
//! 5 ms absolute floor) before failing — wide margins that catch an
//! accidentally serialized batcher or a lock held across a policy
//! forward, not CI-host jitter. The sweep includes the overload case
//! (offered load past a deliberately slowed server), which additionally
//! gates *structure*: zero transport-level failures (every shed must be
//! a structured `overloaded`/`deadline_exceeded` response) and a
//! non-zero shed count (the bounded admission queue is actually
//! bounding), alongside the same goodput/p99-of-accepted margins.
//!
//! `--write-baseline` regenerates both committed baselines in place.

use fl_bench::kernel_perf::{measure, print_report, KernelReport};
use fl_bench::serve_perf;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Maximum tolerated drop of a case's speedup relative to baseline.
const MAX_REGRESSION: f64 = 0.25;
/// Absolute speedup floor for the headline 64x64 matmul case.
const MATMUL_64_FLOOR: f64 = 2.0;
/// The pool-parallel scheduling case: its "speedup" is 4 workers vs 1 on
/// the same blocked kernel, so it only means anything on a host that can
/// actually run 4 workers concurrently.
const PAR_CASE: &str = "matmul_256_par4";
/// Absolute 4-vs-1-worker floor for [`PAR_CASE`], applied only when the
/// host has at least [`PAR_MIN_CORES`] cores.
const PAR_FLOOR: f64 = 1.2;
/// Minimum host cores for the [`PAR_CASE`] checks (ratio and floor) to be
/// meaningful; below this the parallel arm degenerates to time-slicing and
/// the case is reported but not gated.
const PAR_MIN_CORES: usize = 4;

fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
/// Full-sweep attempts before declaring a regression.
const ATTEMPTS: u32 = 3;
/// Per-case timing budget.
const BUDGET: Duration = Duration::from_millis(200);

fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("results/kernel_bench.json")
}

/// Per-case driving budget for the serve gate: short — the gate checks
/// for collapse, not drift, and three attempts must stay CI-friendly.
const SERVE_BUDGET: Duration = Duration::from_millis(500);

fn serve_baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("results/serve_bench.json")
}

fn load_serve_baseline() -> serve_perf::ServeReport {
    let path = serve_baseline_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!(
            "bench_check: cannot read serve baseline {}: {e}\n\
             regenerate it with: cargo run --release -p fl-bench --bin serve_bench -- --write-baseline",
            path.display()
        );
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!(
            "bench_check: serve baseline {} is not valid: {e}",
            path.display()
        );
        std::process::exit(2);
    })
}

/// Runs the serve gate with retries; exits the process on failure.
fn gate_serve() {
    let baseline = load_serve_baseline();
    let mut failures = Vec::new();
    for attempt in 1..=ATTEMPTS {
        let measured = serve_perf::measure(SERVE_BUDGET);
        failures = serve_perf::check(&baseline, &measured);
        if failures.is_empty() {
            println!("bench_check[serve]: OK (attempt {attempt}/{ATTEMPTS})");
            serve_perf::print_report(&measured);
            return;
        }
        eprintln!(
            "bench_check[serve]: attempt {attempt}/{ATTEMPTS} regressed:\n  {}",
            failures.join("\n  ")
        );
    }
    eprintln!(
        "bench_check: FAIL — serving performance regressed in all \
         {ATTEMPTS} attempts:\n  {}",
        failures.join("\n  ")
    );
    std::process::exit(1);
}

fn load_baseline() -> KernelReport {
    let path = baseline_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!(
            "bench_check: cannot read baseline {}: {e}\n\
             regenerate it with: cargo run --release -p fl-bench --bin bench_check -- --write-baseline",
            path.display()
        );
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("bench_check: baseline {} is not valid: {e}", path.display());
        std::process::exit(2);
    })
}

/// Returns the failures of `measured` against `baseline` (empty = pass).
fn check(baseline: &KernelReport, measured: &KernelReport) -> Vec<String> {
    let mut failures = Vec::new();
    for b in &baseline.cases {
        let Some(m) = measured.cases.iter().find(|m| m.name == b.name) else {
            failures.push(format!("case {} missing from measurement", b.name));
            continue;
        };
        if b.name == PAR_CASE {
            if host_cores() < PAR_MIN_CORES {
                println!(
                    "bench_check: note — {} not gated on a {}-core host \
                     (needs >= {PAR_MIN_CORES})",
                    b.name,
                    host_cores()
                );
                continue;
            }
            if m.speedup < PAR_FLOOR {
                failures.push(format!(
                    "{}: 4-vs-1-worker speedup {:.2}x below the absolute \
                     {PAR_FLOOR}x floor on a {}-core host",
                    b.name,
                    m.speedup,
                    host_cores()
                ));
            }
        }
        let allowed = b.speedup * (1.0 - MAX_REGRESSION);
        if m.speedup < allowed {
            failures.push(format!(
                "{}: speedup {:.2}x fell below {:.2}x (baseline {:.2}x - {}%)",
                b.name,
                m.speedup,
                allowed,
                b.speedup,
                (MAX_REGRESSION * 100.0) as u32
            ));
        }
        if b.name == "matmul_64" && m.speedup < MATMUL_64_FLOOR {
            failures.push(format!(
                "{}: speedup {:.2}x below the absolute {MATMUL_64_FLOOR}x floor",
                b.name, m.speedup
            ));
        }
    }
    failures
}

fn main() {
    if std::env::args().any(|a| a == "--write-baseline") {
        let report = measure(BUDGET);
        print_report(&report);
        let text = serde_json::to_string_pretty(&report).expect("report serializes");
        let path = baseline_path();
        std::fs::create_dir_all(path.parent().expect("baseline path has a parent"))
            .expect("create results dir");
        fl_rl::snapshot::atomic_write(&path, text.as_bytes()).expect("write baseline");
        println!("\n[baseline written to {}]", path.display());

        let serve_report = serve_perf::measure(SERVE_BUDGET);
        serve_perf::print_report(&serve_report);
        let text = serde_json::to_string_pretty(&serve_report).expect("report serializes");
        let path = serve_baseline_path();
        fl_rl::snapshot::atomic_write(&path, text.as_bytes()).expect("write serve baseline");
        println!("\n[serve baseline written to {}]", path.display());
        return;
    }

    let baseline = load_baseline();
    let mut failures = Vec::new();
    for attempt in 1..=ATTEMPTS {
        let measured = measure(BUDGET);
        failures = check(&baseline, &measured);
        if failures.is_empty() {
            println!("bench_check[kernel]: OK (attempt {attempt}/{ATTEMPTS})");
            print_report(&measured);
            gate_serve();
            return;
        }
        eprintln!(
            "bench_check: attempt {attempt}/{ATTEMPTS} regressed:\n  {}",
            failures.join("\n  ")
        );
    }
    eprintln!(
        "bench_check: FAIL — blocked-kernel speedup regressed in all \
         {ATTEMPTS} attempts:\n  {}",
        failures.join("\n  ")
    );
    std::process::exit(1);
}
