//! Renders an fl-obs JSONL event log as a human-readable run report:
//! schema validation, event census, phase-time table, loss-curve quantile
//! rows, fault histogram, and the supervisor intervention timeline.
//!
//! ```bash
//! cargo run --release -p fl-bench --bin abl_seeds -- 2 24 --obs out/
//! cargo run --release -p fl-bench --bin obs_report -- out/
//! ```
//!
//! Usage: `obs_report [--det] [--trace] <file.jsonl | dir>...`
//!
//! A directory argument expands to every `*.jsonl` inside it (sorted).
//! `--det` prints each log's deterministic projection instead of the
//! report — the exact lines CI diffs across worker counts and
//! kill/resume boundaries. `--trace` appends a request-trace summary
//! section (stage attribution reconstructed from `trace` events; see
//! `obs_trace` for the standalone tool). Any schema violation
//! (unparsable line, missing `ev`/`det`, keyless deterministic event,
//! unknown event kind for the current schema version, non-object `wall`)
//! makes the process exit nonzero.

use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

fn main() {
    std::process::exit(run());
}

/// Writes a fully rendered report to stdout. A closed pipe (`obs_report
/// ... | head`) ends the program quietly instead of panicking.
fn print_or_exit(text: &str) {
    use std::io::Write as _;
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

fn run() -> i32 {
    let mut det_only = false;
    let mut with_trace = false;
    let mut inputs: Vec<PathBuf> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--det" => det_only = true,
            "--trace" => with_trace = true,
            _ => inputs.push(PathBuf::from(a)),
        }
    }
    if inputs.is_empty() {
        eprintln!("usage: obs_report [--det] [--trace] <file.jsonl | dir>...");
        return 2;
    }

    let mut files: Vec<PathBuf> = Vec::new();
    for input in inputs {
        if input.is_dir() {
            let mut found: Vec<PathBuf> = match std::fs::read_dir(&input) {
                Ok(rd) => rd
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
                    .collect(),
                Err(e) => {
                    eprintln!("obs_report: cannot read {}: {e}", input.display());
                    return 1;
                }
            };
            found.sort();
            if found.is_empty() {
                eprintln!("obs_report: no .jsonl files in {}", input.display());
                return 1;
            }
            files.extend(found);
        } else {
            files.push(input);
        }
    }

    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs_report: cannot read {}: {e}", file.display());
                return 1;
            }
        };
        if det_only {
            match fl_obs::det_projection(&text) {
                Ok(lines) => {
                    let mut out = String::new();
                    for line in lines {
                        let _ = writeln!(out, "{line}");
                    }
                    print_or_exit(&out);
                }
                Err(e) => {
                    eprintln!("obs_report: {}: {e}", file.display());
                    return 1;
                }
            }
            continue;
        }
        match report(file, &text, with_trace) {
            Ok(()) => {}
            Err(e) => {
                eprintln!("obs_report: {}: {e}", file.display());
                return 1;
            }
        }
    }
    0
}

/// Validates every line of one log and prints its report sections.
fn report(file: &std::path::Path, text: &str, with_trace: bool) -> fl_obs::ObsResult<()> {
    let mut events: Vec<Value> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = fl_obs::validate_line_versioned(line, fl_obs::SCHEMA_VERSION)
            .map_err(|e| fl_obs::ObsError::Schema(format!("line {}: {e}", i + 1)))?;
        events.push(v);
    }

    let mut out = String::new();
    let _ = writeln!(out, "== {} ==", file.display());
    let mut census: BTreeMap<&str, usize> = BTreeMap::new();
    for ev in &events {
        *census
            .entry(field_str(ev, "ev").unwrap_or("?"))
            .or_default() += 1;
    }
    let census_line: Vec<String> = census.iter().map(|(k, n)| format!("{k}={n}")).collect();
    let _ = writeln!(out, "{} events: {}", events.len(), census_line.join(" "));

    phase_table(&mut out, &events);
    loss_quantiles(&mut out, &events);
    fault_section(&mut out, &events);
    intervention_timeline(&mut out, &events);
    if with_trace {
        trace_section(&mut out, text);
    }
    let _ = writeln!(out);
    print_or_exit(&out);
    Ok(())
}

/// The `--trace` section: stage attribution over the log's `trace`
/// events, rendered by the same code `obs_trace` uses.
fn trace_section(out: &mut String, text: &str) {
    let spans = fl_obs::trace::collect_spans(text);
    let _ = writeln!(out, "\n-- request traces --");
    if spans.is_empty() {
        let _ = writeln!(out, "no trace events in this log");
        return;
    }
    let attr = fl_obs::trace::attribution(&spans);
    let _ = writeln!(out, "{}", fl_obs::trace::render_attribution(&attr));
}

fn field_str<'a>(ev: &'a Value, name: &str) -> Option<&'a str> {
    ev.get(name).and_then(Value::as_str)
}

fn field_f64(ev: &Value, name: &str) -> Option<f64> {
    ev.get(name).and_then(Value::as_f64)
}

fn is_event(ev: &Value, name: &str) -> bool {
    field_str(ev, "ev") == Some(name)
}

/// Per-phase wall-clock breakdown from the last `phase_summary` event.
fn phase_table(out: &mut String, events: &[Value]) {
    let Some(summary) = events.iter().rev().find(|e| is_event(e, "phase_summary")) else {
        return;
    };
    let Some(phases) = summary.get("phases").and_then(Value::as_object) else {
        return;
    };
    let _ = writeln!(out, "\n-- phase times --");
    let _ = writeln!(
        out,
        "{:<24} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "phase", "count", "total_s", "mean_s", "min_s", "max_s"
    );
    for (path, stat) in phases {
        let g = |n: &str| stat.get(n).and_then(Value::as_f64).unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "{path:<24} {:>8} {:>10.4} {:>10.6} {:>10.6} {:>10.6}",
            g("count") as u64,
            g("total_s"),
            g("mean_s"),
            g("min_s"),
            g("max_s")
        );
    }
}

/// PPO training-curve summary: quantiles of each per-update diagnostic
/// across the run, plus the last value (the "where did it end up" row).
fn loss_quantiles(out: &mut String, events: &[Value]) {
    let mut updates: Vec<&Value> = events
        .iter()
        .filter(|e| is_event(e, "ppo_update"))
        .collect();
    if updates.is_empty() {
        return;
    }
    updates.sort_by(|a, b| {
        let ka = field_f64(a, "update").unwrap_or(f64::NAN);
        let kb = field_f64(b, "update").unwrap_or(f64::NAN);
        ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
    });
    let _ = writeln!(out, "\n-- PPO updates ({}) --", updates.len());
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "metric", "q0", "q25", "q50", "q75", "q100", "last"
    );
    for metric in [
        "policy_loss",
        "value_loss",
        "entropy",
        "approx_kl",
        "clip_fraction",
        "grad_norm",
        "reward_mean",
    ] {
        let mut vals: Vec<f64> = updates
            .iter()
            .filter_map(|u| field_f64(u, metric))
            .filter(|v| v.is_finite())
            .collect();
        if vals.is_empty() {
            continue;
        }
        let last = *vals.last().expect("nonempty");
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let q = |p: f64| fl_obs::quantile_sorted(&vals, p);
        let _ = writeln!(
            out,
            "{metric:<14} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            q(0.0),
            q(0.25),
            q(0.5),
            q(0.75),
            q(1.0),
            last
        );
    }
}

/// Aggregated device-outcome tallies from the deterministic `fl_round`
/// events, plus the round-duration histogram from the last
/// `metrics_summary` (when the simulator's recorder was attached).
fn fault_section(out: &mut String, events: &[Value]) {
    let rounds: Vec<&Value> = events.iter().filter(|e| is_event(e, "fl_round")).collect();
    if !rounds.is_empty() {
        let sum = |name: &str| -> u64 {
            rounds
                .iter()
                .filter_map(|r| field_f64(r, name))
                .sum::<f64>() as u64
        };
        let _ = writeln!(
            out,
            "\n-- device outcomes over {} FL rounds --",
            rounds.len()
        );
        let _ = writeln!(
            out,
            "completed={} straggled={} dropped={} failed={}",
            sum("completed"),
            sum("straggled"),
            sum("dropped"),
            sum("failed")
        );
    }
    let Some(ms) = events.iter().rev().find(|e| is_event(e, "metrics_summary")) else {
        return;
    };
    let Some(hist) = ms
        .get("histograms")
        .and_then(|h| h.get("sim.round_duration_s"))
        .and_then(Value::as_object)
    else {
        return;
    };
    let bounds: Vec<f64> = hist
        .get("bounds")
        .and_then(Value::as_array)
        .map(|a| a.iter().filter_map(Value::as_f64).collect())
        .unwrap_or_default();
    let counts: Vec<u64> = hist
        .get("counts")
        .and_then(Value::as_array)
        .map(|a| a.iter().filter_map(Value::as_u64).collect())
        .unwrap_or_default();
    if counts.is_empty() {
        return;
    }
    let _ = writeln!(out, "\n-- round duration histogram (s) --");
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    for (i, c) in counts.iter().enumerate() {
        let label = if i < bounds.len() {
            format!("<= {:>7.1}", bounds[i])
        } else {
            "overflow  ".to_string()
        };
        let bar = "#".repeat(((c * 40) / peak) as usize);
        let _ = writeln!(out, "{label} {c:>8} {bar}");
    }
}

/// The supervisor intervention timeline, in strike order.
fn intervention_timeline(out: &mut String, events: &[Value]) {
    let mut ivs: Vec<&Value> = events
        .iter()
        .filter(|e| is_event(e, "intervention"))
        .collect();
    if ivs.is_empty() {
        return;
    }
    ivs.sort_by_key(|e| field_str(e, "key").unwrap_or("").to_string());
    let _ = writeln!(out, "\n-- supervisor interventions --");
    for iv in ivs {
        let _ = writeln!(
            out,
            "strike {:>3} at episode {:>6}: {} -> {} (lr_scale {:.4})",
            field_f64(iv, "strike").unwrap_or(f64::NAN) as u64,
            field_f64(iv, "episode").unwrap_or(f64::NAN) as u64,
            field_str(iv, "cause").unwrap_or("?"),
            field_str(iv, "action").unwrap_or("?"),
            field_f64(iv, "lr_scale").unwrap_or(f64::NAN),
        );
    }
}
