//! Ablation — the state's bandwidth-history length `H`.
//!
//! Section IV-B1 builds the DRL state from the `H+1` most recent bandwidth
//! slot-averages per device. This sweep trains an agent per `H` and
//! reports the online cost: too little history starves regime detection,
//! while very long histories dilute the signal and slow learning.
//!
//! Usage: `cargo run --release -p fl-bench --bin abl_history [episodes] [iters]`

use fl_bench::{dump_json, Scenario};
use fl_ctrl::{run_controller, train_drl};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let episodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(400);
    let iterations: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300);
    let histories = [0usize, 2, 4, 8, 16];

    let scenario = Scenario::testbed();
    let sys = scenario.build();
    let mut results = Vec::new();
    println!(
        "{:>4} {:>12} {:>12} {:>12}",
        "H", "mean cost", "mean time", "mean energy"
    );
    for &h in &histories {
        let mut config = scenario.train_config(episodes);
        config.env.history_len = h;
        let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0xAB2);
        let out = train_drl(&sys, &config, &mut rng).expect("training");
        let plateau = out.final_mean_cost(50);
        let mut ctrl = out.controller;
        let run = run_controller(&sys, &mut ctrl, iterations, 200.0).expect("evaluation");
        let (c, t, e) = run.summary();
        println!("{h:>4} {c:>12.3} {t:>12.3} {e:>12.3}");
        results.push(serde_json::json!({
            "history_len": h,
            "mean_cost": c,
            "mean_time": t,
            "mean_energy": e,
            "final_train_cost": plateau,
        }));
    }
    dump_json("abl_history.json", &serde_json::json!({"sweep": results}));
}
