//! Figure 2 — the dynamics of network bandwidth.
//!
//! (a) three 4G walking traces over 400 s (paper: Ghent dataset, swings
//!     between <1 MB/s and ~9 MB/s), (b) an HSDPA bus trace (paper: Norway
//!     dataset, fluctuating within [0, 800 KB/s]).
//!
//! Prints the series plus the summary statistics that substantiate the
//! substitution argument (envelope, swing, autocorrelation).
//!
//! Usage: `cargo run --release -p fl-bench --bin fig2_traces`

use fl_bench::dump_json;
use fl_net::stats;
use fl_net::synth::Profile;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let window = 400usize;

    println!("Fig. 2(a): three walking 4G traces, {window} s (MB/s)");
    let mut walking = Vec::new();
    for i in 0..3 {
        let t = Profile::Walking4G.generate(window, 1.0, &mut rng).unwrap();
        let s = stats::Summary::of(t.slots()).unwrap();
        println!(
            "  trace {i}: min {:.2}  mean {:.2}  max {:.2}  std {:.2}  lag1-autocorr {:.2}",
            s.min,
            s.mean,
            s.max,
            s.std,
            stats::autocorrelation(t.slots(), 1)
        );
        walking.push(t);
    }
    println!("\n  t(s)   trace0  trace1  trace2");
    for t in (0..window).step_by(20) {
        println!(
            "  {t:4}   {:6.2}  {:6.2}  {:6.2}",
            walking[0].slots()[t],
            walking[1].slots()[t],
            walking[2].slots()[t]
        );
    }

    println!("\nFig. 2(b): HSDPA bus trace, {window} s (MB/s)");
    let bus = Profile::BusHsdpa.generate(window, 1.0, &mut rng).unwrap();
    let s = stats::Summary::of(bus.slots()).unwrap();
    println!(
        "  min {:.3}  mean {:.3}  max {:.3}  std {:.3}  lag1-autocorr {:.2}",
        s.min,
        s.mean,
        s.max,
        s.std,
        stats::autocorrelation(bus.slots(), 1)
    );
    println!("\n  t(s)   bus trace");
    for t in (0..window).step_by(20) {
        println!("  {t:4}   {:6.3}", bus.slots()[t]);
    }

    // Paper-envelope checks, printed so deviations are visible.
    let wmax = walking.iter().map(|t| t.max()).fold(0.0f64, f64::max);
    let wmin = walking
        .iter()
        .map(|t| t.min())
        .fold(f64::INFINITY, f64::min);
    println!("\nchecks: walking envelope [{wmin:.2}, {wmax:.2}] MB/s (paper: <1 to ~9)");
    println!(
        "        bus envelope [{:.3}, {:.3}] MB/s (paper: 0 to 0.8)",
        bus.min(),
        bus.max()
    );

    let json = serde_json::json!({
        "figure": "fig2",
        "walking": walking.iter().map(|t| t.slots().to_vec()).collect::<Vec<_>>(),
        "bus": bus.slots().to_vec(),
    });
    dump_json("fig2_traces.json", &json);
}
