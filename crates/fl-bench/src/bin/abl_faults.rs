//! Ablation — robustness to injected device faults.
//!
//! The paper evaluates controllers on clean physics; real fleets drop out,
//! straggle, and lose uploads. This bench sweeps a grid of dropout and
//! straggler rates (plus the `chaos` preset's upload failures and bandwidth
//! blackouts) and evaluates DRL, Heuristic, and Static on the **same pinned
//! fault realization** per grid point, so any divergence is the controller,
//! not the luck of the draw. The DRL agent is trained once on clean
//! physics — the sweep measures how gracefully each approach degrades when
//! deployment conditions violate the training assumptions.
//!
//! Grid points fan out across the work-stealing pool; `FL_WORKERS` only
//! moves the `timing:` line, never the table (cache status goes to stderr
//! for the same reason — CI diffs stdout between worker counts).
//!
//! Usage:
//! `cargo run --release -p fl-bench --bin abl_faults [episodes] [iters] [--ckpt DIR] [--kill-after FRAC] [--obs DIR]`
//!
//! `--ckpt DIR` bypasses the controller cache and trains with crash-safe
//! checkpoints under `DIR`, resuming from any previous run there.
//! `--kill-after FRAC` stops training cleanly after that fraction of the
//! episode budget (stderr notice only, empty stdout) so CI can drill the
//! kill-and-resume path. `--obs DIR` records the fl-obs event stream
//! (training events when `--ckpt` is active, sweep telemetry always) to
//! `DIR/run.jsonl`.

use fl_bench::args::ParsedArgs;
use fl_bench::{dump_json_obs, obs_recorder, workers_from_env_obs, Scenario};
use fl_ctrl::{
    compare_controllers_faulty, CheckpointOptions, FrequencyController, HeuristicController,
    RunOptions, StaticController,
};
use fl_sim::{FaultModel, FaultPlan, OutcomeTally};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;

/// (dropout probability, straggler probability) sweep grid. The clean
/// origin anchors the comparison; the rest stress each axis and the corner.
const GRID: [(f64, f64); 6] = [
    (0.0, 0.0),
    (0.1, 0.0),
    (0.3, 0.0),
    (0.0, 0.3),
    (0.1, 0.3),
    (0.3, 0.3),
];

/// Straggler-capped rounds stop making progress past this wall-clock bound.
const TIMEOUT_S: f64 = 45.0;

fn main() {
    let cli = ParsedArgs::parse(&["--ckpt", "--obs", "--kill-after"], &[]);
    let ckpt: Option<PathBuf> = cli.path("--ckpt");
    let obs_dir: Option<PathBuf> = cli.path("--obs");
    let kill_after: Option<f64> = cli.fraction_01("--kill-after");
    let episodes: usize = cli.positional_or(0, 400);
    let iterations: usize = cli.positional_or(1, 150);
    let rec = obs_recorder(obs_dir.as_deref(), "run.jsonl");
    let workers = workers_from_env_obs(&rec);

    let scenario = Scenario::testbed();
    let mut sys = scenario.build();
    sys.set_recorder(&rec);

    // The kill half of a crash drill must not print the header either —
    // its stdout stays empty so the resumed run diffs clean.
    let (drl, cached) = if let Some(dir) = &ckpt {
        // Checkpointed training bypasses the controller cache: the
        // checkpoint directory *is* the resumable state.
        let opts = RunOptions {
            checkpoint: Some(CheckpointOptions {
                dir: dir.clone(),
                every_episodes: (episodes / 8).max(1),
                resume: true,
            }),
            stop_after_episodes: kill_after.map(|f| ((episodes as f64 * f) as usize).max(1)),
            obs: rec.clone(),
            ..RunOptions::default()
        };
        let out = scenario
            .train_with(&sys, episodes, &opts)
            .expect("checkpointed training");
        if out.episodes.len() < episodes {
            // Recorder::note mirrors to stderr, keeping stdout empty.
            rec.note(&format!(
                "abl_faults: training killed after {} of {episodes} episodes; \
                 checkpoint saved in {} — re-run with the same --ckpt \
                 (without --kill-after) to resume",
                out.episodes.len(),
                dir.display()
            ));
            if let Err(e) = rec.finish() {
                eprintln!("fl-obs: could not finalize run.jsonl: {e}");
            }
            return;
        }
        (out.controller, false)
    } else {
        let (drl, cached) = scenario.train_cached(&sys, episodes);
        (drl, cached)
    };
    println!(
        "abl_faults: N={} walking traces, lambda={}, timeout={TIMEOUT_S}s, {iterations} iters/point",
        sys.num_devices(),
        sys.config().lambda
    );
    // Stderr: the cache hits on the second run of a worker-count diff.
    rec.note(&format!("DRL controller ready (cache hit: {cached})"));
    let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0xFA17);
    let stat = StaticController::new(&sys, 1000, 0.1, &mut rng).expect("static");

    // One task per grid point. Every input the closure touches is either
    // cloned per point or derived from the point index, so the sweep is
    // order- and thread-count-invariant.
    let (per_point, report) =
        fl_ctrl::run_parallel_sweep(workers, (0..GRID.len()).collect::<Vec<usize>>(), |_, g| {
            let (p_drop, p_strag) = GRID[g];
            let model = if p_drop == 0.0 && p_strag == 0.0 {
                FaultModel::none()
            } else {
                FaultModel::chaos(p_drop, p_strag, Some(TIMEOUT_S))
            };
            // A per-point seed pins the realization: every controller at
            // this grid point faces the identical fault schedule.
            let plan =
                FaultPlan::new(model, sys.num_devices(), scenario.seed ^ (0xFA0 + g as u64))?;
            let controllers: Vec<Box<dyn FrequencyController + Send>> = vec![
                Box::new(drl.clone()),
                Box::new(HeuristicController::default()),
                Box::new(stat.clone()),
            ];
            let runs =
                compare_controllers_faulty(&sys, controllers, iterations, 200.0, Some(&plan))?;
            let tally = runs[0].ledger.outcome_tally();
            Ok((
                runs.iter()
                    .map(|r| (r.name.clone(), r.ledger.mean_cost()))
                    .collect::<Vec<(String, f64)>>(),
                tally,
            ))
        })
        .expect("fault sweep");

    println!(
        "\n{:<8} {:<8} {:>9} {:>10} {:>9}   outcomes (ok/strag/drop/fail)",
        "dropout", "straggle", "DRL", "Heuristic", "Static"
    );
    let mut results = Vec::new();
    for (g, (costs, tally)) in per_point.iter().enumerate() {
        let (p_drop, p_strag) = GRID[g];
        let cost_of = |name: &str| {
            costs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:<8} {:<8} {:>9.3} {:>10.3} {:>9.3}   {}/{}/{}/{}",
            p_drop,
            p_strag,
            cost_of("drl"),
            cost_of("heuristic"),
            cost_of("static"),
            tally.completed,
            tally.straggled,
            tally.dropped,
            tally.failed,
        );
        results.push(serde_json::json!({
            "dropout": p_drop,
            "straggler": p_strag,
            "costs": costs.iter().map(|(n, c)| serde_json::json!({"name": n, "mean_cost": c})).collect::<Vec<_>>(),
            "outcomes": tally_json(tally),
        }));
    }

    // Degradation relative to each controller's own clean baseline.
    let clean = &per_point[0].0;
    println!("\ncost inflation vs clean (same controller, ×):");
    for (g, (costs, _)) in per_point.iter().enumerate().skip(1) {
        let (p_drop, p_strag) = GRID[g];
        print!("  drop={p_drop} strag={p_strag}:");
        for ((name, c), (_, c0)) in costs.iter().zip(clean) {
            print!("  {name}={:.2}x", c / c0);
        }
        println!();
    }

    println!("timing: {}", report.timing_line());
    if rec.is_enabled() {
        rec.emit(report.obs_event("fault_sweep"));
    }
    dump_json_obs(
        &rec,
        "abl_faults.json",
        &serde_json::json!({
            "episodes": episodes,
            "iterations": iterations,
            "timeout_s": TIMEOUT_S,
            "grid": results,
        }),
    );
    if let Err(e) = rec.finish() {
        eprintln!("fl-obs: could not finalize run.jsonl: {e}");
    }
}

fn tally_json(t: &OutcomeTally) -> serde_json::Value {
    serde_json::json!({
        "completed": t.completed,
        "straggled": t.straggled,
        "dropped": t.dropped,
        "failed": t.failed,
    })
}
