//! Ablation — actor architecture: joint vs weight-shared per-device.
//!
//! The paper writes the policy as one network `π(a_k|s_k; θ_a)` but does
//! not pin the architecture. This repository offers two:
//!   * `Joint` — one MLP from the full state to all N means (positional
//!     device identity; the literal reading),
//!   * `Shared` — one MLP applied per device (own history ⊕ fleet-average
//!     history ⊕ device constants), N× denser gradient signal.
//!
//! This sweep trains both at several fleet sizes and shows where sharing
//! starts to matter.
//!
//! Usage: `cargo run --release -p fl-bench --bin abl_arch [episodes] [iters]`

use fl_bench::{dump_json, Scenario};
use fl_ctrl::{run_controller, train_drl, PolicyArch};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let episodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(400);
    let iterations: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300);

    let mut results = Vec::new();
    println!(
        "{:>4} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "N", "arch", "mean cost", "mean time", "mean energy", "params"
    );
    for &n in &[3usize, 10, 25] {
        let mut scenario = Scenario::testbed();
        scenario.name = format!("arch-n{n}");
        scenario.n_devices = n;
        let sys = scenario.build();
        for arch in [PolicyArch::Joint, PolicyArch::Shared] {
            let mut config = scenario.train_config(episodes);
            config.arch = arch;
            let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0xA4C);
            let out = train_drl(&sys, &config, &mut rng).expect("training");
            let params = out.controller.policy().mean_net().num_params();
            let mut ctrl = out.controller;
            let run = run_controller(&sys, &mut ctrl, iterations, 200.0).expect("evaluation");
            let (c, t, e) = run.summary();
            println!("{n:>4} {arch:>8?} {c:>12.3} {t:>12.3} {e:>12.3} {params:>10}");
            results.push(serde_json::json!({
                "n_devices": n,
                "arch": format!("{arch:?}"),
                "mean_cost": c,
                "mean_time": t,
                "mean_energy": e,
                "actor_params": params,
            }));
        }
    }
    dump_json("abl_arch.json", &serde_json::json!({"sweep": results}));
}
