//! Internal tuning scan: measures the controllable cost spread
//! (maxfreq vs heuristic vs static vs oracle) across operating points,
//! WITHOUT training DRL. Used to pick the scenario constants; not one of
//! the paper's figures.
//!
//! Operating points are independent, so they fan out across the
//! work-stealing pool (`FL_WORKERS` caps the threads; rows print in the
//! same order regardless).
//!
//! Usage: `cargo run --release -p fl-bench --bin tune_scan [--obs DIR]`
//! (`--obs DIR` records sweep telemetry to `DIR/run.jsonl`).

use fl_ctrl::{
    compare_controllers, run_parallel_sweep, FrequencyController, HeuristicController,
    MaxFreqController, OracleController, StaticController,
};
use fl_net::TraceSet;
use fl_sim::{DeviceSampler, FlConfig, FlSystem, Range};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn build(lambda: f64, xi: f64, data_lo: f64, data_hi: f64) -> FlSystem {
    let mut rng = ChaCha8Rng::seed_from_u64(20200518);
    let traces =
        TraceSet::from_profile(fl_net::synth::Profile::Walking4G, 3, 3600, 1.0, &mut rng).unwrap();
    let assignment = traces.assign(3, &mut rng);
    let sampler = DeviceSampler {
        data_mb: Range {
            lo: data_lo,
            hi: data_hi,
        },
        ..DeviceSampler::default()
    };
    let devices = sampler.sample_fleet(&assignment, &mut rng);
    FlSystem::new(
        devices,
        traces,
        FlConfig {
            tau: 1,
            model_size_mb: xi,
            lambda,
        },
    )
    .unwrap()
}

fn main() {
    // (lambda, xi, data range) — the last two rows shrink compute so comm
    // variability dominates (Mbit-reading of the paper's 50-100 "MB").
    let points = vec![
        (0.5, 10.0, 50.0, 100.0),
        (1.0, 10.0, 50.0, 100.0),
        (0.5, 25.0, 6.25, 12.5),
        (1.0, 25.0, 6.25, 12.5),
        (2.0, 25.0, 6.25, 12.5),
        (1.0, 10.0, 6.25, 12.5),
        (2.0, 10.0, 6.25, 12.5),
    ];
    let mut obs_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--obs" {
            obs_dir = Some(std::path::PathBuf::from(
                args.next().expect("--obs needs a directory"),
            ));
        }
    }
    let run_rec = fl_bench::obs_recorder(obs_dir.as_deref(), "run.jsonl");
    let workers = fl_bench::workers_from_env_obs(&run_rec);
    let (rows, report) = run_parallel_sweep(workers, points, |_, (lambda, xi, dlo, dhi)| {
        let sys = build(lambda, xi, dlo, dhi);
        let mut rng2 = ChaCha8Rng::seed_from_u64(7);
        let stat = StaticController::new(&sys, 1000, 0.1, &mut rng2).unwrap();
        let controllers: Vec<Box<dyn FrequencyController + Send>> = vec![
            Box::new(MaxFreqController),
            Box::new(HeuristicController::default()),
            Box::new(stat),
            Box::new(OracleController::default()),
        ];
        let runs = compare_controllers(&sys, controllers, 300, 200.0)?;
        Ok(((lambda, xi, dlo, dhi), runs))
    })
    .expect("tuning scan");

    for ((lambda, xi, dlo, dhi), runs) in &rows {
        let oracle = runs[3].ledger.mean_cost();
        print!("lam={lambda:<4} xi={xi:<4} D=[{dlo},{dhi}]");
        for r in runs {
            print!(
                "  {}={:.2}/{:.1}s (+{:.0}%)",
                r.name,
                r.ledger.mean_cost(),
                r.ledger.mean_time(),
                (r.ledger.mean_cost() / oracle - 1.0) * 100.0
            );
        }
        println!();
    }
    println!("timing: {}", report.timing_line());
    if run_rec.is_enabled() {
        run_rec.emit(report.obs_event("tune_scan"));
        if let Err(e) = run_rec.finish() {
            eprintln!("fl-obs: could not finalize run.jsonl: {e}");
        }
    }
}
