//! Ablation — battery lifetime under each controller.
//!
//! The paper's opening motivation is battery exhaustion ("mobile devices
//! may hesitate to join federated learning if the participation incurs
//! quick battery exhaustion"). This bench quantifies it: give every device
//! the same per-session energy budget and count how many synchronized
//! iterations each controller sustains before the first device dies —
//! and how much federated training time that buys.
//!
//! Usage: `cargo run --release -p fl-bench --bin abl_lifetime [episodes] [budget_j]`

use fl_bench::{dump_json, Scenario};
use fl_ctrl::{
    FrequencyController, HeuristicController, MaxFreqController, OracleController, StaticController,
};
use fl_sim::FleetBattery;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let episodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(800);
    let budget_j: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300.0);

    let scenario = Scenario::testbed();
    let sys = scenario.build();
    let (drl, cached) = scenario.train_cached(&sys, episodes);
    println!("DRL controller ready (cache hit: {cached})");
    let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0xBA7);
    let stat = StaticController::new(&sys, 1000, 0.1, &mut rng).expect("static");

    let mut controllers: Vec<Box<dyn FrequencyController>> = vec![
        Box::new(drl),
        Box::new(HeuristicController::default()),
        Box::new(stat),
        Box::new(MaxFreqController),
        Box::new(OracleController::default()),
    ];

    println!(
        "\nper-device session energy budget: {budget_j} J\n{:<12} {:>12} {:>16} {:>14}",
        "approach", "iterations", "training time(s)", "min charge"
    );
    let mut results = Vec::new();
    for ctrl in controllers.iter_mut() {
        ctrl.reset();
        let mut fleet = FleetBattery::uniform(sys.num_devices(), budget_j).expect("battery fleet");
        let mut t = 200.0;
        let mut prev = None;
        let mut wall = 0.0;
        let mut k = 0;
        loop {
            let freqs = ctrl
                .decide(k, t, &sys, prev.as_ref())
                .expect("controller decision");
            let report = sys.run_iteration(t, &freqs).expect("iteration");
            t = report.end_time();
            let alive = fleet.apply(&report).expect("fleet alive before apply");
            if alive {
                wall += report.duration;
            }
            prev = Some(report);
            k += 1;
            if !alive || k > 100_000 {
                break;
            }
        }
        println!(
            "{:<12} {:>12} {:>16.1} {:>14.3}",
            ctrl.name(),
            fleet.iterations_survived(),
            wall,
            fleet.min_fraction()
        );
        results.push(serde_json::json!({
            "name": ctrl.name(),
            "iterations_survived": fleet.iterations_survived(),
            "training_seconds": wall,
        }));
    }
    println!("\nmore surviving iterations = more federated rounds per charge —");
    println!("the participation incentive the paper argues for.");
    dump_json(
        "abl_lifetime.json",
        &serde_json::json!({"budget_j": budget_j, "results": results}),
    );
}
