//! Figure 7 — testbed comparison (N = 3 devices, 400 online iterations).
//!
//! Reproduces all six panels:
//! (a) average system cost, (b) average training time, (c) average energy,
//! (d–f) the corresponding per-iteration CDFs, for DRL vs Heuristic vs
//! Static (plus MaxFreq and the clairvoyant Oracle as references).
//!
//! Paper numbers for orientation: DRL 7.25 vs Heuristic 9.74 vs Static 10.5
//! average cost (≈35% gap); heuristic ≈38% slower than DRL; static energy a
//! near-constant 1.62/iteration.
//!
//! Usage: `cargo run --release -p fl-bench --bin fig7_testbed [episodes] [iters]`

use fl_bench::{dump_json, print_cdf, print_relative, print_summary_table, Scenario};
use fl_ctrl::{
    compare_controllers, FrequencyController, HeuristicController, MaxFreqController,
    OracleController, StaticController,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let episodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(300);
    let iterations: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);

    let scenario = Scenario::testbed();
    let sys = scenario.build();
    println!(
        "fig7: scenario={} N={} lambda={} | training {episodes} episodes, evaluating {iterations} iterations",
        scenario.name,
        sys.num_devices(),
        sys.config().lambda
    );

    let t0 = std::time::Instant::now();
    let (drl, cached) = scenario.train_cached(&sys, episodes);
    println!(
        "DRL controller ready in {:.1?} (cache hit: {cached})",
        t0.elapsed()
    );

    let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0xEA1);
    let stat =
        StaticController::new(&sys, 1000, 0.1, &mut rng).expect("static controller construction");
    let controllers: Vec<Box<dyn FrequencyController + Send>> = vec![
        Box::new(drl),
        Box::new(HeuristicController::default()),
        Box::new(stat),
        Box::new(MaxFreqController),
        Box::new(OracleController::default()),
    ];

    // Evaluation starts well inside the traces (past the history window).
    let t_start = 200.0;
    let t1 = std::time::Instant::now();
    let runs =
        compare_controllers(&sys, controllers, iterations, t_start).expect("controller evaluation");
    println!("evaluation finished in {:.1?}", t1.elapsed());

    print_summary_table("Fig. 7(a-c): averages over the online run", &runs);
    print_relative(&runs);

    let cost_series: Vec<(String, Vec<f64>)> = runs
        .iter()
        .map(|r| (r.name.clone(), r.ledger.cost_series()))
        .collect();
    let time_series: Vec<(String, Vec<f64>)> = runs
        .iter()
        .map(|r| (r.name.clone(), r.ledger.time_series()))
        .collect();
    let energy_series: Vec<(String, Vec<f64>)> = runs
        .iter()
        .map(|r| (r.name.clone(), r.ledger.energy_series()))
        .collect();
    print_cdf("system cost (Fig. 7d)", &cost_series, 15);
    print_cdf("training time (Fig. 7e)", &time_series, 15);
    print_cdf("energy (Fig. 7f)", &energy_series, 15);

    let json = serde_json::json!({
        "figure": "fig7",
        "episodes": episodes,
        "iterations": iterations,
        "summary": runs.iter().map(|r| {
            let (c, t, e) = r.summary();
            serde_json::json!({"name": r.name, "mean_cost": c, "mean_time": t, "mean_energy": e})
        }).collect::<Vec<_>>(),
    });
    dump_json("fig7_testbed.json", &json);
}
