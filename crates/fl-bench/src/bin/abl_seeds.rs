//! Ablation — seed robustness of the headline (Fig. 7) result.
//!
//! Everything in this repository is deterministic given a seed, which cuts
//! both ways: a single seed could flatter the method. This bench re-runs
//! the full testbed pipeline (fresh fleet, fresh traces, fresh training,
//! fresh evaluation) across several master seeds and reports the
//! mean ± std of each controller's online cost, plus how often DRL is the
//! best deployable controller.
//!
//! The seeds are independent worlds, so they fan out across the
//! work-stealing pool (`FL_WORKERS` bounds the thread count; results are
//! identical for any value — only the reported timing changes).
//!
//! Usage:
//! `cargo run --release -p fl-bench --bin abl_seeds [n_seeds] [episodes] [--ckpt DIR] [--kill-after FRAC] [--obs DIR]`
//!
//! `--ckpt DIR` checkpoints each seed's training under `DIR/seed-<s>/` and
//! resumes from there on the next run. `--kill-after FRAC` stops every
//! training cleanly after that fraction of its episode budget (the CI
//! crash-and-resume drill): nothing is printed to stdout, so a killed run
//! followed by a `--ckpt` resume must produce stdout bit-identical to a
//! never-interrupted run.
//!
//! `--obs DIR` records the fl-obs event stream: each seed's training
//! events land in `DIR/seed-<s>.jsonl` (one file per seed, so the
//! `FL_WORKERS` fan-out never interleaves a file), sweep-level telemetry
//! in `DIR/run.jsonl`. Inspect with `obs_report DIR/seed-0.jsonl`.

use fl_bench::args::ParsedArgs;
use fl_bench::{dump_json_obs, obs_recorder, workers_from_env_obs, Scenario};
use fl_ctrl::{
    compare_controllers, run_parallel_sweep, CheckpointOptions, FrequencyController,
    HeuristicController, MaxFreqController, RunOptions, StaticController,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn main() {
    let cli = ParsedArgs::parse(&["--ckpt", "--obs", "--kill-after"], &[]);
    let ckpt: Option<PathBuf> = cli.path("--ckpt");
    let obs_dir: Option<PathBuf> = cli.path("--obs");
    let kill_after: Option<f64> = cli.fraction_01("--kill-after");
    let n_seeds: usize = cli.positional_or(0, 5);
    let episodes: usize = cli.positional_or(1, 800);
    let iterations = 300;
    let run_rec = obs_recorder(obs_dir.as_deref(), "run.jsonl");
    let workers = workers_from_env_obs(&run_rec);

    // One task per seed: build world, train, evaluate. Each task derives
    // every RNG from its own seed, so the sweep is order- and
    // thread-count-invariant. Each task also records to its own JSONL file
    // (`seed-<s>.jsonl`), so the fan-out never interleaves one sink and
    // the per-seed event streams are worker-count-invariant byte for byte.
    let (per_seed, report) = run_parallel_sweep(workers, (0..n_seeds).collect(), |_, s| {
        let mut scenario = Scenario::testbed();
        scenario.seed = scenario.seed.wrapping_add(1000 * s as u64);
        scenario.name = format!("seeds-{s}");
        let rec = obs_recorder(obs_dir.as_deref(), &format!("seed-{s}.jsonl"));
        let mut sys = scenario.build();
        sys.set_recorder(&rec);
        let opts = RunOptions {
            checkpoint: ckpt.as_ref().map(|dir| CheckpointOptions {
                dir: dir.join(format!("seed-{s}")),
                every_episodes: (episodes / 8).max(1),
                resume: true,
            }),
            stop_after_episodes: kill_after.map(|f| ((episodes as f64 * f) as usize).max(1)),
            obs: rec.clone(),
            ..RunOptions::default()
        };
        let out = scenario.train_with(&sys, episodes, &opts)?;
        if out.episodes.len() < episodes {
            // Killed mid-training: the checkpoint holds the progress; a
            // resumed run will finish the job. No evaluation to report.
            if let Err(e) = rec.finish() {
                eprintln!("fl-obs: could not finalize seed-{s}.jsonl: {e}");
            }
            return Ok(Vec::new());
        }
        let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0x5EED);
        let stat = StaticController::new(&sys, 1000, 0.1, &mut rng).expect("static");
        let controllers: Vec<Box<dyn FrequencyController + Send>> = vec![
            Box::new(out.controller),
            Box::new(HeuristicController::default()),
            Box::new(stat),
            Box::new(MaxFreqController),
        ];
        let runs = compare_controllers(&sys, controllers, iterations, 200.0)?;
        if let Err(e) = rec.finish() {
            eprintln!("fl-obs: could not finalize seed-{s}.jsonl: {e}");
        }
        Ok(runs
            .iter()
            .map(|r| (r.name.clone(), r.ledger.mean_cost()))
            .collect::<Vec<(String, f64)>>())
    })
    .expect("seed sweep");

    if run_rec.is_enabled() {
        run_rec.emit(report.obs_event("seed_sweep"));
    }
    if per_seed.iter().any(|costs| costs.is_empty()) {
        // Stderr only (Recorder::note mirrors to stderr): the crash half of
        // a kill-and-resume drill must leave stdout empty so the resumed
        // run's stdout diffs clean against an uninterrupted run.
        run_rec.note(
            "abl_seeds: training killed by --kill-after; checkpoints saved — \
             re-run with the same --ckpt (without --kill-after) to resume",
        );
        if let Err(e) = run_rec.finish() {
            eprintln!("fl-obs: could not finalize run.jsonl: {e}");
        }
        return;
    }

    let mut per_controller: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut drl_wins = 0usize;
    for (s, costs) in per_seed.iter().enumerate() {
        let drl_cost = costs[0].1;
        let best_other = costs[1..]
            .iter()
            .map(|(_, c)| *c)
            .fold(f64::INFINITY, f64::min);
        if drl_cost <= best_other {
            drl_wins += 1;
        }
        print!("seed {s}:");
        for (name, c) in costs {
            print!("  {name}={c:.2}");
            per_controller.entry(name.clone()).or_default().push(*c);
        }
        println!();
    }

    println!("\n{:<12} {:>10} {:>8}", "approach", "mean cost", "std");
    let mut results = Vec::new();
    for (name, costs) in &per_controller {
        let mean = costs.iter().sum::<f64>() / costs.len() as f64;
        let var = costs.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / costs.len() as f64;
        println!("{name:<12} {mean:>10.3} {:>8.3}", var.sqrt());
        results.push(serde_json::json!({
            "name": name, "mean": mean, "std": var.sqrt(), "costs": costs,
        }));
    }
    println!("\nDRL best deployable controller in {drl_wins}/{n_seeds} independent worlds.");
    println!("timing: {}", report.timing_line());
    dump_json_obs(
        &run_rec,
        "abl_seeds.json",
        &serde_json::json!({"n_seeds": n_seeds, "drl_wins": drl_wins, "results": results}),
    );
    if let Err(e) = run_rec.finish() {
        eprintln!("fl-obs: could not finalize run.jsonl: {e}");
    }
}
