//! Ablation — seed robustness of the headline (Fig. 7) result.
//!
//! Everything in this repository is deterministic given a seed, which cuts
//! both ways: a single seed could flatter the method. This bench re-runs
//! the full testbed pipeline (fresh fleet, fresh traces, fresh training,
//! fresh evaluation) across several master seeds and reports the
//! mean ± std of each controller's online cost, plus how often DRL is the
//! best deployable controller.
//!
//! The seeds are independent worlds, so they fan out across the
//! work-stealing pool (`FL_WORKERS` bounds the thread count; results are
//! identical for any value — only the reported timing changes).
//!
//! Usage: `cargo run --release -p fl-bench --bin abl_seeds [n_seeds] [episodes]`

use fl_bench::{dump_json, workers_from_env, Scenario};
use fl_ctrl::{
    compare_controllers, run_parallel_sweep, FrequencyController, HeuristicController,
    MaxFreqController, StaticController,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_seeds: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let episodes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(800);
    let iterations = 300;
    let workers = workers_from_env();

    // One task per seed: build world, train, evaluate. Each task derives
    // every RNG from its own seed, so the sweep is order- and
    // thread-count-invariant.
    let (per_seed, report) = run_parallel_sweep(workers, (0..n_seeds).collect(), |_, s| {
        let mut scenario = Scenario::testbed();
        scenario.seed = scenario.seed.wrapping_add(1000 * s as u64);
        scenario.name = format!("seeds-{s}");
        let sys = scenario.build();
        let out = scenario.train(&sys, episodes);
        let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0x5EED);
        let stat = StaticController::new(&sys, 1000, 0.1, &mut rng).expect("static");
        let controllers: Vec<Box<dyn FrequencyController + Send>> = vec![
            Box::new(out.controller),
            Box::new(HeuristicController::default()),
            Box::new(stat),
            Box::new(MaxFreqController),
        ];
        let runs = compare_controllers(&sys, controllers, iterations, 200.0)?;
        Ok(runs
            .iter()
            .map(|r| (r.name.clone(), r.ledger.mean_cost()))
            .collect::<Vec<(String, f64)>>())
    })
    .expect("seed sweep");

    let mut per_controller: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut drl_wins = 0usize;
    for (s, costs) in per_seed.iter().enumerate() {
        let drl_cost = costs[0].1;
        let best_other = costs[1..]
            .iter()
            .map(|(_, c)| *c)
            .fold(f64::INFINITY, f64::min);
        if drl_cost <= best_other {
            drl_wins += 1;
        }
        print!("seed {s}:");
        for (name, c) in costs {
            print!("  {name}={c:.2}");
            per_controller.entry(name.clone()).or_default().push(*c);
        }
        println!();
    }

    println!("\n{:<12} {:>10} {:>8}", "approach", "mean cost", "std");
    let mut results = Vec::new();
    for (name, costs) in &per_controller {
        let mean = costs.iter().sum::<f64>() / costs.len() as f64;
        let var = costs.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / costs.len() as f64;
        println!("{name:<12} {mean:>10.3} {:>8.3}", var.sqrt());
        results.push(serde_json::json!({
            "name": name, "mean": mean, "std": var.sqrt(), "costs": costs,
        }));
    }
    println!("\nDRL best deployable controller in {drl_wins}/{n_seeds} independent worlds.");
    println!("timing: {}", report.timing_line());
    dump_json(
        "abl_seeds.json",
        &serde_json::json!({"n_seeds": n_seeds, "drl_wins": drl_wins, "results": results}),
    );
}
