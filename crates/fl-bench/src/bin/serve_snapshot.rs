//! Trains the 3-device testbed controller (cache-aware) and exports it as
//! a deployable [`ControllerSnapshot`] — the format `fl-serve --ckpt`
//! loads. Training checkpoints (`abl_seeds --ckpt`) are resume state, not
//! deployable snapshots; this binary is the bridge between the two worlds.
//!
//! `cargo run --release -p fl-bench --bin serve_snapshot -- --ckpt DIR [episodes]`
//!
//! Saves into the double-buffered store at `DIR` (an existing store gains
//! a new snapshot seq — a running `fl-serve --poll-ms` adopts it live).

use fl_bench::args::ParsedArgs;
use fl_bench::Scenario;
use fl_ctrl::ControllerSnapshot;
use fl_rl::snapshot::CheckpointStore;

fn main() {
    let cli = ParsedArgs::parse(&["--ckpt"], &[]);
    let dir = cli.path("--ckpt").unwrap_or_else(|| {
        eprintln!("usage: serve_snapshot --ckpt DIR [episodes]");
        std::process::exit(2);
    });
    let episodes: usize = cli.positional_or(0, 200);

    let scenario = Scenario::testbed();
    let sys = scenario.build();
    let (ctrl, cached) = scenario.train_cached(&sys, episodes);
    if cached {
        println!("serve_snapshot: reusing cached controller ({episodes} episodes)");
    } else {
        println!("serve_snapshot: trained testbed controller ({episodes} episodes)");
    }
    let snap = ControllerSnapshot::from_system(ctrl, &sys).expect("testbed snapshot is valid");
    let store = CheckpointStore::new(&dir).expect("checkpoint store");
    let seq = snap.save(&store).expect("snapshot saves");
    println!(
        "serve_snapshot: saved seq {seq} to {} (config digest {:08x}, obs_dim {}, {} devices)",
        dir.display(),
        snap.config_digest().expect("digest"),
        snap.obs_dim(),
        snap.action_dim(),
    );
}
