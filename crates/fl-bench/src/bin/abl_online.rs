//! Ablation — frozen actor vs continual (online) learning.
//!
//! The paper deploys a frozen actor after offline training. This bench
//! deploys the *same* trained agent twice on a distribution the training
//! never saw (a different trace profile — route change), once frozen and
//! once continuing Algorithm 1 online, plus a from-scratch online learner
//! as a reference. Distribution shift is where continual learning should
//! pay.
//!
//! Usage: `cargo run --release -p fl-bench --bin abl_online [episodes] [iters]`

use fl_bench::{dump_json, print_relative, print_summary_table, Scenario};
use fl_ctrl::{run_controller, OnlineDrlController};
use fl_net::synth::Profile;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let episodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(800);
    let iterations: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(600);

    // Train on the walking profile...
    let scenario = Scenario::testbed();
    let train_sys = scenario.build();
    println!(
        "training on {:?} ({episodes} episodes)...",
        scenario.profile
    );
    let out = scenario.train(&train_sys, episodes);
    let config = scenario.train_config(episodes);

    // ...deploy on the on-off driving profile (same devices, new routes).
    let mut shifted = scenario.clone();
    shifted.name = "online-shift".to_string();
    shifted.profile = Profile::Driving4G;
    let deploy_sys = shifted.build();
    println!(
        "deploying on {:?} for {iterations} iterations (distribution shift)",
        shifted.profile
    );

    let mut frozen = out.controller.clone();
    let frozen_run =
        run_controller(&deploy_sys, &mut frozen, iterations, 200.0).expect("frozen run");

    // Deployment produces one transition per iteration, so use a small
    // online buffer to keep a meaningful update cadence.
    let mut online = OnlineDrlController::with_buffer_capacity(
        out.agent.clone(),
        config.env,
        config.reward_scale,
        50,
        shifted.seed ^ 0x051,
    )
    .expect("online controller");
    let online_run =
        run_controller(&deploy_sys, &mut online, iterations, 200.0).expect("online run");
    println!(
        "online controller performed {} PPO updates in-flight",
        online.updates()
    );

    let runs = vec![frozen_run, online_run];
    print_summary_table("frozen vs continual learning under route shift", &runs);
    print_relative(&runs);

    dump_json(
        "abl_online.json",
        &serde_json::json!({
            "summary": runs.iter().map(|r| {
                let (c, t, e) = r.summary();
                serde_json::json!({"name": r.name, "mean_cost": c, "mean_time": t, "mean_energy": e})
            }).collect::<Vec<_>>(),
        }),
    );
}
