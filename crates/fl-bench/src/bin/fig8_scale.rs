//! Figure 8 — scalability: per-iteration system cost with N = 50 devices.
//!
//! Paper setting: 50 devices each randomly selecting one of 5 walking
//! datasets, λ = 0.1, everything else as the testbed. Paper result: DRL's
//! per-iteration cost almost always lowest (avg 11.2) vs heuristic (14.3)
//! and static (17.3).
//!
//! Usage: `cargo run --release -p fl-bench --bin fig8_scale [episodes] [iters] [--obs DIR]`
//!
//! `--obs DIR` records the full fl-obs event stream of the (parallel)
//! training run to `DIR/run.jsonl`. Recording bypasses the controller
//! cache — the telemetry of a cache hit would be empty.

use fl_bench::{
    dump_json_obs, obs_recorder, print_relative, print_round_worker_stats, print_summary_table,
    workers_from_env_obs, Scenario,
};
use fl_ctrl::{
    compare_controllers, FrequencyController, HeuristicController, MaxFreqController,
    StaticController,
};
use fl_ctrl::{ParallelConfig, RunOptions};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut obs_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--obs" => {
                obs_dir = Some(std::path::PathBuf::from(
                    args.next().expect("--obs needs a directory"),
                ))
            }
            _ => positional.push(a),
        }
    }
    let episodes: usize = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);
    let iterations: usize = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);

    let scenario = Scenario::scale50();
    let rec = obs_recorder(obs_dir.as_deref(), "run.jsonl");
    let mut sys = scenario.build();
    sys.set_recorder(&rec);
    println!(
        "fig8: scenario={} N={} lambda={} | training {episodes} episodes, evaluating {iterations} iterations",
        scenario.name,
        sys.num_devices(),
        sys.config().lambda
    );

    // N=50 training dominates this figure's wall clock: collect rollouts
    // with the vectorized engine. `n_envs` is pinned (it is part of the
    // result); `FL_WORKERS` only changes speed.
    let par = ParallelConfig {
        n_envs: 4,
        workers: workers_from_env_obs(&rec),
    };
    let t0 = std::time::Instant::now();
    let (drl, cached, rounds) = if rec.is_enabled() {
        // Recording bypasses the controller cache: the point of `--obs` is
        // the training telemetry, which a cache hit would skip entirely.
        let opts = RunOptions {
            obs: rec.clone(),
            ..RunOptions::default()
        };
        let out = scenario
            .train_parallel_with(&sys, episodes, &par, &opts)
            .expect("training configuration is valid");
        (out.output.controller, false, Some(out.rounds))
    } else {
        scenario.train_cached_parallel(&sys, episodes, &par)
    };
    println!(
        "DRL controller ready in {:.1?} (cache hit: {cached}, n_envs={}, workers={})",
        t0.elapsed(),
        par.n_envs,
        par.workers
    );
    if let Some(rounds) = rounds {
        print_round_worker_stats("rollout workers", &rounds);
    }

    let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0xEA1);
    let stat =
        StaticController::new(&sys, 1000, 0.1, &mut rng).expect("static controller construction");
    // The per-iteration oracle is O(grid × N × bisection × trace-walk); at
    // N=50 it is still tractable but slow — include it only when asked.
    let include_oracle = std::env::var("FIG8_ORACLE").is_ok();
    let mut controllers: Vec<Box<dyn FrequencyController + Send>> = vec![
        Box::new(drl),
        Box::new(HeuristicController::default()),
        Box::new(stat),
        Box::new(MaxFreqController),
    ];
    if include_oracle {
        controllers.push(Box::new(fl_ctrl::OracleController::default()));
    }

    let t1 = std::time::Instant::now();
    let runs =
        compare_controllers(&sys, controllers, iterations, 200.0).expect("controller evaluation");
    println!("evaluation finished in {:.1?}", t1.elapsed());

    print_summary_table("Fig. 8: N=50 averages", &runs);
    print_relative(&runs);

    // The per-iteration cost series the figure plots (first 50 iterations
    // shown; full series in the JSON dump).
    println!("\nper-iteration system cost (first 50):");
    println!(
        "{:>5} {}",
        "iter",
        runs.iter()
            .map(|r| format!("{:>10}", r.name))
            .collect::<String>()
    );
    let series: Vec<Vec<f64>> = runs.iter().map(|r| r.ledger.cost_series()).collect();
    for k in 0..50.min(iterations) {
        print!("{k:>5} ");
        for s in &series {
            print!("{:>10.2}", s[k]);
        }
        println!();
    }

    let json = serde_json::json!({
        "figure": "fig8",
        "episodes": episodes,
        "iterations": iterations,
        "summary": runs.iter().map(|r| {
            let (c, t, e) = r.summary();
            serde_json::json!({"name": r.name, "mean_cost": c, "mean_time": t, "mean_energy": e})
        }).collect::<Vec<_>>(),
        "cost_series": runs.iter().map(|r| serde_json::json!({
            "name": r.name,
            "series": r.ledger.cost_series(),
        })).collect::<Vec<_>>(),
    });
    dump_json_obs(&rec, "fig8_scale.json", &json);
    if let Err(e) = rec.finish() {
        eprintln!("fl-obs: could not finalize run.jsonl: {e}");
    }
}
