//! Load benchmark for the fl-serve decision server.
//!
//! Trains (cache-aware) the small testbed controller, serves it from a
//! throwaway checkpoint store, and drives thousands of synthetic FL
//! decision requests — observations sampled from the scenario's fl-net
//! bandwidth traces — through real TCP connections. Reports client-side
//! p50/p99/p999 latency and throughput per case (serial floor plus two
//! burst levels exercising the micro-batcher).
//!
//! Usage:
//! `cargo run --release -p fl-bench --bin serve_bench [budget_ms] [--write-baseline]`
//!
//! The default budget (2000 ms per case, three cases, plus a short
//! training run) keeps the full benchmark around ten seconds — the CI
//! smoke budget. `--write-baseline` regenerates the committed gate
//! baseline (`crates/fl-bench/results/serve_bench.json`); a normal run
//! writes its report to `results/serve_bench.json` at the repo root for
//! EXPERIMENTS.md bookkeeping.

use fl_bench::args::ParsedArgs;
use fl_bench::dump_json;
use fl_bench::serve_perf::{measure, print_report};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("results/serve_bench.json")
}

fn main() {
    let cli = ParsedArgs::parse(&[], &["--write-baseline"]);
    let budget = Duration::from_millis(cli.positional_or(0, 2000u64));
    let report = measure(budget);
    print_report(&report);

    if cli.has("--write-baseline") {
        let text = serde_json::to_string_pretty(&report).expect("report serializes");
        let path = baseline_path();
        std::fs::create_dir_all(path.parent().expect("baseline path has a parent"))
            .expect("create results dir");
        fl_rl::snapshot::atomic_write(&path, text.as_bytes()).expect("write baseline");
        println!("\n[baseline written to {}]", path.display());
        return;
    }
    dump_json("serve_bench.json", &serde_json::to_value(&report));
}
