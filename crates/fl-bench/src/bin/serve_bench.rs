//! Load benchmark for the fl-serve decision server.
//!
//! Trains (cache-aware) the small testbed controller, serves it from a
//! throwaway checkpoint store, and drives thousands of synthetic FL
//! decision requests — observations sampled from the scenario's fl-net
//! bandwidth traces — through real TCP connections. Reports client-side
//! p50/p99/p999 latency and throughput per case (serial floor plus two
//! burst levels exercising the micro-batcher), plus the overload
//! scenario (offered load past capacity: goodput, shed rate, and
//! p99-of-accepted).
//!
//! Usage:
//! `cargo run --release -p fl-bench --bin serve_bench [budget_ms] [--write-baseline | --overload | --chaos | --trace]`
//!
//! The default budget (2000 ms per case, plus a short training run)
//! keeps the full benchmark around ten seconds — the CI smoke budget.
//! `--write-baseline` regenerates the committed gate baseline
//! (`crates/fl-bench/results/serve_bench.json`); a normal run writes its
//! report to `results/serve_bench.json` at the repo root for
//! EXPERIMENTS.md bookkeeping.
//!
//! `--overload` runs only the past-capacity scenario, including the
//! server-side shed-stage breakdown (admission vs. in-queue deadline
//! expiry). `--chaos` runs a chaos-proxy smoke: a
//! [`fl_serve::ResilientClient`] drives decides through a seeded
//! [`fl_serve::ChaosProxy`] (latency, resets, torn writes, downstream
//! corruption) for the budget, and every completed decide is verified
//! bit-identical to the in-process controller — the CI-facing "the
//! hardened path converges under fire" check. `--trace` runs only the
//! traced sample and prints the stage-attribution table.

use fl_bench::args::ParsedArgs;
use fl_bench::dump_json;
use fl_bench::serve_perf::{
    measure, prepare_store, print_report, run_overload_case, run_trace_case,
};
use fl_serve::{
    ChaosModel, ChaosPlan, ChaosProxy, DecisionServer, ResilientClient, RetryPolicy, ServeOptions,
};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("results/serve_bench.json")
}

fn temp_store() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fedfreq-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench store dir");
    dir
}

/// The `--chaos` smoke: resilient client vs. a hostile seeded proxy,
/// with every completed decide checked bit-for-bit against the
/// in-process controller. Exits non-zero on any failed decide or any
/// bit mismatch.
fn chaos_smoke(budget: Duration) {
    let dir = temp_store();
    let (snap, pool) = prepare_store(&dir, 128);
    let expected: Vec<Vec<f64>> = snap.decide_rows(&pool).expect("in-process decisions");
    let server =
        DecisionServer::start(&dir, "127.0.0.1:0", ServeOptions::default()).expect("server starts");
    let plan = ChaosPlan::new(
        ChaosModel {
            tear_chunk: 16,
            ..ChaosModel::hostile()
        },
        13,
    );
    let proxy = ChaosProxy::start(server.local_addr(), plan).expect("proxy starts");
    let policy = RetryPolicy {
        max_retries: 30,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(30),
        budget: Some(Duration::from_secs(20)),
        io_timeout: Some(Duration::from_millis(800)),
        ..RetryPolicy::default()
    };
    let mut client = ResilientClient::new(proxy.local_addr(), policy).expect("client builds");

    let start = Instant::now();
    let deadline = start + budget;
    let mut decides = 0u64;
    let mut i = 0usize;
    while Instant::now() < deadline {
        let row = i % pool.len();
        match client.decide(&pool[row]) {
            Ok((_, freqs)) => {
                if freqs != expected[row] {
                    eprintln!("serve_bench[chaos]: FAIL — decide {i} not bit-identical");
                    std::process::exit(1);
                }
                decides += 1;
            }
            Err(e) => {
                eprintln!("serve_bench[chaos]: FAIL — decide {i} did not converge: {e}");
                std::process::exit(1);
            }
        }
        i += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "serve_bench[chaos]: OK — {decides} decides in {elapsed:.1} s \
         ({:.0} rps), all bit-identical; {} retries, {} reconnects, \
         {} proxy connections, {} injected faults",
        decides as f64 / elapsed.max(1e-9),
        client.retries_total(),
        client.reconnects_total(),
        proxy.connections(),
        proxy.events().len(),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let cli = ParsedArgs::parse(
        &[],
        &["--write-baseline", "--overload", "--chaos", "--trace"],
    );
    let budget = Duration::from_millis(cli.positional_or(0, 2000u64));

    if cli.has("--chaos") {
        chaos_smoke(budget);
        return;
    }
    if cli.has("--trace") {
        let dir = temp_store();
        let (_snap, pool) = prepare_store(&dir, 512);
        let attr = run_trace_case(&dir, 256, &pool);
        let _ = std::fs::remove_dir_all(&dir);
        println!("{}", fl_obs::trace::render_attribution(&attr));
        if attr.traces == 0 {
            eprintln!("serve_bench[trace]: FAIL — no traced spans reached the log");
            std::process::exit(1);
        }
        return;
    }
    if cli.has("--overload") {
        let dir = temp_store();
        let (_snap, pool) = prepare_store(&dir, 512);
        let case = run_overload_case(&dir, budget, &pool);
        let _ = std::fs::remove_dir_all(&dir);
        println!(
            "serve_bench[overload]: {} clients, {} offered, {} accepted, {} shed \
             ({:.1}%), {} transport failures\n  goodput {:.0} rps, p99-of-accepted {:.1} us",
            case.clients,
            case.offered,
            case.accepted,
            case.shed,
            case.shed_rate * 100.0,
            case.transport_failures,
            case.goodput_rps,
            case.p99_accepted_us
        );
        if let (Some(adm), Some(q)) = (case.shed_admission, case.shed_queue) {
            println!(
                "  shed by stage: admission {adm} (queue full / draining), \
                 queue_wait {q} (deadline expired in queue)"
            );
        }
        if case.transport_failures > 0 {
            eprintln!("serve_bench[overload]: FAIL — unstructured failures under overload");
            std::process::exit(1);
        }
        return;
    }

    let report = measure(budget);
    print_report(&report);

    if cli.has("--write-baseline") {
        let text = serde_json::to_string_pretty(&report).expect("report serializes");
        let path = baseline_path();
        std::fs::create_dir_all(path.parent().expect("baseline path has a parent"))
            .expect("create results dir");
        fl_rl::snapshot::atomic_write(&path, text.as_bytes()).expect("write baseline");
        println!("\n[baseline written to {}]", path.display());
        return;
    }
    dump_json("serve_bench.json", &serde_json::to_value(&report));
}
