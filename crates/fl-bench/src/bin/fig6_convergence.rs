//! Figure 6 — DRL training convergence (N = 3 testbed).
//!
//! (a) training loss vs episode: drops quickly, stabilizes within ~200
//!     episodes; (b) average system cost per episode: decreases, then
//!     saturates with small fluctuations around the same point.
//!
//! Usage: `cargo run --release -p fl-bench --bin fig6_convergence [episodes]`

use fl_bench::{dump_json, Scenario};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let episodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(300);

    let scenario = Scenario::testbed();
    let sys = scenario.build();
    println!(
        "fig6: training {} episodes on {} (N={})",
        episodes,
        scenario.name,
        sys.num_devices()
    );
    let t0 = std::time::Instant::now();
    let out = scenario.train(&sys, episodes);
    println!("trained in {:.1?}\n", t0.elapsed());

    // Episode costs are noisy (each episode starts at a random trace
    // position, so regime luck dominates a single episode); a trailing
    // moving average reveals the Fig. 6(b) trend.
    let window = (episodes / 10).clamp(1, 50);
    let costs: Vec<f64> = out.episodes.iter().map(|e| e.mean_cost).collect();
    let moving_avg = |i: usize| -> f64 {
        let lo = i.saturating_sub(window - 1);
        costs[lo..=i].iter().sum::<f64>() / (i - lo + 1) as f64
    };
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "episode", "mean cost", "ma-cost", "policy loss", "value loss", "entropy", "updates"
    );
    for e in &out.episodes {
        if e.episode % 10 == 0 || e.episode + 1 == out.episodes.len() {
            println!(
                "{:>8} {:>12.3} {:>12.3} {:>12.4} {:>12.4} {:>10.3} {:>8}",
                e.episode,
                e.mean_cost,
                moving_avg(e.episode),
                e.policy_loss,
                e.value_loss,
                e.entropy,
                e.updates_so_far
            );
        }
    }

    let early = &out.episodes[..(episodes / 5).max(1)];
    let early_cost: f64 = early.iter().map(|e| e.mean_cost).sum::<f64>() / early.len() as f64;
    let late_cost = out.final_mean_cost(episodes / 5);
    println!("\nFig. 6(b) check: early mean cost {early_cost:.3} -> late mean cost {late_cost:.3}");
    println!(
        "Fig. 6(a) check: critic loss episode ~10 {:.4} -> final {:.4} (training loss converges)",
        out.episodes
            .iter()
            .find(|e| e.value_loss.is_finite())
            .map(|e| e.value_loss)
            .unwrap_or(f64::NAN),
        out.episodes
            .last()
            .map(|e| e.value_loss)
            .unwrap_or(f64::NAN)
    );
    println!(
        "note: the sigmoid action squash gives the untrained policy a mid-frequency\n\
         default, so the cost curve starts far closer to the optimum than the\n\
         paper's; the convergence signal is clearest in the critic loss and the\n\
         shrinking exploration entropy."
    );

    let json = serde_json::json!({
        "figure": "fig6",
        "episodes": out.episodes.iter().map(|e| serde_json::json!({
            "episode": e.episode,
            "mean_cost": e.mean_cost,
            "policy_loss": e.policy_loss,
            "value_loss": e.value_loss,
            "entropy": e.entropy,
        })).collect::<Vec<_>>(),
        "early_mean_cost": early_cost,
        "late_mean_cost": late_cost,
    });
    dump_json("fig6_convergence.json", &json);
}
