//! Ablation — the λ sweep.
//!
//! The paper's objective (Eq. 9) exposes λ as the knob trading training
//! time against energy. This sweep shows the knob working end-to-end: as λ
//! grows, every controller shifts toward lower energy and longer
//! iterations, and the gap between energy-aware controllers and MaxFreq
//! widens. DESIGN.md lists this as the first design-choice ablation.
//!
//! The λ points are independent, so they run across the work-stealing pool
//! (`FL_WORKERS` caps the threads; output is identical for any value).
//!
//! Usage: `cargo run --release -p fl-bench --bin abl_lambda [iters] [--obs DIR]`
//!
//! `--obs DIR` records sweep-level fl-obs telemetry (pool rounds, notes)
//! to `DIR/run.jsonl`.

use fl_bench::{dump_json_obs, obs_recorder, workers_from_env_obs, Scenario};
use fl_ctrl::{
    compare_controllers, run_parallel_sweep, FrequencyController, HeuristicController,
    MaxFreqController, OracleController, StaticController,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut obs_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--obs" => {
                obs_dir = Some(std::path::PathBuf::from(
                    args.next().expect("--obs needs a directory"),
                ))
            }
            _ => positional.push(a),
        }
    }
    let iterations: usize = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let lambdas = [0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0];

    let scenario = Scenario::testbed();
    let run_rec = obs_recorder(obs_dir.as_deref(), "run.jsonl");
    let workers = workers_from_env_obs(&run_rec);
    let (rows, report) = run_parallel_sweep(workers, lambdas.to_vec(), |_, lambda| {
        let mut sc = scenario.clone();
        sc.fl.lambda = lambda;
        let sys = sc.build();
        let mut rng = ChaCha8Rng::seed_from_u64(sc.seed ^ 0xAB1);
        let stat = StaticController::new(&sys, 1000, 0.1, &mut rng).expect("static");
        let controllers: Vec<Box<dyn FrequencyController + Send>> = vec![
            Box::new(MaxFreqController),
            Box::new(HeuristicController::default()),
            Box::new(stat),
            Box::new(OracleController::default()),
        ];
        let runs = compare_controllers(&sys, controllers, iterations, 200.0)?;
        Ok((lambda, runs))
    })
    .expect("lambda sweep");

    let mut results = Vec::new();
    println!(
        "{:>7} {:>10} {:>28} {:>28} {:>28}",
        "lambda", "", "heuristic (cost/time/E)", "static (cost/time/E)", "oracle (cost/time/E)"
    );
    for (lambda, runs) in &rows {
        let fmt = |i: usize| {
            let (c, t, e) = runs[i].summary();
            format!("{c:8.2}/{t:6.2}/{e:6.2}")
        };
        println!(
            "{lambda:>7} maxfreq={} | {} | {} | {}",
            {
                let (c, t, e) = runs[0].summary();
                format!("{c:.2}/{t:.2}/{e:.2}")
            },
            fmt(1),
            fmt(2),
            fmt(3)
        );
        results.push(serde_json::json!({
            "lambda": lambda,
            "runs": runs.iter().map(|r| {
                let (c, t, e) = r.summary();
                serde_json::json!({"name": r.name, "cost": c, "time": t, "energy": e})
            }).collect::<Vec<_>>(),
        }));
    }

    // The qualitative checks the ablation is after.
    println!("\nexpected shape: oracle energy decreases monotonically in lambda;");
    println!("                oracle time weakly increases; maxfreq time constant.");
    println!("timing: {}", report.timing_line());
    if run_rec.is_enabled() {
        run_rec.emit(report.obs_event("lambda_sweep"));
    }
    dump_json_obs(
        &run_rec,
        "abl_lambda.json",
        &serde_json::json!({"sweep": results}),
    );
    if let Err(e) = run_rec.finish() {
        eprintln!("fl-obs: could not finalize run.jsonl: {e}");
    }
}
