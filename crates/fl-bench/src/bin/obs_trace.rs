//! Reconstructs per-request timelines from the `trace` events in one or
//! more fl-obs JSONL logs and prints the stage-attribution table: per
//! stage (queue_wait, batch_linger, inference, write) p50/p99/p999 and
//! share of total latency, the fleet-wide dominant stage, and the traces
//! whose dominant stage differs from that mode (the "why was *this one*
//! slow" list).
//!
//! ```bash
//! fl-serve --ckpt ckpts/ --obs out/          # logs trace events
//! cargo run --release -p fl-bench --bin obs_trace -- out/
//! ```
//!
//! Usage: `obs_trace <file.jsonl | dir>...`
//!
//! A directory argument expands to every `*.jsonl` inside it (sorted);
//! multiple logs are merged into one attribution (spans carry trace ids,
//! so retries that landed on different connections still group). The
//! output is a pure function of the logs' trace events — re-running over
//! the same files prints byte-identical tables, which is what
//! `tests/serve_trace.rs` pins.

use std::path::PathBuf;

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let inputs: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    if inputs.is_empty() {
        eprintln!("usage: obs_trace <file.jsonl | dir>...");
        return 2;
    }

    let mut files: Vec<PathBuf> = Vec::new();
    for input in inputs {
        if input.is_dir() {
            let mut found: Vec<PathBuf> = match std::fs::read_dir(&input) {
                Ok(rd) => rd
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
                    .collect(),
                Err(e) => {
                    eprintln!("obs_trace: cannot read {}: {e}", input.display());
                    return 1;
                }
            };
            found.sort();
            if found.is_empty() {
                eprintln!("obs_trace: no .jsonl files in {}", input.display());
                return 1;
            }
            files.extend(found);
        } else {
            files.push(input);
        }
    }

    let mut spans = Vec::new();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs_trace: cannot read {}: {e}", file.display());
                return 1;
            }
        };
        spans.extend(fl_obs::trace::collect_spans(&text));
    }
    if spans.is_empty() {
        eprintln!("obs_trace: no trace events in the given logs (serve with tracing clients?)");
        return 1;
    }
    let attr = fl_obs::trace::attribution(&spans);
    println!("{}", fl_obs::trace::render_attribution(&attr));
    0
}
