//! Ablation — the predict-then-optimize family vs the learned policy.
//!
//! Section II argues that "network quality changes and cannot be accurately
//! predicted in practice", motivating model-free DRL over prediction-based
//! control. This bench runs that argument: every classical predictor from
//! `fl_net::predict` is plugged into the same cost-optimal solver and
//! evaluated head-to-head (plus the trained DRL controller and the
//! clairvoyant oracle), along with each predictor's raw bandwidth MAE.
//!
//! Usage: `cargo run --release -p fl-bench --bin abl_predictors [episodes] [iters]`

use fl_bench::{dump_json, print_relative, print_summary_table, Scenario};
use fl_ctrl::{
    compare_controllers, FrequencyController, HeuristicController, OracleController,
    PredictiveController, StaticController,
};
use fl_net::predict::{self, Predictor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let episodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(800);
    let iterations: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);

    let scenario = Scenario::testbed();
    let sys = scenario.build();

    // Raw prediction quality on the walking traces (per-slot stream).
    println!("predictor bandwidth MAE on a walking trace (lower is better):");
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let trace = fl_net::synth::Profile::Walking4G
        .generate(4000, 1.0, &mut rng)
        .expect("trace");
    let mut predictors: Vec<Box<dyn Predictor>> = vec![
        Box::new(predict::LastValue::new(3.0)),
        Box::new(predict::SlidingMean::new(8, 3.0).expect("window")),
        Box::new(predict::Ewma::new(0.3, 3.0).expect("alpha")),
        Box::new(predict::Ar1::new(3.0)),
    ];
    for p in predictors.iter_mut() {
        let mae = predict::evaluate_mae(p.as_mut(), trace.slots());
        println!("  {:<14} {mae:.3} MB/s", p.name());
    }

    // Controllers: each predictor through the solver, plus references.
    let (drl, cached) = scenario.train_cached(&sys, episodes);
    println!("\nDRL controller ready (cache hit: {cached})");
    let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0xEA1);
    let stat = StaticController::new(&sys, 1000, 0.1, &mut rng).expect("static");
    let controllers: Vec<Box<dyn FrequencyController + Send>> = vec![
        Box::new(drl),
        Box::new(
            PredictiveController::uniform("lastval", &sys, 0.1, |p| {
                Box::new(predict::LastValue::new(p))
            })
            .expect("ctor"),
        ),
        Box::new(
            PredictiveController::uniform("slide8", &sys, 0.1, |p| {
                Box::new(predict::SlidingMean::new(8, p).expect("window"))
            })
            .expect("ctor"),
        ),
        Box::new(
            PredictiveController::uniform("ewma.3", &sys, 0.1, |p| {
                Box::new(predict::Ewma::new(0.3, p).expect("alpha"))
            })
            .expect("ctor"),
        ),
        Box::new(
            PredictiveController::uniform("ar1", &sys, 0.1, |p| Box::new(predict::Ar1::new(p)))
                .expect("ctor"),
        ),
        Box::new(HeuristicController::default()),
        Box::new(stat),
        Box::new(OracleController::default()),
    ];
    let runs = compare_controllers(&sys, controllers, iterations, 200.0).expect("evaluation");
    print_summary_table("predict-then-optimize family vs DRL", &runs);
    print_relative(&runs);

    dump_json(
        "abl_predictors.json",
        &serde_json::json!({
            "summary": runs.iter().map(|r| {
                let (c, t, e) = r.summary();
                serde_json::json!({"name": r.name, "mean_cost": c, "mean_time": t, "mean_energy": e})
            }).collect::<Vec<_>>(),
        }),
    );
}
