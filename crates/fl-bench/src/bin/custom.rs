//! Run a user-supplied experiment from a JSON [`fl_ctrl::ExperimentConfig`].
//!
//! ```bash
//! # write a template to edit:
//! cargo run --release -p fl-bench --bin custom -- --template > my_exp.json
//! # run it:
//! cargo run --release -p fl-bench --bin custom -- my_exp.json
//! ```

use fl_bench::{print_relative, print_summary_table};
use fl_ctrl::ExperimentConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--template") => {
            println!(
                "{}",
                ExperimentConfig::default()
                    .to_json()
                    .expect("default config serializes")
            );
        }
        Some(path) => {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            let config = ExperimentConfig::from_json(&text)
                .unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
            println!(
                "running experiment: N={} profile={:?} lambda={} ({} controllers, {} iterations)",
                config.n_devices,
                config.profile,
                config.fl.lambda,
                config.controllers.len(),
                config.eval_iterations
            );
            let runs = config.run().expect("experiment runs");
            print_summary_table("custom experiment", &runs);
            print_relative(&runs);
        }
        None => {
            // The fl-obs note funnel (disabled recorder = stderr only).
            fl_obs::Recorder::disabled().note("usage: custom <config.json> | custom --template");
            std::process::exit(2);
        }
    }
}
