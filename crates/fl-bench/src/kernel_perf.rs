//! Shared measurement core for the kernel differential benchmarks.
//!
//! The blocked kernels exist to be *faster* than the streaming reference
//! kernels while staying bit-identical (see fl-nn's `kernels` module). This
//! module measures that speedup: each case runs the same operation under
//! both [`KernelKind`]s and reports mean ns/iter plus the naive/blocked
//! ratio. Both the `kernel_bench` criterion bench and the `bench_check` CI
//! gate build on it, so the committed baseline and the regression check
//! always measure exactly the same thing.
//!
//! The gate compares *ratios*, not absolute nanoseconds: both families are
//! measured in the same process on the same machine, so the ratio is
//! insensitive to the host's absolute speed while still catching a
//! de-optimized blocked kernel.

use fl_nn::{KernelKind, Matrix};
use fl_rl::{GaussianPolicy, ValueNet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured kernel case: the same op under both kernel families.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelCase {
    /// Case id, e.g. `matmul_64`.
    pub name: String,
    /// Mean ns/iter under the blocked (default) kernels.
    pub blocked_ns: f64,
    /// Mean ns/iter under the naive reference kernels.
    pub naive_ns: f64,
    /// `naive_ns / blocked_ns` — how much faster the blocked family is.
    pub speedup: f64,
}

/// A full measurement sweep, serialized as the committed baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelReport {
    /// Per-case timing budget used for the sweep, in milliseconds.
    pub budget_ms: u64,
    /// All measured cases.
    pub cases: Vec<KernelCase>,
}

/// A benchmarkable kernel operation, runnable under either family.
pub struct KernelOp {
    /// Case id, e.g. `matmul_64`.
    pub name: String,
    f: Box<dyn FnMut(KernelKind)>,
}

impl KernelOp {
    /// Runs the operation once under `kind`.
    pub fn run(&mut self, kind: KernelKind) {
        (self.f)(kind)
    }
}

/// Deterministic dense test matrix; ~1/13 of entries are exactly `0.0`, so
/// the zero-skip fast path is exercised at a realistic (sparse-ish
/// activations) rate in both families.
fn mk(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        ((r * 31 + c * 17 + salt * 7) % 13) as f64 - 6.0
    })
}

/// The benchmarked operations. Square matmuls frame the headline number
/// (the dense forward/backward GEMMs); `tn`/`nt` cover the gradient
/// kernels; the fused case compares one fused sweep against the reference's
/// unfused matmul-then-broadcast; transpose covers the tiled copy.
///
/// All kernel-vs-kernel matmuls force the serial path (`parallel: false`)
/// so the measurement is a single-thread kernel comparison regardless of
/// host core count. The two scheduling cases (`matmul_256_par4`,
/// `rollout_forward_batched_32`) instead pin the kernel family and vary the
/// *schedule* — worker count and batching — which the bit-exactness
/// contract guarantees cannot change results.
pub fn ops() -> Vec<KernelOp> {
    let mut ops = Vec::new();
    for n in [32usize, 64, 128] {
        let a = mk(n, n, 1);
        let b = mk(n, n, 2);
        ops.push(KernelOp {
            name: format!("matmul_{n}"),
            f: Box::new(move |kind| {
                black_box(a.matmul_with(&b, kind, false).unwrap());
            }),
        });
    }
    {
        let a = mk(64, 64, 3);
        let b = mk(64, 64, 4);
        ops.push(KernelOp {
            name: "matmul_tn_64".to_string(),
            f: Box::new(move |kind| {
                black_box(a.matmul_tn_with(&b, kind).unwrap());
            }),
        });
    }
    {
        let a = mk(64, 64, 5);
        let b = mk(64, 64, 6);
        ops.push(KernelOp {
            name: "matmul_nt_64".to_string(),
            f: Box::new(move |kind| {
                black_box(a.matmul_nt_with(&b, kind).unwrap());
            }),
        });
    }
    {
        let a = mk(64, 64, 7);
        let b = mk(64, 64, 8);
        let bias: Vec<f64> = (0..64).map(|j| j as f64 * 0.25 - 8.0).collect();
        ops.push(KernelOp {
            name: "matmul_add_bias_64".to_string(),
            f: Box::new(move |kind| {
                black_box(a.matmul_add_bias_with(&b, &bias, kind).unwrap());
            }),
        });
    }
    {
        let a = mk(256, 256, 9);
        ops.push(KernelOp {
            name: "transpose_256".to_string(),
            f: Box::new(move |kind| match kind {
                KernelKind::Blocked => {
                    black_box(a.transpose());
                }
                KernelKind::Naive => {
                    black_box(a.naive_transpose());
                }
            }),
        });
    }
    // Pool-parallel GEMM: the two "families" here are worker counts, not
    // kernel kinds — the blocked slot runs the row-block-partitioned path on
    // 4 workers, the naive slot the same blocked kernel serially, so the
    // reported speedup is 4-workers-vs-1 on a 256^2 matmul (well above the
    // `parallel_dispatch` threshold). Bit-identical by the partition
    // argument in DESIGN.md, so this is a pure scheduling comparison.
    {
        let a = mk(256, 256, 10);
        let b = mk(256, 256, 11);
        ops.push(KernelOp {
            name: "matmul_256_par4".to_string(),
            f: Box::new(move |kind| {
                let workers = match kind {
                    KernelKind::Blocked => 4,
                    KernelKind::Naive => 1,
                };
                black_box(
                    a.matmul_par_with_workers(&b, KernelKind::Blocked, workers)
                        .unwrap(),
                );
            }),
        });
    }
    // Batched rollout forward: the blocked slot runs ONE `32 x obs` policy
    // mean + value forward (what `RolloutMode::Batched` does per step for a
    // 32-env fleet), the naive slot the same work as 32 single-row forwards
    // (the per-env schedule). Row bits are identical either way; the
    // speedup is the per-call overhead amortization the batched rollout
    // buys. Kernel family is pinned to Blocked in both slots.
    {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let policy = GaussianPolicy::new(18, &[64, 64], 4, -0.5, &mut rng).unwrap();
        let value = ValueNet::new(18, &[64, 64], &mut rng).unwrap();
        let obs = mk(32, 18, 12);
        ops.push(KernelOp {
            name: "rollout_forward_batched_32".to_string(),
            f: Box::new(move |kind| match kind {
                KernelKind::Blocked => {
                    black_box(policy.mean_actions(&obs).unwrap());
                    black_box(value.predict_batch(&obs).unwrap());
                }
                KernelKind::Naive => {
                    for r in 0..obs.rows() {
                        black_box(policy.mean_action(obs.row(r)).unwrap());
                        black_box(value.predict(obs.row(r)).unwrap());
                    }
                }
            }),
        });
    }
    ops
}

/// Mean ns per call of `f`, after a warmup of one tenth of `budget`.
fn mean_ns(budget: Duration, mut f: impl FnMut()) -> f64 {
    let warmup = Instant::now();
    let mut n: u64 = 0;
    while warmup.elapsed() < budget / 10 && n < 1_000_000 {
        f();
        n += 1;
    }
    let start = Instant::now();
    let mut iters: u64 = 0;
    while start.elapsed() < budget && iters < 10_000_000 {
        f();
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / iters.max(1) as f64
}

/// Measures every [`ops`] case under both kernel families.
pub fn measure(budget: Duration) -> KernelReport {
    let cases = ops()
        .into_iter()
        .map(|mut op| {
            let blocked_ns = mean_ns(budget, || op.run(KernelKind::Blocked));
            let naive_ns = mean_ns(budget, || op.run(KernelKind::Naive));
            KernelCase {
                name: op.name,
                blocked_ns,
                naive_ns,
                speedup: naive_ns / blocked_ns,
            }
        })
        .collect();
    KernelReport {
        budget_ms: budget.as_millis() as u64,
        cases,
    }
}

/// Prints the report as a fixed-width table.
pub fn print_report(report: &KernelReport) {
    println!(
        "{:<20} {:>14} {:>14} {:>9}",
        "kernel case", "blocked ns", "naive ns", "speedup"
    );
    for c in &report.cases {
        println!(
            "{:<20} {:>14.1} {:>14.1} {:>8.2}x",
            c.name, c.blocked_ns, c.naive_ns, c.speedup
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_covers_every_op_with_positive_times() {
        // Tiny budget: this is a smoke test of the sweep plumbing, not a
        // performance assertion (debug builds invert every ratio anyway).
        let report = measure(Duration::from_millis(2));
        let names: Vec<&str> = report.cases.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "matmul_32",
                "matmul_64",
                "matmul_128",
                "matmul_tn_64",
                "matmul_nt_64",
                "matmul_add_bias_64",
                "transpose_256",
                "matmul_256_par4",
                "rollout_forward_batched_32",
            ]
        );
        for c in &report.cases {
            assert!(c.blocked_ns > 0.0 && c.naive_ns > 0.0, "{c:?}");
            assert!(c.speedup.is_finite() && c.speedup > 0.0, "{c:?}");
        }
    }
}
