//! # fl-bench — the figure-regeneration harness
//!
//! One binary per figure of the paper (see DESIGN.md's experiment index),
//! plus ablation sweeps. This library holds the pieces the binaries share:
//! canonical scenario builders (the paper's testbed and 50-device
//! simulation), plain-text table/CDF printers, and JSON result dumping for
//! EXPERIMENTS.md bookkeeping.
//!
//! Run any figure with, e.g.:
//!
//! ```bash
//! cargo run --release -p fl-bench --bin fig7_testbed
//! ```

#![forbid(unsafe_code)]
// `!(x > 0.0)`-style guards reject NaN along with out-of-range values;
// clippy's suggested inversion (`x <= 0.0`) would silently accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod args;
pub mod kernel_perf;
pub mod serve_perf;

use fl_ctrl::{
    train_drl, train_drl_opt, train_drl_parallel, train_drl_parallel_opt, ControllerRun,
    DrlController, EnvConfig, ParallelConfig, ParallelTrainOutput, PolicyArch, RunOptions,
    TrainConfig, TrainOutput,
};
use fl_net::stats::EmpiricalCdf;
use fl_net::synth::Profile;
use fl_rl::PpoConfig;
use fl_sim::{DeviceSampler, FlConfig, FlSystem, Range};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A fully specified experiment scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable label.
    pub name: String,
    /// Number of devices `N`.
    pub n_devices: usize,
    /// Number of traces in the pool (paper: 3 for the testbed, 5 for the
    /// 50-device simulation).
    pub n_traces: usize,
    /// Trace profile.
    pub profile: Profile,
    /// Trace length in 1-second slots.
    pub trace_slots: usize,
    /// Task configuration (τ, ξ, λ).
    pub fl: FlConfig,
    /// Device-parameter ranges.
    pub sampler: DeviceSampler,
    /// Master seed.
    pub seed: u64,
}

/// Device ranges calibrated to land on the paper's reported magnitudes
/// (per-iteration time ≈ 5–6, cost ≈ 7–10): the paper's "50–100 MB" of
/// training data is read as 50–100 **Mbit** (6.25–12.5 MB) — with the
/// literal MB reading, compute time alone is 8–16 s at full speed, which
/// contradicts the ~6 s total iterations in Fig. 7(b). α is raised to
/// κ ≈ 2–8 × 10⁻²⁸ (older mobile silicon) so energy stays a meaningful
/// cost share. See EXPERIMENTS.md.
fn paper_calibrated_sampler() -> DeviceSampler {
    DeviceSampler {
        data_mb: Range { lo: 6.25, hi: 12.5 },
        alpha: Range { lo: 0.2, hi: 0.8 },
        ..DeviceSampler::default()
    }
}

impl Scenario {
    /// The paper's small-scale testbed: N=3 devices over 3 walking traces.
    /// λ is not reported for the testbed; 0.5 reproduces the paper's cost
    /// decomposition (time ≈ 6 of cost ≈ 7.25).
    pub fn testbed() -> Scenario {
        Scenario {
            name: "testbed-n3".to_string(),
            n_devices: 3,
            n_traces: 3,
            profile: Profile::Walking4G,
            trace_slots: 3600,
            fl: FlConfig {
                tau: 1,
                model_size_mb: 10.0,
                lambda: 0.5,
            },
            sampler: paper_calibrated_sampler(),
            seed: 20200518, // IPDPS 2020 main-conference date
        }
    }

    /// The paper's scalability simulation: N=50 devices drawing from 5
    /// walking traces, λ = 0.1 ("all the other parameters are the same").
    pub fn scale50() -> Scenario {
        Scenario {
            name: "scale-n50".to_string(),
            n_devices: 50,
            n_traces: 5,
            profile: Profile::Walking4G,
            trace_slots: 3600,
            fl: FlConfig {
                tau: 1,
                model_size_mb: 10.0,
                lambda: 0.1,
            },
            sampler: paper_calibrated_sampler(),
            seed: 20200519,
        }
    }

    /// Builds the deterministic [`FlSystem`] for this scenario.
    pub fn build(&self) -> FlSystem {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        fl_ctrl::build_system_with(
            self.n_devices,
            self.n_traces,
            self.profile,
            self.trace_slots,
            self.fl,
            &self.sampler,
            &mut rng,
        )
        .expect("scenario parameters are valid")
    }

    /// The standard training configuration for this scenario.
    ///
    /// Large fleets get bigger rollout buffers and a tighter initial
    /// exploration noise: with N action dimensions sharing one scalar
    /// reward, the policy-gradient variance grows with N, so the update
    /// needs more samples and less injected noise to stay informative.
    pub fn train_config(&self, episodes: usize) -> TrainConfig {
        let large = self.n_devices >= 20;
        TrainConfig {
            episodes,
            ppo: PpoConfig {
                hidden: vec![64, 64],
                buffer_capacity: if large { 1000 } else { 250 },
                minibatch_size: 64,
                epochs: if large { 6 } else { 10 },
                actor_lr: 1e-3,
                critic_lr: 3e-3,
                lr_decay: if large { 0.999 } else { 1.0 },
                entropy_coef: if large { 0.0002 } else { 0.001 },
                init_log_std: if large { -1.0 } else { -0.5 },
                // The frequency action affects only the current iteration's
                // cost (plus where the next iteration starts in the trace),
                // so the task is near-bandit: a short credit horizon learns
                // much faster than the episodic default.
                gamma: 0.5,
                gae_lambda: 0.9,
                target_kl: Some(0.15),
                ..PpoConfig::default()
            },
            env: EnvConfig {
                slot_h: 10.0,
                history_len: 8,
                episode_len: 50,
                min_freq_frac: 0.1,
                faults: None,
            },
            // Large fleets use the weight-shared per-device actor; the
            // N=3 testbed uses the paper-literal joint network.
            arch: if large {
                PolicyArch::Shared
            } else {
                PolicyArch::Joint
            },
            reward_scale: 0.05,
        }
    }

    /// Trains the DRL controller for this scenario (deterministic given the
    /// scenario seed).
    pub fn train(&self, sys: &FlSystem, episodes: usize) -> TrainOutput {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xD51);
        train_drl(sys, &self.train_config(episodes), &mut rng)
            .expect("training configuration is valid")
    }

    /// [`Scenario::train`] with run options (checkpointing, supervision,
    /// early stop). With `RunOptions::default()` this is bit-identical to
    /// [`Scenario::train`].
    pub fn train_with(
        &self,
        sys: &FlSystem,
        episodes: usize,
        opts: &RunOptions,
    ) -> fl_ctrl::Result<TrainOutput> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xD51);
        train_drl_opt(sys, &self.train_config(episodes), &mut rng, opts)
    }

    /// Trains with the vectorized parallel rollout engine. Deterministic
    /// given the scenario seed and `par.n_envs`; `par.workers` only moves
    /// wall-clock time.
    pub fn train_parallel(
        &self,
        sys: &FlSystem,
        episodes: usize,
        par: &ParallelConfig,
    ) -> ParallelTrainOutput {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xD51);
        train_drl_parallel(sys, &self.train_config(episodes), par, &mut rng)
            .expect("training configuration is valid")
    }

    /// [`Scenario::train_parallel`] with run options (checkpointing,
    /// supervision, early stop). With `RunOptions::default()` this is
    /// bit-identical to [`Scenario::train_parallel`].
    pub fn train_parallel_with(
        &self,
        sys: &FlSystem,
        episodes: usize,
        par: &ParallelConfig,
        opts: &RunOptions,
    ) -> fl_ctrl::Result<ParallelTrainOutput> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xD51);
        train_drl_parallel_opt(sys, &self.train_config(episodes), par, &mut rng, opts)
    }

    /// Loads a cached trained controller from `target/` or trains and
    /// caches one. Binaries share training runs this way (fig6 and fig7 use
    /// the same agent, like the paper).
    pub fn train_cached(&self, sys: &FlSystem, episodes: usize) -> (DrlController, bool) {
        let path = std::env::temp_dir().join(format!(
            "fedfreq-{}-{}ep-seed{}.json",
            self.name, episodes, self.seed
        ));
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(ctrl) = DrlController::from_json(&text) {
                return (ctrl, true);
            }
        }
        let out = self.train(sys, episodes);
        if let Ok(json) = out.controller.to_json() {
            // Atomic write: a concurrent binary reading the cache sees
            // either the old controller or the new one, never a torn file.
            let _ = fl_rl::snapshot::atomic_write(&path, json.as_bytes());
        }
        (out.controller, false)
    }

    /// Parallel-training variant of [`Scenario::train_cached`]. The cache
    /// key includes `n_envs` (a logical parameter) but not `workers`
    /// (physical, result-invariant). Returns the controller, whether the
    /// cache hit, and — on a fresh run — the per-round worker telemetry.
    pub fn train_cached_parallel(
        &self,
        sys: &FlSystem,
        episodes: usize,
        par: &ParallelConfig,
    ) -> (
        DrlController,
        bool,
        Option<Vec<Vec<fl_rl::pool::WorkerStats>>>,
    ) {
        let path = std::env::temp_dir().join(format!(
            "fedfreq-{}-{}ep-seed{}-vec{}.json",
            self.name, episodes, self.seed, par.n_envs
        ));
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(ctrl) = DrlController::from_json(&text) {
                return (ctrl, true, None);
            }
        }
        let out = self.train_parallel(sys, episodes, par);
        if let Ok(json) = out.output.controller.to_json() {
            let _ = fl_rl::snapshot::atomic_write(&path, json.as_bytes());
        }
        (out.output.controller, false, Some(out.rounds))
    }
}

/// Worker-thread count for the benchmark binaries: the `FL_WORKERS`
/// environment variable when set, otherwise the machine's available
/// parallelism. Thanks to the engine's determinism contract this only
/// changes how fast the binaries run, never what they print.
pub fn workers_from_env() -> usize {
    workers_from_env_obs(&fl_obs::Recorder::disabled())
}

/// [`workers_from_env`] with observability: an unparsable or zero
/// `FL_WORKERS` is no longer swallowed silently — it prints a stderr note
/// and, when the recorder is enabled, emits a structured `warning` event
/// before falling back to the machine's available parallelism.
pub fn workers_from_env_obs(rec: &fl_obs::Recorder) -> usize {
    let Ok(raw) = std::env::var("FL_WORKERS") else {
        return fl_rl::pool::default_workers();
    };
    match raw.trim().parse::<usize>() {
        Ok(w) if w >= 1 => w,
        _ => {
            let fallback = fl_rl::pool::default_workers();
            if rec.is_enabled() {
                rec.emit(
                    fl_obs::Event::phys("warning")
                        .s("what", "bad_fl_workers")
                        .s("value", raw.as_str())
                        .u("fallback", fallback as u64),
                );
            }
            eprintln!(
                "fl-bench: ignoring FL_WORKERS={raw:?} (want an integer >= 1); \
                 using {fallback} workers"
            );
            fallback
        }
    }
}

/// Opens the observability recorder a benchmark binary writes to:
/// `Some(dir)` records to `dir/<file>`, `None` is the disabled no-op
/// recorder. An unopenable sink degrades to disabled with a stderr note
/// rather than aborting the benchmark.
pub fn obs_recorder(dir: Option<&std::path::Path>, file: &str) -> fl_obs::Recorder {
    let Some(dir) = dir else {
        return fl_obs::Recorder::disabled();
    };
    match fl_obs::Recorder::to_file(dir.join(file)) {
        Ok(rec) => rec,
        Err(e) => {
            eprintln!(
                "fl-bench: cannot open event sink {}/{file}: {e}; recording disabled",
                dir.display()
            );
            fl_obs::Recorder::disabled()
        }
    }
}

/// Prints per-worker totals (tasks, steals, busy seconds) aggregated over
/// the collection rounds of a parallel training run.
pub fn print_round_worker_stats(label: &str, rounds: &[Vec<fl_rl::pool::WorkerStats>]) {
    let workers = rounds.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut tasks = vec![0usize; workers];
    let mut steals = vec![0usize; workers];
    let mut busy = vec![0.0f64; workers];
    for round in rounds {
        for w in round {
            tasks[w.worker] += w.tasks;
            steals[w.worker] += w.steals;
            busy[w.worker] += w.busy.as_secs_f64();
        }
    }
    print!("{label}: {} rounds |", rounds.len());
    for w in 0..workers {
        print!(
            " w{w}: {} tasks ({} stolen) {:.2}s busy |",
            tasks[w], steals[w], busy[w]
        );
    }
    println!();
}

/// Prints a fixed-width summary table (the Fig. 7(a–c) bars as rows).
pub fn print_summary_table(title: &str, runs: &[ControllerRun]) {
    println!("\n== {title} ==");
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "approach", "mean cost", "mean time", "mean energy"
    );
    for r in runs {
        let (c, t, e) = r.summary();
        println!("{:<12} {:>12.3} {:>12.3} {:>12.3}", r.name, c, t, e);
    }
}

/// Prints relative-to-first percentages, the "X% higher than DRL" numbers
/// the paper quotes in Section V-B.
pub fn print_relative(runs: &[ControllerRun]) {
    if runs.is_empty() {
        return;
    }
    let base = runs[0].ledger.mean_cost();
    println!("\nrelative mean cost (baseline = {}):", runs[0].name);
    for r in runs {
        let pct = (r.ledger.mean_cost() / base - 1.0) * 100.0;
        println!("  {:<12} {:+7.1}%", r.name, pct);
    }
}

/// Prints a CDF series (Fig. 7(d–f)) as `value cumulative-probability`
/// pairs, one controller per block.
pub fn print_cdf(metric: &str, series: &[(String, Vec<f64>)], points: usize) {
    println!("\n-- CDF of per-iteration {metric} --");
    for (name, data) in series {
        let cdf = EmpiricalCdf::new(data);
        println!("[{name}]");
        for (x, p) in cdf.series(points) {
            println!("  {x:10.4} {p:6.3}");
        }
    }
}

/// Writes a JSON results blob next to the repo root so EXPERIMENTS.md
/// numbers are regenerable. The write is atomic (tmp + fsync + rename), so
/// a crash mid-dump never leaves a torn results file behind.
pub fn dump_json(filename: &str, value: &serde_json::Value) {
    dump_json_obs(&fl_obs::Recorder::disabled(), filename, value)
}

/// [`dump_json`] with observability: a failed write is routed through
/// [`fl_obs::Recorder::note`] (stderr + a `note` event when recording)
/// instead of a bare `eprintln!`.
pub fn dump_json_obs(rec: &fl_obs::Recorder, filename: &str, value: &serde_json::Value) {
    let path = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(path);
    let full = path.join(filename);
    let text = serde_json::to_string_pretty(value).expect("valid json");
    match fl_rl::snapshot::atomic_write(&full, text.as_bytes()) {
        Ok(()) => println!("\n[results written to {}]", full.display()),
        Err(e) => rec.note(&format!("could not write {}: {e}", full.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_ctrl::{run_controller, MaxFreqController};

    #[test]
    fn scenarios_build() {
        let t = Scenario::testbed();
        let sys = t.build();
        assert_eq!(sys.num_devices(), 3);
        assert_eq!(sys.config().lambda, 0.5);
        // Calibrated device ranges (Mbit reading of the paper's data size).
        for d in sys.devices() {
            assert!((6.25..=12.5).contains(&d.data_mb));
        }
        let s = Scenario::scale50();
        let sys = s.build();
        assert_eq!(sys.num_devices(), 50);
        assert_eq!(sys.config().lambda, 0.1);
    }

    #[test]
    fn scenario_build_is_deterministic() {
        let a = Scenario::testbed().build();
        let b = Scenario::testbed().build();
        assert_eq!(a.devices(), b.devices());
    }

    #[test]
    fn printers_do_not_panic() {
        let sys = Scenario::testbed().build();
        let mut ctrl = MaxFreqController;
        let run = run_controller(&sys, &mut ctrl, 5, 200.0).unwrap();
        print_summary_table("smoke", std::slice::from_ref(&run));
        print_relative(std::slice::from_ref(&run));
        print_cdf("cost", &[(run.name.clone(), run.ledger.cost_series())], 5);
    }
}
