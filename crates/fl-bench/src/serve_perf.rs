//! Shared measurement core for the serving load benchmark.
//!
//! Trains (or loads from the shared cache) a small testbed controller,
//! exports it as a [`ControllerSnapshot`] into a throwaway checkpoint
//! store, starts a real [`DecisionServer`] on an ephemeral port, and
//! drives it with synthetic FL decision traffic: observation rows sampled
//! from the scenario's fl-net bandwidth traces, exactly what a federated
//! aggregator would send between iterations.
//!
//! Each case reports client-side latency quantiles (p50/p99/p999, exact
//! over the recorded samples, not histogram-interpolated) and throughput.
//! The `serial_1` case is the no-contention floor; the burst cases measure
//! micro-batching under concurrency. Both the `serve_bench` binary and
//! the `bench_check` CI gate build on this module, so the committed
//! baseline and the regression check always measure the same thing.
//!
//! The gate compares *ratios* against the committed baseline with wide
//! margins (throughput may drop to 1/4, p99 may grow 8x before failing):
//! serving latency on shared CI hosts is noisy, and the gate exists to
//! catch order-of-magnitude regressions — an accidentally serialized
//! batcher, a lock held across a policy forward — not microsecond drift.

use crate::Scenario;
use fl_ctrl::ControllerSnapshot;
use fl_obs::trace::{attribution, collect_spans, TraceAttribution};
use fl_obs::{quantile_sorted, Recorder};
use fl_rl::snapshot::CheckpointStore;
use fl_serve::protocol::codes;
use fl_serve::{
    DecisionServer, ResilientClient, RetryPolicy, ServeClient, ServeError, ServeOptions,
    WireRequest,
};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::{Duration, Instant};

/// Training episodes for the served controller: enough to exercise the
/// full pipeline, small enough for a CI smoke run (the decision-serving
/// cost is independent of how well-trained the weights are).
pub const SNAPSHOT_EPISODES: usize = 40;

/// Gate: measured throughput must stay above this fraction of baseline.
pub const MIN_THROUGHPUT_FRAC: f64 = 0.25;
/// Gate: measured p99 may grow at most this factor over baseline ...
pub const MAX_P99_GROWTH: f64 = 8.0;
/// ... but never fails while under this absolute floor (µs): scheduler
/// jitter on a busy host dominates below it.
pub const P99_FLOOR_US: f64 = 5_000.0;

/// One load case against a live server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeCase {
    /// Case id, e.g. `burst_8`.
    pub name: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Decisions served.
    pub requests: u64,
    /// Client-observed decisions per second.
    pub throughput_rps: f64,
    /// Exact client-side latency quantiles, microseconds.
    pub p50_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile, microseconds.
    pub p999_us: f64,
    /// Largest micro-batch the server formed during the case.
    pub max_batch_observed: u64,
}

/// The overload scenario: offered load deliberately past capacity, so the
/// interesting numbers are *goodput* (decisions actually served per
/// second), the shed rate, and the p99 of the accepted requests — an
/// overloaded server must stay fast for the work it admits and answer the
/// rest immediately with structured `overloaded` sheds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverloadCase {
    /// Concurrent closed-loop clients (no think time, no backoff).
    pub clients: usize,
    /// Requests attempted (accepted + shed + failed).
    pub offered: u64,
    /// Requests served with a decision.
    pub accepted: u64,
    /// Requests shed with `overloaded` / `deadline_exceeded`.
    pub shed: u64,
    /// Anything else — transport errors, unexpected codes. An overloaded
    /// server must degrade structurally, so the gate requires zero.
    pub transport_failures: u64,
    /// Accepted decisions per second.
    pub goodput_rps: f64,
    /// `shed / offered`.
    pub shed_rate: f64,
    /// p99 latency of *accepted* requests, microseconds.
    pub p99_accepted_us: f64,
    /// Server-side sheds attributed to admission (`overloaded` +
    /// `shutting_down`), from the stage counters. `None` in baselines
    /// predating stage attribution.
    pub shed_admission: Option<u64>,
    /// Server-side sheds attributed to in-queue deadline expiry.
    pub shed_queue: Option<u64>,
}

/// A full sweep, serialized as the committed baseline
/// (`crates/fl-bench/results/serve_bench.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    /// Per-case driving budget, milliseconds.
    pub budget_ms: u64,
    /// Observation dimension of the served controller.
    pub obs_dim: usize,
    /// Devices per decision.
    pub action_dim: usize,
    /// All measured cases.
    pub cases: Vec<ServeCase>,
    /// The past-capacity scenario (absent in pre-overload baselines).
    pub overload: Option<OverloadCase>,
    /// Stage attribution of a traced sample (absent in pre-trace
    /// baselines). Informational — quantiles are host-dependent, so the
    /// gate does not compare them.
    pub trace: Option<TraceAttribution>,
}

/// Trains (cache-aware) the testbed controller and saves it as the only
/// snapshot in a fresh [`CheckpointStore`] at `dir`. Returns the snapshot
/// and an observation pool sampled from the scenario's bandwidth traces.
pub fn prepare_store(dir: &Path, pool_size: usize) -> (ControllerSnapshot, Vec<Vec<f64>>) {
    let scenario = Scenario::testbed();
    let sys = scenario.build();
    let (ctrl, _cached) = scenario.train_cached(&sys, SNAPSHOT_EPISODES);
    let snap = ControllerSnapshot::from_system(ctrl, &sys).expect("testbed snapshot is valid");
    let store = CheckpointStore::new(dir).expect("checkpoint store");
    snap.save(&store).expect("snapshot saves");
    let h = snap.controller.history_len;
    let slot_h = snap.controller.slot_h;
    let pool: Vec<Vec<f64>> = (0..pool_size)
        .map(|k| {
            // Deterministic stride through the 3600 s traces, away from
            // both ends so the trailing history window is always full.
            let t = 60.0 + ((k * 97) % 3300) as f64;
            sys.observe_bandwidth_state(t, slot_h, h)
                .expect("observation inside trace")
        })
        .collect();
    (snap, pool)
}

/// Runs one load case: `clients` connections hammering `decide` for
/// `budget`, against a fresh server over the store at `ckpt_dir`.
pub fn run_case(
    ckpt_dir: &Path,
    name: &str,
    clients: usize,
    budget: Duration,
    obs_pool: &[Vec<f64>],
) -> ServeCase {
    let opts = ServeOptions {
        // Serial traffic should not pay a batching window; concurrent
        // traffic gets a short one so bursts coalesce.
        linger: if clients == 1 {
            Duration::ZERO
        } else {
            Duration::from_micros(200)
        },
        ..ServeOptions::default()
    };
    let server = DecisionServer::start(ckpt_dir, "127.0.0.1:0", opts).expect("server starts");
    let addr = server.local_addr();
    let start = Instant::now();
    let deadline = start + budget;
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let pool = obs_pool.to_vec();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("client connects");
                let mut latencies_us = Vec::new();
                // Stagger the pool walk per client so concurrent requests
                // carry different observations.
                let mut i = c;
                while Instant::now() < deadline {
                    let t0 = Instant::now();
                    client.decide(&pool[i % pool.len()]).expect("decide ok");
                    latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
                    i += clients.max(1);
                }
                latencies_us
            })
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let elapsed = start.elapsed().as_secs_f64();
    let stats = server.shutdown();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let q = |p: f64| {
        if latencies.is_empty() {
            0.0
        } else {
            quantile_sorted(&latencies, p)
        }
    };
    ServeCase {
        name: name.to_string(),
        clients,
        requests: latencies.len() as u64,
        throughput_rps: latencies.len() as f64 / elapsed.max(1e-9),
        p50_us: q(0.5),
        p99_us: q(0.99),
        p999_us: q(0.999),
        max_batch_observed: stats.max_batch_observed,
    }
}

/// Knobs that make the overload scenario *reliably* past capacity: a
/// small artificial per-batch inference delay emulates a heavier model,
/// so 16 closed-loop clients against a 4-row batch and an 8-deep queue
/// saturate the server regardless of host speed.
const OVERLOAD_CLIENTS: usize = 16;
const OVERLOAD_MAX_BATCH: usize = 4;
const OVERLOAD_MAX_QUEUE: usize = 8;
const OVERLOAD_SLOWDOWN: Duration = Duration::from_millis(2);
/// Per-request deadline carried by overload traffic — generous against
/// the ~7 ms worst-case queue residence, so sheds are `overloaded` (queue
/// full), not deadline expiries; it still exercises the deadline path on
/// every admitted request.
const OVERLOAD_DEADLINE_MS: u64 = 250;

/// Runs the overload case: closed-loop clients hammering a deliberately
/// undersized server for `budget`. Sheds are expected and counted; any
/// *unstructured* failure is a bug and lands in `transport_failures`.
pub fn run_overload_case(ckpt_dir: &Path, budget: Duration, obs_pool: &[Vec<f64>]) -> OverloadCase {
    let opts = ServeOptions {
        max_batch: OVERLOAD_MAX_BATCH,
        linger: Duration::from_micros(200),
        max_queue: OVERLOAD_MAX_QUEUE,
        inference_slowdown: OVERLOAD_SLOWDOWN,
        ..ServeOptions::default()
    };
    let server = DecisionServer::start(ckpt_dir, "127.0.0.1:0", opts).expect("server starts");
    let addr = server.local_addr();
    let start = Instant::now();
    let deadline = start + budget;
    let handles: Vec<_> = (0..OVERLOAD_CLIENTS)
        .map(|c| {
            let pool = obs_pool.to_vec();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("client connects");
                client
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .expect("read timeout");
                let mut accepted_us = Vec::new();
                let mut shed = 0u64;
                let mut failed = 0u64;
                let mut i = c;
                while Instant::now() < deadline {
                    let request = WireRequest::decide(pool[i % pool.len()].clone())
                        .with_deadline(OVERLOAD_DEADLINE_MS);
                    let t0 = Instant::now();
                    match client.decide_request(&request) {
                        Ok(_) => accepted_us.push(t0.elapsed().as_secs_f64() * 1e6),
                        Err(ServeError::Server { ref code, .. })
                            if code == codes::OVERLOADED || code == codes::DEADLINE_EXCEEDED =>
                        {
                            shed += 1;
                        }
                        Err(_) => failed += 1,
                    }
                    i += OVERLOAD_CLIENTS;
                }
                (accepted_us, shed, failed)
            })
        })
        .collect();
    let mut accepted_us: Vec<f64> = Vec::new();
    let (mut shed, mut failed) = (0u64, 0u64);
    for h in handles {
        let (us, s, f) = h.join().expect("client thread");
        accepted_us.extend(us);
        shed += s;
        failed += f;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = server.shutdown();
    accepted_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let accepted = accepted_us.len() as u64;
    let offered = accepted + shed + failed;
    OverloadCase {
        clients: OVERLOAD_CLIENTS,
        offered,
        accepted,
        shed,
        transport_failures: failed,
        goodput_rps: accepted as f64 / elapsed.max(1e-9),
        shed_rate: shed as f64 / (offered.max(1)) as f64,
        p99_accepted_us: if accepted_us.is_empty() {
            0.0
        } else {
            quantile_sorted(&accepted_us, 0.99)
        },
        shed_admission: stats.stages.as_ref().map(|s| s.shed_admission),
        shed_queue: stats.stages.as_ref().map(|s| s.shed_queue),
    }
}

/// Drives `requests` traced decides through a fresh server logging to a
/// JSONL file, then reconstructs the stage attribution from that log —
/// the same offline pipeline the `obs_trace` binary runs. The trace-id
/// stream is a pure function of the retry seed, so repeated runs
/// attribute the same trace ids (durations vary with the host, the
/// table *structure* does not).
pub fn run_trace_case(ckpt_dir: &Path, requests: u64, obs_pool: &[Vec<f64>]) -> TraceAttribution {
    let log_dir = std::env::temp_dir().join(format!(
        "fedfreq-serve-trace-{}-{requests}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&log_dir);
    std::fs::create_dir_all(&log_dir).expect("trace log dir");
    let log_path = log_dir.join("serve.jsonl");
    let opts = ServeOptions {
        recorder: Recorder::to_file(&log_path).expect("trace recorder"),
        ..ServeOptions::default()
    };
    let server = DecisionServer::start(ckpt_dir, "127.0.0.1:0", opts).expect("server starts");
    let mut client =
        ResilientClient::new(server.local_addr(), RetryPolicy::default()).expect("client builds");
    client.set_tracing(true);
    for i in 0..requests {
        client
            .decide(&obs_pool[i as usize % obs_pool.len()])
            .expect("traced decide ok");
    }
    server.shutdown();
    let text = std::fs::read_to_string(&log_path).expect("trace log readable");
    let attr = attribution(&collect_spans(&text));
    let _ = std::fs::remove_dir_all(&log_dir);
    attr
}

/// The full sweep: serial floor plus two burst levels, each against its
/// own fresh server (so per-case stats do not bleed into each other).
pub fn measure(budget: Duration) -> ServeReport {
    let dir = std::env::temp_dir().join(format!("fedfreq-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench store dir");
    let (snap, pool) = prepare_store(&dir, 512);
    let cases = [("serial_1", 1usize), ("burst_8", 8), ("burst_32", 32)]
        .iter()
        .map(|&(name, clients)| run_case(&dir, name, clients, budget, &pool))
        .collect();
    let overload = run_overload_case(&dir, budget, &pool);
    let trace = run_trace_case(&dir, 256, &pool);
    let report = ServeReport {
        budget_ms: budget.as_millis() as u64,
        obs_dim: snap.obs_dim(),
        action_dim: snap.action_dim(),
        cases,
        overload: Some(overload),
        trace: Some(trace),
    };
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// Returns the failures of `measured` against `baseline` (empty = pass).
pub fn check(baseline: &ServeReport, measured: &ServeReport) -> Vec<String> {
    let mut failures = Vec::new();
    for b in &baseline.cases {
        let Some(m) = measured.cases.iter().find(|m| m.name == b.name) else {
            failures.push(format!("case {} missing from measurement", b.name));
            continue;
        };
        let min_rps = b.throughput_rps * MIN_THROUGHPUT_FRAC;
        if m.throughput_rps < min_rps {
            failures.push(format!(
                "{}: throughput {:.0} rps fell below {:.0} rps (baseline {:.0} x {})",
                b.name, m.throughput_rps, min_rps, b.throughput_rps, MIN_THROUGHPUT_FRAC
            ));
        }
        let p99_allowed = (b.p99_us * MAX_P99_GROWTH).max(P99_FLOOR_US);
        if m.p99_us > p99_allowed {
            failures.push(format!(
                "{}: p99 {:.0} us exceeded {:.0} us (baseline {:.0} us x {MAX_P99_GROWTH}, \
                 floor {P99_FLOOR_US} us)",
                b.name, m.p99_us, p99_allowed, b.p99_us
            ));
        }
    }
    if let Some(b) = &baseline.overload {
        match &measured.overload {
            None => failures.push("overload case missing from measurement".to_string()),
            Some(m) => {
                let min_rps = b.goodput_rps * MIN_THROUGHPUT_FRAC;
                if m.goodput_rps < min_rps {
                    failures.push(format!(
                        "overload: goodput {:.0} rps fell below {:.0} rps (baseline {:.0} x {})",
                        m.goodput_rps, min_rps, b.goodput_rps, MIN_THROUGHPUT_FRAC
                    ));
                }
                if m.transport_failures > 0 {
                    failures.push(format!(
                        "overload: {} unstructured failures — overload must shed with \
                         structured errors, never break transport",
                        m.transport_failures
                    ));
                }
                if m.shed == 0 {
                    failures.push(
                        "overload: offered load past capacity shed nothing — the bounded \
                         admission queue is not shedding"
                            .to_string(),
                    );
                }
                let p99_allowed = (b.p99_accepted_us * MAX_P99_GROWTH).max(P99_FLOOR_US);
                if m.p99_accepted_us > p99_allowed {
                    failures.push(format!(
                        "overload: p99-of-accepted {:.0} us exceeded {:.0} us \
                         (baseline {:.0} us x {MAX_P99_GROWTH}, floor {P99_FLOOR_US} us)",
                        m.p99_accepted_us, p99_allowed, b.p99_accepted_us
                    ));
                }
            }
        }
    }
    failures
}

/// Prints a report as a fixed-width table.
pub fn print_report(report: &ServeReport) {
    println!(
        "\nserve_bench: obs_dim {}, {} devices, {} ms per case",
        report.obs_dim, report.action_dim, report.budget_ms
    );
    println!(
        "{:<10} {:>8} {:>9} {:>11} {:>10} {:>10} {:>10} {:>10}",
        "case", "clients", "requests", "rps", "p50 us", "p99 us", "p999 us", "max batch"
    );
    for c in &report.cases {
        println!(
            "{:<10} {:>8} {:>9} {:>11.0} {:>10.1} {:>10.1} {:>10.1} {:>10}",
            c.name,
            c.clients,
            c.requests,
            c.throughput_rps,
            c.p50_us,
            c.p99_us,
            c.p999_us,
            c.max_batch_observed
        );
    }
    if let Some(o) = &report.overload {
        println!(
            "overload   {:>8} offered {:>7} accepted {:>7} shed {:>7} failed {:>3} | \
             goodput {:>7.0} rps, shed rate {:>5.1}%, p99-of-accepted {:>8.1} us",
            o.clients,
            o.offered,
            o.accepted,
            o.shed,
            o.transport_failures,
            o.goodput_rps,
            o.shed_rate * 100.0,
            o.p99_accepted_us
        );
        if let (Some(adm), Some(q)) = (o.shed_admission, o.shed_queue) {
            println!(
                "           shed by stage: admission {adm} (queue full / draining), \
                 queue_wait {q} (deadline expired in queue)"
            );
        }
    }
    if let Some(t) = &report.trace {
        println!("\n{}", fl_obs::trace::render_attribution(t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(name: &str, rps: f64, p99: f64) -> ServeCase {
        ServeCase {
            name: name.to_string(),
            clients: 1,
            requests: 100,
            throughput_rps: rps,
            p50_us: p99 / 2.0,
            p99_us: p99,
            p999_us: p99 * 2.0,
            max_batch_observed: 1,
        }
    }

    fn report(cases: Vec<ServeCase>) -> ServeReport {
        ServeReport {
            budget_ms: 100,
            obs_dim: 27,
            action_dim: 3,
            cases,
            overload: None,
            trace: None,
        }
    }

    fn overload(goodput: f64, shed: u64, failed: u64, p99: f64) -> OverloadCase {
        let accepted = 1_000u64;
        OverloadCase {
            clients: 16,
            offered: accepted + shed + failed,
            accepted,
            shed,
            transport_failures: failed,
            goodput_rps: goodput,
            shed_rate: shed as f64 / (accepted + shed + failed) as f64,
            p99_accepted_us: p99,
            shed_admission: None,
            shed_queue: None,
        }
    }

    #[test]
    fn check_passes_within_margins() {
        let base = report(vec![case("serial_1", 10_000.0, 300.0)]);
        // 4x slower and 8x latency growth under the floor still passes.
        let measured = report(vec![case("serial_1", 2_500.0, 2_400.0)]);
        assert!(check(&base, &measured).is_empty());
    }

    #[test]
    fn check_flags_throughput_collapse_and_p99_blowup() {
        let base = report(vec![case("serial_1", 10_000.0, 1_000.0)]);
        let slow = report(vec![case("serial_1", 2_000.0, 1_000.0)]);
        assert_eq!(check(&base, &slow).len(), 1);
        let laggy = report(vec![case("serial_1", 9_000.0, 9_000.0)]);
        assert_eq!(check(&base, &laggy).len(), 1);
        let missing = report(vec![]);
        assert_eq!(check(&base, &missing).len(), 1);
    }

    #[test]
    fn overload_gate_checks_goodput_structure_and_p99() {
        let mut base = report(vec![]);
        base.overload = Some(overload(2_000.0, 5_000, 0, 7_000.0));

        let mut ok = report(vec![]);
        ok.overload = Some(overload(1_000.0, 3_000, 0, 8_000.0));
        assert!(check(&base, &ok).is_empty());

        // Goodput collapse, unstructured failures, no shedding, and a
        // p99-of-accepted blowup each fail independently.
        let mut bad = report(vec![]);
        bad.overload = Some(overload(100.0, 0, 7, 7_000.0 * 9.0));
        let failures = check(&base, &bad);
        assert_eq!(failures.len(), 4, "{failures:?}");

        // A measurement missing the overload case entirely fails too.
        let missing = report(vec![]);
        assert_eq!(check(&base, &missing).len(), 1);

        // ...but an old baseline without the case gates nothing new.
        assert!(check(&report(vec![]), &missing).is_empty());
    }

    #[test]
    fn p99_floor_absorbs_small_baselines() {
        // Baseline p99 of 100 us: 8x would be 800 us, but the 5 ms floor
        // applies, so 4 ms passes.
        let base = report(vec![case("serial_1", 10_000.0, 100.0)]);
        let measured = report(vec![case("serial_1", 10_000.0, 4_000.0)]);
        assert!(check(&base, &measured).is_empty());
    }
}
