//! Criterion micro-benchmarks for the performance-critical kernels:
//! matrix multiply, environment stepping, PPO updates, trace generation,
//! the frequency solver, and a FedAvg round. These guard the simulator's
//! throughput (the offline DRL training loop of Algorithm 1 runs millions
//! of environment steps).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fl_bench::Scenario;
use fl_ctrl::{optimize_frequencies, EnvConfig, FlFreqEnv, SolverParams};
use fl_learn::{data, FedAvg, FedAvgConfig, LocalTrainer};
use fl_nn::Matrix;
use fl_rl::{Environment, PpoAgent, PpoConfig, Transition};
use fl_sim::DeviceSampler;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 128, 256] {
        let a = Matrix::from_fn(n, n, |r, cc| ((r * 31 + cc * 17) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(n, n, |r, cc| ((r * 7 + cc * 3) % 11) as f64 - 5.0);
        group.bench_function(format!("{n}x{n}"), |bench| {
            bench.iter(|| black_box(a.matmul(&b).unwrap()))
        });
    }
    group.finish();
}

fn bench_env_step(c: &mut Criterion) {
    let scenario = Scenario::testbed();
    let sys = scenario.build();
    let mut env = FlFreqEnv::new(sys, EnvConfig::default()).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    env.reset(&mut rng).unwrap();
    c.bench_function("env_step_n3", |b| {
        b.iter(|| {
            let step = env.step(black_box(&[0.1, -0.1, 0.0])).unwrap();
            if step.done {
                env.reset(&mut rng).unwrap();
            }
            black_box(step.reward)
        })
    });
}

fn bench_ppo_update(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let config = PpoConfig {
        hidden: vec![64, 64],
        buffer_capacity: 256,
        minibatch_size: 64,
        epochs: 4,
        target_kl: None,
        ..PpoConfig::default()
    };
    let obs_dim = 27;
    let action_dim = 3;
    let mut agent = PpoAgent::new(obs_dim, action_dim, config, &mut rng).unwrap();
    let mut buffer = agent.make_buffer().unwrap();
    while !buffer.is_full() {
        let obs: Vec<f64> = (0..obs_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let out = agent.act(&obs, &mut rng).unwrap();
        buffer
            .push(Transition {
                obs: out.norm_obs,
                action: out.action,
                log_prob: out.log_prob,
                reward: rng.gen_range(-1.0..0.0),
                value: out.value,
                done: false,
            })
            .unwrap();
    }
    c.bench_function("ppo_update_256x4", |b| {
        b.iter_batched(
            || (agent.clone(), ChaCha8Rng::seed_from_u64(3)),
            |(mut a, mut r)| black_box(a.update(&buffer, 0.0, &mut r).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_trace_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_gen");
    for profile in [
        fl_net::synth::Profile::Walking4G,
        fl_net::synth::Profile::BusHsdpa,
    ] {
        group.bench_function(format!("{profile:?}_3600s"), |b| {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            b.iter(|| black_box(profile.generate(3600, 1.0, &mut rng).unwrap()))
        });
    }
    group.finish();
}

fn bench_freq_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("freq_solver");
    for &n in &[3usize, 50] {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let devices = DeviceSampler::default().sample_fleet(&vec![0; n], &mut rng);
        let bw: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..8.0)).collect();
        let params = SolverParams {
            tau: 1,
            model_size_mb: 10.0,
            lambda: 0.5,
            min_freq_frac: 0.1,
        };
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| black_box(optimize_frequencies(&devices, &params, &bw).unwrap()))
        });
    }
    group.finish();
}

fn bench_fedavg_round(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let dataset = data::gaussian_blobs(600, 2, 5.0, &mut rng).unwrap();
    let shards = data::split_non_iid(&dataset, 3, 0.3, &mut rng).unwrap();
    let model = LocalTrainer::default_model(2, &mut rng).unwrap();
    let fed = FedAvg::new(model, FedAvgConfig::default()).unwrap();
    c.bench_function("fedavg_round_3x200", |b| {
        b.iter_batched(
            || (fed.clone(), ChaCha8Rng::seed_from_u64(7)),
            |(mut f, mut r)| black_box(f.round(&shards, &mut r).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_transfer_time(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let trace = fl_net::synth::Profile::Walking4G
        .generate(3600, 1.0, &mut rng)
        .unwrap()
        .cyclic();
    c.bench_function("transfer_time_10mb", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t = (t + 13.7) % 3000.0;
            black_box(trace.transfer_time(t, 10.0).unwrap())
        })
    });
}

/// The fl-obs contract is "disabled mode costs nothing": every hot-path
/// instrumentation point (counter inc, span guard, histogram observe,
/// `is_enabled` gate before an emit) must sit within measurement noise of
/// the uninstrumented loop. `env_step_n3` above is the integrated check —
/// the environment carries a default disabled recorder — this group
/// isolates each primitive. A manual ns/op estimate of the same
/// primitives lands in `results/recorder_overhead.json` so regressions
/// show up in the bench JSON diff, not just in criterion's HTML.
fn bench_recorder_overhead(c: &mut Criterion) {
    // A dependency chain the optimizer cannot elide, shared by every
    // variant so the instrumentation cost is the only difference.
    #[inline(always)]
    fn lcg(x: u64) -> u64 {
        x.wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407)
    }

    let off = fl_obs::Recorder::disabled();
    let on = fl_obs::Recorder::in_memory();
    let ctr_off = off.counter("hot");
    let ctr_on = on.counter("hot");
    let hist_off = off.histogram("hot_h", &[0.1, 1.0, 10.0]);

    let mut group = c.benchmark_group("recorder_overhead");
    group.bench_function("baseline_loop", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = lcg(x);
            black_box(x)
        })
    });
    group.bench_function("disabled_counter_inc", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = lcg(x);
            ctr_off.inc();
            black_box(x)
        })
    });
    group.bench_function("disabled_histogram_observe", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = lcg(x);
            hist_off.observe((x >> 32) as f64 * 1e-9);
            black_box(x)
        })
    });
    group.bench_function("disabled_span", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = lcg(x);
            let _s = off.span("hot");
            black_box(x)
        })
    });
    group.bench_function("disabled_emit_gate", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = lcg(x);
            if off.is_enabled() {
                off.emit(fl_obs::Event::phys("never"));
            }
            black_box(x)
        })
    });
    // Enabled counter for contrast: the price actually paid when `--obs`
    // is on (one relaxed atomic add).
    group.bench_function("enabled_counter_inc", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = lcg(x);
            ctr_on.inc();
            black_box(x)
        })
    });
    group.finish();

    // Coarse manual estimate (same primitives, 10M iterations) for the
    // machine-readable dump; criterion keeps the rigorous statistics.
    let ns_per_op = |f: &mut dyn FnMut()| {
        const N: u64 = 10_000_000;
        let t0 = std::time::Instant::now();
        for _ in 0..N {
            f();
        }
        t0.elapsed().as_nanos() as f64 / N as f64
    };
    let mut x = 1u64;
    let baseline = ns_per_op(&mut || {
        x = lcg(x);
        black_box(x);
    });
    let counter = ns_per_op(&mut || {
        x = lcg(x);
        ctr_off.inc();
        black_box(x);
    });
    let span = ns_per_op(&mut || {
        x = lcg(x);
        let _s = off.span("hot");
        black_box(x);
    });
    fl_bench::dump_json(
        "recorder_overhead.json",
        &serde_json::json!({
            "iters": 10_000_000u64,
            "baseline_ns": baseline,
            "disabled_counter_ns": counter,
            "disabled_span_ns": span,
            "counter_overhead_ns": counter - baseline,
            "span_overhead_ns": span - baseline,
        }),
    );
}

criterion_group!(
    benches,
    bench_matmul,
    bench_env_step,
    bench_ppo_update,
    bench_trace_gen,
    bench_freq_solver,
    bench_fedavg_round,
    bench_transfer_time,
    bench_recorder_overhead,
);
criterion_main!(benches);
