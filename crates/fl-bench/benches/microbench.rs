//! Criterion micro-benchmarks for the performance-critical kernels:
//! matrix multiply, environment stepping, PPO updates, trace generation,
//! the frequency solver, and a FedAvg round. These guard the simulator's
//! throughput (the offline DRL training loop of Algorithm 1 runs millions
//! of environment steps).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fl_bench::Scenario;
use fl_ctrl::{optimize_frequencies, EnvConfig, FlFreqEnv, SolverParams};
use fl_learn::{data, FedAvg, FedAvgConfig, LocalTrainer};
use fl_nn::Matrix;
use fl_rl::{Environment, PpoAgent, PpoConfig, Transition};
use fl_sim::DeviceSampler;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 128, 256] {
        let a = Matrix::from_fn(n, n, |r, cc| ((r * 31 + cc * 17) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(n, n, |r, cc| ((r * 7 + cc * 3) % 11) as f64 - 5.0);
        group.bench_function(format!("{n}x{n}"), |bench| {
            bench.iter(|| black_box(a.matmul(&b).unwrap()))
        });
    }
    group.finish();
}

fn bench_env_step(c: &mut Criterion) {
    let scenario = Scenario::testbed();
    let sys = scenario.build();
    let mut env = FlFreqEnv::new(sys, EnvConfig::default()).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    env.reset(&mut rng).unwrap();
    c.bench_function("env_step_n3", |b| {
        b.iter(|| {
            let step = env.step(black_box(&[0.1, -0.1, 0.0])).unwrap();
            if step.done {
                env.reset(&mut rng).unwrap();
            }
            black_box(step.reward)
        })
    });
}

fn bench_ppo_update(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let config = PpoConfig {
        hidden: vec![64, 64],
        buffer_capacity: 256,
        minibatch_size: 64,
        epochs: 4,
        target_kl: None,
        ..PpoConfig::default()
    };
    let obs_dim = 27;
    let action_dim = 3;
    let mut agent = PpoAgent::new(obs_dim, action_dim, config, &mut rng).unwrap();
    let mut buffer = agent.make_buffer().unwrap();
    while !buffer.is_full() {
        let obs: Vec<f64> = (0..obs_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let out = agent.act(&obs, &mut rng).unwrap();
        buffer
            .push(Transition {
                obs: out.norm_obs,
                action: out.action,
                log_prob: out.log_prob,
                reward: rng.gen_range(-1.0..0.0),
                value: out.value,
                done: false,
            })
            .unwrap();
    }
    c.bench_function("ppo_update_256x4", |b| {
        b.iter_batched(
            || (agent.clone(), ChaCha8Rng::seed_from_u64(3)),
            |(mut a, mut r)| black_box(a.update(&buffer, 0.0, &mut r).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_trace_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_gen");
    for profile in [
        fl_net::synth::Profile::Walking4G,
        fl_net::synth::Profile::BusHsdpa,
    ] {
        group.bench_function(format!("{profile:?}_3600s"), |b| {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            b.iter(|| black_box(profile.generate(3600, 1.0, &mut rng).unwrap()))
        });
    }
    group.finish();
}

fn bench_freq_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("freq_solver");
    for &n in &[3usize, 50] {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let devices = DeviceSampler::default().sample_fleet(&vec![0; n], &mut rng);
        let bw: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..8.0)).collect();
        let params = SolverParams {
            tau: 1,
            model_size_mb: 10.0,
            lambda: 0.5,
            min_freq_frac: 0.1,
        };
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| black_box(optimize_frequencies(&devices, &params, &bw).unwrap()))
        });
    }
    group.finish();
}

fn bench_fedavg_round(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let dataset = data::gaussian_blobs(600, 2, 5.0, &mut rng).unwrap();
    let shards = data::split_non_iid(&dataset, 3, 0.3, &mut rng).unwrap();
    let model = LocalTrainer::default_model(2, &mut rng).unwrap();
    let fed = FedAvg::new(model, FedAvgConfig::default()).unwrap();
    c.bench_function("fedavg_round_3x200", |b| {
        b.iter_batched(
            || (fed.clone(), ChaCha8Rng::seed_from_u64(7)),
            |(mut f, mut r)| black_box(f.round(&shards, &mut r).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_transfer_time(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let trace = fl_net::synth::Profile::Walking4G
        .generate(3600, 1.0, &mut rng)
        .unwrap()
        .cyclic();
    c.bench_function("transfer_time_10mb", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t = (t + 13.7) % 3000.0;
            black_box(trace.transfer_time(t, 10.0).unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_env_step,
    bench_ppo_update,
    bench_trace_gen,
    bench_freq_solver,
    bench_fedavg_round,
    bench_transfer_time,
);
criterion_main!(benches);
