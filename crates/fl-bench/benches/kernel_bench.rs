//! Differential kernel benchmark: every case from
//! `fl_bench::kernel_perf::ops` timed under both kernel families.
//!
//! Running `cargo bench -p fl-bench --bench kernel_bench` prints the
//! criterion lines, then regenerates `results/kernel_bench.json` — the
//! committed baseline the `bench_check` binary gates CI against. Under
//! `cargo test` (which passes `--test`) each case runs once as a smoke test
//! and the baseline is left untouched.

use criterion::{criterion_group, criterion_main, Criterion};
use fl_bench::kernel_perf;
use fl_nn::KernelKind;
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    for mut op in kernel_perf::ops() {
        let name = op.name.clone();
        group.bench_function(format!("{name}_blocked"), |b| {
            b.iter(|| op.run(KernelKind::Blocked))
        });
        group.bench_function(format!("{name}_naive"), |b| {
            b.iter(|| op.run(KernelKind::Naive))
        });
    }
    group.finish();

    // The machine-readable sweep backing the committed baseline. Skipped in
    // test mode: a once-through smoke run would overwrite real numbers with
    // garbage.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let report = kernel_perf::measure(Duration::from_millis(200));
    kernel_perf::print_report(&report);
    fl_bench::dump_json("kernel_bench.json", &serde_json::to_value(&report));
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
