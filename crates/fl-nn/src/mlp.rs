//! Multi-layer perceptron built from [`Dense`] layers.

use crate::{Activation, Dense, Init, Matrix, NnError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A feed-forward network: a stack of [`Dense`] layers.
///
/// Construction fixes the layer sizes; hidden layers share one activation
/// and the output layer gets its own (typically [`Activation::Identity`] for
/// value heads and Gaussian policy means).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP with the given layer `sizes` (input, hidden..., output),
    /// using Xavier initialization for hidden layers and a down-scaled final
    /// layer — the standard recipe for stable early PPO updates.
    ///
    /// Panics if `sizes` has fewer than two entries; use [`Mlp::try_new`]
    /// for a fallible variant.
    pub fn new(
        sizes: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        Self::try_new(sizes, hidden_activation, output_activation, rng)
            .expect("Mlp::new requires at least [in, out] sizes with nonzero dims")
    }

    /// Fallible constructor; see [`Mlp::new`].
    pub fn try_new(
        sizes: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if sizes.len() < 2 {
            return Err(NnError::InvalidArgument(
                "an MLP needs at least an input and an output size".to_string(),
            ));
        }
        if sizes.contains(&0) {
            return Err(NnError::InvalidArgument(
                "layer sizes must be nonzero".to_string(),
            ));
        }
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let last = i == sizes.len() - 2;
            let act = if last {
                output_activation
            } else {
                hidden_activation
            };
            let init = if last {
                // Small output init keeps initial policy outputs near zero.
                Init::ScaledXavier { gain: 0.1 }
            } else {
                Init::XavierUniform
            };
            layers.push(Dense::new(sizes[i], sizes[i + 1], act, init, rng));
        }
        Ok(Mlp { layers })
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map(|l| l.in_dim()).unwrap_or(0)
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map(|l| l.out_dim()).unwrap_or(0)
    }

    /// The stacked layers (read-only).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Dense::num_params).sum()
    }

    /// Training forward pass; caches per-layer activations for `backward`.
    /// Panics only on internal shape corruption (constructor-validated).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.try_forward(x)
            .expect("MLP forward failed: input width must equal in_dim")
    }

    /// Fallible training forward pass. The input is cloned once into the
    /// first layer's cache; every hidden activation is moved, not cloned,
    /// into the next layer via [`Dense::forward_owned`] (the fused
    /// matmul-plus-bias path).
    pub fn try_forward(&mut self, x: &Matrix) -> Result<Matrix> {
        let (first, rest) = self
            .layers
            .split_first_mut()
            .ok_or_else(|| NnError::InvalidArgument("forward on an empty MLP".to_string()))?;
        let mut h = first.forward(x)?;
        for layer in rest {
            h = layer.forward_owned(h)?;
        }
        Ok(h)
    }

    /// Stateless inference pass (no gradient caches written). Safe to call
    /// from multiple threads on `&self`.
    pub fn infer(&self, x: &Matrix) -> Result<Matrix> {
        let (first, rest) = self
            .layers
            .split_first()
            .ok_or_else(|| NnError::InvalidArgument("infer on an empty MLP".to_string()))?;
        let mut h = first.infer(x)?;
        for layer in rest {
            h = layer.infer(&h)?;
        }
        Ok(h)
    }

    /// Backpropagates `dl/dy` through the cached batch, accumulating
    /// gradients in every layer, and returns `dl/dx`.
    pub fn backward(&mut self, dloss_dout: &Matrix) -> Result<Matrix> {
        let mut d = dloss_dout.clone();
        for layer in self.layers.iter_mut().rev() {
            d = layer.backward(&d)?;
        }
        Ok(d)
    }

    /// Clears accumulated gradients in every layer.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Visits every `(param, grad)` pair in a stable order (layer by layer).
    pub fn visit_params(&mut self, mut f: impl FnMut(&mut f64, f64)) {
        for layer in &mut self.layers {
            layer.visit_params(&mut f);
        }
    }

    /// Flattens all parameters into a vector (stable order).
    pub fn export_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        for layer in &self.layers {
            layer.export_params(&mut out);
        }
        out
    }

    /// Restores parameters from [`Mlp::export_params`] output.
    pub fn import_params(&mut self, params: &[f64]) -> Result<()> {
        if params.len() != self.num_params() {
            return Err(NnError::InvalidArgument(format!(
                "import_params expected {} values, got {}",
                self.num_params(),
                params.len()
            )));
        }
        let mut offset = 0;
        for layer in &mut self.layers {
            offset += layer.import_params(&params[offset..])?;
        }
        Ok(())
    }

    /// Global gradient L2 norm across all layers.
    pub fn grad_norm(&self) -> f64 {
        self.layers
            .iter()
            .map(Dense::grad_sq_sum)
            .sum::<f64>()
            .sqrt()
    }

    /// Clips gradients to a maximum global L2 norm. Returns the pre-clip
    /// norm. Standard PPO stabilization.
    pub fn clip_grad_norm(&mut self, max_norm: f64) -> f64 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for layer in &mut self.layers {
                layer.scale_grads(scale);
            }
        }
        norm
    }

    /// Interpolates parameters toward `other`: `self = (1-tau) self + tau other`.
    /// Used for soft target-network style sync and FedAvg mixing tests.
    pub fn lerp_from(&mut self, other: &Mlp, tau: f64) -> Result<()> {
        let theirs = other.export_params();
        if theirs.len() != self.num_params() {
            return Err(NnError::InvalidArgument(
                "lerp_from requires identical architectures".to_string(),
            ));
        }
        let mut i = 0;
        self.visit_params(|p, _| {
            *p = (1.0 - tau) * *p + tau * theirs[i];
            i += 1;
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn net() -> Mlp {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        Mlp::new(
            &[3, 8, 8, 2],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        )
    }

    #[test]
    fn constructor_validates() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(Mlp::try_new(&[3], Activation::Tanh, Activation::Identity, &mut rng).is_err());
        assert!(Mlp::try_new(&[3, 0], Activation::Tanh, Activation::Identity, &mut rng).is_err());
    }

    #[test]
    fn dims_and_param_count() {
        let n = net();
        assert_eq!(n.in_dim(), 3);
        assert_eq!(n.out_dim(), 2);
        // (3*8+8) + (8*8+8) + (8*2+2) = 32 + 72 + 18 = 122
        assert_eq!(n.num_params(), 122);
        assert_eq!(n.layers().len(), 3);
    }

    #[test]
    fn forward_and_infer_agree() {
        let mut n = net();
        let x = Matrix::from_fn(5, 3, |r, c| (r as f64 - c as f64) * 0.3);
        assert_eq!(n.forward(&x), n.infer(&x).unwrap());
    }

    #[test]
    fn export_import_roundtrip() {
        let n = net();
        let p = n.export_params();
        let mut n2 = net();
        n2.visit_params(|v, _| *v += 0.5);
        n2.import_params(&p).unwrap();
        assert_eq!(n2.export_params(), p);
        assert!(n2.import_params(&p[..10]).is_err());
    }

    #[test]
    fn backward_produces_finite_grads() {
        let mut n = net();
        let x = Matrix::from_fn(4, 3, |r, c| (r + c) as f64 * 0.1);
        let y = n.forward(&x);
        n.zero_grad();
        let d = n
            .backward(&Matrix::filled(y.rows(), y.cols(), 1.0))
            .unwrap();
        assert_eq!(d.shape(), (4, 3));
        assert!(n.grad_norm().is_finite());
        assert!(n.grad_norm() > 0.0);
    }

    #[test]
    fn clip_grad_norm_enforced() {
        let mut n = net();
        let x = Matrix::filled(8, 3, 1.0);
        let y = n.forward(&x);
        n.zero_grad();
        n.backward(&Matrix::filled(y.rows(), y.cols(), 100.0))
            .unwrap();
        let pre = n.clip_grad_norm(0.5);
        assert!(pre > 0.5);
        assert!((n.grad_norm() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lerp_full_copies() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let a = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let mut b = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Identity, &mut rng);
        b.lerp_from(&a, 1.0).unwrap();
        assert_eq!(a.export_params(), b.export_params());
    }

    #[test]
    fn lerp_rejects_architecture_mismatch() {
        let mut rng = ChaCha8Rng::seed_from_u64(78);
        let a = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let mut b = Mlp::new(&[2, 5, 1], Activation::Tanh, Activation::Identity, &mut rng);
        assert!(b.lerp_from(&a, 0.5).is_err());
    }

    #[test]
    fn deterministic_construction() {
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        let a = Mlp::new(&[4, 6, 2], Activation::Relu, Activation::Identity, &mut r1);
        let b = Mlp::new(&[4, 6, 2], Activation::Relu, Activation::Identity, &mut r2);
        assert_eq!(a.export_params(), b.export_params());
    }
}
