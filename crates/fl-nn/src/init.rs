//! Weight initialization schemes.

use crate::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Weight initialization scheme for dense layers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Init {
    /// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    /// The right default for tanh/sigmoid networks (our PPO nets).
    XavierUniform,
    /// He/Kaiming normal: `N(0, sqrt(2 / fan_in))`, the default for ReLU.
    HeNormal,
    /// Uniform in a fixed interval.
    Uniform {
        /// Lower bound (inclusive).
        low: f64,
        /// Upper bound (exclusive).
        high: f64,
    },
    /// Every weight set to the same constant (mostly for tests).
    Constant(f64),
    /// Orthogonal-ish scaled Xavier used for small policy output layers:
    /// Xavier uniform scaled down by `gain` so initial actions stay near the
    /// distribution center.
    ScaledXavier {
        /// Multiplier applied to the Xavier bound.
        gain: f64,
    },
}

impl Init {
    /// Samples a `fan_in x fan_out` weight matrix.
    pub fn sample(self, fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
        match self {
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
                Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..a))
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f64).sqrt();
                Matrix::from_fn(fan_in, fan_out, |_, _| std * gaussian(rng))
            }
            Init::Uniform { low, high } => {
                Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(low..high))
            }
            Init::Constant(v) => Matrix::filled(fan_in, fan_out, v),
            Init::ScaledXavier { gain } => {
                let a = gain * (6.0 / (fan_in + fan_out) as f64).sqrt();
                Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..a))
            }
        }
    }
}

/// Standard normal sample via Box–Muller (avoids a rand_distr dependency).
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    // u1 in (0, 1] to keep ln() finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn xavier_within_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let w = Init::XavierUniform.sample(10, 20, &mut rng);
        let a = (6.0 / 30.0f64).sqrt();
        assert!(w.data().iter().all(|&v| v > -a && v < a));
        assert_eq!(w.shape(), (10, 20));
    }

    #[test]
    fn he_normal_std_roughly_right() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let w = Init::HeNormal.sample(100, 100, &mut rng);
        let mean = w.mean();
        let var = w
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (w.data().len() - 1) as f64;
        let expected = 2.0 / 100.0;
        assert!((var - expected).abs() < expected * 0.2, "var={var}");
    }

    #[test]
    fn constant_fills() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let w = Init::Constant(0.25).sample(2, 3, &mut rng);
        assert!(w.data().iter().all(|&v| v == 0.25));
    }

    #[test]
    fn scaled_xavier_smaller_than_xavier() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let w = Init::ScaledXavier { gain: 0.01 }.sample(50, 50, &mut rng);
        assert!(w.max_abs() <= 0.01 * (6.0 / 100.0f64).sqrt());
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r1 = ChaCha8Rng::seed_from_u64(42);
        let mut r2 = ChaCha8Rng::seed_from_u64(42);
        let w1 = Init::XavierUniform.sample(4, 4, &mut r1);
        let w2 = Init::XavierUniform.sample(4, 4, &mut r2);
        assert_eq!(w1, w2);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }
}
