//! A fully-connected layer with manual backpropagation.

use crate::{Activation, Init, Matrix, NnError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense (fully-connected) layer: `y = act(x W + b)`.
///
/// `W` is `in_dim x out_dim`, inputs are batched row-wise (`batch x in_dim`).
/// Gradients accumulate into `grad_w` / `grad_b` until [`Dense::zero_grad`];
/// this accumulate-then-step contract is what lets the PPO loss combine
/// several objective terms (surrogate + entropy) before one optimizer step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    w: Matrix,
    b: Vec<f64>,
    activation: Activation,
    #[serde(skip)]
    grad_w: Option<Matrix>,
    #[serde(skip)]
    grad_b: Option<Vec<f64>>,
    /// Cached input of the last `forward` call (needed by `backward`).
    #[serde(skip)]
    cached_input: Option<Matrix>,
    /// Cached pre-activation of the last `forward` call.
    #[serde(skip)]
    cached_pre: Option<Matrix>,
}

impl Dense {
    /// Creates a layer with `init`-sampled weights and zero biases.
    pub fn new(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        init: Init,
        rng: &mut impl Rng,
    ) -> Self {
        Dense {
            w: init.sample(in_dim, out_dim, rng),
            b: vec![0.0; out_dim],
            activation,
            grad_w: None,
            grad_b: None,
            cached_input: None,
            cached_pre: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// The layer's activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable view of the weights.
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Immutable view of the biases.
    pub fn biases(&self) -> &[f64] {
        &self.b
    }

    /// Number of trainable parameters (`in*out + out`).
    pub fn num_params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Forward pass that caches activations for a later [`Dense::backward`].
    pub fn forward(&mut self, x: &Matrix) -> Result<Matrix> {
        self.forward_owned(x.clone())
    }

    /// [`Dense::forward`] taking the input by value: the batch is cached
    /// without an extra clone. This is the path [`crate::Mlp`] threads its
    /// hidden activations through.
    pub fn forward_owned(&mut self, x: Matrix) -> Result<Matrix> {
        let pre = x.matmul_add_bias(&self.w, &self.b)?;
        let out = pre.map(|z| self.activation.apply(z));
        self.cached_input = Some(x);
        self.cached_pre = Some(pre);
        Ok(out)
    }

    /// Stateless forward pass for inference (no caches touched).
    pub fn infer(&self, x: &Matrix) -> Result<Matrix> {
        let mut pre = x.matmul_add_bias(&self.w, &self.b)?;
        pre.map_inplace(|z| self.activation.apply(z));
        Ok(pre)
    }

    /// Backward pass: consumes `dl/dy` for the cached batch, accumulates
    /// `dl/dW`, `dl/db`, and returns `dl/dx`.
    ///
    /// Returns an error when called before `forward` or with a gradient whose
    /// shape does not match the cached batch.
    pub fn backward(&mut self, dy: &Matrix) -> Result<Matrix> {
        let x = self.cached_input.as_ref().ok_or_else(|| {
            NnError::InvalidArgument("backward called before forward".to_string())
        })?;
        let pre = self
            .cached_pre
            .as_ref()
            .expect("cached_pre set whenever cached_input is");
        if dy.shape() != pre.shape() {
            return Err(NnError::ShapeMismatch {
                op: "dense backward",
                lhs: pre.shape(),
                rhs: dy.shape(),
            });
        }
        // dz = dy (elementwise*) act'(pre)
        let act = self.activation;
        let mut dz = dy.clone();
        for (d, &z) in dz.data_mut().iter_mut().zip(pre.data()) {
            *d *= act.derivative(z);
        }
        // dW += x^T dz ; db += column sums of dz ; dx = dz W^T
        let dw = x.matmul_tn(&dz)?;
        match &mut self.grad_w {
            Some(g) => g.axpy(1.0, &dw)?,
            None => self.grad_w = Some(dw),
        }
        let db = dz.col_sums();
        match &mut self.grad_b {
            Some(g) => {
                for (a, b) in g.iter_mut().zip(&db) {
                    *a += b;
                }
            }
            None => self.grad_b = Some(db),
        }
        dz.matmul_nt(&self.w)
    }

    /// Clears accumulated gradients (not the activation caches).
    pub fn zero_grad(&mut self) {
        self.grad_w = None;
        self.grad_b = None;
    }

    /// Visits `(param, grad)` pairs in a stable order: weights row-major,
    /// then biases. Missing gradients visit as `0.0`.
    pub fn visit_params(&mut self, f: &mut impl FnMut(&mut f64, f64)) {
        let zero_w;
        let gw = match &self.grad_w {
            Some(g) => g.data(),
            None => {
                zero_w = vec![0.0; self.w.rows() * self.w.cols()];
                &zero_w[..]
            }
        };
        // `gw` borrows grad_w while we mutate w — safe because they are
        // distinct fields, but the borrow checker needs the clone below when
        // gradients exist. Keep it simple: copy the gradient slices out.
        let gw: Vec<f64> = gw.to_vec();
        for (p, g) in self.w.data_mut().iter_mut().zip(gw) {
            f(p, g);
        }
        let gb: Vec<f64> = match &self.grad_b {
            Some(g) => g.clone(),
            None => vec![0.0; self.b.len()],
        };
        for (p, g) in self.b.iter_mut().zip(gb) {
            f(p, g);
        }
    }

    /// Copies all parameters out in `visit_params` order.
    pub fn export_params(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(self.w.data());
        out.extend_from_slice(&self.b);
    }

    /// Loads parameters from `src` in `visit_params` order, returning how
    /// many values were consumed.
    pub fn import_params(&mut self, src: &[f64]) -> Result<usize> {
        let need = self.num_params();
        if src.len() < need {
            return Err(NnError::InvalidArgument(format!(
                "import_params needs {need} values, got {}",
                src.len()
            )));
        }
        let nw = self.w.rows() * self.w.cols();
        self.w.data_mut().copy_from_slice(&src[..nw]);
        self.b.copy_from_slice(&src[nw..need]);
        Ok(need)
    }

    /// Sum of squared gradient entries (for global-norm clipping).
    pub fn grad_sq_sum(&self) -> f64 {
        let gw = self
            .grad_w
            .as_ref()
            .map(|g| g.data().iter().map(|v| v * v).sum::<f64>())
            .unwrap_or(0.0);
        let gb = self
            .grad_b
            .as_ref()
            .map(|g| g.iter().map(|v| v * v).sum::<f64>())
            .unwrap_or(0.0);
        gw + gb
    }

    /// Scales accumulated gradients in place (for clipping / averaging).
    pub fn scale_grads(&mut self, alpha: f64) {
        if let Some(g) = &mut self.grad_w {
            g.scale_inplace(alpha);
        }
        if let Some(g) = &mut self.grad_b {
            for v in g.iter_mut() {
                *v *= alpha;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn layer(act: Activation) -> Dense {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        Dense::new(3, 2, act, Init::XavierUniform, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let mut l = layer(Activation::Tanh);
        let x = Matrix::zeros(5, 3);
        let y = l.forward(&x).unwrap();
        assert_eq!(y.shape(), (5, 2));
    }

    #[test]
    fn infer_matches_forward() {
        let mut l = layer(Activation::Sigmoid);
        let x = Matrix::from_fn(4, 3, |r, c| (r + c) as f64 * 0.1);
        let y1 = l.forward(&x).unwrap();
        let y2 = l.infer(&x).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut l = layer(Activation::Identity);
        assert!(l.backward(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn backward_shape_mismatch_errors() {
        let mut l = layer(Activation::Identity);
        let x = Matrix::zeros(4, 3);
        l.forward(&x).unwrap();
        assert!(l.backward(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn identity_layer_gradient_exact() {
        // With identity activation and a single example, gradients have a
        // closed form: dW = x^T dy, db = dy, dx = dy W^T.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut l = Dense::new(2, 2, Activation::Identity, Init::XavierUniform, &mut rng);
        let x = Matrix::from_vec(1, 2, vec![1.0, -2.0]).unwrap();
        l.forward(&x).unwrap();
        let dy = Matrix::from_vec(1, 2, vec![0.5, 1.5]).unwrap();
        let dx = l.backward(&dy).unwrap();
        let expected_dx = dy.matmul_nt(l.weights()).unwrap();
        assert_eq!(dx, expected_dx);
        let gw = l.grad_w.as_ref().unwrap();
        assert!((gw.get(0, 0) - 0.5).abs() < 1e-12);
        assert!((gw.get(1, 1) + 3.0).abs() < 1e-12);
        assert_eq!(l.grad_b.as_ref().unwrap(), &vec![0.5, 1.5]);
    }

    #[test]
    fn gradients_accumulate_across_backwards() {
        let mut l = layer(Activation::Identity);
        let x = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64 * 0.1);
        let dy = Matrix::filled(2, 2, 1.0);
        l.forward(&x).unwrap();
        l.backward(&dy).unwrap();
        let g1 = l.grad_sq_sum();
        l.forward(&x).unwrap();
        l.backward(&dy).unwrap();
        let g2 = l.grad_sq_sum();
        // Doubled gradients => 4x squared sum.
        assert!((g2 - 4.0 * g1).abs() < 1e-9 * g1.max(1.0));
        l.zero_grad();
        assert_eq!(l.grad_sq_sum(), 0.0);
    }

    #[test]
    fn export_import_roundtrip() {
        let l = layer(Activation::Tanh);
        let mut saved = Vec::new();
        l.export_params(&mut saved);
        assert_eq!(saved.len(), l.num_params());
        let mut l2 = layer(Activation::Tanh);
        // Perturb, then restore.
        l2.visit_params(&mut |p, _| *p += 1.0);
        let consumed = l2.import_params(&saved).unwrap();
        assert_eq!(consumed, saved.len());
        let mut restored = Vec::new();
        l2.export_params(&mut restored);
        assert_eq!(saved, restored);
    }

    #[test]
    fn import_rejects_short_slice() {
        let mut l = layer(Activation::Tanh);
        assert!(l.import_params(&[0.0]).is_err());
    }

    #[test]
    fn scale_grads_scales() {
        let mut l = layer(Activation::Identity);
        let x = Matrix::filled(1, 3, 1.0);
        l.forward(&x).unwrap();
        l.backward(&Matrix::filled(1, 2, 1.0)).unwrap();
        let before = l.grad_sq_sum();
        l.scale_grads(0.5);
        let after = l.grad_sq_sum();
        assert!((after - 0.25 * before).abs() < 1e-12 * before.max(1.0));
    }
}
