//! Finite-difference gradient verification.
//!
//! Used by the test-suite (and available to downstream crates' tests) to
//! prove that every analytic backward pass in the workspace matches the
//! numerical gradient of its loss.

use crate::{Matrix, Mlp, Result};

/// Outcome of a [`grad_check`] run.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradient.
    pub max_abs_diff: f64,
    /// Largest relative difference (normalized by magnitude sum + 1e-8).
    pub max_rel_diff: f64,
    /// Number of parameters compared.
    pub num_params: usize,
}

impl GradCheckReport {
    /// True when both error measures are below `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_abs_diff < tol || self.max_rel_diff < tol
    }
}

/// Compares the network's analytic gradients against central finite
/// differences of `loss_fn` for every parameter.
///
/// `loss_fn` must be a pure function of the network (and captured data): it
/// is invoked `2 * num_params + 1` times. The analytic gradient is taken
/// from whatever is accumulated after calling `backward_fn`, which should
/// zero grads, forward, and backward exactly once.
pub fn grad_check(
    net: &mut Mlp,
    mut loss_fn: impl FnMut(&mut Mlp) -> f64,
    mut backward_fn: impl FnMut(&mut Mlp),
    eps: f64,
) -> Result<GradCheckReport> {
    // Analytic gradients.
    backward_fn(net);
    let mut analytic = Vec::with_capacity(net.num_params());
    net.visit_params(|_, g| analytic.push(g));

    // Numeric gradients by central differences on the flat parameter vector.
    let base = net.export_params();
    let mut max_abs: f64 = 0.0;
    let mut max_rel: f64 = 0.0;
    for i in 0..base.len() {
        let mut plus = base.clone();
        plus[i] += eps;
        net.import_params(&plus)?;
        let lp = loss_fn(net);

        let mut minus = base.clone();
        minus[i] -= eps;
        net.import_params(&minus)?;
        let lm = loss_fn(net);

        let fd = (lp - lm) / (2.0 * eps);
        let abs = (fd - analytic[i]).abs();
        let rel = abs / (fd.abs() + analytic[i].abs() + 1e-8);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.min(1.0).max(rel);
    }
    net.import_params(&base)?;
    Ok(GradCheckReport {
        max_abs_diff: max_abs,
        max_rel_diff: max_rel,
        num_params: base.len(),
    })
}

/// Convenience: checks the MSE loss of `net` on `(x, y)`.
pub fn grad_check_mse(net: &mut Mlp, x: &Matrix, y: &Matrix, eps: f64) -> Result<GradCheckReport> {
    let xc = x.clone();
    let yc = y.clone();
    let loss_fn = move |n: &mut Mlp| {
        let pred = n.forward(&xc);
        crate::loss::mse(&pred, &yc).expect("shapes fixed").0
    };
    let xb = x.clone();
    let yb = y.clone();
    let backward_fn = move |n: &mut Mlp| {
        let pred = n.forward(&xb);
        let (_, dl) = crate::loss::mse(&pred, &yb).expect("shapes fixed");
        n.zero_grad();
        n.backward(&dl).expect("backward after forward");
    };
    grad_check(net, loss_fn, backward_fn, eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activation;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn data(rng: &mut ChaCha8Rng, n: usize, din: usize, dout: usize) -> (Matrix, Matrix) {
        use rand::Rng;
        let x = Matrix::from_fn(n, din, |_, _| rng.gen_range(-1.0..1.0));
        let y = Matrix::from_fn(n, dout, |_, _| rng.gen_range(-1.0..1.0));
        (x, y)
    }

    #[test]
    fn tanh_network_gradients_correct() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut net = Mlp::new(&[3, 8, 2], Activation::Tanh, Activation::Identity, &mut rng);
        let (x, y) = data(&mut rng, 5, 3, 2);
        let report = grad_check_mse(&mut net, &x, &y, 1e-5).unwrap();
        assert!(report.passes(1e-5), "{report:?}");
        assert_eq!(report.num_params, net.num_params());
    }

    #[test]
    fn sigmoid_network_gradients_correct() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let mut net = Mlp::new(
            &[2, 6, 6, 1],
            Activation::Sigmoid,
            Activation::Identity,
            &mut rng,
        );
        let (x, y) = data(&mut rng, 4, 2, 1);
        let report = grad_check_mse(&mut net, &x, &y, 1e-5).unwrap();
        assert!(report.passes(1e-5), "{report:?}");
    }

    #[test]
    fn softplus_output_gradients_correct() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let mut net = Mlp::new(&[2, 5, 1], Activation::Tanh, Activation::Softplus, &mut rng);
        let (x, y) = data(&mut rng, 4, 2, 1);
        let report = grad_check_mse(&mut net, &x, &y, 1e-5).unwrap();
        assert!(report.passes(1e-5), "{report:?}");
    }

    #[test]
    fn relu_network_gradients_correct_away_from_kinks() {
        // Use a fixed-seed net + data; probability of sitting exactly on a
        // ReLU kink is zero for this seed (verified by the assertion).
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let mut net = Mlp::new(
            &[3, 10, 2],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let (x, y) = data(&mut rng, 6, 3, 2);
        let report = grad_check_mse(&mut net, &x, &y, 1e-6).unwrap();
        assert!(report.passes(1e-4), "{report:?}");
    }

    /// The fused `matmul_add_bias` forward feeds the manual backward pass
    /// (`dW = x^T dz`, `db = Σ dz`, `dx = dz W^T`): a single-layer network
    /// is exactly one fused op plus an activation, so finite differences
    /// over it validate the whole fused forward/backward contract.
    #[test]
    fn fused_matmul_add_bias_backward_matches_fd() {
        for (seed, act) in [(31u64, Activation::Identity), (32, Activation::Tanh)] {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut net = Mlp::new(&[4, 3], act, act, &mut rng);
            let (x, y) = data(&mut rng, 6, 4, 3);
            let report = grad_check_mse(&mut net, &x, &y, 1e-5).unwrap();
            assert!(report.passes(1e-5), "{act:?}: {report:?}");
            assert_eq!(report.num_params, 4 * 3 + 3);
        }
    }

    /// ReLU hidden activations produce exact zeros, which the blocked
    /// kernels must *skip* exactly like the reference (the `a == 0.0` rule
    /// is part of the bit contract). A deep ReLU net grad-checked through
    /// the fused path exercises that rule on every layer boundary.
    #[test]
    fn fused_path_with_exact_zero_activations_gradients_correct() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let mut net = Mlp::new(
            &[3, 12, 12, 2],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let (x, y) = data(&mut rng, 5, 3, 2);
        let report = grad_check_mse(&mut net, &x, &y, 1e-6).unwrap();
        assert!(report.passes(1e-4), "{report:?}");
    }

    /// Analytic gradients must be bit-identical under both kernel
    /// families — backward runs through `matmul_tn`/`matmul_nt`, so this
    /// differentials the gradient path, not just the forward values.
    #[test]
    fn gradients_bit_equal_across_kernel_families() {
        let _guard = crate::kernels::TEST_KERNEL_LOCK.lock().unwrap();
        let before = crate::kernel_kind();
        let grads_under = |kind| {
            crate::set_kernel_kind(kind);
            let mut rng = ChaCha8Rng::seed_from_u64(34);
            let mut net = Mlp::new(
                &[4, 16, 3],
                Activation::Relu,
                Activation::Identity,
                &mut rng,
            );
            let (x, y) = data(&mut rng, 8, 4, 3);
            let pred = net.forward(&x);
            let (_, dl) = crate::loss::mse(&pred, &y).unwrap();
            net.zero_grad();
            net.backward(&dl).unwrap();
            let mut grads = Vec::with_capacity(net.num_params());
            net.visit_params(|_, g| grads.push(g.to_bits()));
            grads
        };
        let blocked = grads_under(crate::KernelKind::Blocked);
        let naive = grads_under(crate::KernelKind::Naive);
        crate::set_kernel_kind(before);
        assert_eq!(blocked, naive);
    }

    #[test]
    fn grad_check_restores_params() {
        let mut rng = ChaCha8Rng::seed_from_u64(25);
        let mut net = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let before = net.export_params();
        let (x, y) = data(&mut rng, 3, 2, 1);
        grad_check_mse(&mut net, &x, &y, 1e-5).unwrap();
        assert_eq!(net.export_params(), before);
    }
}
