//! # fl-nn — minimal dense neural networks for the fedfreq reproduction
//!
//! A self-contained, dependency-light neural-network substrate used by the
//! DRL stack (`fl-rl`) and the federated-learning loop (`fl-learn`). It
//! provides:
//!
//! * [`Matrix`] — a row-major `f64` matrix with cache-friendly and
//!   (above a size threshold) multi-threaded matrix multiplication,
//! * [`Dense`] — a fully-connected layer with manual backpropagation,
//! * [`Mlp`] — a stack of dense layers behind a simple train/infer API,
//! * [`Adam`], [`Sgd`], [`RmsProp`] — optimizers over a flat parameter view,
//! * [`grad_check`](gradcheck::grad_check) — finite-difference gradient
//!   verification used by the test-suite to validate every backward pass.
//!
//! The crate deliberately supports exactly what the paper's PPO agent and
//! FedAvg workloads need (small MLPs, batched forward/backward, Adam) rather
//! than being a general tensor library. Everything is deterministic given a
//! seeded RNG.
//!
//! ## Example
//!
//! ```
//! use fl_nn::{Mlp, Activation, Adam, Optimizer, loss};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! // 2-in, 16-hidden, 1-out regression network.
//! let mut net = Mlp::new(&[2, 16, 1], Activation::Tanh, Activation::Identity, &mut rng);
//! let mut opt = Adam::new(net.num_params(), 1e-2);
//! let x = fl_nn::Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]).unwrap();
//! let y = fl_nn::Matrix::from_vec(4, 1, vec![0., 1., 1., 0.]).unwrap();
//! for _ in 0..200 {
//!     let pred = net.forward(&x);
//!     let (l, dl) = loss::mse(&pred, &y).unwrap();
//!     net.zero_grad();
//!     net.backward(&dl);
//!     opt.step(&mut net);
//!     let _ = l;
//! }
//! ```

// `deny`, not `forbid`: the one sanctioned exception is `kernels::simd`,
// which calls safe `#[target_feature]` monomorphizations of the portable
// matmul body behind runtime CPU-feature detection. No raw pointers, no
// intrinsics — the `unsafe` is exactly the feature-gated calls.
#![deny(unsafe_code)]
// `!(x > 0.0)`-style guards reject NaN along with out-of-range values;
// clippy's suggested inversion (`x <= 0.0`) would silently accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

mod activation;
mod dense;
mod error;
pub mod gradcheck;
mod init;
mod kernels;
pub mod loss;
mod matrix;
mod mlp;
mod optim;

pub use activation::Activation;
pub use dense::Dense;
pub use error::NnError;
pub use init::Init;
pub use kernels::{kernel_kind, naive_kernels_available, set_kernel_kind, KernelKind};
pub use matrix::Matrix;
pub use mlp::Mlp;
pub use optim::{Adam, OptimState, Optimizer, RmsProp, Sgd};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, NnError>;
