//! Row-major `f64` matrix with cache-friendly and parallel multiplication.

use crate::kernels::{self, KernelKind};
use crate::{NnError, Result};
use serde::{Deserialize, Serialize};

/// Element count (`m * n * k`) above which [`Matrix::matmul`] fans out across
/// the shared work-stealing pool. Small PPO-sized matrices stay
/// single-threaded — the pool-round setup costs more than it saves below
/// roughly this many multiply-adds.
const PAR_FLOP_THRESHOLD: usize = 1 << 18;

/// The parallel-dispatch decision: `true` iff a `m x k` by `k x n` product
/// takes the row-split pool path.
///
/// A **pure function of the shape** — deliberately independent of the pool
/// width, core count, and every other physical property of the host — so a
/// matrix exactly at the cutoff picks the same path on every machine and
/// under every `FL_WORKERS`. (The path itself is bit-invariant either way;
/// shape-only dispatch additionally keeps *which code ran* reproducible,
/// which matters when diagnosing perf or a miscompilation.) Requires
/// `m >= 2` because a single output row cannot be split.
fn par_dispatch(m: usize, k: usize, n: usize) -> bool {
    m >= 2 && m.saturating_mul(k).saturating_mul(n) >= PAR_FLOP_THRESHOLD
}

/// A dense row-major matrix of `f64`.
///
/// This is the single numeric container used throughout the workspace: NN
/// weights and activations, policy batches, and FedAvg model parameters all
/// live in `Matrix`. Shapes are validated at construction and every binary
/// operation checks compatibility, returning [`NnError::ShapeMismatch`]
/// rather than panicking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from row-major `data`.
    ///
    /// Returns [`NnError::InvalidArgument`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(NnError::InvalidArgument(format!(
                "data length {} does not match shape {}x{}",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix whose `(r, c)` entry is `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Stacks equal-width rows into an `n x width` matrix — the batched
    /// inference entry point (a decision server assembles concurrent
    /// observations into one forward batch this way).
    ///
    /// Returns [`NnError::InvalidArgument`] when `rows` is empty or the rows
    /// have differing widths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let Some(first) = rows.first() else {
            return Err(NnError::InvalidArgument(
                "from_rows needs at least one row".to_string(),
            ));
        };
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(NnError::InvalidArgument(format!(
                    "row {i} has width {}, expected {cols}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a 1 x n row vector from a slice.
    pub fn row_vector(v: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// Creates an n x 1 column vector from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major data.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Element accessor. Panics on out-of-range indices (debug-friendly; use
    /// in hot loops only with verified bounds).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element setter. Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Returns a new matrix holding rows `[start, end)` of `self`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Matrix> {
        if start > end || end > self.rows {
            return Err(NnError::InvalidArgument(format!(
                "row slice {start}..{end} out of bounds for {} rows",
                self.rows
            )));
        }
        Ok(Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        })
    }

    /// Returns a new matrix holding the given rows of `self`, in order.
    /// Used for minibatch gathering in PPO updates.
    pub fn gather_rows(&self, indices: &[usize]) -> Result<Matrix> {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            if i >= self.rows {
                return Err(NnError::InvalidArgument(format!(
                    "gather index {i} out of bounds for {} rows",
                    self.rows
                )));
            }
            data.extend_from_slice(self.row(i));
        }
        Ok(Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        })
    }

    /// Transpose. Uses a tile-blocked copy so large matrices do not thrash
    /// the cache on the strided side; a pure permutation, so the result is
    /// bit-identical to the element-wise reference copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        kernels::blocked_transpose(&self.data, &mut out.data, self.rows, self.cols);
        out
    }

    /// Reference transpose (the original element-wise loop), kept for the
    /// differential conformance suite.
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn naive_transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        kernels::naive_transpose(&self.data, &mut out.data, self.rows, self.cols);
        out
    }

    fn check_same_shape(&self, other: &Matrix, op: &'static str) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(NnError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(())
    }

    /// Elementwise sum, returning a new matrix.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.check_same_shape(other, "add")?;
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Elementwise difference, returning a new matrix.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.check_same_shape(other, "sub")?;
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Elementwise (Hadamard) product, returning a new matrix.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.check_same_shape(other, "hadamard")?;
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place `self += alpha * other`.
    ///
    /// The shape check is hoisted out of the hot loop, which then runs
    /// 4-wide over bare slices; each element still computes exactly
    /// `a += alpha * b`, so the result is bit-identical to the element-wise
    /// reference form (every element is independent).
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        self.check_same_shape(other, "axpy")?;
        let mut dst = self.data.chunks_exact_mut(4);
        let mut src = other.data.chunks_exact(4);
        for (d, s) in (&mut dst).zip(&mut src) {
            d[0] += alpha * s[0];
            d[1] += alpha * s[1];
            d[2] += alpha * s[2];
            d[3] += alpha * s[3];
        }
        for (d, s) in dst.into_remainder().iter_mut().zip(src.remainder()) {
            *d += alpha * s;
        }
        Ok(())
    }

    /// Reference `axpy` (the original element-wise zip), kept for the
    /// differential conformance suite.
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn naive_axpy(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        self.check_same_shape(other, "axpy")?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scalar multiple, returning a new matrix.
    pub fn scale(&self, alpha: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * alpha).collect(),
        }
    }

    /// In-place scalar multiply.
    pub fn scale_inplace(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Adds a row vector `bias` (length `cols`) to every row. Used for the
    /// dense-layer bias broadcast.
    ///
    /// The shape check is hoisted and rows are walked with
    /// `chunks_exact_mut`, eliminating the per-row slice-index arithmetic;
    /// per element the op is unchanged (`a += b`), so the result is
    /// bit-identical to the reference form.
    pub fn add_row_broadcast(&mut self, bias: &[f64]) -> Result<()> {
        if bias.len() != self.cols {
            return Err(NnError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: (1, bias.len()),
            });
        }
        if self.cols == 0 {
            return Ok(());
        }
        for row in self.data.chunks_exact_mut(self.cols) {
            for (a, b) in row.iter_mut().zip(bias) {
                *a += b;
            }
        }
        Ok(())
    }

    /// Reference broadcast (the original row-indexing loop), kept for the
    /// differential conformance suite.
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn naive_add_row_broadcast(&mut self, bias: &[f64]) -> Result<()> {
        if bias.len() != self.cols {
            return Err(NnError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: (1, bias.len()),
            });
        }
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (a, b) in row.iter_mut().zip(bias) {
                *a += b;
            }
        }
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Column-wise sums, as a vector of length `cols`. Used to reduce a batch
    /// of bias gradients.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Maximum absolute element (0.0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &a| m.max(a.abs()))
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }

    /// Matrix product `self * other`.
    ///
    /// Dispatches to the register-tiled blocked kernel (or, under
    /// `FL_KERNEL=naive`, the streaming reference kernel — both produce
    /// bit-identical results; see `kernels`), and splits the row range
    /// across the shared work-stealing pool (`FL_WORKERS` bounds the
    /// width) when the shape-only [`par_dispatch`] predicate fires.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        self.matmul_impl(other, kernels::kernel_kind(), true)
    }

    /// [`Matrix::matmul`] with an explicit kernel family, for the
    /// differential conformance suite and benchmarks. `parallel: false`
    /// forces the serial kernel regardless of size (single-thread
    /// measurements).
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn matmul_with(&self, other: &Matrix, kind: KernelKind, parallel: bool) -> Result<Matrix> {
        self.matmul_impl(other, kind, parallel)
    }

    /// [`Matrix::matmul`] forced down the row-split pool path with an
    /// explicit worker count, bypassing both the `FL_WORKERS` lookup and
    /// the size threshold — the conformance suite's probe that row
    /// splitting is bit-invariant for *any* shape at *any* width.
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn matmul_par_with_workers(
        &self,
        other: &Matrix,
        kind: KernelKind,
        workers: usize,
    ) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(NnError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        if n == 0 {
            return Ok(out);
        }
        let serial = serial_matmul_kernel(kind);
        Self::row_split_parallel(workers, &self.data, &mut out.data, m, k, n, |a_chunk, o| {
            serial(a_chunk, &other.data, o, k, n)
        });
        Ok(out)
    }

    /// [`Matrix::matmul_nt`] forced down the row-split pool path with an
    /// explicit worker count (see [`Matrix::matmul_par_with_workers`]).
    /// The blocked family pre-materializes `other^T` exactly as the serial
    /// kernel does; the naive family row-splits the reference dot-product
    /// kernel directly.
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn matmul_nt_par_with_workers(
        &self,
        other: &Matrix,
        kind: KernelKind,
        workers: usize,
    ) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(NnError::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        if n == 0 {
            return Ok(out);
        }
        match kind {
            KernelKind::Blocked => {
                let mut bt = vec![0.0f64; k * n];
                kernels::blocked_transpose(&other.data, &mut bt, n, k);
                Self::row_split_parallel(workers, &self.data, &mut out.data, m, k, n, |a, o| {
                    kernels::blocked_matmul_nt_pret(a, &bt, o, k, n)
                });
            }
            KernelKind::Naive => {
                Self::row_split_parallel(workers, &self.data, &mut out.data, m, k, n, |a, o| {
                    naive_matmul_nt(a, &other.data, o, k, n)
                });
            }
        }
        Ok(out)
    }

    /// The parallel-dispatch predicate, exposed for the threshold-edge
    /// pinning test: the decision must be a pure function of the shape.
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn parallel_dispatch(m: usize, k: usize, n: usize) -> bool {
        par_dispatch(m, k, n)
    }

    /// Reference matmul (the original streaming kernel).
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn naive_matmul(&self, other: &Matrix) -> Result<Matrix> {
        self.matmul_impl(other, KernelKind::Naive, true)
    }

    fn matmul_impl(&self, other: &Matrix, kind: KernelKind, parallel: bool) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(NnError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        let serial = serial_matmul_kernel(kind);
        if parallel && par_dispatch(m, k, n) {
            let workers = fl_pool::env_workers();
            Self::row_split_parallel(
                workers,
                &self.data,
                &mut out.data,
                m,
                k,
                n,
                |a_chunk, out_chunk| serial(a_chunk, &other.data, out_chunk, k, n),
            );
        } else {
            serial(&self.data, &other.data, &mut out.data, k, n);
        }
        Ok(out)
    }

    /// Fused `self * other + bias` (bias broadcast across rows): the dense
    /// forward pass in one sweep, keeping each output tile in registers
    /// between the matmul sum and the bias add. Bit-identical to
    /// `matmul` followed by `add_row_broadcast` — per element, both compute
    /// the full k-sum first and add the bias term last.
    pub fn matmul_add_bias(&self, other: &Matrix, bias: &[f64]) -> Result<Matrix> {
        self.matmul_add_bias_impl(other, bias, kernels::kernel_kind())
    }

    /// [`Matrix::matmul_add_bias`] with an explicit kernel family.
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn matmul_add_bias_with(
        &self,
        other: &Matrix,
        bias: &[f64],
        kind: KernelKind,
    ) -> Result<Matrix> {
        self.matmul_add_bias_impl(other, bias, kind)
    }

    fn matmul_add_bias_impl(
        &self,
        other: &Matrix,
        bias: &[f64],
        kind: KernelKind,
    ) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(NnError::ShapeMismatch {
                op: "matmul_add_bias",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        if bias.len() != other.cols {
            return Err(NnError::ShapeMismatch {
                op: "matmul_add_bias",
                lhs: other.shape(),
                rhs: (1, bias.len()),
            });
        }
        match kind {
            KernelKind::Blocked => {
                let (m, k, n) = (self.rows, self.cols, other.cols);
                let mut out = Matrix::zeros(m, n);
                if par_dispatch(m, k, n) {
                    Self::row_split_parallel(
                        fl_pool::env_workers(),
                        &self.data,
                        &mut out.data,
                        m,
                        k,
                        n,
                        |a_chunk, out_chunk| {
                            kernels::blocked_matmul_bias(
                                a_chunk,
                                &other.data,
                                bias,
                                out_chunk,
                                k,
                                n,
                            )
                        },
                    );
                } else {
                    kernels::blocked_matmul_bias(
                        &self.data,
                        &other.data,
                        bias,
                        &mut out.data,
                        self.cols,
                        other.cols,
                    );
                }
                Ok(out)
            }
            // The reference path is the original unfused composition.
            KernelKind::Naive => {
                let mut out = self.matmul_impl(other, kind, true)?;
                out.add_row_broadcast(bias)?;
                Ok(out)
            }
        }
    }

    /// Splits output rows into contiguous chunks across the shared
    /// work-stealing pool (`fl_pool::run_indexed`); each chunk runs
    /// `serial` on its slice pair.
    ///
    /// **Why this cannot change bits:** every output element is computed by
    /// exactly one chunk, and within a chunk the serial kernel runs the
    /// identical per-element k-ascending op sequence it runs in the
    /// unsplit call — the row partition only regroups *independent*
    /// elements, exactly like the column tiling inside the blocked body.
    /// Worker count, chunk boundaries, and scheduling order are therefore
    /// unobservable in the output; `workers <= 1` degenerates to the plain
    /// serial call on the calling thread.
    fn row_split_parallel(
        workers: usize,
        a: &[f64],
        out: &mut [f64],
        m: usize,
        k: usize,
        n: usize,
        serial: impl Fn(&[f64], &mut [f64]) + Sync,
    ) {
        let workers = workers.min(m.max(1));
        if workers <= 1 || n == 0 {
            serial(a, out);
            return;
        }
        let rows_per = m.div_ceil(workers);
        let chunks: Vec<(&[f64], &mut [f64])> = out
            .chunks_mut(rows_per * n)
            .enumerate()
            .map(|(chunk_idx, out_chunk)| {
                let a_start = chunk_idx * rows_per;
                let a_rows = out_chunk.len() / n;
                (&a[a_start * k..(a_start + a_rows) * k], out_chunk)
            })
            .collect();
        fl_pool::run_indexed(workers, chunks, |_idx, (a_chunk, out_chunk)| {
            serial(a_chunk, out_chunk)
        });
    }

    /// `self^T * other` without materializing the transpose.
    ///
    /// Shapes: `self` is `k x m`, `other` is `k x n`, result is `m x n`.
    /// This is the shape needed for the weight gradient `x^T * dy`.
    pub fn matmul_tn(&self, other: &Matrix) -> Result<Matrix> {
        self.matmul_tn_impl(other, kernels::kernel_kind())
    }

    /// [`Matrix::matmul_tn`] with an explicit kernel family.
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn matmul_tn_with(&self, other: &Matrix, kind: KernelKind) -> Result<Matrix> {
        self.matmul_tn_impl(other, kind)
    }

    /// Reference `self^T * other` (the original k-outer kernel).
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn naive_matmul_tn(&self, other: &Matrix) -> Result<Matrix> {
        self.matmul_tn_impl(other, KernelKind::Naive)
    }

    fn matmul_tn_impl(&self, other: &Matrix, kind: KernelKind) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(NnError::ShapeMismatch {
                op: "matmul_tn",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        match kind {
            // Above the threshold the blocked path materializes `a^T`
            // here (the identical pure-permutation copy the serial kernel
            // performs internally) and row-splits the same tiled body —
            // so the parallel product is bit-identical by construction.
            KernelKind::Blocked if par_dispatch(m, k, n) => {
                let mut at = vec![0.0f64; k * m];
                kernels::blocked_transpose(&self.data, &mut at, k, m);
                Self::row_split_parallel(
                    fl_pool::env_workers(),
                    &at,
                    &mut out.data,
                    m,
                    k,
                    n,
                    |a_chunk, out_chunk| {
                        kernels::blocked_matmul(a_chunk, &other.data, out_chunk, k, n)
                    },
                );
            }
            KernelKind::Blocked => {
                kernels::blocked_matmul_tn(&self.data, &other.data, &mut out.data, k, m, n)
            }
            // The naive tn reference iterates k in the *outer* loop, so its
            // row range cannot be partitioned; it stays serial at any size.
            KernelKind::Naive => naive_matmul_tn(&self.data, &other.data, &mut out.data, k, m, n),
        }
        Ok(out)
    }

    /// `self * other^T` without materializing the transpose.
    ///
    /// Shapes: `self` is `m x k`, `other` is `n x k`, result is `m x n`.
    /// This is the shape needed for the input gradient `dy * W^T`.
    pub fn matmul_nt(&self, other: &Matrix) -> Result<Matrix> {
        self.matmul_nt_impl(other, kernels::kernel_kind())
    }

    /// [`Matrix::matmul_nt`] with an explicit kernel family.
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn matmul_nt_with(&self, other: &Matrix, kind: KernelKind) -> Result<Matrix> {
        self.matmul_nt_impl(other, kind)
    }

    /// Reference `self * other^T` (the original dot-product kernel).
    #[cfg(any(test, feature = "reference-kernels"))]
    pub fn naive_matmul_nt(&self, other: &Matrix) -> Result<Matrix> {
        self.matmul_nt_impl(other, KernelKind::Naive)
    }

    fn matmul_nt_impl(&self, other: &Matrix, kind: KernelKind) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(NnError::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        match kind {
            // Parallel nt: materialize `b^T` once (the same tiled copy the
            // serial kernel performs), then row-split the shared no-skip
            // body over the pre-transposed operand.
            KernelKind::Blocked if par_dispatch(m, k, n) => {
                let mut bt = vec![0.0f64; k * n];
                kernels::blocked_transpose(&other.data, &mut bt, n, k);
                Self::row_split_parallel(
                    fl_pool::env_workers(),
                    &self.data,
                    &mut out.data,
                    m,
                    k,
                    n,
                    |a_chunk, out_chunk| {
                        kernels::blocked_matmul_nt_pret(a_chunk, &bt, out_chunk, k, n)
                    },
                );
            }
            KernelKind::Blocked => {
                kernels::blocked_matmul_nt(&self.data, &other.data, &mut out.data, k, n)
            }
            // The naive nt reference computes independent per-row dot
            // products, so its row range partitions like `matmul`'s.
            KernelKind::Naive if par_dispatch(m, k, n) => {
                Self::row_split_parallel(
                    fl_pool::env_workers(),
                    &self.data,
                    &mut out.data,
                    m,
                    k,
                    n,
                    |a_chunk, out_chunk| naive_matmul_nt(a_chunk, &other.data, out_chunk, k, n),
                );
            }
            KernelKind::Naive => naive_matmul_nt(&self.data, &other.data, &mut out.data, k, n),
        }
        Ok(out)
    }
}

/// Picks the serial row-range matmul kernel for `kind`. When the
/// reference kernels are compiled out, `kernel_kind()` can never resolve
/// to `Naive`, so the fallback arm is unreachable in practice.
fn serial_matmul_kernel(kind: KernelKind) -> fn(&[f64], &[f64], &mut [f64], usize, usize) {
    match kind {
        KernelKind::Blocked => kernels::blocked_matmul,
        KernelKind::Naive => naive_matmul,
    }
}

#[cfg(any(test, feature = "reference-kernels"))]
use kernels::{naive_matmul, naive_matmul_nt, naive_matmul_tn};

/// Stub used when the reference kernels are compiled out: selection
/// guards in `kernels` guarantee these are never reached.
#[cfg(not(any(test, feature = "reference-kernels")))]
fn naive_matmul(_: &[f64], _: &[f64], _: &mut [f64], _: usize, _: usize) {
    unreachable!("naive kernels are compiled out; kernel selection falls back to blocked")
}

/// See [`naive_matmul`] (stub).
#[cfg(not(any(test, feature = "reference-kernels")))]
fn naive_matmul_tn(_: &[f64], _: &[f64], _: &mut [f64], _: usize, _: usize, _: usize) {
    unreachable!("naive kernels are compiled out; kernel selection falls back to blocked")
}

/// See [`naive_matmul`] (stub).
#[cfg(not(any(test, feature = "reference-kernels")))]
fn naive_matmul_nt(_: &[f64], _: &[f64], _: &mut [f64], _: usize, _: usize) {
    unreachable!("naive kernels are compiled out; kernel selection falls back to blocked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.shape() == b.shape()
            && a.data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
    }

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_fn_row_major_order() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.data(), &[0., 1., 2., 10., 11., 12.]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(NnError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r + c) as f64 * 0.5);
        let b = Matrix::from_fn(4, 5, |r, c| (r * c) as f64 - 1.0);
        let expected = a.transpose().matmul(&b).unwrap();
        assert!(approx_eq(&a.matmul_tn(&b).unwrap(), &expected, 1e-12));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r + 2 * c) as f64 * 0.25);
        let b = Matrix::from_fn(5, 3, |r, c| (r as f64) - (c as f64) * 0.5);
        let expected = a.matmul(&b.transpose()).unwrap();
        assert!(approx_eq(&a.matmul_nt(&b).unwrap(), &expected, 1e-12));
    }

    #[test]
    fn parallel_matmul_matches_serial() {
        // Big enough to cross PAR_FLOP_THRESHOLD (128^3 = 2^21). Row
        // splitting must not change a single bit, for either kernel family.
        let n = 128;
        let a = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 17) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(n, n, |r, c| ((r * 7 + c * 3) % 11) as f64 - 5.0);
        let par = a.matmul(&b).unwrap();
        for kind in [KernelKind::Blocked, KernelKind::Naive] {
            let serial = a.matmul_with(&b, kind, false).unwrap();
            assert_eq!(par, serial, "{kind:?}");
        }
    }

    #[test]
    fn matmul_add_bias_matches_unfused() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (16, 8, 9), (2, 64, 17)] {
            let a = Matrix::from_fn(m, k, |r, c| ((r * 13 + c * 7) % 19) as f64 * 0.25 - 2.0);
            let b = Matrix::from_fn(k, n, |r, c| ((r * 5 + c * 11) % 17) as f64 * 0.5 - 4.0);
            let bias: Vec<f64> = (0..n).map(|j| j as f64 * 0.125 - 1.0).collect();
            let mut unfused = a.matmul(&b).unwrap();
            unfused.add_row_broadcast(&bias).unwrap();
            let fused = a.matmul_add_bias(&b, &bias).unwrap();
            assert_eq!(fused, unfused, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_add_bias_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        assert!(a.matmul_add_bias(&b, &[0.0; 3]).is_err());
        assert!(Matrix::zeros(2, 2).matmul_add_bias(&b, &[0.0; 4]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(2, 2, |r, c| (r * c) as f64 + 1.0);
        let sum = a.add(&b).unwrap();
        let back = sum.sub(&b).unwrap();
        assert!(approx_eq(&back, &a, 1e-12));
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Matrix::from_vec(1, 3, vec![2., 3., 4.]).unwrap();
        let b = Matrix::from_vec(1, 3, vec![5., 6., 7.]).unwrap();
        assert_eq!(a.hadamard(&b).unwrap().data(), &[10., 18., 28.]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 3.0);
        a.axpy(0.5, &b).unwrap();
        assert!(a.data().iter().all(|&v| (v - 2.5).abs() < 1e-12));
    }

    #[test]
    fn add_row_broadcast_hits_every_row() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_broadcast(&[1.0, 2.0]).unwrap();
        for r in 0..3 {
            assert_eq!(m.row(r), &[1.0, 2.0]);
        }
    }

    #[test]
    fn add_row_broadcast_rejects_bad_len() {
        let mut m = Matrix::zeros(3, 2);
        assert!(m.add_row_broadcast(&[1.0]).is_err());
    }

    #[test]
    fn col_sums_reduce_rows() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(m.col_sums(), vec![5., 7., 9.]);
    }

    #[test]
    fn slice_and_gather_rows() {
        let m = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f64);
        let s = m.slice_rows(1, 3).unwrap();
        assert_eq!(s.data(), &[2., 3., 4., 5.]);
        let g = m.gather_rows(&[3, 0]).unwrap();
        assert_eq!(g.data(), &[6., 7., 0., 1.]);
        assert!(m.gather_rows(&[4]).is_err());
        assert!(m.slice_rows(3, 5).is_err());
    }

    #[test]
    fn norms_and_reductions() {
        let m = Matrix::from_vec(1, 2, vec![3.0, -4.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.sum(), -1.0);
        assert_eq!(m.mean(), -0.5);
        assert!(m.all_finite());
        let bad = Matrix::from_vec(1, 1, vec![f64::NAN]).unwrap();
        assert!(!bad.all_finite());
    }

    #[test]
    fn serde_roundtrip() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64 * 0.5);
        let json = serde_json_roundtrip(&m);
        assert_eq!(json, m);
    }

    fn serde_json_roundtrip(m: &Matrix) -> Matrix {
        // Use a basic hand-rolled check against serde's derived impls via
        // bincode-free path: serialize to JSON-ish using serde_test would add
        // a dep; instead assert Clone/PartialEq path and structural identity.
        m.clone()
    }

    proptest! {
        #[test]
        fn prop_matmul_distributes_over_add(
            seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let (m, k, n) = (
                rng.gen_range(1..6usize),
                rng.gen_range(1..6usize),
                rng.gen_range(1..6usize),
            );
            let randm = |rng: &mut rand_chacha::ChaCha8Rng, r: usize, c: usize| {
                Matrix::from_fn(r, c, |_, _| rng.gen_range(-2.0..2.0))
            };
            let a = randm(&mut rng, m, k);
            let b = randm(&mut rng, k, n);
            let c = randm(&mut rng, k, n);
            let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
            let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
            prop_assert!(approx_eq(&lhs, &rhs, 1e-9));
        }

        #[test]
        fn prop_transpose_of_product(seed in 0u64..1000) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let (m, k, n) = (
                rng.gen_range(1..6usize),
                rng.gen_range(1..6usize),
                rng.gen_range(1..6usize),
            );
            let a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-2.0..2.0));
            let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-2.0..2.0));
            // (AB)^T == B^T A^T
            let lhs = a.matmul(&b).unwrap().transpose();
            let rhs = b.transpose().matmul(&a.transpose()).unwrap();
            prop_assert!(approx_eq(&lhs, &rhs, 1e-9));
        }

        #[test]
        fn prop_scale_linear(x in -10.0f64..10.0, y in -10.0f64..10.0) {
            let m = Matrix::from_vec(1, 2, vec![x, y]).unwrap();
            let s = m.scale(2.0);
            prop_assert!((s.data()[0] - 2.0 * x).abs() < 1e-12);
            prop_assert!((s.data()[1] - 2.0 * y).abs() < 1e-12);
        }

        #[test]
        fn prop_matmul_matches_naive_reference(seed in 0u64..1000) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let (m, k, n) = (
                rng.gen_range(1..8usize),
                rng.gen_range(1..8usize),
                rng.gen_range(1..8usize),
            );
            let a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-3.0..3.0));
            let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-3.0..3.0));
            // Textbook triple loop, the definition of matrix multiplication.
            let mut naive = Matrix::zeros(m, n);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for kk in 0..k {
                        acc += a.get(i, kk) * b.get(kk, j);
                    }
                    naive.data_mut()[i * n + j] = acc;
                }
            }
            prop_assert!(approx_eq(&a.matmul(&b).unwrap(), &naive, 1e-12));
        }

        #[test]
        fn prop_transpose_involution(seed in 0u64..1000) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let (m, n) = (rng.gen_range(1..9usize), rng.gen_range(1..9usize));
            let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(-10.0..10.0));
            // Bitwise equality: transpose moves values, never recomputes them.
            prop_assert_eq!(a.transpose().transpose(), a);
        }

        #[test]
        fn prop_matmul_tn_matches_explicit_transpose(seed in 0u64..1000) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let (k, m, n) = (
                rng.gen_range(1..8usize),
                rng.gen_range(1..8usize),
                rng.gen_range(1..8usize),
            );
            let a = Matrix::from_fn(k, m, |_, _| rng.gen_range(-3.0..3.0));
            let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-3.0..3.0));
            let expected = a.transpose().matmul(&b).unwrap();
            prop_assert!(approx_eq(&a.matmul_tn(&b).unwrap(), &expected, 1e-12));
        }

        #[test]
        fn prop_matmul_nt_matches_explicit_transpose(seed in 0u64..1000) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let (m, k, n) = (
                rng.gen_range(1..8usize),
                rng.gen_range(1..8usize),
                rng.gen_range(1..8usize),
            );
            let a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-3.0..3.0));
            let b = Matrix::from_fn(n, k, |_, _| rng.gen_range(-3.0..3.0));
            let expected = a.matmul(&b.transpose()).unwrap();
            prop_assert!(approx_eq(&a.matmul_nt(&b).unwrap(), &expected, 1e-12));
        }
    }
}
