//! Error type for the fl-nn crate.

use std::fmt;

/// Errors raised by matrix and network operations.
///
/// Library code never panics on bad shapes: every shape-sensitive operation
/// returns `Result<_, NnError>` so callers (the RL and FL stacks) can surface
/// configuration mistakes instead of aborting a long training run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Two operands had incompatible shapes for the named operation.
    ShapeMismatch {
        /// Operation that failed, e.g. `"matmul"`.
        op: &'static str,
        /// Shape of the left/self operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/other operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A constructor argument was invalid (zero dimension, wrong data
    /// length, non-finite hyperparameter, ...).
    InvalidArgument(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            NnError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = NnError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn display_invalid_argument() {
        let e = NnError::InvalidArgument("rows must be nonzero".into());
        assert!(e.to_string().contains("rows must be nonzero"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&NnError::InvalidArgument("x".into()));
    }
}
