//! Matmul kernel implementations and runtime kernel selection.
//!
//! Two kernel families share one contract:
//!
//! * `naive_*` — the original streaming loops, kept verbatim as the
//!   executable specification. Compiled only under `cfg(test)` or the
//!   `reference-kernels` feature.
//! * `blocked_*` — cache-blocked, register-tiled rewrites. Each output
//!   element accumulates its k-terms **in exactly the same order** as the
//!   naive loop, with exactly the same `a == 0.0` skip rule, so the fast
//!   path is bit-identical to the reference by construction (IEEE-754
//!   operations are deterministic; only the *grouping* of independent
//!   elements changes, never the op sequence of any one element).
//!
//! The family used by [`crate::Matrix`] is resolved once per process from
//! the `FL_KERNEL` environment variable (`blocked`, the default, or
//! `naive`) and can be overridden programmatically with
//! [`set_kernel_kind`] — the escape hatch the differential conformance
//! suite uses to run whole training jobs under both families in one
//! process.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which matmul kernel family the process uses. See the module docs for
/// the bit-exactness contract between the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Cache-blocked, register-tiled kernels (the default).
    Blocked,
    /// The original streaming reference loops. Only available when the
    /// crate is compiled with the `reference-kernels` feature (or under
    /// `cfg(test)`); requesting it otherwise falls back to `Blocked` with
    /// a warning.
    Naive,
}

const KIND_UNRESOLVED: u8 = 0;
const KIND_BLOCKED: u8 = 1;
const KIND_NAIVE: u8 = 2;

/// Process-wide kernel selection; `0` means "not yet resolved from the
/// environment". Relaxed ordering is enough: both families produce the
/// same bits, so a race during resolution is observationally benign.
static KERNEL_KIND: AtomicU8 = AtomicU8::new(KIND_UNRESOLVED);

/// True when the naive reference kernels are compiled into this build.
pub const fn naive_kernels_available() -> bool {
    cfg!(any(test, feature = "reference-kernels"))
}

/// The kernel family in effect, resolving `FL_KERNEL` on first use.
pub fn kernel_kind() -> KernelKind {
    match KERNEL_KIND.load(Ordering::Relaxed) {
        KIND_BLOCKED => KernelKind::Blocked,
        KIND_NAIVE => KernelKind::Naive,
        _ => resolve_from_env(),
    }
}

/// Overrides the process-wide kernel family, returning the kind actually
/// in effect (requests for [`KernelKind::Naive`] fall back to `Blocked`
/// when the reference kernels are not compiled in).
pub fn set_kernel_kind(kind: KernelKind) -> KernelKind {
    let effective = match kind {
        KernelKind::Naive if !naive_kernels_available() => {
            eprintln!(
                "fl-nn: naive kernels not compiled in (enable the \
                 `reference-kernels` feature); using blocked"
            );
            KernelKind::Blocked
        }
        other => other,
    };
    let tag = match effective {
        KernelKind::Blocked => KIND_BLOCKED,
        KernelKind::Naive => KIND_NAIVE,
    };
    KERNEL_KIND.store(tag, Ordering::Relaxed);
    effective
}

fn resolve_from_env() -> KernelKind {
    let requested = std::env::var("FL_KERNEL").ok();
    let kind = match requested.as_deref() {
        None | Some("") | Some("blocked") => KernelKind::Blocked,
        Some("naive") => KernelKind::Naive,
        Some(other) => {
            eprintln!("fl-nn: unknown FL_KERNEL value {other:?}; using blocked");
            KernelKind::Blocked
        }
    };
    set_kernel_kind(kind)
}

/// Wide output-column register tile: 32 accumulators live in registers
/// across the whole k loop (4 zmm under AVX-512, 8 ymm under AVX2), so each
/// output element is loaded/stored once instead of once per k-term and
/// enough independent add chains are in flight to hide the FP add latency
/// that the contract's fixed per-element accumulation order imposes.
const W_WIDE: usize = 32;

/// Narrow tile for mid-size column remainders (one ymm pair / zmm half).
const W_NARROW: usize = 8;

/// Square tile edge for the blocked transpose copy.
const TR_TILE: usize = 32;

// ---------------------------------------------------------------------------
// Blocked kernels
// ---------------------------------------------------------------------------

/// One `T`-wide column tile of one output row:
/// `out_row[j + t] = Σ_k a_row[k] · b[k][j + t] (+ bias[j + t])`.
///
/// The k loop is outer with `T` register accumulators, so per element the
/// accumulation is the naive order: k ascending, terms with
/// `a_row[k] == 0.0` skipped when `SKIP`, bias (if any) added last. The
/// tile body is elementwise `mul` then `add` — never `mul_add` — so wider
/// vector units change throughput, not bits.
#[inline(always)]
fn tile_cols<const T: usize, const BIAS: bool, const SKIP: bool>(
    a_row: &[f64],
    b: &[f64],
    bias: &[f64],
    out_row: &mut [f64],
    n: usize,
    j: usize,
) {
    let mut acc = [0.0f64; T];
    for (&aik, b_row) in a_row.iter().zip(b.chunks_exact(n)) {
        if SKIP && aik == 0.0 {
            continue;
        }
        let b_tile: &[f64; T] = (&b_row[j..j + T]).try_into().expect("tile width");
        for (a, &bv) in acc.iter_mut().zip(b_tile) {
            *a += aik * bv;
        }
    }
    if BIAS {
        for (a, &bv) in acc.iter_mut().zip(&bias[j..j + T]) {
            *a += bv;
        }
    }
    out_row[j..j + T].copy_from_slice(&acc);
}

/// The sub-[`W_NARROW`] column tail of one output row (runtime width).
#[inline(always)]
fn tail_cols<const BIAS: bool, const SKIP: bool>(
    a_row: &[f64],
    b: &[f64],
    bias: &[f64],
    out_row: &mut [f64],
    n: usize,
    j: usize,
) {
    let mut acc = [0.0f64; W_NARROW];
    let acc = &mut acc[..n - j];
    for (&aik, b_row) in a_row.iter().zip(b.chunks_exact(n)) {
        if SKIP && aik == 0.0 {
            continue;
        }
        for (a, &bv) in acc.iter_mut().zip(&b_row[j..]) {
            *a += aik * bv;
        }
    }
    if BIAS {
        for (a, &bv) in acc.iter_mut().zip(&bias[j..]) {
            *a += bv;
        }
    }
    out_row[j..].copy_from_slice(acc);
}

/// Register-tiled `out = a · b (+ bias)` over a row range (`a` is
/// `rows x k` for `rows = out.len() / n`, `b` is `k x n`, `n > 0`).
///
/// This single body is the whole blocked-kernel algorithm; the `simd`
/// module re-monomorphizes it under wider target features. Column tiles
/// partition `j`, so no element's k-term op sequence ever changes.
#[inline(always)]
fn matmul_body<const BIAS: bool, const SKIP: bool>(
    a: &[f64],
    b: &[f64],
    bias: &[f64],
    out: &mut [f64],
    k: usize,
    n: usize,
) {
    let rows = out.len() / n;
    for i in 0..rows {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j + W_WIDE <= n {
            tile_cols::<W_WIDE, BIAS, SKIP>(a_row, b, bias, out_row, n, j);
            j += W_WIDE;
        }
        while j + W_NARROW <= n {
            tile_cols::<W_NARROW, BIAS, SKIP>(a_row, b, bias, out_row, n, j);
            j += W_NARROW;
        }
        if j < n {
            tail_cols::<BIAS, SKIP>(a_row, b, bias, out_row, n, j);
        }
    }
}

/// Runtime-dispatched SIMD monomorphizations of [`matmul_body`].
///
/// The reference kernels define the bits; these re-compilations only widen
/// the vector units the *same* op sequence runs on. Each wrapper is a safe
/// `#[target_feature]` function whose body is the portable `matmul_body`
/// — identical Rust, so identical per-element IEEE-754 ops — and the only
/// `unsafe` in the crate is calling them, guarded by
/// `is_x86_feature_detected!`. (This is why the crate is `deny(unsafe_code)`
/// rather than `forbid`: this module is the single, documented exception.)
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    use super::matmul_body;
    use std::sync::atomic::{AtomicU8, Ordering};

    const ISA_UNRESOLVED: u8 = 0;
    const ISA_AVX512: u8 = 1;
    const ISA_AVX2: u8 = 2;
    const ISA_NONE: u8 = 3;

    /// Cached `is_x86_feature_detected!` result (detection is not free).
    static ISA: AtomicU8 = AtomicU8::new(ISA_UNRESOLVED);

    fn isa() -> u8 {
        match ISA.load(Ordering::Relaxed) {
            ISA_UNRESOLVED => {
                let level = if std::arch::is_x86_feature_detected!("avx512f") {
                    ISA_AVX512
                } else if std::arch::is_x86_feature_detected!("avx2") {
                    ISA_AVX2
                } else {
                    ISA_NONE
                };
                ISA.store(level, Ordering::Relaxed);
                level
            }
            level => level,
        }
    }

    macro_rules! monomorphize {
        ($name:ident, $feat:literal, $bias:literal, $skip:literal) => {
            #[target_feature(enable = $feat)]
            fn $name(a: &[f64], b: &[f64], bias: &[f64], out: &mut [f64], k: usize, n: usize) {
                matmul_body::<$bias, $skip>(a, b, bias, out, k, n)
            }
        };
    }

    monomorphize!(mm_skip_avx512, "avx512f", false, true);
    monomorphize!(mm_bias_avx512, "avx512f", true, true);
    monomorphize!(mm_noskip_avx512, "avx512f", false, false);
    monomorphize!(mm_skip_avx2, "avx2", false, true);
    monomorphize!(mm_bias_avx2, "avx2", true, true);
    monomorphize!(mm_noskip_avx2, "avx2", false, false);

    /// Runs [`matmul_body`] under the widest available vector ISA.
    /// Returns `false` when neither AVX-512 nor AVX2 is present and the
    /// caller should fall back to the baseline-compiled body.
    pub(super) fn run<const BIAS: bool, const SKIP: bool>(
        a: &[f64],
        b: &[f64],
        bias: &[f64],
        out: &mut [f64],
        k: usize,
        n: usize,
    ) -> bool {
        match isa() {
            // SAFETY: each arm is reached only after the corresponding
            // target feature was detected on this CPU at runtime.
            ISA_AVX512 => unsafe {
                match (BIAS, SKIP) {
                    (false, true) => mm_skip_avx512(a, b, bias, out, k, n),
                    (true, true) => mm_bias_avx512(a, b, bias, out, k, n),
                    (false, false) => mm_noskip_avx512(a, b, bias, out, k, n),
                    (true, false) => unreachable!("no biased no-skip kernel"),
                }
                true
            },
            ISA_AVX2 => unsafe {
                match (BIAS, SKIP) {
                    (false, true) => mm_skip_avx2(a, b, bias, out, k, n),
                    (true, true) => mm_bias_avx2(a, b, bias, out, k, n),
                    (false, false) => mm_noskip_avx2(a, b, bias, out, k, n),
                    (true, false) => unreachable!("no biased no-skip kernel"),
                }
                true
            },
            _ => false,
        }
    }
}

/// Dispatches one matmul sweep to the widest ISA monomorphization, falling
/// back to the baseline-compiled [`matmul_body`] off x86-64 (or on CPUs
/// without AVX2).
#[inline]
fn run_matmul<const BIAS: bool, const SKIP: bool>(
    a: &[f64],
    b: &[f64],
    bias: &[f64],
    out: &mut [f64],
    k: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if simd::run::<BIAS, SKIP>(a, b, bias, out, k, n) {
        return;
    }
    matmul_body::<BIAS, SKIP>(a, b, bias, out, k, n)
}

/// Blocked `out = a · b` over a row range (`a` is `rows x k` for
/// `rows = out.len() / n`, `b` is `k x n`).
pub(crate) fn blocked_matmul(a: &[f64], b: &[f64], out: &mut [f64], k: usize, n: usize) {
    if n == 0 {
        return;
    }
    run_matmul::<false, true>(a, b, &[], out, k, n);
}

/// Blocked fused `out = a · b + bias` (bias broadcast across rows), over a
/// row range like [`blocked_matmul`]. Per element this is exactly
/// "complete the matmul sum, then one bias add" — the same op sequence as
/// the unfused matmul + broadcast composition.
pub(crate) fn blocked_matmul_bias(
    a: &[f64],
    b: &[f64],
    bias: &[f64],
    out: &mut [f64],
    k: usize,
    n: usize,
) {
    if n == 0 {
        return;
    }
    run_matmul::<true, true>(a, b, bias, out, k, n);
}

/// Blocked `out = a^T · b` (`a` is `k x m`, `b` is `k x n`).
///
/// Materializes `a^T` with the tiled transpose (a pure copy), then reuses
/// the row-tiled body — which preserves the naive per-element order:
/// k ascending, `a[k][i] == 0.0` terms skipped.
pub(crate) fn blocked_matmul_tn(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    k: usize,
    m: usize,
    n: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    let mut at = vec![0.0f64; k * m];
    blocked_transpose(a, &mut at, k, m);
    run_matmul::<false, true>(&at, b, &[], out, k, n);
}

/// Blocked `out = a · b^T` (`a` is `m x k`, `b` is `n x k`).
///
/// Materializes `b^T` (a pure copy), turning every output element's dot
/// product into the same k-ascending contiguous sweep as `matmul` — but
/// with **no zero-skip**, because the naive `nt` kernel has none (and the
/// skip is observable: `0.0 · ∞` must still produce NaN here).
pub(crate) fn blocked_matmul_nt(a: &[f64], b: &[f64], out: &mut [f64], k: usize, n: usize) {
    if n == 0 {
        return;
    }
    let mut bt = vec![0.0f64; k * n];
    blocked_transpose(b, &mut bt, n, k);
    blocked_matmul_nt_pret(a, &bt, out, k, n);
}

/// The row-range half of [`blocked_matmul_nt`]: `out = a · bt` where `bt`
/// is the **already materialized** `b^T` (`k x n`), no zero-skip. Split
/// out so `Matrix` can transpose once and row-partition this body across
/// the pool — each chunk then runs the exact op sequence the serial `nt`
/// kernel runs after its own internal transpose.
pub(crate) fn blocked_matmul_nt_pret(a: &[f64], bt: &[f64], out: &mut [f64], k: usize, n: usize) {
    if n == 0 {
        return;
    }
    run_matmul::<false, false>(a, bt, &[], out, k, n);
}

/// Blocked transpose copy: walks `TR_TILE x TR_TILE` tiles so both the
/// read and the write side stay within a cache-resident window. A pure
/// permutation — values are moved, never recomputed.
pub(crate) fn blocked_transpose(src: &[f64], dst: &mut [f64], rows: usize, cols: usize) {
    for rb in (0..rows).step_by(TR_TILE) {
        let r_end = (rb + TR_TILE).min(rows);
        for cb in (0..cols).step_by(TR_TILE) {
            let c_end = (cb + TR_TILE).min(cols);
            for r in rb..r_end {
                let src_row = &src[r * cols..(r + 1) * cols];
                for c in cb..c_end {
                    dst[c * rows + r] = src_row[c];
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Naive reference kernels (the original loops, verbatim)
// ---------------------------------------------------------------------------

/// Reference serial i-k-j kernel over a row range of the output.
#[cfg(any(test, feature = "reference-kernels"))]
pub(crate) fn naive_matmul(a: &[f64], b: &[f64], out: &mut [f64], k: usize, n: usize) {
    let rows = out.len() / n.max(1);
    for i in 0..rows {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    }
}

/// Reference `a^T · b` kernel (`a` is `k x m`, `b` is `k x n`).
#[cfg(any(test, feature = "reference-kernels"))]
pub(crate) fn naive_matmul_tn(a: &[f64], b: &[f64], out: &mut [f64], k: usize, m: usize, n: usize) {
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for (i, &aki) in a_row.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aki * bv;
            }
        }
    }
}

/// Reference `a · b^T` kernel (`a` is `m x k`, `b` is `n x k`).
#[cfg(any(test, feature = "reference-kernels"))]
pub(crate) fn naive_matmul_nt(a: &[f64], b: &[f64], out: &mut [f64], k: usize, n: usize) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    for i in 0..rows {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
}

/// Reference transpose (the original element-wise double loop).
#[cfg(any(test, feature = "reference-kernels"))]
pub(crate) fn naive_transpose(src: &[f64], dst: &mut [f64], rows: usize, cols: usize) {
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
}

/// Serializes tests that flip the process-wide kernel selection. Both
/// families are bit-identical, so concurrent *compute* is unaffected —
/// this lock only protects tests that assert on `kernel_kind()` itself.
#[cfg(test)]
pub(crate) static TEST_KERNEL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_kernel_kind_round_trips() {
        let _guard = TEST_KERNEL_LOCK.lock().unwrap();
        let before = kernel_kind();
        assert_eq!(set_kernel_kind(KernelKind::Naive), KernelKind::Naive);
        assert_eq!(kernel_kind(), KernelKind::Naive);
        assert_eq!(set_kernel_kind(KernelKind::Blocked), KernelKind::Blocked);
        assert_eq!(kernel_kind(), KernelKind::Blocked);
        set_kernel_kind(before);
    }

    #[test]
    fn naive_available_in_tests() {
        assert!(naive_kernels_available());
    }

    /// The degenerate shapes every kernel must survive: zero rows, zero
    /// cols, zero inner dimension.
    #[test]
    fn empty_shapes_are_noops() {
        let mut out = [0.0f64; 0];
        blocked_matmul(&[], &[], &mut out, 0, 0);
        blocked_matmul_bias(&[], &[], &[], &mut out, 0, 0);
        blocked_matmul_tn(&[], &[], &mut out, 0, 0, 0);
        blocked_matmul_nt(&[], &[], &mut out, 0, 0);
        blocked_transpose(&[], &mut out, 0, 0);
        // k = 0 with nonempty output: all sums are empty, so out is zero.
        let mut out = [1.0f64; 6];
        blocked_matmul(&[], &[], &mut out, 0, 3);
        assert_eq!(out, [0.0; 6]);
    }
}
