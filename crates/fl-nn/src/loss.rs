//! Loss functions returning `(scalar_loss, dloss/dpred)` pairs.

use crate::{Matrix, NnError, Result};

/// Mean squared error over all elements: `L = mean((pred - target)^2)`.
///
/// Returns the loss and its gradient with respect to `pred`
/// (`2 (pred - target) / n`), ready to feed to [`crate::Mlp::backward`].
pub fn mse(pred: &Matrix, target: &Matrix) -> Result<(f64, Matrix)> {
    if pred.shape() != target.shape() {
        return Err(NnError::ShapeMismatch {
            op: "mse",
            lhs: pred.shape(),
            rhs: target.shape(),
        });
    }
    let n = pred.data().len().max(1) as f64;
    let diff = pred.sub(target)?;
    let loss = diff.data().iter().map(|d| d * d).sum::<f64>() / n;
    let grad = diff.scale(2.0 / n);
    Ok((loss, grad))
}

/// Huber (smooth-L1) loss with threshold `delta`, averaged over elements.
/// Robust alternative used for the critic in ablations.
pub fn huber(pred: &Matrix, target: &Matrix, delta: f64) -> Result<(f64, Matrix)> {
    if pred.shape() != target.shape() {
        return Err(NnError::ShapeMismatch {
            op: "huber",
            lhs: pred.shape(),
            rhs: target.shape(),
        });
    }
    if !(delta > 0.0) {
        return Err(NnError::InvalidArgument(
            "huber delta must be positive".to_string(),
        ));
    }
    let n = pred.data().len().max(1) as f64;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    for (i, (&p, &t)) in pred.data().iter().zip(target.data()).enumerate() {
        let d = p - t;
        if d.abs() <= delta {
            loss += 0.5 * d * d;
            grad.data_mut()[i] = d / n;
        } else {
            loss += delta * (d.abs() - 0.5 * delta);
            grad.data_mut()[i] = delta * d.signum() / n;
        }
    }
    Ok((loss / n, grad))
}

/// Binary cross-entropy on sigmoid-activated predictions in `(0, 1)`.
/// `L = -mean(t ln p + (1-t) ln (1-p))`. Used by the FedAvg logistic models.
pub fn binary_cross_entropy(pred: &Matrix, target: &Matrix) -> Result<(f64, Matrix)> {
    if pred.shape() != target.shape() {
        return Err(NnError::ShapeMismatch {
            op: "binary_cross_entropy",
            lhs: pred.shape(),
            rhs: target.shape(),
        });
    }
    const EPS: f64 = 1e-12;
    let n = pred.data().len().max(1) as f64;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    for (i, (&p, &t)) in pred.data().iter().zip(target.data()).enumerate() {
        let p = p.clamp(EPS, 1.0 - EPS);
        loss -= t * p.ln() + (1.0 - t) * (1.0 - p).ln();
        grad.data_mut()[i] = ((p - t) / (p * (1.0 - p))) / n;
    }
    Ok((loss / n, grad))
}

/// Row-wise softmax (numerically stable via max subtraction).
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Softmax cross-entropy on raw logits against one-hot targets, averaged
/// over rows: `L = -mean_rows( Σ_c y_c ln softmax(z)_c )`.
///
/// Returns the loss and its gradient with respect to the *logits* —
/// `(softmax(z) − y) / n_rows` — so a multi-class head is just a linear
/// output layer plus this loss. Used by the multi-class FedAvg tasks.
pub fn softmax_cross_entropy(logits: &Matrix, one_hot: &Matrix) -> Result<(f64, Matrix)> {
    if logits.shape() != one_hot.shape() {
        return Err(NnError::ShapeMismatch {
            op: "softmax_cross_entropy",
            lhs: logits.shape(),
            rhs: one_hot.shape(),
        });
    }
    if logits.cols() < 2 {
        return Err(NnError::InvalidArgument(
            "softmax cross-entropy needs at least two classes".to_string(),
        ));
    }
    const EPS: f64 = 1e-12;
    let n = logits.rows().max(1) as f64;
    let probs = softmax_rows(logits);
    let mut loss = 0.0;
    for (p, y) in probs.data().iter().zip(one_hot.data()) {
        if *y > 0.0 {
            loss -= y * (p + EPS).ln();
        }
    }
    let mut grad = probs;
    for (g, y) in grad.data_mut().iter_mut().zip(one_hot.data()) {
        *g = (*g - y) / n;
    }
    Ok((loss / n, grad))
}

/// Builds a one-hot matrix from class indices (`labels[i] < num_classes`).
pub fn one_hot(labels: &[usize], num_classes: usize) -> Result<Matrix> {
    if num_classes == 0 {
        return Err(NnError::InvalidArgument(
            "num_classes must be nonzero".to_string(),
        ));
    }
    let mut out = Matrix::zeros(labels.len(), num_classes);
    for (i, &c) in labels.iter().enumerate() {
        if c >= num_classes {
            return Err(NnError::InvalidArgument(format!(
                "label {c} out of range for {num_classes} classes"
            )));
        }
        out.set(i, c, 1.0);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mse_zero_for_equal() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        let (l, g) = mse(&a, &a).unwrap();
        assert_eq!(l, 0.0);
        assert!(g.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mse_known_value() {
        let p = Matrix::from_vec(1, 2, vec![1.0, 3.0]).unwrap();
        let t = Matrix::from_vec(1, 2, vec![0.0, 1.0]).unwrap();
        let (l, g) = mse(&p, &t).unwrap();
        assert!((l - 2.5).abs() < 1e-12); // (1 + 4) / 2
        assert!((g.data()[0] - 1.0).abs() < 1e-12); // 2*1/2
        assert!((g.data()[1] - 2.0).abs() < 1e-12); // 2*2/2
    }

    #[test]
    fn mse_shape_mismatch() {
        let p = Matrix::zeros(1, 2);
        let t = Matrix::zeros(2, 1);
        assert!(mse(&p, &t).is_err());
    }

    #[test]
    fn huber_quadratic_inside_linear_outside() {
        let p = Matrix::from_vec(1, 2, vec![0.5, 10.0]).unwrap();
        let t = Matrix::zeros(1, 2);
        let (l, g) = huber(&p, &t, 1.0).unwrap();
        // element 0: 0.5*0.25 = 0.125 ; element 1: 1*(10-0.5)=9.5 ; mean => 4.8125
        assert!((l - 4.8125).abs() < 1e-12);
        assert!((g.data()[0] - 0.25).abs() < 1e-12); // d/n = 0.5/2
        assert!((g.data()[1] - 0.5).abs() < 1e-12); // delta*sign/n = 1/2
    }

    #[test]
    fn huber_rejects_nonpositive_delta() {
        let p = Matrix::zeros(1, 1);
        assert!(huber(&p, &p, 0.0).is_err());
        assert!(huber(&p, &p, -1.0).is_err());
    }

    #[test]
    fn bce_perfect_prediction_near_zero() {
        let p = Matrix::from_vec(1, 2, vec![0.999999, 0.000001]).unwrap();
        let t = Matrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap();
        let (l, _) = binary_cross_entropy(&p, &t).unwrap();
        assert!(l < 1e-4);
    }

    #[test]
    fn bce_clamps_extremes() {
        let p = Matrix::from_vec(1, 2, vec![0.0, 1.0]).unwrap();
        let t = Matrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap();
        let (l, g) = binary_cross_entropy(&p, &t).unwrap();
        assert!(l.is_finite());
        assert!(g.all_finite());
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]).unwrap();
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(p.row(r).iter().all(|&v| v > 0.0));
        }
        // Largest logit gets the largest probability.
        assert!(p.get(0, 2) > p.get(0, 1));
    }

    #[test]
    fn softmax_rows_stable_for_huge_logits() {
        let logits = Matrix::from_vec(1, 2, vec![1000.0, 999.0]).unwrap();
        let p = softmax_rows(&logits);
        assert!(p.all_finite());
        assert!((p.get(0, 0) + p.get(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_ce_perfect_prediction() {
        let logits = Matrix::from_vec(1, 3, vec![20.0, 0.0, 0.0]).unwrap();
        let y = one_hot(&[0], 3).unwrap();
        let (l, _) = softmax_cross_entropy(&logits, &y).unwrap();
        assert!(l < 1e-6);
    }

    #[test]
    fn softmax_ce_validation() {
        let logits = Matrix::zeros(2, 3);
        assert!(softmax_cross_entropy(&logits, &Matrix::zeros(3, 3)).is_err());
        let single = Matrix::zeros(2, 1);
        assert!(softmax_cross_entropy(&single, &single).is_err());
    }

    #[test]
    fn one_hot_layout_and_validation() {
        let oh = one_hot(&[2, 0], 3).unwrap();
        assert_eq!(oh.data(), &[0., 0., 1., 1., 0., 0.]);
        assert!(one_hot(&[3], 3).is_err());
        assert!(one_hot(&[0], 0).is_err());
    }

    proptest! {
        /// Softmax-CE gradient matches finite differences.
        #[test]
        fn prop_softmax_ce_grad_fd(
            z0 in -3.0f64..3.0,
            z1 in -3.0f64..3.0,
            z2 in -3.0f64..3.0,
            label in 0usize..3,
        ) {
            let y = one_hot(&[label], 3).unwrap();
            let z = Matrix::from_vec(1, 3, vec![z0, z1, z2]).unwrap();
            let (_, g) = softmax_cross_entropy(&z, &y).unwrap();
            let eps = 1e-6;
            for i in 0..3 {
                let mut plus = z.clone();
                plus.data_mut()[i] += eps;
                let mut minus = z.clone();
                minus.data_mut()[i] -= eps;
                let fd = (softmax_cross_entropy(&plus, &y).unwrap().0
                    - softmax_cross_entropy(&minus, &y).unwrap().0)
                    / (2.0 * eps);
                prop_assert!((fd - g.data()[i]).abs() < 1e-5);
            }
        }

        /// MSE gradient matches finite differences.
        #[test]
        fn prop_mse_grad_fd(p0 in -3.0f64..3.0, p1 in -3.0f64..3.0) {
            let t = Matrix::from_vec(1, 2, vec![0.3, -0.7]).unwrap();
            let eps = 1e-6;
            let p = Matrix::from_vec(1, 2, vec![p0, p1]).unwrap();
            let (_, g) = mse(&p, &t).unwrap();
            for i in 0..2 {
                let mut plus = p.clone();
                plus.data_mut()[i] += eps;
                let mut minus = p.clone();
                minus.data_mut()[i] -= eps;
                let fd = (mse(&plus, &t).unwrap().0 - mse(&minus, &t).unwrap().0) / (2.0 * eps);
                prop_assert!((fd - g.data()[i]).abs() < 1e-5);
            }
        }

        /// Huber gradient matches finite differences away from the kink.
        #[test]
        fn prop_huber_grad_fd(p0 in -3.0f64..3.0) {
            let t = Matrix::from_vec(1, 1, vec![0.0]).unwrap();
            let delta = 1.0;
            prop_assume!((p0.abs() - delta).abs() > 1e-3);
            let eps = 1e-6;
            let p = Matrix::from_vec(1, 1, vec![p0]).unwrap();
            let (_, g) = huber(&p, &t, delta).unwrap();
            let mut plus = p.clone();
            plus.data_mut()[0] += eps;
            let mut minus = p.clone();
            minus.data_mut()[0] -= eps;
            let fd = (huber(&plus, &t, delta).unwrap().0 - huber(&minus, &t, delta).unwrap().0)
                / (2.0 * eps);
            prop_assert!((fd - g.data()[0]).abs() < 1e-5);
        }

        /// BCE gradient matches finite differences in the open interval.
        #[test]
        fn prop_bce_grad_fd(p0 in 0.05f64..0.95, t0 in 0.0f64..1.0) {
            let eps = 1e-6;
            let t = Matrix::from_vec(1, 1, vec![t0]).unwrap();
            let p = Matrix::from_vec(1, 1, vec![p0]).unwrap();
            let (_, g) = binary_cross_entropy(&p, &t).unwrap();
            let mut plus = p.clone();
            plus.data_mut()[0] += eps;
            let mut minus = p.clone();
            minus.data_mut()[0] -= eps;
            let fd = (binary_cross_entropy(&plus, &t).unwrap().0
                - binary_cross_entropy(&minus, &t).unwrap().0)
                / (2.0 * eps);
            prop_assert!((fd - g.data()[0]).abs() < 1e-4);
        }
    }
}
