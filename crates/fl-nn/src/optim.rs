//! First-order optimizers over an [`Mlp`]'s flat parameter view.
//!
//! Optimizers own their per-parameter state (momentum, second moments) in
//! flat vectors whose layout matches [`Mlp::visit_params`] order, so one
//! optimizer instance is bound to one network architecture.

use crate::{Mlp, NnError};
use serde::{Deserialize, Serialize};

/// A portable dump of an optimizer's mutable state, captured by
/// [`Sgd::state`]/[`Adam::state`] and re-applied with the matching
/// `restore`. Checkpoint/resume must carry these moments: restarting Adam
/// with zeroed moments silently changes the next update step even when the
/// network parameters are bit-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimState {
    /// Current learning rate (schedules mutate it).
    pub lr: f64,
    /// Update steps applied so far (drives Adam's bias correction).
    pub steps: u64,
    /// First-moment buffer (SGD velocity / Adam `m`), parameter-ordered.
    pub first_moment: Vec<f64>,
    /// Second-moment buffer (Adam `v`; empty for SGD).
    pub second_moment: Vec<f64>,
}

/// A gradient-descent style optimizer.
///
/// `step` consumes the gradients currently accumulated in the network and
/// applies one parameter update; it does **not** clear the gradients — call
/// [`Mlp::zero_grad`] before the next backward pass (mirrors the usual
/// PyTorch contract the paper's reference stack assumes).
pub trait Optimizer {
    /// Applies one update step using `net`'s accumulated gradients.
    fn step(&mut self, net: &mut Mlp);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Replaces the learning rate (for schedules/annealing).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Stochastic gradient descent with optional classical momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(num_params: usize, lr: f64) -> Self {
        Self::with_momentum(num_params, lr, 0.0)
    }

    /// SGD with momentum coefficient `momentum` in `[0, 1)`.
    pub fn with_momentum(num_params: usize, lr: f64, momentum: f64) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: vec![0.0; num_params],
        }
    }

    /// Captures the mutable state for checkpointing.
    pub fn state(&self) -> OptimState {
        OptimState {
            lr: self.lr,
            steps: 0,
            first_moment: self.velocity.clone(),
            second_moment: Vec::new(),
        }
    }

    /// Restores state captured by [`Sgd::state`]. Fails if the buffer
    /// length does not match this optimizer's parameter count.
    pub fn restore(&mut self, state: &OptimState) -> Result<(), NnError> {
        if state.first_moment.len() != self.velocity.len() {
            return Err(NnError::InvalidArgument(format!(
                "optimizer state covers {} params, expected {}",
                state.first_moment.len(),
                self.velocity.len()
            )));
        }
        self.lr = state.lr;
        self.velocity = state.first_moment.clone();
        Ok(())
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Mlp) {
        let (lr, mu) = (self.lr, self.momentum);
        let mut i = 0;
        let velocity = &mut self.velocity;
        net.visit_params(|p, g| {
            let v = &mut velocity[i];
            *v = mu * *v + g;
            *p -= lr * *v;
            i += 1;
        });
        debug_assert_eq!(i, velocity.len(), "optimizer bound to wrong network");
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction — the optimizer used for both
/// PPO networks and the FedAvg local solvers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999) and eps 1e-8.
    pub fn new(num_params: usize, lr: f64) -> Self {
        Self::with_config(num_params, lr, 0.9, 0.999, 1e-8)
    }

    /// Fully configured Adam.
    pub fn with_config(num_params: usize, lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: vec![0.0; num_params],
            v: vec![0.0; num_params],
        }
    }

    /// Number of updates applied so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Captures the mutable state (step count and both moment buffers) for
    /// checkpointing.
    pub fn state(&self) -> OptimState {
        OptimState {
            lr: self.lr,
            steps: self.t,
            first_moment: self.m.clone(),
            second_moment: self.v.clone(),
        }
    }

    /// Restores state captured by [`Adam::state`]. Fails if the buffer
    /// lengths do not match this optimizer's parameter count.
    pub fn restore(&mut self, state: &OptimState) -> Result<(), NnError> {
        if state.first_moment.len() != self.m.len() || state.second_moment.len() != self.v.len() {
            return Err(NnError::InvalidArgument(format!(
                "optimizer state covers {}/{} params, expected {}",
                state.first_moment.len(),
                state.second_moment.len(),
                self.m.len()
            )));
        }
        self.lr = state.lr;
        self.t = state.steps;
        self.m = state.first_moment.clone();
        self.v = state.second_moment.clone();
        Ok(())
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Mlp) {
        self.t += 1;
        let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let mut i = 0;
        let (m, v) = (&mut self.m, &mut self.v);
        net.visit_params(|p, g| {
            m[i] = b1 * m[i] + (1.0 - b1) * g;
            v[i] = b2 * v[i] + (1.0 - b2) * g * g;
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            *p -= lr * mhat / (vhat.sqrt() + eps);
            i += 1;
        });
        debug_assert_eq!(i, m.len(), "optimizer bound to wrong network");
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// RMSProp — kept for ablations against Adam on the PPO update.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RmsProp {
    lr: f64,
    decay: f64,
    eps: f64,
    sq: Vec<f64>,
}

impl RmsProp {
    /// RMSProp with the given decay (typically 0.99).
    pub fn new(num_params: usize, lr: f64, decay: f64) -> Self {
        RmsProp {
            lr,
            decay,
            eps: 1e-8,
            sq: vec![0.0; num_params],
        }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, net: &mut Mlp) {
        let (lr, d, eps) = (self.lr, self.decay, self.eps);
        let mut i = 0;
        let sq = &mut self.sq;
        net.visit_params(|p, g| {
            sq[i] = d * sq[i] + (1.0 - d) * g * g;
            *p -= lr * g / (sq[i].sqrt() + eps);
            i += 1;
        });
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{loss, Activation, Matrix, Mlp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Trains y = 2x - 1 with each optimizer; all should reduce MSE a lot.
    fn train_linear(opt: &mut dyn Optimizer, net: &mut Mlp, steps: usize) -> (f64, f64) {
        let x = Matrix::from_vec(8, 1, (0..8).map(|i| i as f64 / 8.0).collect()).unwrap();
        let y = x.map(|v| 2.0 * v - 1.0);
        let pred0 = net.forward(&x);
        let (first, _) = loss::mse(&pred0, &y).unwrap();
        let mut last = first;
        for _ in 0..steps {
            let pred = net.forward(&x);
            let (l, dl) = loss::mse(&pred, &y).unwrap();
            net.zero_grad();
            net.backward(&dl).unwrap();
            opt.step(net);
            last = l;
        }
        (first, last)
    }

    fn fresh_net(seed: u64) -> Mlp {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Mlp::new(
            &[1, 16, 1],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        )
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut net = fresh_net(1);
        let mut opt = Sgd::new(net.num_params(), 0.05);
        let (first, last) = train_linear(&mut opt, &mut net, 500);
        assert!(last < first * 0.1, "first={first}, last={last}");
    }

    #[test]
    fn sgd_momentum_reduces_loss() {
        let mut net = fresh_net(2);
        let mut opt = Sgd::with_momentum(net.num_params(), 0.01, 0.9);
        let (first, last) = train_linear(&mut opt, &mut net, 500);
        assert!(last < first * 0.1, "first={first}, last={last}");
    }

    #[test]
    fn adam_reduces_loss_fast() {
        let mut net = fresh_net(3);
        let mut opt = Adam::new(net.num_params(), 0.01);
        let (first, last) = train_linear(&mut opt, &mut net, 300);
        assert!(last < first * 0.05, "first={first}, last={last}");
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn rmsprop_reduces_loss() {
        let mut net = fresh_net(4);
        let mut opt = RmsProp::new(net.num_params(), 0.005, 0.99);
        let (first, last) = train_linear(&mut opt, &mut net, 500);
        assert!(last < first * 0.1, "first={first}, last={last}");
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(10, 0.001);
        assert_eq!(opt.learning_rate(), 0.001);
        opt.set_learning_rate(0.0001);
        assert_eq!(opt.learning_rate(), 0.0001);
    }

    #[test]
    fn optimizer_state_roundtrip_is_exact() {
        // Train a net, snapshot the optimizer, train a fresh optimizer from
        // the restored state alongside the original: both must take
        // bit-identical steps.
        let mut net = fresh_net(6);
        let mut opt = Adam::new(net.num_params(), 0.01);
        train_linear(&mut opt, &mut net, 50);

        let state = opt.state();
        assert_eq!(state.steps, 50);
        let mut twin = Adam::new(net.num_params(), 0.9); // wrong lr on purpose
        twin.restore(&state).unwrap();
        assert_eq!(twin.learning_rate(), opt.learning_rate());

        let mut net2 = net.clone();
        let x = Matrix::from_vec(4, 1, vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        let y = x.map(|v| 2.0 * v - 1.0);
        for _ in 0..10 {
            for (n, o) in [(&mut net, &mut opt), (&mut net2, &mut twin)] {
                let pred = n.forward(&x);
                let (_, dl) = loss::mse(&pred, &y).unwrap();
                n.zero_grad();
                n.backward(&dl).unwrap();
                o.step(n);
            }
        }
        assert_eq!(net.export_params(), net2.export_params());
    }

    #[test]
    fn sgd_state_roundtrip_and_length_checks() {
        let mut net = fresh_net(7);
        let mut opt = Sgd::with_momentum(net.num_params(), 0.01, 0.9);
        train_linear(&mut opt, &mut net, 20);
        let state = opt.state();
        let mut twin = Sgd::with_momentum(net.num_params(), 0.5, 0.9);
        twin.restore(&state).unwrap();
        assert_eq!(twin.learning_rate(), 0.01);

        // Wrong-arity states are rejected, not silently truncated.
        let mut small = Sgd::new(3, 0.01);
        assert!(small.restore(&state).is_err());
        let mut small_adam = Adam::new(3, 0.01);
        assert!(small_adam.restore(&Adam::new(5, 0.01).state()).is_err());
    }

    #[test]
    fn zero_grad_means_no_update_direction() {
        // With no backward pass, gradients visit as zero; Adam must not move
        // parameters (m and v stay zero, mhat/vhat are 0/eps).
        let mut net = fresh_net(5);
        let before = net.export_params();
        let mut opt = Adam::new(net.num_params(), 0.1);
        net.zero_grad();
        opt.step(&mut net);
        let after = net.export_params();
        for (a, b) in before.iter().zip(&after) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
