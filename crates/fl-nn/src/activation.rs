//! Activation functions and their derivatives.

use serde::{Deserialize, Serialize};

/// Pointwise activation applied after a dense layer's affine transform.
///
/// The derivative is evaluated at the *pre-activation* value `z`, matching
/// how [`crate::Dense`] caches its forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `f(z) = z` — used on output layers of regressors / policy means.
    Identity,
    /// Rectified linear unit, `max(0, z)`.
    Relu,
    /// Leaky ReLU with slope 0.01 for negative inputs.
    LeakyRelu,
    /// Hyperbolic tangent, the paper-standard hidden activation for PPO.
    Tanh,
    /// Logistic sigmoid `1 / (1 + e^-z)`.
    Sigmoid,
    /// Softplus `ln(1 + e^z)`, a smooth positive mapping (used where a
    /// strictly positive output such as a standard deviation is required).
    Softplus,
}

const LEAKY_SLOPE: f64 = 0.01;

impl Activation {
    /// Applies the activation to a single pre-activation value.
    #[inline]
    pub fn apply(self, z: f64) -> f64 {
        match self {
            Activation::Identity => z,
            Activation::Relu => z.max(0.0),
            Activation::LeakyRelu => {
                if z > 0.0 {
                    z
                } else {
                    LEAKY_SLOPE * z
                }
            }
            Activation::Tanh => z.tanh(),
            Activation::Sigmoid => sigmoid(z),
            Activation::Softplus => softplus(z),
        }
    }

    /// Derivative `f'(z)` evaluated at the pre-activation value `z`.
    #[inline]
    pub fn derivative(self, z: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if z > 0.0 {
                    1.0
                } else {
                    LEAKY_SLOPE
                }
            }
            Activation::Tanh => {
                let t = z.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = sigmoid(z);
                s * (1.0 - s)
            }
            Activation::Softplus => sigmoid(z),
        }
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable softplus: for large `z` returns `z` directly instead
/// of overflowing `e^z`.
#[inline]
pub fn softplus(z: f64) -> f64 {
    if z > 30.0 {
        z
    } else if z < -30.0 {
        z.exp()
    } else {
        z.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const ALL: [Activation; 6] = [
        Activation::Identity,
        Activation::Relu,
        Activation::LeakyRelu,
        Activation::Tanh,
        Activation::Sigmoid,
        Activation::Softplus,
    ];

    #[test]
    fn known_values() {
        assert_eq!(Activation::Identity.apply(3.5), 3.5);
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-15);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-15);
        assert!((Activation::Softplus.apply(0.0) - 2.0f64.ln()).abs() < 1e-12);
        assert!((Activation::LeakyRelu.apply(-1.0) + 0.01).abs() < 1e-15);
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!((sigmoid(1000.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1000.0).abs() < 1e-12);
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn softplus_stable_at_extremes() {
        assert!((softplus(100.0) - 100.0).abs() < 1e-9);
        assert!(softplus(-100.0) >= 0.0);
        assert!(softplus(-100.0) < 1e-30);
    }

    proptest! {
        /// Finite-difference check of every activation derivative.
        #[test]
        fn prop_derivative_matches_finite_difference(
            z in -5.0f64..5.0,
        ) {
            let eps = 1e-6;
            for act in ALL {
                // Skip the kink of (leaky) relu where FD is ill-defined.
                if matches!(act, Activation::Relu | Activation::LeakyRelu) && z.abs() < 1e-3 {
                    continue;
                }
                let fd = (act.apply(z + eps) - act.apply(z - eps)) / (2.0 * eps);
                let an = act.derivative(z);
                prop_assert!(
                    (fd - an).abs() < 1e-4,
                    "{act:?} at {z}: fd={fd}, analytic={an}"
                );
            }
        }

        #[test]
        fn prop_softplus_positive_and_monotone(a in -20.0f64..20.0, b in -20.0f64..20.0) {
            prop_assert!(softplus(a) >= 0.0);
            if a < b {
                prop_assert!(softplus(a) <= softplus(b) + 1e-12);
            }
        }

        #[test]
        fn prop_sigmoid_bounded(z in -50.0f64..50.0) {
            let s = sigmoid(z);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}
