//! Trace I/O: a minimal CSV format and serde-JSON round-tripping.
//!
//! The CSV format is one `time_seconds,bandwidth_mbps` pair per line with an
//! optional header, matching how public 4G measurement datasets (e.g. the
//! Ghent dataset the paper uses) are distributed — so a user who *does* have
//! the real data can drop it in without code changes.

use crate::{BandwidthTrace, NetError, Result};

/// Serializes a trace to CSV (`time,bandwidth` per slot, header included).
pub fn to_csv(trace: &BandwidthTrace) -> String {
    let mut out = String::with_capacity(trace.num_slots() * 16 + 32);
    out.push_str("time_s,bandwidth_mbs\n");
    for (i, b) in trace.slots().iter().enumerate() {
        out.push_str(&format!(
            "{:.3},{:.6}\n",
            i as f64 * trace.slot_duration(),
            b
        ));
    }
    out
}

/// Parses a trace from CSV text.
///
/// Expects monotonically increasing, evenly spaced timestamps; the slot
/// duration is inferred from the first two rows (or `fallback_slot` for a
/// single-row file). Lines starting with `#` and a `time,...` header are
/// skipped.
pub fn from_csv(text: &str, fallback_slot: f64) -> Result<BandwidthTrace> {
    let mut times = Vec::new();
    let mut bws = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',');
        let t_str = parts.next().unwrap_or("");
        if t_str.chars().next().is_some_and(|c| c.is_alphabetic()) {
            continue; // header row
        }
        let b_str = parts.next().ok_or_else(|| {
            NetError::Parse(format!("line {}: expected 'time,bandwidth'", lineno + 1))
        })?;
        let t: f64 = t_str
            .trim()
            .parse()
            .map_err(|e| NetError::Parse(format!("line {}: bad time: {e}", lineno + 1)))?;
        let b: f64 = b_str
            .trim()
            .parse()
            .map_err(|e| NetError::Parse(format!("line {}: bad bandwidth: {e}", lineno + 1)))?;
        times.push(t);
        bws.push(b);
    }
    if bws.is_empty() {
        return Err(NetError::Parse("no data rows found".to_string()));
    }
    let slot = if times.len() >= 2 {
        let d = times[1] - times[0];
        if !(d > 0.0) {
            return Err(NetError::Parse(
                "timestamps must be strictly increasing".to_string(),
            ));
        }
        // Verify even spacing within 1% tolerance.
        for w in times.windows(2) {
            if ((w[1] - w[0]) - d).abs() > 0.01 * d {
                return Err(NetError::Parse(format!(
                    "uneven slot spacing: {} vs {}",
                    w[1] - w[0],
                    d
                )));
            }
        }
        d
    } else {
        fallback_slot
    };
    BandwidthTrace::new(slot, bws)
}

/// Serializes a trace to JSON via serde.
pub fn to_json(trace: &BandwidthTrace) -> Result<String> {
    serde_json::to_string_pretty(trace).map_err(|e| NetError::Parse(format!("json encode: {e}")))
}

/// Parses a trace from serde JSON.
pub fn from_json(text: &str) -> Result<BandwidthTrace> {
    serde_json::from_str(text).map_err(|e| NetError::Parse(format!("json decode: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> BandwidthTrace {
        BandwidthTrace::new(2.0, vec![1.5, 0.0, 3.25]).unwrap()
    }

    #[test]
    fn csv_roundtrip() {
        let t = trace();
        let csv = to_csv(&t);
        let parsed = from_csv(&csv, 1.0).unwrap();
        assert_eq!(parsed.num_slots(), 3);
        assert!((parsed.slot_duration() - 2.0).abs() < 1e-9);
        for (a, b) in parsed.slots().iter().zip(t.slots()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn csv_skips_header_comments_blanks() {
        let text = "# comment\ntime_s,bandwidth_mbs\n\n0.0,1.0\n1.0,2.0\n";
        let t = from_csv(text, 1.0).unwrap();
        assert_eq!(t.slots(), &[1.0, 2.0]);
        assert_eq!(t.slot_duration(), 1.0);
    }

    #[test]
    fn csv_single_row_uses_fallback() {
        let t = from_csv("0.0,5.0\n", 7.0).unwrap();
        assert_eq!(t.slot_duration(), 7.0);
        assert_eq!(t.slots(), &[5.0]);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(from_csv("", 1.0).is_err());
        assert!(from_csv("0.0\n", 1.0).is_err());
        assert!(from_csv("abc,1.0\n0.0,xyz\n", 1.0).is_err());
        assert!(from_csv("1.0,1.0\n0.5,1.0\n", 1.0).is_err()); // decreasing
        assert!(from_csv("0.0,1.0\n1.0,1.0\n3.0,1.0\n", 1.0).is_err()); // uneven
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let t = trace().cyclic();
        let json = to_json(&t).unwrap();
        let parsed = from_json(&json).unwrap();
        assert_eq!(parsed, t);
        assert!(parsed.is_cyclic());
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(from_json("not json").is_err());
    }
}
