//! Synthetic bandwidth-trace generators.
//!
//! Stand-ins for the paper's measurement datasets (Ghent 4G walking traces,
//! Norwegian HSDPA bus traces), which are not redistributable. Each model
//! reproduces the property the scheduling problem actually depends on:
//! bandwidth that is *temporally correlated on short timescales* (so recent
//! history is informative — the premise of the DRL state design) yet
//! *non-stationary* (so a static configuration decays — the premise of the
//! paper's comparison against the Static baseline).

use crate::{BandwidthTrace, NetError, Result};
use fl_nn_gaussian::gaussian;
use rand::Rng;
use serde::{Deserialize, Serialize};

// Small shim so this crate does not depend on fl-nn just for Box–Muller.
mod fl_nn_gaussian {
    use rand::Rng;

    /// Standard normal sample via Box–Muller.
    pub fn gaussian(rng: &mut impl Rng) -> f64 {
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// First-order Gauss–Markov (AR(1)) bandwidth model:
/// `b_{t+1} = μ + ρ (b_t − μ) + σ √(1−ρ²) ε`, clamped to `[floor, ceil]`.
///
/// Captures smooth fading channels (e.g. the HSDPA bus traces, where speed
/// varies slowly along a route).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussMarkov {
    /// Long-run mean bandwidth (MB/s).
    pub mean: f64,
    /// Stationary standard deviation (MB/s).
    pub std: f64,
    /// One-slot autocorrelation in `[0, 1)`.
    pub rho: f64,
    /// Lower clamp (MB/s, usually 0).
    pub floor: f64,
    /// Upper clamp (MB/s).
    pub ceil: f64,
}

impl GaussMarkov {
    fn validate(&self) -> Result<()> {
        if !(self.std >= 0.0) || !(0.0..1.0).contains(&self.rho) {
            return Err(NetError::InvalidArgument(format!(
                "GaussMarkov needs std >= 0 and rho in [0,1), got std={}, rho={}",
                self.std, self.rho
            )));
        }
        if !(self.floor >= 0.0) || self.ceil <= self.floor {
            return Err(NetError::InvalidArgument(format!(
                "GaussMarkov needs 0 <= floor < ceil, got [{}, {}]",
                self.floor, self.ceil
            )));
        }
        Ok(())
    }

    fn generate(&self, num_slots: usize, rng: &mut impl Rng) -> Vec<f64> {
        let innov = self.std * (1.0 - self.rho * self.rho).sqrt();
        let mut b = (self.mean + self.std * gaussian(rng)).clamp(self.floor, self.ceil);
        let mut out = Vec::with_capacity(num_slots);
        for _ in 0..num_slots {
            out.push(b);
            b = (self.mean + self.rho * (b - self.mean) + innov * gaussian(rng))
                .clamp(self.floor, self.ceil);
        }
        out
    }
}

/// A regime (channel-quality level) of the [`MarkovRegime`] model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Regime {
    /// Mean bandwidth in this regime (MB/s).
    pub mean: f64,
    /// Within-regime noise standard deviation (MB/s).
    pub std: f64,
}

/// Markov-modulated bandwidth: a hidden regime chain (good/fair/bad channel)
/// with Gaussian noise around each regime's mean. This mimics the abrupt
/// multi-MB/s swings of the Ghent 4G walking traces (Fig. 2a), where a
/// pedestrian moves between cells and obstructions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovRegime {
    /// The regimes, indexed by the hidden state.
    pub regimes: Vec<Regime>,
    /// Row-stochastic transition matrix between regimes (per slot).
    pub transition: Vec<Vec<f64>>,
    /// Global lower clamp (MB/s).
    pub floor: f64,
    /// Global upper clamp (MB/s).
    pub ceil: f64,
}

impl MarkovRegime {
    fn validate(&self) -> Result<()> {
        let k = self.regimes.len();
        if k == 0 {
            return Err(NetError::InvalidArgument(
                "MarkovRegime needs at least one regime".to_string(),
            ));
        }
        if self.transition.len() != k || self.transition.iter().any(|row| row.len() != k) {
            return Err(NetError::InvalidArgument(format!(
                "transition matrix must be {k}x{k}"
            )));
        }
        for row in &self.transition {
            let s: f64 = row.iter().sum();
            if row.iter().any(|&p| !(0.0..=1.0).contains(&p)) || (s - 1.0).abs() > 1e-9 {
                return Err(NetError::InvalidArgument(format!(
                    "transition rows must be distributions, got row sum {s}"
                )));
            }
        }
        if !(self.floor >= 0.0) || self.ceil <= self.floor {
            return Err(NetError::InvalidArgument(format!(
                "MarkovRegime needs 0 <= floor < ceil, got [{}, {}]",
                self.floor, self.ceil
            )));
        }
        Ok(())
    }

    fn generate(&self, num_slots: usize, rng: &mut impl Rng) -> Vec<f64> {
        let k = self.regimes.len();
        let mut state = rng.gen_range(0..k);
        let mut out = Vec::with_capacity(num_slots);
        for _ in 0..num_slots {
            let r = &self.regimes[state];
            out.push((r.mean + r.std * gaussian(rng)).clamp(self.floor, self.ceil));
            // Sample the next regime from the transition row.
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut next = k - 1;
            for (j, &p) in self.transition[state].iter().enumerate() {
                acc += p;
                if u < acc {
                    next = j;
                    break;
                }
            }
            state = next;
        }
        out
    }
}

/// On–off channel: alternating connected / disconnected runs of geometric
/// length. Models tunnels and coverage holes (the Fig. 2b traces hit zero).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnOff {
    /// Mean bandwidth while connected (MB/s).
    pub on_mean: f64,
    /// Bandwidth noise std while connected (MB/s).
    pub on_std: f64,
    /// Per-slot probability of dropping from on to off.
    pub p_drop: f64,
    /// Per-slot probability of recovering from off to on.
    pub p_recover: f64,
    /// Upper clamp (MB/s).
    pub ceil: f64,
}

impl OnOff {
    fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.p_drop) || !(0.0..=1.0).contains(&self.p_recover) {
            return Err(NetError::InvalidArgument(
                "OnOff probabilities must be in [0,1]".to_string(),
            ));
        }
        if !(self.on_mean > 0.0) || !(self.on_std >= 0.0) || !(self.ceil > 0.0) {
            return Err(NetError::InvalidArgument(
                "OnOff needs on_mean > 0, on_std >= 0, ceil > 0".to_string(),
            ));
        }
        Ok(())
    }

    fn generate(&self, num_slots: usize, rng: &mut impl Rng) -> Vec<f64> {
        let mut on = rng.gen_bool(0.5);
        let mut out = Vec::with_capacity(num_slots);
        for _ in 0..num_slots {
            if on {
                out.push((self.on_mean + self.on_std * gaussian(rng)).clamp(0.0, self.ceil));
                if rng.gen::<f64>() < self.p_drop {
                    on = false;
                }
            } else {
                out.push(0.0);
                if rng.gen::<f64>() < self.p_recover {
                    on = true;
                }
            }
        }
        out
    }
}

/// Deterministic diurnal-style pattern plus noise; useful for ablations
/// where the optimal policy is analytically predictable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SineNoise {
    /// Mean bandwidth (MB/s).
    pub mean: f64,
    /// Sine amplitude (MB/s).
    pub amplitude: f64,
    /// Period in slots.
    pub period: f64,
    /// Gaussian noise std (MB/s).
    pub noise_std: f64,
}

impl SineNoise {
    fn validate(&self) -> Result<()> {
        if !(self.period > 0.0) || !(self.noise_std >= 0.0) {
            return Err(NetError::InvalidArgument(
                "SineNoise needs period > 0 and noise_std >= 0".to_string(),
            ));
        }
        Ok(())
    }

    fn generate(&self, num_slots: usize, rng: &mut impl Rng) -> Vec<f64> {
        (0..num_slots)
            .map(|i| {
                let phase = std::f64::consts::TAU * i as f64 / self.period;
                (self.mean + self.amplitude * phase.sin() + self.noise_std * gaussian(rng)).max(0.0)
            })
            .collect()
    }
}

/// A serializable union of all trace models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceModel {
    /// AR(1) model.
    GaussMarkov(GaussMarkov),
    /// Markov-modulated regimes.
    MarkovRegime(MarkovRegime),
    /// On–off channel.
    OnOff(OnOff),
    /// Sine + noise.
    SineNoise(SineNoise),
    /// Route diversity: every *generated trace* draws one global scale
    /// factor `u ~ U(scale_lo, scale_hi)` applied to the inner model's
    /// output. Models how different measurement routes (the paper's
    /// distinct "walking datasets") have different average coverage —
    /// which is what makes a pool-wide average bandwidth estimate (the
    /// Static baseline's input) biased for any individual device.
    Scaled {
        /// The per-slot model.
        inner: Box<TraceModel>,
        /// Minimum route scale.
        scale_lo: f64,
        /// Maximum route scale.
        scale_hi: f64,
    },
}

impl TraceModel {
    /// Validates the model parameters.
    pub fn validate(&self) -> Result<()> {
        match self {
            TraceModel::GaussMarkov(m) => m.validate(),
            TraceModel::MarkovRegime(m) => m.validate(),
            TraceModel::OnOff(m) => m.validate(),
            TraceModel::SineNoise(m) => m.validate(),
            TraceModel::Scaled {
                inner,
                scale_lo,
                scale_hi,
            } => {
                if !(*scale_lo > 0.0) || scale_hi < scale_lo {
                    return Err(NetError::InvalidArgument(format!(
                        "Scaled needs 0 < scale_lo <= scale_hi, got [{scale_lo}, {scale_hi}]"
                    )));
                }
                inner.validate()
            }
        }
    }

    /// Generates a trace of `num_slots` slots of `slot_duration` seconds.
    pub fn generate(
        &self,
        num_slots: usize,
        slot_duration: f64,
        rng: &mut impl Rng,
    ) -> Result<BandwidthTrace> {
        self.validate()?;
        if num_slots == 0 {
            return Err(NetError::InvalidArgument(
                "num_slots must be nonzero".to_string(),
            ));
        }
        let slots = match self {
            TraceModel::GaussMarkov(m) => m.generate(num_slots, rng),
            TraceModel::MarkovRegime(m) => m.generate(num_slots, rng),
            TraceModel::OnOff(m) => m.generate(num_slots, rng),
            TraceModel::SineNoise(m) => m.generate(num_slots, rng),
            TraceModel::Scaled {
                inner,
                scale_lo,
                scale_hi,
            } => {
                let scale = if scale_lo == scale_hi {
                    *scale_lo
                } else {
                    rng.gen_range(*scale_lo..*scale_hi)
                };
                let mut slots = inner
                    .generate(num_slots, slot_duration, rng)?
                    .slots()
                    .to_vec();
                for s in &mut slots {
                    *s *= scale;
                }
                slots
            }
        };
        BandwidthTrace::new(slot_duration, slots)
    }
}

/// Named presets matching the measurement campaigns the paper uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Profile {
    /// Ghent 4G/LTE walking traces (Fig. 2a): 0–9 MB/s, abrupt regime
    /// changes as the pedestrian crosses cells.
    Walking4G,
    /// Norwegian HSDPA bus traces (Fig. 2b): 0–0.8 MB/s, smooth fading with
    /// occasional outages.
    BusHsdpa,
    /// A near-stationary indoor connection (ablation reference).
    Stationary,
    /// Fast-moving vehicle on a highway: strong swings plus outages.
    Driving4G,
    /// City tram (HSDPA campaign): stop-and-go rhythm — good throughput at
    /// stations, fading between them.
    TramHsdpa,
    /// Regional train (HSDPA campaign): moderate average with long deep
    /// fades (tunnels, cuttings).
    TrainHsdpa,
}

impl Profile {
    /// The concrete model behind the preset.
    pub fn model(self) -> TraceModel {
        match self {
            // Sticky regimes: dwell times of ~50-100 s (Fig. 2a shows the
            // walking traces holding a level for minutes, then swinging by
            // several MB/s). The dwell time being longer than one FL
            // iteration is what makes bandwidth *history* informative — and
            // what breaks the Static baseline's stationarity assumption.
            Profile::Walking4G => TraceModel::Scaled {
                inner: Box::new(TraceModel::MarkovRegime(MarkovRegime {
                    regimes: vec![
                        Regime {
                            mean: 6.5,
                            std: 1.8,
                        }, // good cell, line of sight
                        Regime {
                            mean: 3.2,
                            std: 1.4,
                        }, // fair
                        Regime {
                            mean: 0.8,
                            std: 0.6,
                        }, // obstructed / cell edge
                    ],
                    transition: vec![
                        vec![0.990, 0.008, 0.002],
                        vec![0.010, 0.980, 0.010],
                        vec![0.004, 0.016, 0.980],
                    ],
                    floor: 0.05,
                    ceil: 6.8,
                })),
                // Route luck: distinct walking datasets differ in average
                // coverage by roughly this factor in the Ghent campaign.
                scale_lo: 0.6,
                scale_hi: 1.4,
            },
            Profile::BusHsdpa => TraceModel::GaussMarkov(GaussMarkov {
                mean: 0.40,
                std: 0.18,
                rho: 0.95,
                floor: 0.0,
                ceil: 0.80,
            }),
            Profile::Stationary => TraceModel::GaussMarkov(GaussMarkov {
                mean: 5.0,
                std: 0.3,
                rho: 0.5,
                floor: 3.0,
                ceil: 7.0,
            }),
            Profile::Driving4G => TraceModel::OnOff(OnOff {
                on_mean: 4.0,
                on_std: 1.5,
                p_drop: 0.04,
                p_recover: 0.30,
                ceil: 9.0,
            }),
            // Stop-and-go: ~70 s between stations (the sine period) with a
            // swing between near-zero (moving, urban canyon) and strong
            // (stopped at a station with line of sight).
            Profile::TramHsdpa => TraceModel::SineNoise(SineNoise {
                mean: 0.45,
                amplitude: 0.3,
                period: 70.0,
                noise_std: 0.08,
            }),
            // Regional train: decent cruising throughput with long, deep
            // fades (tunnels/cuttings) — sticky two-regime chain.
            Profile::TrainHsdpa => TraceModel::MarkovRegime(MarkovRegime {
                regimes: vec![
                    Regime {
                        mean: 0.6,
                        std: 0.15,
                    }, // open track
                    Regime {
                        mean: 0.05,
                        std: 0.03,
                    }, // tunnel / cutting
                ],
                transition: vec![vec![0.992, 0.008], vec![0.03, 0.97]],
                floor: 0.0,
                ceil: 1.0,
            }),
        }
    }

    /// Generates a trace for this preset.
    pub fn generate(
        self,
        num_slots: usize,
        slot_duration: f64,
        rng: &mut impl Rng,
    ) -> Result<BandwidthTrace> {
        self.model().generate(num_slots, slot_duration, rng)
    }

    /// All presets, for sweeps.
    pub fn all() -> [Profile; 6] {
        [
            Profile::Walking4G,
            Profile::BusHsdpa,
            Profile::Stationary,
            Profile::Driving4G,
            Profile::TramHsdpa,
            Profile::TrainHsdpa,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn gauss_markov_validates() {
        let bad = GaussMarkov {
            mean: 1.0,
            std: -1.0,
            rho: 0.5,
            floor: 0.0,
            ceil: 2.0,
        };
        assert!(TraceModel::GaussMarkov(bad).validate().is_err());
        let bad_rho = GaussMarkov {
            mean: 1.0,
            std: 1.0,
            rho: 1.0,
            floor: 0.0,
            ceil: 2.0,
        };
        assert!(TraceModel::GaussMarkov(bad_rho).validate().is_err());
        let bad_bounds = GaussMarkov {
            mean: 1.0,
            std: 1.0,
            rho: 0.5,
            floor: 2.0,
            ceil: 1.0,
        };
        assert!(TraceModel::GaussMarkov(bad_bounds).validate().is_err());
    }

    #[test]
    fn markov_regime_validates_transition() {
        let m = MarkovRegime {
            regimes: vec![Regime {
                mean: 1.0,
                std: 0.1,
            }],
            transition: vec![vec![0.5]], // does not sum to 1
            floor: 0.0,
            ceil: 2.0,
        };
        assert!(TraceModel::MarkovRegime(m).validate().is_err());
        let empty = MarkovRegime {
            regimes: vec![],
            transition: vec![],
            floor: 0.0,
            ceil: 1.0,
        };
        assert!(TraceModel::MarkovRegime(empty).validate().is_err());
    }

    #[test]
    fn onoff_validates() {
        let m = OnOff {
            on_mean: 1.0,
            on_std: 0.1,
            p_drop: 1.5,
            p_recover: 0.5,
            ceil: 2.0,
        };
        assert!(TraceModel::OnOff(m).validate().is_err());
    }

    #[test]
    fn zero_slots_rejected() {
        let mut r = rng(0);
        assert!(Profile::Walking4G.generate(0, 1.0, &mut r).is_err());
    }

    #[test]
    fn walking_profile_matches_paper_envelope() {
        let mut r = rng(1);
        let t = Profile::Walking4G.generate(4000, 1.0, &mut r).unwrap();
        // Paper Fig. 2a: bandwidth between <1 MB/s and ~9 MB/s.
        assert!(t.max() <= 9.5);
        assert!(t.min() >= 0.0);
        assert!(
            t.max() > 6.0,
            "should visit the good regime, max={}",
            t.max()
        );
        assert!(
            t.min() < 1.5,
            "should visit the bad regime, min={}",
            t.min()
        );
        // Large swings within a 400 s window.
        let window = &t.slots()[..400];
        let lo = window.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = window.iter().copied().fold(0.0f64, f64::max);
        assert!(hi - lo > 3.0, "swing {}-{} too small", lo, hi);
    }

    #[test]
    fn bus_profile_matches_paper_envelope() {
        let mut r = rng(2);
        let t = Profile::BusHsdpa.generate(4000, 1.0, &mut r).unwrap();
        // Paper Fig. 2b: network quality fluctuates within [0, 800 KB/s].
        assert!(t.max() <= 0.8);
        assert!(t.min() >= 0.0);
        assert!(t.mean() > 0.1 && t.mean() < 0.7, "mean={}", t.mean());
    }

    #[test]
    fn traces_are_temporally_correlated() {
        // The DRL state design assumes recent history predicts the future;
        // verify lag-1 autocorrelation is strong for the realistic models.
        let mut r = rng(3);
        for profile in [Profile::Walking4G, Profile::BusHsdpa] {
            let t = profile.generate(5000, 1.0, &mut r).unwrap();
            let ac = stats::autocorrelation(t.slots(), 1);
            assert!(ac > 0.5, "{profile:?} lag-1 autocorr {ac} too weak");
        }
    }

    #[test]
    fn onoff_produces_outages_and_recoveries() {
        let mut r = rng(4);
        let t = Profile::Driving4G.generate(5000, 1.0, &mut r).unwrap();
        let zeros = t.slots().iter().filter(|&&b| b == 0.0).count();
        assert!(zeros > 50, "expected outages, got {zeros} zero slots");
        assert!(
            zeros < 4500,
            "channel should mostly be up, got {zeros} zero slots"
        );
    }

    #[test]
    fn sine_noise_periodicity() {
        let model = TraceModel::SineNoise(SineNoise {
            mean: 3.0,
            amplitude: 1.0,
            period: 50.0,
            noise_std: 0.0,
        });
        let mut r = rng(5);
        let t = model.generate(200, 1.0, &mut r).unwrap();
        // Noise-free sine: slot 0 and slot 50 should match.
        assert!((t.slots()[0] - t.slots()[50]).abs() < 1e-9);
        assert!((t.mean() - 3.0).abs() < 0.1);
    }

    #[test]
    fn tram_profile_stop_and_go() {
        let mut r = rng(20);
        let t = Profile::TramHsdpa.generate(2000, 1.0, &mut r).unwrap();
        // Periodic structure: strong positive autocorrelation at the sine
        // period, envelope within HSDPA magnitudes.
        assert!(t.max() <= 1.2, "max={}", t.max());
        assert!(t.min() >= 0.0);
        let ac70 = stats::autocorrelation(t.slots(), 70);
        let ac35 = stats::autocorrelation(t.slots(), 35);
        assert!(ac70 > 0.4, "period autocorr {ac70}");
        assert!(ac35 < 0.0, "half-period autocorr {ac35}");
    }

    #[test]
    fn train_profile_has_deep_fades() {
        let mut r = rng(21);
        let t = Profile::TrainHsdpa.generate(6000, 1.0, &mut r).unwrap();
        let faded = t.slots().iter().filter(|&&b| b < 0.1).count();
        assert!(
            faded > 200,
            "expected tunnel stretches, got {faded} faded slots"
        );
        assert!(
            t.mean() > 0.3,
            "open track should dominate, mean={}",
            t.mean()
        );
        assert!(t.max() <= 1.0);
    }

    #[test]
    fn all_profiles_generate() {
        let mut r = rng(22);
        for p in Profile::all() {
            let t = p.generate(300, 1.0, &mut r).unwrap();
            assert_eq!(t.num_slots(), 300);
            assert!(t.slots().iter().all(|b| b.is_finite() && *b >= 0.0));
        }
    }

    #[test]
    fn golden_profile_statistics() {
        // Golden regression pin: mean / variance / lag-1 autocorrelation of
        // every preset at a fixed seed and length. Generation is fully
        // deterministic, so drift here means the trace models (or the RNG
        // stream feeding them) changed — which silently invalidates every
        // cached controller and published figure. Regenerate by printing the
        // same three statistics at seed 0x601D, 8192 slots, 1 s.
        let goldens: [(Profile, f64, f64, f64); 6] = [
            (
                Profile::Walking4G,
                4.301321913741,
                6.521119488839,
                0.770512654681,
            ),
            (
                Profile::BusHsdpa,
                0.392548730888,
                0.029075584677,
                0.943498010799,
            ),
            (
                Profile::Stationary,
                4.996318233548,
                0.091044848632,
                0.487236011826,
            ),
            (
                Profile::Driving4G,
                3.536264601170,
                3.621244152876,
                0.302829288860,
            ),
            (
                Profile::TramHsdpa,
                0.449573040271,
                0.051236239323,
                0.866290577515,
            ),
            (
                Profile::TrainHsdpa,
                0.510723723534,
                0.059241958944,
                0.647229630337,
            ),
        ];
        for (profile, mean, var, ac1) in goldens {
            let mut r = rng(0x601D);
            let t = profile.generate(8192, 1.0, &mut r).unwrap();
            let xs = t.slots();
            let tol = 1e-9;
            let m = stats::mean(xs);
            let v = stats::variance(xs);
            let a = stats::autocorrelation(xs, 1);
            assert!(
                (m - mean).abs() < tol,
                "{profile:?} mean {m:.12} != {mean:.12}"
            );
            assert!(
                (v - var).abs() < tol,
                "{profile:?} var {v:.12} != {var:.12}"
            );
            assert!(
                (a - ac1).abs() < tol,
                "{profile:?} ac1 {a:.12} != {ac1:.12}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let t1 = Profile::Walking4G.generate(100, 1.0, &mut rng(9)).unwrap();
        let t2 = Profile::Walking4G.generate(100, 1.0, &mut rng(9)).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn distinct_seeds_give_distinct_traces() {
        let t1 = Profile::Walking4G.generate(100, 1.0, &mut rng(10)).unwrap();
        let t2 = Profile::Walking4G.generate(100, 1.0, &mut rng(11)).unwrap();
        assert_ne!(t1, t2);
    }

    #[test]
    fn gauss_markov_stationary_moments() {
        let model = GaussMarkov {
            mean: 2.0,
            std: 0.5,
            rho: 0.9,
            floor: 0.0,
            ceil: 10.0,
        };
        let mut r = rng(12);
        let slots = model.generate(50_000, &mut r);
        let m = stats::mean(&slots);
        let s = stats::std_dev(&slots);
        assert!((m - 2.0).abs() < 0.1, "mean={m}");
        assert!((s - 0.5).abs() < 0.1, "std={s}");
    }
}
