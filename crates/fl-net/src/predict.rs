//! Bandwidth predictors.
//!
//! The paper's core argument is that hand-designed predictors struggle with
//! mobile bandwidth, which is why it reaches for model-free DRL. This
//! module provides the classical predictors that argument is made against —
//! last-value, sliding-window mean, EWMA, and a fitted AR(1) — so the
//! comparison can be run rather than asserted (the `Predictive` controller
//! in `fl-ctrl` plugs any of these into the model-based solver).

use crate::{NetError, Result};
use serde::{Deserialize, Serialize};

/// A one-step-ahead bandwidth predictor over a stream of per-iteration
/// bandwidth observations.
pub trait Predictor {
    /// Name for reports.
    fn name(&self) -> &'static str;

    /// Absorbs one observed bandwidth sample (MB/s).
    fn observe(&mut self, bandwidth: f64);

    /// Predicts the next sample. Implementations return a *positive* value
    /// (clamped internally); before any observation they return `prior`.
    fn predict(&self) -> f64;

    /// Clears all state.
    fn reset(&mut self);
}

/// Floor applied to all predictions so downstream `ξ / B` stays finite.
const MIN_PRED: f64 = 1e-3;

/// Predicts the most recent observation (what the paper's Heuristic
/// baseline effectively does).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LastValue {
    prior: f64,
    last: Option<f64>,
}

impl LastValue {
    /// Creates the predictor with a prior used before any data arrives.
    pub fn new(prior: f64) -> Self {
        LastValue { prior, last: None }
    }
}

impl Predictor for LastValue {
    fn name(&self) -> &'static str {
        "last-value"
    }

    fn observe(&mut self, bandwidth: f64) {
        self.last = Some(bandwidth);
    }

    fn predict(&self) -> f64 {
        self.last.unwrap_or(self.prior).max(MIN_PRED)
    }

    fn reset(&mut self) {
        self.last = None;
    }
}

/// Mean of the last `window` observations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlidingMean {
    prior: f64,
    window: usize,
    buf: Vec<f64>,
}

impl SlidingMean {
    /// Creates the predictor; `window` must be nonzero.
    pub fn new(window: usize, prior: f64) -> Result<Self> {
        if window == 0 {
            return Err(NetError::InvalidArgument(
                "window must be nonzero".to_string(),
            ));
        }
        Ok(SlidingMean {
            prior,
            window,
            buf: Vec::new(),
        })
    }
}

impl Predictor for SlidingMean {
    fn name(&self) -> &'static str {
        "sliding-mean"
    }

    fn observe(&mut self, bandwidth: f64) {
        self.buf.push(bandwidth);
        if self.buf.len() > self.window {
            self.buf.remove(0);
        }
    }

    fn predict(&self) -> f64 {
        if self.buf.is_empty() {
            self.prior.max(MIN_PRED)
        } else {
            (self.buf.iter().sum::<f64>() / self.buf.len() as f64).max(MIN_PRED)
        }
    }

    fn reset(&mut self) {
        self.buf.clear();
    }
}

/// Exponentially weighted moving average with smoothing `alpha ∈ (0, 1]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    prior: f64,
    state: Option<f64>,
}

impl Ewma {
    /// Creates the predictor; `alpha` must be in `(0, 1]`.
    pub fn new(alpha: f64, prior: f64) -> Result<Self> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(NetError::InvalidArgument(format!(
                "alpha must be in (0, 1], got {alpha}"
            )));
        }
        Ok(Ewma {
            alpha,
            prior,
            state: None,
        })
    }
}

impl Predictor for Ewma {
    fn name(&self) -> &'static str {
        "ewma"
    }

    fn observe(&mut self, bandwidth: f64) {
        self.state = Some(match self.state {
            Some(s) => self.alpha * bandwidth + (1.0 - self.alpha) * s,
            None => bandwidth,
        });
    }

    fn predict(&self) -> f64 {
        self.state.unwrap_or(self.prior).max(MIN_PRED)
    }

    fn reset(&mut self) {
        self.state = None;
    }
}

/// Online AR(1) predictor: fits `b_{t+1} ≈ μ + ρ (b_t − μ)` by tracking
/// running first/second moments and the lag-1 cross moment, then predicts
/// the conditional mean. Matches the Gauss–Markov generator's structure,
/// so on those traces it is the strongest classical predictor available.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ar1 {
    prior: f64,
    count: f64,
    mean: f64,
    m2: f64,
    /// Running Σ (b_t − mean)(b_{t+1} − mean), updated incrementally with a
    /// plug-in mean (adequate for prediction purposes).
    cross: f64,
    last: Option<f64>,
}

impl Ar1 {
    /// Creates the predictor with a prior used before any data arrives.
    pub fn new(prior: f64) -> Self {
        Ar1 {
            prior,
            count: 0.0,
            mean: 0.0,
            m2: 0.0,
            cross: 0.0,
            last: None,
        }
    }

    /// Current autocorrelation estimate in `[-1, 1]` (0 before 3 samples).
    pub fn rho(&self) -> f64 {
        if self.count < 3.0 || self.m2 <= 0.0 {
            return 0.0;
        }
        (self.cross / self.m2).clamp(-1.0, 1.0)
    }
}

impl Predictor for Ar1 {
    fn name(&self) -> &'static str {
        "ar1"
    }

    fn observe(&mut self, bandwidth: f64) {
        if let Some(prev) = self.last {
            // Cross moment against the *current* running mean.
            self.cross += (prev - self.mean) * (bandwidth - self.mean);
        }
        self.count += 1.0;
        let delta = bandwidth - self.mean;
        self.mean += delta / self.count;
        self.m2 += delta * (bandwidth - self.mean);
        self.last = Some(bandwidth);
    }

    fn predict(&self) -> f64 {
        match self.last {
            None => self.prior.max(MIN_PRED),
            Some(b) => (self.mean + self.rho() * (b - self.mean)).max(MIN_PRED),
        }
    }

    fn reset(&mut self) {
        self.count = 0.0;
        self.mean = 0.0;
        self.m2 = 0.0;
        self.cross = 0.0;
        self.last = None;
    }
}

/// Mean absolute prediction error of a predictor over a sample stream —
/// the benchmark number `abl_predictors` reports.
pub fn evaluate_mae(predictor: &mut dyn Predictor, stream: &[f64]) -> f64 {
    predictor.reset();
    if stream.len() < 2 {
        return 0.0;
    }
    let mut err = 0.0;
    let mut n = 0.0;
    for w in stream.windows(2) {
        predictor.observe(w[0]);
        err += (predictor.predict() - w[1]).abs();
        n += 1.0;
    }
    err / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Profile;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn priors_before_data() {
        assert_eq!(LastValue::new(2.0).predict(), 2.0);
        assert_eq!(SlidingMean::new(3, 2.0).unwrap().predict(), 2.0);
        assert_eq!(Ewma::new(0.5, 2.0).unwrap().predict(), 2.0);
        assert_eq!(Ar1::new(2.0).predict(), 2.0);
    }

    #[test]
    fn constructor_validation() {
        assert!(SlidingMean::new(0, 1.0).is_err());
        assert!(Ewma::new(0.0, 1.0).is_err());
        assert!(Ewma::new(1.5, 1.0).is_err());
    }

    #[test]
    fn last_value_tracks() {
        let mut p = LastValue::new(1.0);
        p.observe(5.0);
        assert_eq!(p.predict(), 5.0);
        p.observe(0.0);
        assert_eq!(p.predict(), MIN_PRED); // clamped
        p.reset();
        assert_eq!(p.predict(), 1.0);
    }

    #[test]
    fn sliding_mean_window() {
        let mut p = SlidingMean::new(2, 1.0).unwrap();
        p.observe(2.0);
        p.observe(4.0);
        assert_eq!(p.predict(), 3.0);
        p.observe(6.0); // evicts 2.0
        assert_eq!(p.predict(), 5.0);
    }

    #[test]
    fn ewma_smooths() {
        let mut p = Ewma::new(0.5, 1.0).unwrap();
        p.observe(4.0);
        assert_eq!(p.predict(), 4.0);
        p.observe(0.0);
        assert_eq!(p.predict(), 2.0);
    }

    #[test]
    fn ar1_learns_autocorrelation() {
        // Feed an exact AR(1) stream; the fitted rho should approach truth.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = crate::synth::GaussMarkov {
            mean: 3.0,
            std: 1.0,
            rho: 0.9,
            floor: 0.0,
            ceil: 100.0,
        };
        let trace = crate::synth::TraceModel::GaussMarkov(model)
            .generate(5000, 1.0, &mut rng)
            .unwrap();
        let mut p = Ar1::new(3.0);
        for &b in trace.slots() {
            p.observe(b);
        }
        assert!((p.rho() - 0.9).abs() < 0.05, "rho={}", p.rho());
        assert!((p.mean - 3.0).abs() < 0.2, "mean={}", p.mean);
    }

    #[test]
    fn ar1_beats_last_value_on_mean_reverting_channel() {
        // On a genuinely mean-reverting AR(1) channel, shrinkage toward the
        // mean must beat raw last-value (which over-trusts the noise).
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let model = crate::synth::GaussMarkov {
            mean: 3.0,
            std: 1.5,
            rho: 0.6,
            floor: 0.0,
            ceil: 50.0,
        };
        let trace = crate::synth::TraceModel::GaussMarkov(model)
            .generate(6000, 1.0, &mut rng)
            .unwrap();
        let mae_last = evaluate_mae(&mut LastValue::new(3.0), trace.slots());
        let mae_ar1 = evaluate_mae(&mut Ar1::new(3.0), trace.slots());
        assert!(
            mae_ar1 < mae_last,
            "ar1 {mae_ar1} should beat last-value {mae_last}"
        );
    }

    #[test]
    fn ar1_competitive_on_walking_regimes() {
        // Within sticky regimes the process is near-unit-root, so AR(1)
        // only needs to stay competitive with last-value there.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let trace = Profile::Walking4G.generate(4000, 1.0, &mut rng).unwrap();
        let mae_last = evaluate_mae(&mut LastValue::new(3.0), trace.slots());
        let mae_ar1 = evaluate_mae(&mut Ar1::new(3.0), trace.slots());
        assert!(
            mae_ar1 < mae_last * 1.1,
            "ar1 {mae_ar1} should be within 10% of last-value {mae_last}"
        );
    }

    #[test]
    fn evaluate_mae_degenerate() {
        assert_eq!(evaluate_mae(&mut LastValue::new(1.0), &[]), 0.0);
        assert_eq!(evaluate_mae(&mut LastValue::new(1.0), &[5.0]), 0.0);
        // Perfect predictor on a constant stream.
        let mae = evaluate_mae(&mut LastValue::new(1.0), &[2.0; 10]);
        assert_eq!(mae, 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut p = Ar1::new(1.5);
        for b in [2.0, 3.0, 4.0, 5.0] {
            p.observe(b);
        }
        p.reset();
        assert_eq!(p.predict(), 1.5);
        assert_eq!(p.rho(), 0.0);
    }
}
