//! Error type for the fl-net crate.

use std::fmt;

/// Errors raised by trace construction and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// A constructor argument was invalid (empty trace, non-positive slot
    /// duration, negative bandwidth, ...).
    InvalidArgument(String),
    /// A query referenced a time beyond the end of a non-cyclic trace.
    OutOfRange {
        /// The requested time in seconds.
        requested: f64,
        /// The trace duration in seconds.
        duration: f64,
    },
    /// An upload could not complete because the remaining trace carries no
    /// bandwidth (non-cyclic trace exhausted, or all-zero cyclic trace).
    TransferStalled {
        /// Megabytes still unsent when the trace ran out.
        remaining_mb: f64,
    },
    /// A trace file could not be parsed.
    Parse(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            NetError::OutOfRange {
                requested,
                duration,
            } => write!(
                f,
                "time {requested:.3}s is beyond the trace duration {duration:.3}s"
            ),
            NetError::TransferStalled { remaining_mb } => write!(
                f,
                "transfer stalled with {remaining_mb:.3} MB remaining (no bandwidth left in trace)"
            ),
            NetError::Parse(msg) => write!(f, "trace parse error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(NetError::InvalidArgument("x".into())
            .to_string()
            .contains("x"));
        let s = NetError::OutOfRange {
            requested: 5.0,
            duration: 4.0,
        }
        .to_string();
        assert!(s.contains("5.000"));
        assert!(s.contains("4.000"));
        assert!(NetError::TransferStalled { remaining_mb: 1.5 }
            .to_string()
            .contains("1.500"));
        assert!(NetError::Parse("bad line".into())
            .to_string()
            .contains("bad line"));
    }
}
