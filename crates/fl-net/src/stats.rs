//! Descriptive statistics used by the trace generators and figure harness.

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance (0.0 for slices shorter than 2).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Sample autocorrelation at the given lag, in `[-1, 1]`.
/// Returns 0.0 when the series is too short or constant.
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if xs.len() <= lag + 1 {
        return 0.0;
    }
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom <= 0.0 {
        return 0.0;
    }
    let numer: f64 = xs[..xs.len() - lag]
        .iter()
        .zip(&xs[lag..])
        .map(|(a, b)| (a - m) * (b - m))
        .sum();
    numer / denom
}

/// Percentile via linear interpolation on the sorted data, `q` in `[0, 100]`.
/// Returns `None` for an empty slice or out-of-range `q`.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=100.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN data"));
    let pos = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// An empirical cumulative distribution function.
///
/// Built once from a sample; evaluating at `x` returns the fraction of
/// samples `<= x`. This is what the Fig. 7(d–f) CDF panels plot.
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the CDF from a sample. NaN values are dropped.
    pub fn new(xs: &[f64]) -> Self {
        let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
        EmpiricalCdf { sorted }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)` under the empirical distribution.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point gives the count of samples <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile), `p` in `[0, 1]`.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        percentile(&self.sorted, p * 100.0)
    }

    /// `(x, P(X <= x))` pairs at `n` evenly spaced x-values spanning the
    /// sample range — ready to print as a plot series.
    pub fn series(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        if n == 1 || hi == lo {
            return vec![(hi, 1.0)];
        }
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

/// Five-number-style summary of a sample, used in the figure printouts.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample; returns `None` when empty.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        Some(Summary {
            count: xs.len(),
            mean: mean(xs),
            std: std_dev(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            median: percentile(xs, 50.0)?,
            p90: percentile(xs, 90.0)?,
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_variance_known() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), 0.0);
        assert_eq!(percentile(&[], 50.0), None);
        assert!(EmpiricalCdf::new(&[]).is_empty());
        assert_eq!(Summary::of(&[]), None);
    }

    #[test]
    fn autocorrelation_of_constant_is_zero() {
        assert_eq!(autocorrelation(&[2.0; 10], 1), 0.0);
    }

    #[test]
    fn autocorrelation_alternating_is_negative() {
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&xs, 1) < -0.9);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(3.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.0));
        assert_eq!(percentile(&xs, 101.0), None);
    }

    #[test]
    fn cdf_eval_basics() {
        let cdf = EmpiricalCdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.5), 0.5);
        assert_eq!(cdf.eval(10.0), 1.0);
    }

    #[test]
    fn cdf_drops_nan() {
        let cdf = EmpiricalCdf::new(&[1.0, f64::NAN, 3.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn cdf_series_spans_range() {
        let cdf = EmpiricalCdf::new(&[0.0, 10.0]);
        let s = cdf.series(11);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0].0, 0.0);
        assert_eq!(s[10], (10.0, 1.0));
        let constant = EmpiricalCdf::new(&[5.0, 5.0]);
        assert_eq!(constant.series(4), vec![(5.0, 1.0)]);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 3.0);
        assert!(s.p90 > 4.0);
    }

    proptest! {
        #[test]
        fn prop_cdf_monotone(mut xs in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
            let cdf = EmpiricalCdf::new(&xs);
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut prev = 0.0;
            for i in 0..20 {
                let x = -110.0 + i as f64 * 11.0;
                let v = cdf.eval(x);
                prop_assert!(v >= prev);
                prop_assert!((0.0..=1.0).contains(&v));
                prev = v;
            }
        }

        #[test]
        fn prop_percentile_within_range(xs in proptest::collection::vec(-10.0f64..10.0, 1..40), q in 0.0f64..100.0) {
            let p = percentile(&xs, q).unwrap();
            let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }

        #[test]
        fn prop_mean_shift_invariance(xs in proptest::collection::vec(-5.0f64..5.0, 2..30), c in -3.0f64..3.0) {
            let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
            prop_assert!((mean(&shifted) - mean(&xs) - c).abs() < 1e-9);
            prop_assert!((variance(&shifted) - variance(&xs)).abs() < 1e-9);
        }
    }
}
