//! Collections of traces that devices draw from.

use crate::synth::Profile;
use crate::{BandwidthTrace, NetError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A pool of bandwidth traces.
///
/// The paper's experiments "randomly select three walking datasets" (testbed)
/// and "randomly select five walking datasets and let each mobile device
/// randomly select one" (50-device simulation). `TraceSet` reproduces that:
/// generate (or load) a pool, then [`TraceSet::assign`] one trace index per
/// device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSet {
    traces: Vec<BandwidthTrace>,
}

impl TraceSet {
    /// Builds a set from explicit traces.
    pub fn new(traces: Vec<BandwidthTrace>) -> Result<Self> {
        if traces.is_empty() {
            return Err(NetError::InvalidArgument(
                "a trace set needs at least one trace".to_string(),
            ));
        }
        Ok(TraceSet { traces })
    }

    /// Generates `count` independent cyclic traces from a profile preset.
    ///
    /// Traces are made cyclic so FL sessions of arbitrary length can run on
    /// them (mirroring how the paper re-samples start times in finite data).
    pub fn from_profile(
        profile: Profile,
        count: usize,
        num_slots: usize,
        slot_duration: f64,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if count == 0 {
            return Err(NetError::InvalidArgument(
                "count must be nonzero".to_string(),
            ));
        }
        let traces = (0..count)
            .map(|_| {
                profile
                    .generate(num_slots, slot_duration, rng)
                    .map(BandwidthTrace::cyclic)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(TraceSet { traces })
    }

    /// Generates a mixed pool cycling through several profiles.
    pub fn from_profiles(
        profiles: &[Profile],
        count: usize,
        num_slots: usize,
        slot_duration: f64,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if profiles.is_empty() || count == 0 {
            return Err(NetError::InvalidArgument(
                "profiles and count must be nonempty".to_string(),
            ));
        }
        let traces = (0..count)
            .map(|i| {
                profiles[i % profiles.len()]
                    .generate(num_slots, slot_duration, rng)
                    .map(BandwidthTrace::cyclic)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(TraceSet { traces })
    }

    /// Number of traces in the pool.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when the pool is empty (cannot happen via constructors).
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Borrow of trace `i`.
    pub fn get(&self, i: usize) -> Option<&BandwidthTrace> {
        self.traces.get(i)
    }

    /// All traces.
    pub fn traces(&self) -> &[BandwidthTrace] {
        &self.traces
    }

    /// Assigns one trace index to each of `n_devices` devices, uniformly at
    /// random with replacement — the paper's "each mobile device randomly
    /// selects one dataset".
    pub fn assign(&self, n_devices: usize, rng: &mut impl Rng) -> Vec<usize> {
        (0..n_devices)
            .map(|_| rng.gen_range(0..self.traces.len()))
            .collect()
    }

    /// Random start time within the shortest trace — Algorithm 1 line 6
    /// ("randomly select a federated learning start time t^1").
    pub fn random_start_time(&self, rng: &mut impl Rng) -> f64 {
        let shortest = self
            .traces
            .iter()
            .map(|t| t.duration())
            .fold(f64::INFINITY, f64::min);
        rng.gen_range(0.0..shortest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn empty_rejected() {
        assert!(TraceSet::new(vec![]).is_err());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(TraceSet::from_profile(Profile::Walking4G, 0, 10, 1.0, &mut rng).is_err());
    }

    #[test]
    fn from_profile_generates_cyclic_traces() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let set = TraceSet::from_profile(Profile::Walking4G, 3, 100, 1.0, &mut rng).unwrap();
        assert_eq!(set.len(), 3);
        assert!(set.traces().iter().all(|t| t.is_cyclic()));
        assert!(set.get(2).is_some());
        assert!(set.get(3).is_none());
        // Independent traces differ.
        assert_ne!(set.get(0), set.get(1));
    }

    #[test]
    fn from_profiles_cycles() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let set = TraceSet::from_profiles(
            &[Profile::Walking4G, Profile::BusHsdpa],
            4,
            200,
            1.0,
            &mut rng,
        )
        .unwrap();
        // Even indices walking (max > 1 MB/s), odd indices bus (max <= 0.8).
        assert!(set.get(0).unwrap().max() > 1.0);
        assert!(set.get(1).unwrap().max() <= 0.8);
        assert!(set.get(2).unwrap().max() > 1.0);
        assert!(set.get(3).unwrap().max() <= 0.8);
    }

    #[test]
    fn assign_covers_pool() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let set = TraceSet::from_profile(Profile::Walking4G, 5, 50, 1.0, &mut rng).unwrap();
        let assignment = set.assign(200, &mut rng);
        assert_eq!(assignment.len(), 200);
        assert!(assignment.iter().all(|&i| i < 5));
        // With 200 draws over 5 traces every index should appear.
        for idx in 0..5 {
            assert!(assignment.contains(&idx), "index {idx} never assigned");
        }
    }

    #[test]
    fn random_start_time_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let set = TraceSet::from_profile(Profile::BusHsdpa, 2, 60, 1.0, &mut rng).unwrap();
        for _ in 0..50 {
            let t = set.random_start_time(&mut rng);
            assert!((0.0..60.0).contains(&t));
        }
    }
}
