//! # fl-net — bandwidth traces for the fedfreq reproduction
//!
//! The paper evaluates against real 4G/LTE measurement traces (Ghent walking
//! dataset) and HSDPA bus traces from Norway. Those datasets are not
//! redistributable and are not available offline, so this crate provides
//! **synthetic trace generators** whose temporal statistics match the
//! envelopes the paper reports (walking: roughly 0–9 MB/s with multi-MB/s
//! swings within 400 s; bus: 0–800 KB/s), plus the trace machinery the
//! algorithm actually consumes:
//!
//! * [`BandwidthTrace`] — piecewise-constant bandwidth over fixed-length
//!   slots, with exact integration (Eq. 3 of the paper), upload-completion
//!   solving, and slot-history windows for the DRL state vector,
//! * [`synth`] — Gauss–Markov, Markov-regime, and on–off generators with
//!   presets [`synth::Profile::Walking4G`] and [`synth::Profile::BusHsdpa`],
//! * [`stats`] — means/variances/autocorrelation/CDFs used by the figure
//!   harness,
//! * [`TraceSet`] — a collection of traces devices draw from (the paper
//!   "randomly selects three/five walking datasets").
//!
//! Units: bandwidth in **MB/s**, data sizes in **MB**, time in **seconds**.
//!
//! ## Example
//!
//! ```
//! use fl_net::synth::Profile;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! // Ten minutes of synthetic 4G walking bandwidth, 1-second slots.
//! let trace = Profile::Walking4G.generate(600, 1.0, &mut rng)?.cyclic();
//! // How long does a 10 MB model upload starting at t = 42 s take?
//! let seconds = trace.transfer_time(42.0, 10.0)?;
//! assert!(seconds > 0.0);
//! // The DRL state: the 5 most recent 10-second slot averages.
//! let history = trace.history(42.0, 10.0, 4)?;
//! assert_eq!(history.len(), 5);
//! # Ok::<(), fl_net::NetError>(())
//! ```

#![forbid(unsafe_code)]
// `!(x > 0.0)`-style guards reject NaN along with out-of-range values;
// clippy's suggested inversion (`x <= 0.0`) would silently accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

mod error;
pub mod io;
pub mod predict;
pub mod stats;
pub mod synth;
mod trace;
mod traceset;

pub use error::NetError;
pub use trace::BandwidthTrace;
pub use traceset::TraceSet;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, NetError>;
