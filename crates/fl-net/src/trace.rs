//! Piecewise-constant bandwidth traces.

use crate::{NetError, Result};
use serde::{Deserialize, Serialize};

/// A bandwidth trace: one bandwidth value (MB/s) per fixed-length slot.
///
/// This is the continuous-time `B_t` of the paper, stored piecewise
/// constant. It supports the three queries the system needs:
///
/// 1. **Integration** over an interval (Eq. 3's numerator) — exact, by
///    walking the slots the interval crosses.
/// 2. **Upload-completion solving**: the time needed to push `ξ` MB starting
///    at time `t0` through the time-varying channel.
/// 3. **History windows**: the trailing `H+1` slot-averages of length `h`
///    that form the DRL state (`B_i(⌊t/h⌋), ..., B_i(⌊t/h⌋ - H)`).
///
/// Traces can be *cyclic* (wrap around, so arbitrarily long simulations run
/// on finite measurement data — the paper similarly re-samples start times
/// inside finite traces) or finite (queries past the end are errors).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthTrace {
    /// Seconds covered by each slot.
    slot_duration: f64,
    /// Bandwidth per slot, MB/s.
    slots: Vec<f64>,
    /// Whether queries wrap modulo the trace length.
    cyclic: bool,
}

impl BandwidthTrace {
    /// Builds a trace from per-slot bandwidths.
    ///
    /// Fails when `slot_duration` is not strictly positive/finite, `slots`
    /// is empty, or any bandwidth is negative or non-finite.
    pub fn new(slot_duration: f64, slots: Vec<f64>) -> Result<Self> {
        if !(slot_duration > 0.0) || !slot_duration.is_finite() {
            return Err(NetError::InvalidArgument(format!(
                "slot_duration must be positive and finite, got {slot_duration}"
            )));
        }
        if slots.is_empty() {
            return Err(NetError::InvalidArgument(
                "a trace needs at least one slot".to_string(),
            ));
        }
        if let Some(bad) = slots.iter().find(|b| !b.is_finite() || **b < 0.0) {
            return Err(NetError::InvalidArgument(format!(
                "bandwidth values must be finite and non-negative, got {bad}"
            )));
        }
        Ok(BandwidthTrace {
            slot_duration,
            slots,
            cyclic: false,
        })
    }

    /// Marks the trace as cyclic (wrapping) and returns it.
    pub fn cyclic(mut self) -> Self {
        self.cyclic = true;
        self
    }

    /// Whether this trace wraps.
    pub fn is_cyclic(&self) -> bool {
        self.cyclic
    }

    /// Seconds per slot.
    pub fn slot_duration(&self) -> f64 {
        self.slot_duration
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Total covered duration in seconds (one cycle if cyclic).
    pub fn duration(&self) -> f64 {
        self.slot_duration * self.slots.len() as f64
    }

    /// The raw per-slot bandwidths.
    pub fn slots(&self) -> &[f64] {
        &self.slots
    }

    /// Mean bandwidth over one full cycle.
    pub fn mean(&self) -> f64 {
        self.slots.iter().sum::<f64>() / self.slots.len() as f64
    }

    /// Minimum slot bandwidth.
    pub fn min(&self) -> f64 {
        self.slots.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum slot bandwidth.
    pub fn max(&self) -> f64 {
        self.slots.iter().copied().fold(0.0, f64::max)
    }

    /// Bandwidth of the (possibly wrapped / clamped) slot with signed index.
    fn slot_bw(&self, idx: i64) -> f64 {
        let n = self.slots.len() as i64;
        let i = if self.cyclic {
            idx.rem_euclid(n)
        } else {
            idx.clamp(0, n - 1)
        };
        self.slots[i as usize]
    }

    /// Instantaneous bandwidth at time `t`.
    ///
    /// Errors with [`NetError::OutOfRange`] for `t` outside a non-cyclic
    /// trace; cyclic traces accept any finite `t >= 0`.
    pub fn bandwidth_at(&self, t: f64) -> Result<f64> {
        if !t.is_finite() || t < 0.0 {
            return Err(NetError::InvalidArgument(format!(
                "time must be finite and non-negative, got {t}"
            )));
        }
        let idx = (t / self.slot_duration).floor() as i64;
        if !self.cyclic && idx >= self.slots.len() as i64 {
            return Err(NetError::OutOfRange {
                requested: t,
                duration: self.duration(),
            });
        }
        Ok(self.slot_bw(idx))
    }

    /// Megabytes transferable in `[t0, t1)` — the exact integral
    /// `∫ B_t dt` over the piecewise-constant trace.
    pub fn integrate(&self, t0: f64, t1: f64) -> Result<f64> {
        if !(t0.is_finite() && t1.is_finite()) || t0 < 0.0 || t1 < t0 {
            return Err(NetError::InvalidArgument(format!(
                "bad interval [{t0}, {t1})"
            )));
        }
        if !self.cyclic && t1 > self.duration() + 1e-9 {
            return Err(NetError::OutOfRange {
                requested: t1,
                duration: self.duration(),
            });
        }
        if t1 == t0 {
            return Ok(0.0);
        }
        let sd = self.slot_duration;
        let first = (t0 / sd).floor() as i64;
        let last = ((t1 / sd).ceil() as i64 - 1).max(first);
        let mut total = 0.0;
        for idx in first..=last {
            let s = idx as f64 * sd;
            let e = s + sd;
            let lo = t0.max(s);
            let hi = t1.min(e);
            if hi > lo {
                total += self.slot_bw(idx) * (hi - lo);
            }
        }
        Ok(total)
    }

    /// Average bandwidth over `[t0, t1)` — Eq. 3 of the paper. Returns the
    /// instantaneous bandwidth when the interval is (near-)empty.
    pub fn average_bandwidth(&self, t0: f64, t1: f64) -> Result<f64> {
        if t1 - t0 < 1e-12 {
            return self.bandwidth_at(t0.min(self.duration() - 1e-9).max(0.0));
        }
        Ok(self.integrate(t0, t1)? / (t1 - t0))
    }

    /// Seconds needed to upload `mb` megabytes starting at `t0`.
    ///
    /// Walks slots, spending zero-bandwidth slots as pure waiting time.
    /// Fails with [`NetError::TransferStalled`] if the (finite) trace ends
    /// — or a cyclic trace has no capacity — before the transfer completes.
    pub fn transfer_time(&self, t0: f64, mb: f64) -> Result<f64> {
        if !mb.is_finite() || mb < 0.0 {
            return Err(NetError::InvalidArgument(format!(
                "transfer size must be finite and non-negative, got {mb}"
            )));
        }
        if !t0.is_finite() || t0 < 0.0 {
            return Err(NetError::InvalidArgument(format!(
                "start time must be finite and non-negative, got {t0}"
            )));
        }
        if mb == 0.0 {
            return Ok(0.0);
        }
        let n = self.slots.len() as i64;
        if !self.cyclic && t0 >= self.duration() {
            return Err(NetError::OutOfRange {
                requested: t0,
                duration: self.duration(),
            });
        }
        let sd = self.slot_duration;
        let cycle_mb: f64 = self.slots.iter().sum::<f64>() * sd;
        if self.cyclic && cycle_mb <= 0.0 {
            return Err(NetError::TransferStalled { remaining_mb: mb });
        }
        // Bound the walk: non-cyclic traces end at n; cyclic ones need at
        // most ceil(mb / cycle_mb) + 1 cycles.
        let max_slots = if self.cyclic {
            let cycles = (mb / cycle_mb).ceil() as i64 + 2;
            cycles.saturating_mul(n)
        } else {
            n
        };
        let mut remaining = mb;
        let mut t = t0;
        let mut idx = (t0 / sd).floor() as i64;
        let mut steps = 0i64;
        loop {
            if !self.cyclic && idx >= n {
                return Err(NetError::TransferStalled {
                    remaining_mb: remaining,
                });
            }
            if steps > max_slots {
                return Err(NetError::TransferStalled {
                    remaining_mb: remaining,
                });
            }
            let b = self.slot_bw(idx);
            let slot_end = (idx + 1) as f64 * sd;
            let cap = b * (slot_end - t);
            if b > 0.0 && cap >= remaining {
                return Ok(t + remaining / b - t0);
            }
            remaining -= cap;
            t = slot_end;
            idx += 1;
            steps += 1;
        }
    }

    /// Average bandwidth over the aggregation window `[j*h, (j+1)*h)` for a
    /// *state slot* of length `h` (which may differ from the trace's own
    /// slot length). Out-of-range windows clamp to the nearest valid window
    /// for non-cyclic traces.
    pub fn state_slot_average(&self, j: i64, h: f64) -> Result<f64> {
        if !(h > 0.0) || !h.is_finite() {
            return Err(NetError::InvalidArgument(format!(
                "state slot length must be positive, got {h}"
            )));
        }
        if self.cyclic {
            // Wrap the window start into [0, duration).
            let d = self.duration();
            let start = (j as f64 * h).rem_euclid(d);
            return self.average_bandwidth(start, start + h);
        }
        let max_j = ((self.duration() / h).ceil() as i64 - 1).max(0);
        let jc = j.clamp(0, max_j);
        let start = jc as f64 * h;
        let end = (start + h).min(self.duration());
        self.average_bandwidth(start, end)
    }

    /// The DRL state window for one device: slot-averages
    /// `[B(⌊t/h⌋), B(⌊t/h⌋ - 1), ..., B(⌊t/h⌋ - H)]` (length `H + 1`),
    /// newest first, exactly as defined in Section IV-B1 of the paper.
    pub fn history(&self, t: f64, h: f64, history_len: usize) -> Result<Vec<f64>> {
        let j0 = (t / h).floor() as i64;
        let mut out = Vec::with_capacity(history_len + 1);
        for back in 0..=history_len as i64 {
            out.push(self.state_slot_average(j0 - back, h)?);
        }
        Ok(out)
    }

    /// Re-buckets the trace into slots of `new_slot` seconds, averaging the
    /// original slots that fall into each new bucket (exactly, via the
    /// integral). The last bucket may cover less source data and averages
    /// what exists. Used to align external CSV traces with a simulation's
    /// slot grid.
    pub fn resample(&self, new_slot: f64) -> Result<BandwidthTrace> {
        if !(new_slot > 0.0) || !new_slot.is_finite() {
            return Err(NetError::InvalidArgument(format!(
                "new slot duration must be positive, got {new_slot}"
            )));
        }
        let duration = self.duration();
        let n = (duration / new_slot).ceil() as usize;
        if n == 0 {
            return Err(NetError::InvalidArgument(
                "resample would produce an empty trace".to_string(),
            ));
        }
        let mut slots = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i as f64 * new_slot;
            let hi = ((i + 1) as f64 * new_slot).min(duration);
            slots.push(self.integrate(lo, hi)? / (hi - lo));
        }
        let mut out = BandwidthTrace::new(new_slot, slots)?;
        out.cyclic = self.cyclic;
        Ok(out)
    }

    /// Extracts the sub-trace covering `[t0, t1)`, snapped outward to slot
    /// boundaries. The result is non-cyclic.
    pub fn slice(&self, t0: f64, t1: f64) -> Result<BandwidthTrace> {
        if !(t0 >= 0.0) || t1 <= t0 || t1 > self.duration() + 1e-9 {
            return Err(NetError::InvalidArgument(format!(
                "bad slice [{t0}, {t1}) for duration {}",
                self.duration()
            )));
        }
        let first = (t0 / self.slot_duration).floor() as usize;
        let last = ((t1 / self.slot_duration).ceil() as usize).min(self.slots.len());
        BandwidthTrace::new(self.slot_duration, self.slots[first..last].to_vec())
    }

    /// Appends another trace (same slot duration) after this one. The
    /// result inherits this trace's cyclic flag.
    pub fn concat(&self, other: &BandwidthTrace) -> Result<BandwidthTrace> {
        if (self.slot_duration - other.slot_duration).abs() > 1e-12 {
            return Err(NetError::InvalidArgument(format!(
                "slot durations differ: {} vs {}",
                self.slot_duration, other.slot_duration
            )));
        }
        let mut slots = self.slots.clone();
        slots.extend_from_slice(&other.slots);
        let mut out = BandwidthTrace::new(self.slot_duration, slots)?;
        out.cyclic = self.cyclic;
        Ok(out)
    }

    /// Returns the trace scaled by a constant factor (e.g. unit changes).
    pub fn scaled(&self, factor: f64) -> Result<BandwidthTrace> {
        if !(factor > 0.0) || !factor.is_finite() {
            return Err(NetError::InvalidArgument(format!(
                "scale factor must be positive, got {factor}"
            )));
        }
        let mut out = BandwidthTrace::new(
            self.slot_duration,
            self.slots.iter().map(|b| b * factor).collect(),
        )?;
        out.cyclic = self.cyclic;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn trace(slots: Vec<f64>) -> BandwidthTrace {
        BandwidthTrace::new(1.0, slots).unwrap()
    }

    #[test]
    fn constructor_validation() {
        assert!(BandwidthTrace::new(0.0, vec![1.0]).is_err());
        assert!(BandwidthTrace::new(-1.0, vec![1.0]).is_err());
        assert!(BandwidthTrace::new(1.0, vec![]).is_err());
        assert!(BandwidthTrace::new(1.0, vec![-0.5]).is_err());
        assert!(BandwidthTrace::new(1.0, vec![f64::NAN]).is_err());
        assert!(BandwidthTrace::new(1.0, vec![0.0, 2.0]).is_ok());
    }

    #[test]
    fn basic_accessors() {
        let t = trace(vec![1.0, 3.0, 2.0]);
        assert_eq!(t.num_slots(), 3);
        assert_eq!(t.duration(), 3.0);
        assert_eq!(t.mean(), 2.0);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.max(), 3.0);
        assert!(!t.is_cyclic());
        assert!(t.clone().cyclic().is_cyclic());
    }

    #[test]
    fn bandwidth_at_slots() {
        let t = trace(vec![1.0, 3.0, 2.0]);
        assert_eq!(t.bandwidth_at(0.0).unwrap(), 1.0);
        assert_eq!(t.bandwidth_at(0.99).unwrap(), 1.0);
        assert_eq!(t.bandwidth_at(1.0).unwrap(), 3.0);
        assert_eq!(t.bandwidth_at(2.5).unwrap(), 2.0);
        assert!(t.bandwidth_at(3.0).is_err());
        assert!(t.bandwidth_at(-0.1).is_err());
    }

    #[test]
    fn cyclic_wraps() {
        let t = trace(vec![1.0, 3.0]).cyclic();
        assert_eq!(t.bandwidth_at(2.0).unwrap(), 1.0);
        assert_eq!(t.bandwidth_at(5.5).unwrap(), 3.0);
    }

    #[test]
    fn integrate_whole_and_partial_slots() {
        let t = trace(vec![1.0, 3.0, 2.0]);
        assert!((t.integrate(0.0, 3.0).unwrap() - 6.0).abs() < 1e-12);
        assert!((t.integrate(0.5, 1.5).unwrap() - (0.5 + 1.5)).abs() < 1e-12);
        assert!((t.integrate(1.25, 1.75).unwrap() - 1.5).abs() < 1e-12);
        assert_eq!(t.integrate(1.0, 1.0).unwrap(), 0.0);
        assert!(t.integrate(0.0, 3.5).is_err());
        assert!(t.integrate(2.0, 1.0).is_err());
    }

    #[test]
    fn integrate_cyclic_spans_cycles() {
        let t = trace(vec![1.0, 3.0]).cyclic();
        // Four full 2-second cycles of 4 MB each.
        assert!((t.integrate(0.0, 8.0).unwrap() - 16.0).abs() < 1e-12);
        // Window straddling the wrap: [1.5, 2.5) = 0.5*3 + 0.5*1.
        assert!((t.integrate(1.5, 2.5).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn average_bandwidth_eq3() {
        let t = trace(vec![2.0, 4.0]);
        assert!((t.average_bandwidth(0.0, 2.0).unwrap() - 3.0).abs() < 1e-12);
        // Near-empty interval degrades to instantaneous bandwidth.
        assert!((t.average_bandwidth(0.5, 0.5).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_single_slot() {
        let t = trace(vec![2.0, 2.0, 2.0]);
        // 1 MB at 2 MB/s = 0.5 s.
        assert!((t.transfer_time(0.0, 1.0).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(t.transfer_time(0.0, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn transfer_time_across_slots_and_zero_gaps() {
        // 1 MB/s for 1s, dead air for 1s, then 4 MB/s.
        let t = trace(vec![1.0, 0.0, 4.0]);
        // 2 MB: 1 MB in slot 0 (1s), wait slot 1 (1s), 1 MB at 4 MB/s (0.25s).
        assert!((t.transfer_time(0.0, 2.0).unwrap() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_stalls_on_finite_trace() {
        let t = trace(vec![1.0]);
        let err = t.transfer_time(0.0, 5.0).unwrap_err();
        match err {
            NetError::TransferStalled { remaining_mb } => {
                assert!((remaining_mb - 4.0).abs() < 1e-12)
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn transfer_time_cyclic_loops() {
        let t = trace(vec![1.0, 0.0]).cyclic();
        // 3 MB at 0.5 MB/s effective: slot pattern 1,0 → finish inside the
        // 5th active second: 1MB@[0,1), 1MB@[2,3), 1MB@[4,5) → 5 s.
        assert!((t.transfer_time(0.0, 3.0).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_cyclic_all_zero_stalls() {
        let t = trace(vec![0.0, 0.0]).cyclic();
        assert!(matches!(
            t.transfer_time(0.0, 1.0),
            Err(NetError::TransferStalled { .. })
        ));
    }

    #[test]
    fn transfer_time_nonzero_start() {
        let t = trace(vec![1.0, 2.0, 4.0]);
        // Start at 1.5: 0.5s * 2 = 1MB, then 1MB at 4MB/s = 0.25s → 0.75s.
        assert!((t.transfer_time(1.5, 2.0).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn transfer_rejects_bad_args() {
        let t = trace(vec![1.0]);
        assert!(t.transfer_time(0.0, -1.0).is_err());
        assert!(t.transfer_time(-1.0, 1.0).is_err());
        assert!(t.transfer_time(2.0, 1.0).is_err());
        assert!(t.transfer_time(0.0, f64::NAN).is_err());
    }

    #[test]
    fn history_matches_paper_layout() {
        // Trace slots of 1s; state slots h=2s: averages [ (s0+s1)/2, ... ].
        let t = trace(vec![1.0, 3.0, 5.0, 7.0, 9.0, 11.0]);
        // t = 5.0 → j0 = 2 → windows [4,6), [2,4), [0,2) = 10, 6, 2.
        let h = t.history(5.0, 2.0, 2).unwrap();
        assert_eq!(h.len(), 3);
        assert!((h[0] - 10.0).abs() < 1e-12);
        assert!((h[1] - 6.0).abs() < 1e-12);
        assert!((h[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn history_clamps_before_start() {
        let t = trace(vec![2.0, 4.0]);
        // j0 = 0; windows going back clamp to window 0.
        let h = t.history(0.5, 1.0, 3).unwrap();
        assert_eq!(h, vec![2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn history_cyclic_wraps_backwards() {
        let t = trace(vec![2.0, 4.0]).cyclic();
        let h = t.history(0.5, 1.0, 1).unwrap();
        // j0=0 → B(0)=2; j=-1 wraps to slot 1 → 4.
        assert_eq!(h, vec![2.0, 4.0]);
    }

    #[test]
    fn state_slot_rejects_bad_h() {
        let t = trace(vec![1.0]);
        assert!(t.state_slot_average(0, 0.0).is_err());
        assert!(t.history(0.0, -1.0, 1).is_err());
    }

    #[test]
    fn resample_coarser_averages() {
        let t = trace(vec![1.0, 3.0, 5.0, 7.0]);
        let r = t.resample(2.0).unwrap();
        assert_eq!(r.num_slots(), 2);
        assert!((r.slots()[0] - 2.0).abs() < 1e-12);
        assert!((r.slots()[1] - 6.0).abs() < 1e-12);
        // Total volume preserved.
        assert!((r.integrate(0.0, 4.0).unwrap() - t.integrate(0.0, 4.0).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn resample_finer_replicates() {
        let t = trace(vec![2.0, 4.0]);
        let r = t.resample(0.5).unwrap();
        assert_eq!(r.num_slots(), 4);
        assert_eq!(r.slots(), &[2.0, 2.0, 4.0, 4.0]);
    }

    #[test]
    fn resample_partial_tail_and_flags() {
        let t = trace(vec![1.0, 2.0, 3.0]).cyclic();
        let r = t.resample(2.0).unwrap();
        // Buckets: [0,2) avg 1.5; [2,3) avg 3 (partial tail).
        assert_eq!(r.num_slots(), 2);
        assert!((r.slots()[1] - 3.0).abs() < 1e-12);
        assert!(r.is_cyclic());
        assert!(t.resample(0.0).is_err());
    }

    #[test]
    fn slice_snaps_to_slots() {
        let t = trace(vec![1.0, 2.0, 3.0, 4.0]);
        let s = t.slice(1.2, 2.8).unwrap();
        assert_eq!(s.slots(), &[2.0, 3.0]);
        assert!(!s.is_cyclic());
        assert!(t.slice(3.0, 5.0).is_err());
        assert!(t.slice(2.0, 2.0).is_err());
    }

    #[test]
    fn concat_and_scale() {
        let a = trace(vec![1.0, 2.0]).cyclic();
        let b = trace(vec![3.0]);
        let c = a.concat(&b).unwrap();
        assert_eq!(c.slots(), &[1.0, 2.0, 3.0]);
        assert!(c.is_cyclic());
        let mismatched = BandwidthTrace::new(2.0, vec![1.0]).unwrap();
        assert!(a.concat(&mismatched).is_err());

        let s = a.scaled(2.0).unwrap();
        assert_eq!(s.slots(), &[2.0, 4.0]);
        assert!(s.is_cyclic());
        assert!(a.scaled(0.0).is_err());
    }

    proptest! {
        /// Integration is additive: ∫[a,c) = ∫[a,b) + ∫[b,c).
        #[test]
        fn prop_integral_additive(
            a in 0.0f64..5.0,
            d1 in 0.0f64..2.0,
            d2 in 0.0f64..2.0,
        ) {
            let t = trace(vec![1.0, 0.5, 3.0, 0.0, 2.0, 4.0, 1.5, 2.5, 0.25, 5.0]);
            let b = a + d1;
            let c = b + d2;
            let whole = t.integrate(a, c).unwrap();
            let parts = t.integrate(a, b).unwrap() + t.integrate(b, c).unwrap();
            prop_assert!((whole - parts).abs() < 1e-9);
        }

        /// transfer_time is consistent with integrate: the MB transferable in
        /// the returned window equals the requested amount.
        #[test]
        fn prop_transfer_consistent_with_integral(
            t0 in 0.0f64..3.0,
            mb in 0.01f64..10.0,
        ) {
            let t = trace(vec![1.0, 0.5, 3.0, 2.0, 4.0, 1.5]).cyclic();
            let dt = t.transfer_time(t0, mb).unwrap();
            let moved = t.integrate(t0, t0 + dt).unwrap();
            prop_assert!((moved - mb).abs() < 1e-6, "moved={moved}, mb={mb}");
        }

        /// Larger transfers never finish sooner.
        #[test]
        fn prop_transfer_monotone(mb1 in 0.1f64..5.0, mb2 in 0.1f64..5.0) {
            let t = trace(vec![2.0, 1.0, 0.0, 3.0]).cyclic();
            let (lo, hi) = if mb1 < mb2 { (mb1, mb2) } else { (mb2, mb1) };
            let t_lo = t.transfer_time(0.0, lo).unwrap();
            let t_hi = t.transfer_time(0.0, hi).unwrap();
            prop_assert!(t_lo <= t_hi + 1e-12);
        }

        /// Average bandwidth is always within [min, max] of the trace.
        #[test]
        fn prop_average_bounded(a in 0.0f64..6.0, d in 0.01f64..6.0) {
            let t = trace(vec![1.0, 0.5, 3.0, 2.0, 4.0, 1.5]).cyclic();
            let avg = t.average_bandwidth(a, a + d).unwrap();
            prop_assert!(avg >= t.min() - 1e-12 && avg <= t.max() + 1e-12);
        }
    }
}
