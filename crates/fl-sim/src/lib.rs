//! # fl-sim — the synchronized federated-learning system model
//!
//! Implements the paper's system model (Section III) as a discrete-event
//! simulation driven by bandwidth traces from `fl-net`:
//!
//! * [`MobileDevice`] — per-device constants `c_i` (cycles/bit), `D_i`
//!   (MB of training data), `α_i` (effective capacitance), `δ_i^max`
//!   (GHz frequency cap), and `e_i` (radio transmit power),
//!   with [`DeviceSampler`] reproducing the paper's uniform ranges
//!   (`D_i ~ U(50,100) MB`, `c_i ~ U(10,30) cycles/bit`,
//!   `δ^max ~ U(1.0, 2.0) GHz`),
//! * [`FlSystem`] — one synchronized training iteration (Eqs. 1–6):
//!   compute time `τ c_i D_i / δ_i`, trace-integrated upload time,
//!   `T^k = max_i T_i^k`, idle-time accounting, and the energy model
//!   `E_i = α_i τ c_i D_i δ_i² + e_i t_com`,
//! * [`IterationReport`] / [`SessionLedger`] — per-iteration and cumulative
//!   metrics (system cost `T^k + λ Σ E_i^k`, Eq. 9) consumed by the figure
//!   harness.
//!
//! Units: time s, frequency GHz, data MB, bandwidth MB/s, energy J. Work is
//! tracked in **gigacycles** so `Gcycles / GHz = seconds` directly.
//!
//! Note on Eq. (6): the paper's energy expression omits the `τ` factor that
//! Eq. (1) applies to the cycle count. We keep `τ` in both (energy scales
//! with work actually performed); with the paper's implied `τ = 1` the two
//! readings coincide.
//!
//! ## Example
//!
//! ```
//! use fl_sim::{DeviceSampler, FlConfig, FlSystem};
//! use fl_net::{synth::Profile, TraceSet};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let traces = TraceSet::from_profile(Profile::Walking4G, 2, 600, 1.0, &mut rng)?;
//! let devices = DeviceSampler::default().sample_fleet(&traces.assign(3, &mut rng), &mut rng);
//! let sys = FlSystem::new(devices, traces, FlConfig::default())?;
//! // One synchronized iteration with every device at its frequency cap:
//! let freqs: Vec<f64> = sys.devices().iter().map(|d| d.delta_max_ghz).collect();
//! let report = sys.run_iteration(0.0, &freqs)?;
//! assert!(report.duration > 0.0);                 // T^k  (Eq. 5)
//! assert!(report.total_energy() > 0.0);           // sum E_i (Eq. 6)
//! assert!(report.cost(0.5) > report.duration);    // T^k + lambda*sum E (Eq. 9 term)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
// `!(x > 0.0)`-style guards reject NaN along with out-of-range values;
// clippy's suggested inversion (`x <= 0.0`) would silently accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod async_engine;
mod battery;
mod device;
mod error;
pub mod fault;
mod report;
mod system;

pub use async_engine::{run_async, AsyncArrival, AsyncSession};
pub use battery::{Battery, FleetBattery};
pub use device::{DeviceSampler, MobileDevice, Range};
pub use error::SimError;
pub use fault::{DeviceFault, DeviceStatus, FaultModel, FaultPlan, IterationFaults};
pub use report::{DeviceOutcome, IterationReport, OutcomeTally, SessionLedger};
pub use system::{FlConfig, FlSystem};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, SimError>;
