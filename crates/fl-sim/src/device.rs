//! Mobile-device models and fleet sampling.

use crate::{Result, SimError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A closed interval used for uniform sampling of device parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Range {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl Range {
    /// A constant "range".
    pub fn fixed(v: f64) -> Self {
        Range { lo: v, hi: v }
    }

    /// Builds a range, validating `lo <= hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !(lo.is_finite() && hi.is_finite()) || lo > hi {
            return Err(SimError::InvalidArgument(format!("bad range [{lo}, {hi}]")));
        }
        Ok(Range { lo, hi })
    }

    /// Uniform sample from the range.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }
}

/// A mobile device participating in federated learning (Table I constants).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobileDevice {
    /// Stable identifier (index into the fleet).
    pub id: usize,
    /// `c_i`: CPU cycles to process one bit of training data.
    pub cycles_per_bit: f64,
    /// `D_i`: size of the local dataset in MB.
    pub data_mb: f64,
    /// `α_i`: effective capacitance in J / (Gcycle · GHz²). The SI
    /// switched-capacitance `κ` maps as `α = κ · 1e27` (so a typical
    /// `κ = 1e-28` becomes `α = 0.1`).
    pub alpha: f64,
    /// `δ_i^max`: maximum CPU-cycle frequency in GHz.
    pub delta_max_ghz: f64,
    /// `e_i`: radio power while uploading, in W (J/s).
    pub tx_power_w: f64,
    /// Index of the bandwidth trace this device follows.
    pub trace_idx: usize,
}

impl MobileDevice {
    /// Validates the device constants.
    pub fn validate(&self) -> Result<()> {
        let positive = [
            ("cycles_per_bit", self.cycles_per_bit),
            ("data_mb", self.data_mb),
            ("alpha", self.alpha),
            ("delta_max_ghz", self.delta_max_ghz),
        ];
        for (name, v) in positive {
            if !(v > 0.0) || !v.is_finite() {
                return Err(SimError::InvalidArgument(format!(
                    "device {}: {name} must be positive and finite, got {v}",
                    self.id
                )));
            }
        }
        if !(self.tx_power_w >= 0.0) || !self.tx_power_w.is_finite() {
            return Err(SimError::InvalidArgument(format!(
                "device {}: tx_power_w must be non-negative, got {}",
                self.id, self.tx_power_w
            )));
        }
        Ok(())
    }

    /// Work for one pass over the local data, in gigacycles:
    /// `c_i · D_i · 8e6 bits/MB / 1e9`.
    pub fn gcycles_per_pass(&self) -> f64 {
        self.cycles_per_bit * self.data_mb * 8.0e6 / 1.0e9
    }

    /// Eq. (1): computation time (s) for `tau` local passes at `delta` GHz.
    pub fn compute_time(&self, tau: u32, delta_ghz: f64) -> f64 {
        tau as f64 * self.gcycles_per_pass() / delta_ghz
    }

    /// CPU energy (J) for `tau` local passes at `delta` GHz — the first term
    /// of Eq. (6) with the `τ` work factor made explicit.
    pub fn compute_energy(&self, tau: u32, delta_ghz: f64) -> f64 {
        self.alpha * tau as f64 * self.gcycles_per_pass() * delta_ghz * delta_ghz
    }

    /// Radio energy (J) for an upload lasting `comm_time` seconds — the
    /// second term of Eq. (6).
    pub fn comm_energy(&self, comm_time: f64) -> f64 {
        self.tx_power_w * comm_time
    }
}

/// Uniform sampler over device constants, defaulting to the paper's
/// Section V-A ranges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSampler {
    /// `D_i` range (MB). Paper: U(50, 100).
    pub data_mb: Range,
    /// `c_i` range (cycles/bit). Paper: U(10, 30).
    pub cycles_per_bit: Range,
    /// `δ^max` range (GHz). Paper: U(1.0, 2.0).
    pub delta_max_ghz: Range,
    /// `α` range (J / (Gcycle · GHz²)); not given by the paper, chosen so
    /// per-iteration CPU energy lands at a few joules (κ ≈ 0.5–2 ×10⁻²⁸).
    pub alpha: Range,
    /// `e_i` range (W); typical LTE uplink power amplifier draw.
    pub tx_power_w: Range,
}

impl Default for DeviceSampler {
    fn default() -> Self {
        DeviceSampler {
            data_mb: Range {
                lo: 50.0,
                hi: 100.0,
            },
            cycles_per_bit: Range { lo: 10.0, hi: 30.0 },
            delta_max_ghz: Range { lo: 1.0, hi: 2.0 },
            alpha: Range { lo: 0.05, hi: 0.2 },
            tx_power_w: Range { lo: 0.1, hi: 0.3 },
        }
    }
}

impl DeviceSampler {
    /// Samples one device; `trace_idx` must be assigned by the caller.
    pub fn sample(&self, id: usize, trace_idx: usize, rng: &mut impl Rng) -> MobileDevice {
        MobileDevice {
            id,
            cycles_per_bit: self.cycles_per_bit.sample(rng),
            data_mb: self.data_mb.sample(rng),
            alpha: self.alpha.sample(rng),
            delta_max_ghz: self.delta_max_ghz.sample(rng),
            tx_power_w: self.tx_power_w.sample(rng),
            trace_idx,
        }
    }

    /// Samples a fleet of `n` devices with the given trace assignment
    /// (one trace index per device).
    pub fn sample_fleet(&self, assignment: &[usize], rng: &mut impl Rng) -> Vec<MobileDevice> {
        assignment
            .iter()
            .enumerate()
            .map(|(id, &trace_idx)| self.sample(id, trace_idx, rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn device() -> MobileDevice {
        MobileDevice {
            id: 0,
            cycles_per_bit: 20.0,
            data_mb: 75.0,
            alpha: 0.1,
            delta_max_ghz: 2.0,
            tx_power_w: 0.2,
            trace_idx: 0,
        }
    }

    #[test]
    fn range_validation_and_sampling() {
        assert!(Range::new(2.0, 1.0).is_err());
        assert!(Range::new(f64::NAN, 1.0).is_err());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let r = Range::new(1.0, 3.0).unwrap();
        for _ in 0..100 {
            let v = r.sample(&mut rng);
            assert!((1.0..=3.0).contains(&v));
        }
        assert_eq!(Range::fixed(5.0).sample(&mut rng), 5.0);
    }

    #[test]
    fn gcycles_known_value() {
        // 20 cycles/bit * 75 MB * 8e6 bits/MB = 1.2e10 cycles = 12 Gcycles.
        assert!((device().gcycles_per_pass() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn compute_time_eq1() {
        let d = device();
        // 12 Gcycles at 1.5 GHz = 8 s; tau=2 doubles it.
        assert!((d.compute_time(1, 1.5) - 8.0).abs() < 1e-9);
        assert!((d.compute_time(2, 1.5) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn compute_energy_eq6_quadratic_in_freq() {
        let d = device();
        let e1 = d.compute_energy(1, 1.0);
        let e2 = d.compute_energy(1, 2.0);
        assert!((e2 / e1 - 4.0).abs() < 1e-9, "energy must scale with δ²");
        // α τ ε δ² = 0.1 * 1 * 12 * 1 = 1.2 J.
        assert!((e1 - 1.2).abs() < 1e-9);
    }

    #[test]
    fn comm_energy_linear_in_time() {
        let d = device();
        assert!((d.comm_energy(5.0) - 1.0).abs() < 1e-12);
        assert_eq!(d.comm_energy(0.0), 0.0);
    }

    #[test]
    fn energy_time_tradeoff() {
        // Lower frequency: more time, less energy — the paper's core lever.
        let d = device();
        assert!(d.compute_time(1, 1.0) > d.compute_time(1, 2.0));
        assert!(d.compute_energy(1, 1.0) < d.compute_energy(1, 2.0));
    }

    #[test]
    fn validate_catches_bad_constants() {
        let mut d = device();
        d.cycles_per_bit = 0.0;
        assert!(d.validate().is_err());
        let mut d = device();
        d.tx_power_w = -1.0;
        assert!(d.validate().is_err());
        let mut d = device();
        d.alpha = f64::INFINITY;
        assert!(d.validate().is_err());
        assert!(device().validate().is_ok());
    }

    #[test]
    fn sampler_defaults_match_paper_ranges() {
        let s = DeviceSampler::default();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let fleet = s.sample_fleet(&[0, 1, 2, 0, 1], &mut rng);
        assert_eq!(fleet.len(), 5);
        for (i, d) in fleet.iter().enumerate() {
            assert_eq!(d.id, i);
            assert!((50.0..=100.0).contains(&d.data_mb));
            assert!((10.0..=30.0).contains(&d.cycles_per_bit));
            assert!((1.0..=2.0).contains(&d.delta_max_ghz));
            assert!(d.validate().is_ok());
        }
        assert_eq!(fleet[3].trace_idx, 0);
        assert_eq!(fleet[4].trace_idx, 1);
    }

    #[test]
    fn sampling_deterministic_under_seed() {
        let s = DeviceSampler::default();
        let a = s.sample_fleet(&[0, 1], &mut ChaCha8Rng::seed_from_u64(3));
        let b = s.sample_fleet(&[0, 1], &mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    proptest! {
        /// Time–work product is invariant: t(δ) · δ = τ · ε for any δ.
        #[test]
        fn prop_time_freq_product_invariant(delta in 0.1f64..4.0, tau in 1u32..5) {
            let d = device();
            let t = d.compute_time(tau, delta);
            prop_assert!((t * delta - tau as f64 * d.gcycles_per_pass()).abs() < 1e-9);
        }

        /// Energy is monotone increasing in frequency.
        #[test]
        fn prop_energy_monotone(d1 in 0.1f64..4.0, d2 in 0.1f64..4.0) {
            let d = device();
            let (lo, hi) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(d.compute_energy(1, lo) <= d.compute_energy(1, hi) + 1e-12);
        }
    }
}
