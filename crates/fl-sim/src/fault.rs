//! Seeded, fully deterministic fault injection.
//!
//! The paper's synchronized-iteration model (Eqs. 1–6) assumes every device
//! is merely *slow*; real fleets also drop out, stall mid-upload, and lose
//! their radio link entirely. This module layers those failure modes over
//! the clean physics without giving up PR 1's determinism contract:
//!
//! * [`FaultModel`] — the *distribution* of faults (per-iteration dropout /
//!   straggler / upload-failure / blackout probabilities, factor ranges,
//!   and an optional server-side timeout cutoff).
//! * [`FaultPlan`] — a seeded realization schedule. `faults_at(k)` derives
//!   iteration `k`'s faults *statelessly*: a fresh ChaCha8 keyed by the
//!   plan seed with the **stream index set to `k`**. Random access by
//!   construction — any worker can materialize any iteration's faults in
//!   any order and get bit-identical results.
//! * [`IterationFaults`] / [`DeviceFault`] — the realized per-iteration,
//!   per-device schedule consumed by `FlSystem::run_iteration_faulty`.
//! * [`DeviceStatus`] — what each device's round amounted to
//!   (Completed / Straggled / Dropped / Failed).
//!
//! The per-device draw count from the ChaCha8 stream is fixed (seven draws,
//! unconditional), so changing one probability in the model never shifts
//! the noise driving the other fault channels.

use crate::{Result, SimError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How one device's synchronized iteration ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DeviceStatus {
    /// Finished compute + upload cleanly; update arrived at the server.
    #[default]
    Completed,
    /// Finished and its update arrived, but a fault slowed it down
    /// (compute/communication inflation or a blackout pause).
    Straggled,
    /// Skipped the round entirely: no time spent, no energy spent, no
    /// update. Excluded from `T^k`.
    Dropped,
    /// Spent its full time and energy but the update was lost (upload
    /// failure) or arrived after the server's timeout cutoff.
    Failed,
}

impl DeviceStatus {
    /// True when the device's update reached the aggregator (Completed or
    /// Straggled) — the "surviving set" FedAvg averages over.
    pub fn survived(self) -> bool {
        matches!(self, DeviceStatus::Completed | DeviceStatus::Straggled)
    }
}

/// Distribution of faults: per-device, per-iteration probabilities and
/// factor ranges. All probabilities are independent per device and per
/// iteration; dropout trumps every other channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// P(device skips the round entirely).
    pub dropout_prob: f64,
    /// P(device is a straggler this round).
    pub straggler_prob: f64,
    /// Straggler slowdown factor lower bound (≥ 1; multiplies both
    /// `t_cmp` and the active upload airtime).
    pub straggler_min: f64,
    /// Straggler slowdown factor upper bound (≥ `straggler_min`).
    pub straggler_max: f64,
    /// P(upload completes but the update is lost — energy spent for
    /// nothing).
    pub upload_fail_prob: f64,
    /// P(a bandwidth blackout window opens for the device this round).
    pub blackout_prob: f64,
    /// Blackout window start offset from iteration start, upper bound (s);
    /// the start is drawn uniformly from `[0, blackout_offset_max_s]`.
    pub blackout_offset_max_s: f64,
    /// Blackout duration lower bound (s).
    pub blackout_min_s: f64,
    /// Blackout duration upper bound (s, ≥ `blackout_min_s`).
    pub blackout_max_s: f64,
    /// Server-side cutoff: the aggregator waits at most this long per
    /// iteration. Devices finishing later are `Failed` (energy still
    /// spent); `T^k` is capped at this value. `None` = wait forever.
    pub timeout_s: Option<f64>,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

impl FaultModel {
    /// The fault-free model: every probability zero, factors 1, no
    /// timeout. Guaranteed bit-identical to the non-faulty code path.
    pub fn none() -> Self {
        FaultModel {
            dropout_prob: 0.0,
            straggler_prob: 0.0,
            straggler_min: 1.0,
            straggler_max: 1.0,
            upload_fail_prob: 0.0,
            blackout_prob: 0.0,
            blackout_offset_max_s: 0.0,
            blackout_min_s: 0.0,
            blackout_max_s: 0.0,
            timeout_s: None,
        }
    }

    /// A ready-made chaos preset: the given dropout and straggler rates
    /// plus mild upload-failure (5%) and blackout (10%, 5–20 s windows
    /// within the first 30 s) channels and a `timeout_s` cutoff.
    pub fn chaos(dropout_prob: f64, straggler_prob: f64, timeout_s: Option<f64>) -> Self {
        FaultModel {
            dropout_prob,
            straggler_prob,
            straggler_min: 1.5,
            straggler_max: 4.0,
            upload_fail_prob: 0.05,
            blackout_prob: 0.1,
            blackout_offset_max_s: 30.0,
            blackout_min_s: 5.0,
            blackout_max_s: 20.0,
            timeout_s,
        }
    }

    /// True when this model can never produce a fault — the whole
    /// injection layer is skipped (no RNG draws, no behavior change).
    pub fn is_none(&self) -> bool {
        self.dropout_prob == 0.0
            && self.straggler_prob == 0.0
            && self.upload_fail_prob == 0.0
            && self.blackout_prob == 0.0
            && self.timeout_s.is_none()
    }

    /// Validates probabilities, factor ranges, and the timeout.
    pub fn validate(&self) -> Result<()> {
        let probs = [
            ("dropout_prob", self.dropout_prob),
            ("straggler_prob", self.straggler_prob),
            ("upload_fail_prob", self.upload_fail_prob),
            ("blackout_prob", self.blackout_prob),
        ];
        for (name, p) in probs {
            // `contains` is false for NaN, so NaN is rejected too.
            if !(0.0..=1.0).contains(&p) {
                return Err(SimError::InvalidArgument(format!(
                    "{name} must be in [0, 1], got {p}"
                )));
            }
        }
        if !(self.straggler_min >= 1.0) || !self.straggler_min.is_finite() {
            return Err(SimError::InvalidArgument(format!(
                "straggler_min must be >= 1, got {}",
                self.straggler_min
            )));
        }
        if !(self.straggler_max >= self.straggler_min) || !self.straggler_max.is_finite() {
            return Err(SimError::InvalidArgument(format!(
                "straggler_max must be >= straggler_min, got {}",
                self.straggler_max
            )));
        }
        if !(self.blackout_offset_max_s >= 0.0) || !self.blackout_offset_max_s.is_finite() {
            return Err(SimError::InvalidArgument(format!(
                "blackout_offset_max_s must be >= 0, got {}",
                self.blackout_offset_max_s
            )));
        }
        if !(self.blackout_min_s >= 0.0) || !self.blackout_min_s.is_finite() {
            return Err(SimError::InvalidArgument(format!(
                "blackout_min_s must be >= 0, got {}",
                self.blackout_min_s
            )));
        }
        if !(self.blackout_max_s >= self.blackout_min_s) || !self.blackout_max_s.is_finite() {
            return Err(SimError::InvalidArgument(format!(
                "blackout_max_s must be >= blackout_min_s, got {}",
                self.blackout_max_s
            )));
        }
        if let Some(t) = self.timeout_s {
            if !(t > 0.0) || !t.is_finite() {
                return Err(SimError::InvalidArgument(format!(
                    "timeout_s must be positive and finite, got {t}"
                )));
            }
        }
        Ok(())
    }
}

/// The realized fault for one device in one iteration. The default value
/// is the benign no-fault case.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceFault {
    /// Device skips the round entirely.
    pub dropout: bool,
    /// Upload completes but the update is lost.
    pub upload_fail: bool,
    /// Multiplies compute time *and* compute energy (work is re-run).
    pub cmp_factor: f64,
    /// Multiplies the active upload airtime (and hence radio energy).
    pub com_factor: f64,
    /// Blackout window start, seconds after iteration start.
    pub blackout_start_s: f64,
    /// Blackout window duration in seconds; `0` = no blackout.
    pub blackout_dur_s: f64,
}

impl Default for DeviceFault {
    fn default() -> Self {
        DeviceFault {
            dropout: false,
            upload_fail: false,
            cmp_factor: 1.0,
            com_factor: 1.0,
            blackout_start_s: 0.0,
            blackout_dur_s: 0.0,
        }
    }
}

impl DeviceFault {
    /// True when this fault changes nothing about the device's round.
    pub fn is_benign(&self) -> bool {
        !self.dropout
            && !self.upload_fail
            && self.cmp_factor == 1.0
            && self.com_factor == 1.0
            && self.blackout_dur_s == 0.0
    }
}

/// The realized fault schedule for one synchronized iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationFaults {
    /// One entry per device, device order.
    pub devices: Vec<DeviceFault>,
    /// Server-side wait cutoff for this iteration (s), if any.
    pub timeout_s: Option<f64>,
}

impl IterationFaults {
    /// The benign schedule for `n` devices (no faults, no timeout).
    pub fn none(n: usize) -> Self {
        IterationFaults {
            devices: vec![DeviceFault::default(); n],
            timeout_s: None,
        }
    }
}

/// A seeded fault schedule: `(model, n_devices, seed)` fully determine the
/// faults of every iteration.
///
/// # Determinism contract
///
/// `faults_at(k)` seeds a fresh `ChaCha8Rng` with the plan seed and sets
/// its **stream** to `k`, so iteration schedules are independent of the
/// order (and thread) in which they are materialized. Same seed + same
/// model + same `k` → bit-identical [`IterationFaults`], at any worker
/// count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    model: FaultModel,
    n_devices: usize,
    seed: u64,
}

impl FaultPlan {
    /// Builds a plan, validating the model and device count.
    pub fn new(model: FaultModel, n_devices: usize, seed: u64) -> Result<Self> {
        model.validate()?;
        if n_devices == 0 {
            return Err(SimError::InvalidArgument(
                "fault plan needs at least one device".to_string(),
            ));
        }
        Ok(FaultPlan {
            model,
            n_devices,
            seed,
        })
    }

    /// The fault distribution this plan realizes.
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// Number of devices the plan covers.
    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Realizes iteration `k`'s fault schedule (random access, stateless).
    ///
    /// Seven draws per device, unconditional, in a fixed order — so the
    /// realization of one fault channel never depends on another channel's
    /// probability. Dropout trumps the other channels.
    pub fn faults_at(&self, k: u64) -> IterationFaults {
        if self.model.is_none() {
            return IterationFaults::none(self.n_devices);
        }
        let m = &self.model;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        rng.set_stream(k);
        let mut devices = Vec::with_capacity(self.n_devices);
        for _ in 0..self.n_devices {
            let u_drop: f64 = rng.gen();
            let u_strag: f64 = rng.gen();
            let factor: f64 = rng.gen_range(m.straggler_min..=m.straggler_max);
            let u_fail: f64 = rng.gen();
            let u_blackout: f64 = rng.gen();
            let blackout_start: f64 = rng.gen_range(0.0..=m.blackout_offset_max_s);
            let blackout_dur: f64 = rng.gen_range(m.blackout_min_s..=m.blackout_max_s);

            let dropout = u_drop < m.dropout_prob;
            let straggles = !dropout && u_strag < m.straggler_prob;
            let blacked_out = !dropout && u_blackout < m.blackout_prob && blackout_dur > 0.0;
            devices.push(DeviceFault {
                dropout,
                upload_fail: !dropout && u_fail < m.upload_fail_prob,
                cmp_factor: if straggles { factor } else { 1.0 },
                com_factor: if straggles { factor } else { 1.0 },
                blackout_start_s: if blacked_out { blackout_start } else { 0.0 },
                blackout_dur_s: if blacked_out { blackout_dur } else { 0.0 },
            });
        }
        IterationFaults {
            devices,
            timeout_s: m.timeout_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn none_model_is_benign_and_skips_rng() {
        let plan = FaultPlan::new(FaultModel::none(), 4, 123).unwrap();
        let f = plan.faults_at(0);
        assert_eq!(f, IterationFaults::none(4));
        assert!(f.devices.iter().all(DeviceFault::is_benign));
        assert!(FaultModel::none().is_none());
        assert!(FaultModel::default().is_none());
    }

    #[test]
    fn chaos_preset_is_valid_and_not_none() {
        let m = FaultModel::chaos(0.2, 0.3, Some(60.0));
        assert!(m.validate().is_ok());
        assert!(!m.is_none());
        // A timeout alone makes the model non-trivial.
        let t = FaultModel {
            timeout_s: Some(10.0),
            ..FaultModel::none()
        };
        assert!(!t.is_none());
    }

    #[test]
    fn validation_rejects_bad_models() {
        let bad = |f: fn(&mut FaultModel)| {
            let mut m = FaultModel::chaos(0.1, 0.1, None);
            f(&mut m);
            m.validate()
        };
        assert!(bad(|m| m.dropout_prob = -0.1).is_err());
        assert!(bad(|m| m.straggler_prob = 1.5).is_err());
        assert!(bad(|m| m.upload_fail_prob = f64::NAN).is_err());
        assert!(bad(|m| m.straggler_min = 0.5).is_err());
        assert!(bad(|m| m.straggler_max = 1.0).is_err()); // < min (1.5)
        assert!(bad(|m| m.blackout_offset_max_s = -1.0).is_err());
        assert!(bad(|m| m.blackout_max_s = 1.0).is_err()); // < min (5.0)
        assert!(bad(|m| m.timeout_s = Some(0.0)).is_err());
        assert!(bad(|m| m.timeout_s = Some(f64::INFINITY)).is_err());
        assert!(FaultPlan::new(FaultModel::none(), 0, 1).is_err());
    }

    #[test]
    fn faults_at_is_stateless_and_order_independent() {
        let plan = FaultPlan::new(FaultModel::chaos(0.3, 0.3, Some(50.0)), 5, 99).unwrap();
        let forward: Vec<IterationFaults> = (0..20).map(|k| plan.faults_at(k)).collect();
        let backward: Vec<IterationFaults> = (0..20).rev().map(|k| plan.faults_at(k)).collect();
        for (k, f) in forward.iter().enumerate() {
            assert_eq!(*f, backward[19 - k], "iteration {k} not random-access");
            assert_eq!(*f, plan.faults_at(k as u64), "iteration {k} not stateless");
        }
    }

    #[test]
    fn different_seeds_or_iterations_differ() {
        let model = FaultModel::chaos(0.5, 0.5, None);
        let a = FaultPlan::new(model, 8, 1).unwrap();
        let b = FaultPlan::new(model, 8, 2).unwrap();
        assert_ne!(a.faults_at(0), b.faults_at(0), "seed must matter");
        assert_ne!(a.faults_at(0), a.faults_at(1), "iteration must matter");
    }

    #[test]
    fn dropout_trumps_other_channels() {
        // With every probability 1, all devices drop — and a dropped device
        // reports no other fault.
        let model = FaultModel {
            dropout_prob: 1.0,
            straggler_prob: 1.0,
            upload_fail_prob: 1.0,
            blackout_prob: 1.0,
            ..FaultModel::chaos(1.0, 1.0, Some(10.0))
        };
        let plan = FaultPlan::new(model, 6, 7).unwrap();
        for k in 0..10 {
            for d in &plan.faults_at(k).devices {
                assert!(d.dropout);
                assert!(!d.upload_fail);
                assert_eq!(d.cmp_factor, 1.0);
                assert_eq!(d.blackout_dur_s, 0.0);
            }
        }
    }

    proptest! {
        /// Dropout probability 0 → no device ever drops; probability 1 →
        /// every device drops, every iteration.
        #[test]
        fn prop_dropout_extremes(seed in 0u64..1000, k in 0u64..100) {
            let never = FaultPlan::new(
                FaultModel { dropout_prob: 0.0, ..FaultModel::chaos(0.0, 0.5, None) },
                4,
                seed,
            ).unwrap();
            prop_assert!(never.faults_at(k).devices.iter().all(|d| !d.dropout));
            let always = FaultPlan::new(
                FaultModel { dropout_prob: 1.0, ..FaultModel::chaos(1.0, 0.5, None) },
                4,
                seed,
            ).unwrap();
            prop_assert!(always.faults_at(k).devices.iter().all(|d| d.dropout));
        }

        /// Straggler factors drawn from the model always respect the
        /// configured `[min, max]` range and never fall below 1.
        #[test]
        fn prop_straggler_factor_in_range(
            seed in 0u64..1000,
            k in 0u64..50,
            lo in 1.0f64..3.0,
            span in 0.0f64..4.0,
        ) {
            let model = FaultModel {
                straggler_prob: 1.0,
                straggler_min: lo,
                straggler_max: lo + span,
                ..FaultModel::chaos(0.0, 1.0, None)
            };
            let plan = FaultPlan::new(model, 3, seed).unwrap();
            for d in &plan.faults_at(k).devices {
                prop_assert!(d.cmp_factor >= 1.0);
                prop_assert!(d.cmp_factor >= lo && d.cmp_factor <= lo + span);
                prop_assert!(d.com_factor == d.cmp_factor);
            }
        }

        /// The realized schedule is a pure function of (seed, model, k).
        #[test]
        fn prop_schedule_deterministic(seed in 0u64..10_000, k in 0u64..1000) {
            let model = FaultModel::chaos(0.25, 0.25, Some(40.0));
            let a = FaultPlan::new(model, 5, seed).unwrap();
            let b = FaultPlan::new(model, 5, seed).unwrap();
            prop_assert_eq!(a.faults_at(k), b.faults_at(k));
        }
    }
}
