//! Error type for the fl-sim crate.

use std::fmt;

/// Errors raised by the FL system model.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration or constructor argument was invalid.
    InvalidArgument(String),
    /// A frequency action was outside `(0, δ_i^max]` for some device.
    FrequencyOutOfRange {
        /// Offending device index.
        device: usize,
        /// The requested frequency (GHz).
        freq: f64,
        /// That device's cap (GHz).
        max: f64,
    },
    /// A device index was outside the fleet.
    DeviceOutOfRange {
        /// The requested device index.
        device: usize,
        /// Fleet size `N`.
        n_devices: usize,
    },
    /// A trace-level failure bubbled up from `fl-net`.
    Net(fl_net::NetError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            SimError::FrequencyOutOfRange { device, freq, max } => write!(
                f,
                "device {device}: frequency {freq} GHz outside (0, {max}]"
            ),
            SimError::DeviceOutOfRange { device, n_devices } => write!(
                f,
                "device index {device} out of range for a fleet of {n_devices}"
            ),
            SimError::Net(e) => write!(f, "network trace error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fl_net::NetError> for SimError {
    fn from(e: fl_net::NetError) -> Self {
        SimError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = SimError::FrequencyOutOfRange {
            device: 2,
            freq: 3.0,
            max: 2.0,
        };
        assert!(e.to_string().contains("device 2"));
        assert!(e.source().is_none());

        let n: SimError = fl_net::NetError::Parse("x".into()).into();
        assert!(n.to_string().contains("x"));
        assert!(n.source().is_some());
    }
}
