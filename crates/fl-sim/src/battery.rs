//! Battery accounting.
//!
//! The paper's Section I motivation: "mobile devices may hesitate to join
//! federated learning if the participation incurs quick battery
//! exhaustion". This module makes that measurable — charge each device's
//! battery with the per-iteration energy from [`crate::IterationReport`]
//! and read off the *session lifetime*: how many synchronized iterations
//! the fleet survives before its first device dies (synchronous FL halts
//! when any participant drops).

use crate::{IterationReport, Result, SimError};
use serde::{Deserialize, Serialize};

/// One device's battery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity_j: f64,
    charge_j: f64,
}

impl Battery {
    /// A full battery of the given capacity (joules). Typical smartphone
    /// batteries hold 30–50 kJ; FL sessions are usually granted a small
    /// budget slice of that.
    pub fn new(capacity_j: f64) -> Result<Self> {
        if !(capacity_j > 0.0) || !capacity_j.is_finite() {
            return Err(SimError::InvalidArgument(format!(
                "battery capacity must be positive and finite, got {capacity_j}"
            )));
        }
        Ok(Battery {
            capacity_j,
            charge_j: capacity_j,
        })
    }

    /// Capacity in joules.
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Remaining charge in joules.
    pub fn charge_j(&self) -> f64 {
        self.charge_j
    }

    /// Remaining state of charge in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.charge_j / self.capacity_j
    }

    /// True once the battery has been fully drained.
    pub fn is_depleted(&self) -> bool {
        self.charge_j <= 0.0
    }

    /// Drains `joules`; clamps at zero and reports whether the battery
    /// survived the draw.
    pub fn drain(&mut self, joules: f64) -> Result<bool> {
        if !(joules >= 0.0) || !joules.is_finite() {
            return Err(SimError::InvalidArgument(format!(
                "drain must be non-negative and finite, got {joules}"
            )));
        }
        self.charge_j = (self.charge_j - joules).max(0.0);
        Ok(!self.is_depleted())
    }
}

/// Batteries for a whole fleet, charged from iteration reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetBattery {
    batteries: Vec<Battery>,
    iterations_survived: usize,
    dead: bool,
}

impl FleetBattery {
    /// Every device starts with the same full capacity (joules).
    pub fn uniform(n_devices: usize, capacity_j: f64) -> Result<Self> {
        if n_devices == 0 {
            return Err(SimError::InvalidArgument(
                "need at least one device".to_string(),
            ));
        }
        let batteries = (0..n_devices)
            .map(|_| Battery::new(capacity_j))
            .collect::<Result<Vec<_>>>()?;
        Ok(FleetBattery {
            batteries,
            iterations_survived: 0,
            dead: false,
        })
    }

    /// Heterogeneous capacities (joules), one per device.
    pub fn from_capacities(capacities_j: &[f64]) -> Result<Self> {
        if capacities_j.is_empty() {
            return Err(SimError::InvalidArgument(
                "need at least one device".to_string(),
            ));
        }
        let batteries = capacities_j
            .iter()
            .map(|&c| Battery::new(c))
            .collect::<Result<Vec<_>>>()?;
        Ok(FleetBattery {
            batteries,
            iterations_survived: 0,
            dead: false,
        })
    }

    /// Per-device batteries.
    pub fn batteries(&self) -> &[Battery] {
        &self.batteries
    }

    /// Iterations completed with every device still alive.
    pub fn iterations_survived(&self) -> usize {
        self.iterations_survived
    }

    /// True once any device has died (synchronous FL cannot continue).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Minimum state of charge across the fleet.
    pub fn min_fraction(&self) -> f64 {
        self.batteries
            .iter()
            .map(Battery::fraction)
            .fold(1.0, f64::min)
    }

    /// Applies one iteration's energy draw. Returns `true` when the whole
    /// fleet survived the iteration; once dead, further calls error.
    pub fn apply(&mut self, report: &IterationReport) -> Result<bool> {
        if self.dead {
            return Err(SimError::InvalidArgument(
                "fleet already has a depleted device".to_string(),
            ));
        }
        if report.devices.len() != self.batteries.len() {
            return Err(SimError::InvalidArgument(format!(
                "report covers {} devices, fleet has {}",
                report.devices.len(),
                self.batteries.len()
            )));
        }
        let mut all_alive = true;
        for (b, outcome) in self.batteries.iter_mut().zip(&report.devices) {
            all_alive &= b.drain(outcome.total_energy())?;
        }
        if all_alive {
            self.iterations_survived += 1;
        } else {
            self.dead = true;
        }
        Ok(all_alive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::DeviceOutcome;

    fn report(energies: &[f64]) -> IterationReport {
        IterationReport {
            start_time: 0.0,
            duration: 1.0,
            devices: energies
                .iter()
                .map(|&e| DeviceOutcome {
                    freq_ghz: 1.0,
                    compute_time: 1.0,
                    comm_time: 0.0,
                    idle_time: 0.0,
                    compute_energy: e,
                    comm_energy: 0.0,
                    avg_bandwidth: 1.0,
                    status: crate::DeviceStatus::default(),
                })
                .collect(),
        }
    }

    #[test]
    fn battery_validation_and_basics() {
        assert!(Battery::new(0.0).is_err());
        assert!(Battery::new(f64::NAN).is_err());
        let mut b = Battery::new(10.0).unwrap();
        assert_eq!(b.fraction(), 1.0);
        assert_eq!(b.capacity_j(), 10.0);
        assert!(b.drain(4.0).unwrap());
        assert_eq!(b.charge_j(), 6.0);
        assert!(!b.is_depleted());
        assert!(!b.drain(100.0).unwrap());
        assert_eq!(b.charge_j(), 0.0);
        assert!(b.is_depleted());
        assert!(b.drain(-1.0).is_err());
    }

    #[test]
    fn fleet_construction_validation() {
        assert!(FleetBattery::uniform(0, 10.0).is_err());
        assert!(FleetBattery::from_capacities(&[]).is_err());
        assert!(FleetBattery::from_capacities(&[1.0, -1.0]).is_err());
    }

    #[test]
    fn fleet_survival_counting() {
        let mut fleet = FleetBattery::uniform(2, 10.0).unwrap();
        // 4 J per device per iteration: dies during the third iteration.
        assert!(fleet.apply(&report(&[4.0, 4.0])).unwrap());
        assert!(fleet.apply(&report(&[4.0, 4.0])).unwrap());
        assert_eq!(fleet.iterations_survived(), 2);
        assert!(!fleet.is_dead());
        assert!(!fleet.apply(&report(&[4.0, 4.0])).unwrap());
        assert!(fleet.is_dead());
        assert_eq!(fleet.iterations_survived(), 2);
        // Dead fleet rejects further work.
        assert!(fleet.apply(&report(&[1.0, 1.0])).is_err());
    }

    #[test]
    fn first_death_halts_even_with_healthy_peers() {
        let mut fleet = FleetBattery::from_capacities(&[100.0, 5.0]).unwrap();
        assert!(!fleet.apply(&report(&[1.0, 6.0])).unwrap());
        assert!(fleet.is_dead());
        // The healthy device's remaining charge is irrelevant to the
        // session, but it is still tracked.
        assert!(fleet.batteries()[0].fraction() > 0.9);
        assert_eq!(fleet.min_fraction(), 0.0);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut fleet = FleetBattery::uniform(3, 10.0).unwrap();
        assert!(fleet.apply(&report(&[1.0])).is_err());
    }

    #[test]
    fn lower_energy_extends_lifetime() {
        // The paper's motivation quantified: halving per-iteration energy
        // doubles the number of iterations a budget supports.
        // 13 J is not a multiple of either draw, so neither run hits the
        // exactly-zero boundary (which counts as depleted).
        let budget = 13.0;
        let mut fast = FleetBattery::uniform(1, budget).unwrap();
        let mut slow = FleetBattery::uniform(1, budget).unwrap();
        while fast.apply(&report(&[4.0])).unwrap() {}
        while slow.apply(&report(&[2.0])).unwrap() {}
        assert_eq!(fast.iterations_survived() * 2, slow.iterations_survived());
    }
}
