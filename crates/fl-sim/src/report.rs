//! Per-iteration and per-session metric records.

use crate::fault::DeviceStatus;
use serde::{Deserialize, Serialize};

/// What one device experienced during one synchronized iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceOutcome {
    /// Frequency the device ran at (GHz).
    pub freq_ghz: f64,
    /// Eq. (1) computation time (s).
    pub compute_time: f64,
    /// Upload time through the time-varying channel (s).
    pub comm_time: f64,
    /// `Δt_i^k`: time spent idle waiting for the slowest device (s).
    pub idle_time: f64,
    /// CPU energy (J), first term of Eq. (6).
    pub compute_energy: f64,
    /// Radio energy (J), second term of Eq. (6).
    pub comm_energy: f64,
    /// Realized average upload bandwidth `B_i^k` (MB/s), Eq. (3).
    pub avg_bandwidth: f64,
    /// How the round ended for this device (always `Completed` on the
    /// fault-free path).
    pub status: DeviceStatus,
}

impl DeviceOutcome {
    /// `T_i^k = t_cmp + t_com` (Eq. 4).
    pub fn total_time(&self) -> f64 {
        self.compute_time + self.comm_time
    }

    /// `E_i^k` (Eq. 6).
    pub fn total_energy(&self) -> f64 {
        self.compute_energy + self.comm_energy
    }
}

/// The outcome of one synchronized FL iteration (Eqs. 1–6 evaluated).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationReport {
    /// `t^k`: wall-clock start of the iteration (s).
    pub start_time: f64,
    /// `T^k = max_i T_i^k` (Eq. 5): iteration duration (s).
    pub duration: f64,
    /// Per-device breakdown.
    pub devices: Vec<DeviceOutcome>,
}

impl IterationReport {
    /// `Σ_i E_i^k`: total energy spent this iteration (J).
    pub fn total_energy(&self) -> f64 {
        self.devices.iter().map(DeviceOutcome::total_energy).sum()
    }

    /// System cost of this iteration: `T^k + λ Σ_i E_i^k` (one term of
    /// Eq. 9).
    pub fn cost(&self, lambda: f64) -> f64 {
        self.duration + lambda * self.total_energy()
    }

    /// `t^{k+1} = t^k + T^k` (Eq. 11).
    pub fn end_time(&self) -> f64 {
        self.start_time + self.duration
    }

    /// Total idle time across devices (the waste Fig. 3 highlights).
    pub fn total_idle(&self) -> f64 {
        self.devices.iter().map(|d| d.idle_time).sum()
    }

    /// Per-device "did the update reach the aggregator" flags, device
    /// order.
    pub fn survivor_flags(&self) -> Vec<bool> {
        self.devices.iter().map(|d| d.status.survived()).collect()
    }

    /// Number of devices whose update survived this iteration.
    pub fn survivors(&self) -> usize {
        self.devices.iter().filter(|d| d.status.survived()).count()
    }

    /// Outcome counts `[Completed, Straggled, Dropped, Failed]`.
    pub fn outcome_tally(&self) -> OutcomeTally {
        let mut tally = OutcomeTally::default();
        for d in &self.devices {
            tally.add(d.status);
        }
        tally
    }
}

/// Counts of per-device outcomes, accumulated over one or more iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OutcomeTally {
    /// Devices that finished cleanly.
    pub completed: usize,
    /// Devices slowed by a fault whose update still arrived.
    pub straggled: usize,
    /// Devices that skipped their round.
    pub dropped: usize,
    /// Devices whose update was lost (upload failure or timeout).
    pub failed: usize,
}

impl OutcomeTally {
    /// Records one device outcome.
    pub fn add(&mut self, status: DeviceStatus) {
        match status {
            DeviceStatus::Completed => self.completed += 1,
            DeviceStatus::Straggled => self.straggled += 1,
            DeviceStatus::Dropped => self.dropped += 1,
            DeviceStatus::Failed => self.failed += 1,
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &OutcomeTally) {
        self.completed += other.completed;
        self.straggled += other.straggled;
        self.dropped += other.dropped;
        self.failed += other.failed;
    }

    /// Total outcomes recorded.
    pub fn total(&self) -> usize {
        self.completed + self.straggled + self.dropped + self.failed
    }
}

/// Accumulates [`IterationReport`]s over a session and exposes the series
/// the paper's figures plot.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SessionLedger {
    /// λ used for the cost series.
    pub lambda: f64,
    iterations: Vec<IterationReport>,
}

impl SessionLedger {
    /// New empty ledger for the given λ.
    pub fn new(lambda: f64) -> Self {
        SessionLedger {
            lambda,
            iterations: Vec::new(),
        }
    }

    /// Records one iteration.
    pub fn push(&mut self, report: IterationReport) {
        self.iterations.push(report);
    }

    /// Number of iterations recorded.
    pub fn len(&self) -> usize {
        self.iterations.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.iterations.is_empty()
    }

    /// The raw reports.
    pub fn iterations(&self) -> &[IterationReport] {
        &self.iterations
    }

    /// Per-iteration system cost (Fig. 7a/7d, Fig. 8 series).
    pub fn cost_series(&self) -> Vec<f64> {
        self.iterations
            .iter()
            .map(|r| r.cost(self.lambda))
            .collect()
    }

    /// Per-iteration duration `T^k` (Fig. 7b/7e series).
    pub fn time_series(&self) -> Vec<f64> {
        self.iterations.iter().map(|r| r.duration).collect()
    }

    /// Per-iteration total energy (Fig. 7c/7f series).
    pub fn energy_series(&self) -> Vec<f64> {
        self.iterations
            .iter()
            .map(IterationReport::total_energy)
            .collect()
    }

    /// Objective (9): total cost over all recorded iterations.
    pub fn total_cost(&self) -> f64 {
        self.cost_series().iter().sum()
    }

    /// Mean per-iteration cost.
    pub fn mean_cost(&self) -> f64 {
        if self.iterations.is_empty() {
            0.0
        } else {
            self.total_cost() / self.iterations.len() as f64
        }
    }

    /// Mean per-iteration duration.
    pub fn mean_time(&self) -> f64 {
        if self.iterations.is_empty() {
            0.0
        } else {
            self.time_series().iter().sum::<f64>() / self.iterations.len() as f64
        }
    }

    /// Mean per-iteration energy.
    pub fn mean_energy(&self) -> f64 {
        if self.iterations.is_empty() {
            0.0
        } else {
            self.energy_series().iter().sum::<f64>() / self.iterations.len() as f64
        }
    }

    /// Outcome counts summed over every recorded iteration.
    pub fn outcome_tally(&self) -> OutcomeTally {
        let mut tally = OutcomeTally::default();
        for r in &self.iterations {
            tally.merge(&r.outcome_tally());
        }
        tally
    }

    /// Serializes the per-iteration series as CSV
    /// (`iteration,start,duration,energy,cost,idle`) for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.iterations.len() * 64 + 64);
        out.push_str("iteration,start_s,duration_s,energy_j,cost,idle_s\n");
        for (k, r) in self.iterations.iter().enumerate() {
            out.push_str(&format!(
                "{k},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
                r.start_time,
                r.duration,
                r.total_energy(),
                r.cost(self.lambda),
                r.total_idle()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(freq: f64, cmp: f64, com: f64, idle: f64) -> DeviceOutcome {
        DeviceOutcome {
            freq_ghz: freq,
            compute_time: cmp,
            comm_time: com,
            idle_time: idle,
            compute_energy: 1.0,
            comm_energy: 0.5,
            avg_bandwidth: 2.0,
            status: DeviceStatus::default(),
        }
    }

    fn report(start: f64) -> IterationReport {
        IterationReport {
            start_time: start,
            duration: 10.0,
            devices: vec![outcome(1.0, 6.0, 4.0, 0.0), outcome(2.0, 3.0, 2.0, 5.0)],
        }
    }

    #[test]
    fn device_outcome_totals() {
        let o = outcome(1.5, 6.0, 4.0, 0.0);
        assert_eq!(o.total_time(), 10.0);
        assert_eq!(o.total_energy(), 1.5);
    }

    #[test]
    fn iteration_cost_and_energy() {
        let r = report(0.0);
        assert_eq!(r.total_energy(), 3.0);
        assert!((r.cost(0.5) - 11.5).abs() < 1e-12);
        assert_eq!(r.end_time(), 10.0);
        assert_eq!(r.total_idle(), 5.0);
    }

    #[test]
    fn ledger_series_and_means() {
        let mut l = SessionLedger::new(0.1);
        assert!(l.is_empty());
        l.push(report(0.0));
        l.push(report(10.0));
        assert_eq!(l.len(), 2);
        assert_eq!(l.cost_series().len(), 2);
        assert!((l.mean_cost() - 10.3).abs() < 1e-12);
        assert!((l.mean_time() - 10.0).abs() < 1e-12);
        assert!((l.mean_energy() - 3.0).abs() < 1e-12);
        assert!((l.total_cost() - 20.6).abs() < 1e-12);
    }

    #[test]
    fn csv_export_layout() {
        let mut l = SessionLedger::new(0.5);
        l.push(report(0.0));
        let csv = l.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "iteration,start_s,duration_s,energy_j,cost,idle_s"
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("0,0.0000,10.0000,3.0000,11.5000"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn outcome_tallies_and_survivors() {
        let mut r = report(0.0);
        r.devices[0].status = DeviceStatus::Straggled;
        r.devices[1].status = DeviceStatus::Dropped;
        r.devices.push(outcome(1.0, 1.0, 1.0, 0.0)); // Completed
        r.devices.push({
            let mut o = outcome(1.0, 1.0, 1.0, 0.0);
            o.status = DeviceStatus::Failed;
            o
        });
        assert_eq!(r.survivor_flags(), vec![true, false, true, false]);
        assert_eq!(r.survivors(), 2);
        let t = r.outcome_tally();
        assert_eq!(
            t,
            OutcomeTally {
                completed: 1,
                straggled: 1,
                dropped: 1,
                failed: 1
            }
        );
        assert_eq!(t.total(), 4);

        let mut l = SessionLedger::new(0.1);
        l.push(r.clone());
        l.push(r);
        let summed = l.outcome_tally();
        assert_eq!(summed.total(), 8);
        assert_eq!(summed.dropped, 2);
    }

    #[test]
    fn empty_ledger_means_are_zero() {
        let l = SessionLedger::new(0.1);
        assert_eq!(l.mean_cost(), 0.0);
        assert_eq!(l.mean_time(), 0.0);
        assert_eq!(l.mean_energy(), 0.0);
    }
}
