//! The synchronized-iteration engine.

use crate::report::{DeviceOutcome, IterationReport};
use crate::{MobileDevice, Result, SimError};
use fl_net::TraceSet;
use serde::{Deserialize, Serialize};

/// Task-level configuration shared by all devices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlConfig {
    /// `τ`: local training passes per iteration.
    pub tau: u32,
    /// `ξ`: model size uploaded each iteration (MB).
    pub model_size_mb: f64,
    /// `λ`: energy weight in the system cost (Eq. 9).
    pub lambda: f64,
}

impl Default for FlConfig {
    fn default() -> Self {
        FlConfig {
            tau: 1,
            model_size_mb: 10.0,
            lambda: 0.25,
        }
    }
}

impl FlConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.tau == 0 {
            return Err(SimError::InvalidArgument("tau must be >= 1".to_string()));
        }
        if !(self.model_size_mb > 0.0) || !self.model_size_mb.is_finite() {
            return Err(SimError::InvalidArgument(format!(
                "model_size_mb must be positive, got {}",
                self.model_size_mb
            )));
        }
        if !(self.lambda >= 0.0) || !self.lambda.is_finite() {
            return Err(SimError::InvalidArgument(format!(
                "lambda must be non-negative, got {}",
                self.lambda
            )));
        }
        Ok(())
    }
}

/// The federated-learning system of Section III: a fleet of devices, their
/// bandwidth traces, and the synchronized-iteration timing/energy model.
///
/// `FlSystem` is deliberately *policy-free*: callers (the DRL environment,
/// the baselines, the figure harness) pick the frequency vector and this
/// type evaluates one iteration of the physics.
#[derive(Debug, Clone)]
pub struct FlSystem {
    devices: Vec<MobileDevice>,
    traces: TraceSet,
    config: FlConfig,
}

impl FlSystem {
    /// Builds a system, validating devices, trace indices, and config.
    pub fn new(devices: Vec<MobileDevice>, traces: TraceSet, config: FlConfig) -> Result<Self> {
        config.validate()?;
        if devices.is_empty() {
            return Err(SimError::InvalidArgument(
                "need at least one device".to_string(),
            ));
        }
        for d in &devices {
            d.validate()?;
            if d.trace_idx >= traces.len() {
                return Err(SimError::InvalidArgument(format!(
                    "device {} references trace {} but only {} traces exist",
                    d.id,
                    d.trace_idx,
                    traces.len()
                )));
            }
        }
        Ok(FlSystem {
            devices,
            traces,
            config,
        })
    }

    /// The fleet.
    pub fn devices(&self) -> &[MobileDevice] {
        &self.devices
    }

    /// Number of devices `N`.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The trace pool.
    pub fn traces(&self) -> &TraceSet {
        &self.traces
    }

    /// The trace device `i` follows.
    pub fn trace_of(&self, device: usize) -> &fl_net::BandwidthTrace {
        self.traces
            .get(self.devices[device].trace_idx)
            .expect("trace indices validated at construction")
    }

    /// Task configuration.
    pub fn config(&self) -> &FlConfig {
        &self.config
    }

    /// Replaces λ (used by the λ-sweep ablation without rebuilding traces).
    pub fn set_lambda(&mut self, lambda: f64) -> Result<()> {
        let mut c = self.config;
        c.lambda = lambda;
        c.validate()?;
        self.config = c;
        Ok(())
    }

    /// Clamps a raw action vector into the feasible region `(0, δ_i^max]`,
    /// with `min_frac · δ_max` as the floor so compute time stays finite.
    pub fn clamp_freqs(&self, raw: &[f64], min_frac: f64) -> Vec<f64> {
        self.devices
            .iter()
            .zip(raw)
            .map(|(d, &f)| f.clamp(min_frac * d.delta_max_ghz, d.delta_max_ghz))
            .collect()
    }

    /// Runs one synchronized iteration starting at `t_start` with the given
    /// per-device CPU frequencies (GHz).
    ///
    /// For each device: compute for `τ c_i D_i / δ_i` seconds (Eq. 1), then
    /// upload `ξ` MB through its trace starting the moment computation ends
    /// — the upload duration is solved exactly against the time-varying
    /// bandwidth, and Eq. (3)'s realized average bandwidth is reported.
    /// `T^k` is the max over devices (Eq. 5); idle time is `T^k − T_i^k`.
    pub fn run_iteration(&self, t_start: f64, freqs: &[f64]) -> Result<IterationReport> {
        if freqs.len() != self.devices.len() {
            return Err(SimError::InvalidArgument(format!(
                "expected {} frequencies, got {}",
                self.devices.len(),
                freqs.len()
            )));
        }
        if !(t_start.is_finite()) || t_start < 0.0 {
            return Err(SimError::InvalidArgument(format!(
                "t_start must be finite and non-negative, got {t_start}"
            )));
        }
        let mut outcomes = Vec::with_capacity(self.devices.len());
        let mut t_max: f64 = 0.0;
        for (d, &freq) in self.devices.iter().zip(freqs) {
            if !(freq > 0.0) || freq > d.delta_max_ghz + 1e-12 || !freq.is_finite() {
                return Err(SimError::FrequencyOutOfRange {
                    device: d.id,
                    freq,
                    max: d.delta_max_ghz,
                });
            }
            let compute_time = d.compute_time(self.config.tau, freq);
            let upload_start = t_start + compute_time;
            let trace = self
                .traces
                .get(d.trace_idx)
                .expect("validated at construction");
            let comm_time = trace.transfer_time(upload_start, self.config.model_size_mb)?;
            let avg_bandwidth = if comm_time > 0.0 {
                self.config.model_size_mb / comm_time
            } else {
                trace.bandwidth_at(upload_start)?
            };
            let total = compute_time + comm_time;
            t_max = t_max.max(total);
            outcomes.push(DeviceOutcome {
                freq_ghz: freq,
                compute_time,
                comm_time,
                idle_time: 0.0, // filled in below once T^k is known
                compute_energy: d.compute_energy(self.config.tau, freq),
                comm_energy: d.comm_energy(comm_time),
                avg_bandwidth,
            });
        }
        for o in &mut outcomes {
            o.idle_time = t_max - o.total_time();
        }
        Ok(IterationReport {
            start_time: t_start,
            duration: t_max,
            devices: outcomes,
        })
    }

    /// Builds the DRL state for iteration start time `t`: for every device,
    /// the `history_len + 1` most recent `h`-second slot-average bandwidths
    /// (newest first), concatenated device-major — exactly the
    /// `s_k = (B_1^k, ..., B_N^k)` of Section IV-B1.
    pub fn observe_bandwidth_state(
        &self,
        t: f64,
        slot_h: f64,
        history_len: usize,
    ) -> Result<Vec<f64>> {
        let mut state = Vec::with_capacity(self.devices.len() * (history_len + 1));
        for d in &self.devices {
            let trace = self
                .traces
                .get(d.trace_idx)
                .expect("validated at construction");
            state.extend(trace.history(t, slot_h, history_len)?);
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceSampler;
    use fl_net::BandwidthTrace;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn flat_traces(bws: &[f64]) -> TraceSet {
        TraceSet::new(
            bws.iter()
                .map(|&b| BandwidthTrace::new(1.0, vec![b; 4]).unwrap().cyclic())
                .collect(),
        )
        .unwrap()
    }

    fn simple_device(id: usize, trace_idx: usize, dmax: f64) -> MobileDevice {
        MobileDevice {
            id,
            cycles_per_bit: 20.0,
            data_mb: 62.5, // 20 * 62.5 * 8e6 / 1e9 = 10 Gcycles
            alpha: 0.1,
            delta_max_ghz: dmax,
            tx_power_w: 0.2,
            trace_idx,
        }
    }

    fn system() -> FlSystem {
        let devices = vec![simple_device(0, 0, 2.0), simple_device(1, 1, 2.0)];
        let traces = flat_traces(&[2.0, 5.0]);
        FlSystem::new(devices, traces, FlConfig::default()).unwrap()
    }

    #[test]
    fn construction_validation() {
        let traces = flat_traces(&[1.0]);
        assert!(FlSystem::new(vec![], traces.clone(), FlConfig::default()).is_err());
        // Bad trace index.
        let d = simple_device(0, 5, 2.0);
        assert!(FlSystem::new(vec![d], traces.clone(), FlConfig::default()).is_err());
        // Bad config.
        let d = simple_device(0, 0, 2.0);
        let bad = FlConfig {
            tau: 0,
            ..FlConfig::default()
        };
        assert!(FlSystem::new(vec![d.clone()], traces.clone(), bad).is_err());
        let bad_lambda = FlConfig {
            lambda: -1.0,
            ..FlConfig::default()
        };
        assert!(FlSystem::new(vec![d], traces, bad_lambda).is_err());
    }

    #[test]
    fn iteration_physics_by_hand() {
        // Device 0: 10 Gcycles at 2 GHz = 5 s compute; 10 MB at 2 MB/s = 5 s
        // upload → T_0 = 10. Device 1: 5 s compute, 2 s upload → T_1 = 7.
        let sys = system();
        let r = sys.run_iteration(0.0, &[2.0, 2.0]).unwrap();
        assert!((r.duration - 10.0).abs() < 1e-9);
        assert!((r.devices[0].total_time() - 10.0).abs() < 1e-9);
        assert!((r.devices[1].total_time() - 7.0).abs() < 1e-9);
        assert!((r.devices[1].idle_time - 3.0).abs() < 1e-9);
        assert!((r.devices[0].idle_time).abs() < 1e-9);
        // Realized bandwidth equals the flat trace bandwidth.
        assert!((r.devices[0].avg_bandwidth - 2.0).abs() < 1e-9);
        assert!((r.devices[1].avg_bandwidth - 5.0).abs() < 1e-9);
        // Energy: α τ ε δ² = 0.1*1*10*4 = 4 J compute each; comm 0.2W * t.
        assert!((r.devices[0].compute_energy - 4.0).abs() < 1e-9);
        assert!((r.devices[0].comm_energy - 1.0).abs() < 1e-9);
        assert!((r.devices[1].comm_energy - 0.4).abs() < 1e-9);
    }

    #[test]
    fn slowing_fast_device_saves_energy_without_hurting_time() {
        // The paper's motivating observation (Fig. 3): device 1 idles 3 s at
        // full speed, so it can run slower for free.
        let sys = system();
        let fast = sys.run_iteration(0.0, &[2.0, 2.0]).unwrap();
        // Slow device 1 so its total time is exactly 10 s:
        // compute = 10/δ, comm = 2 → δ = 10/8 = 1.25.
        let tuned = sys.run_iteration(0.0, &[2.0, 1.25]).unwrap();
        assert!((tuned.duration - fast.duration).abs() < 1e-9);
        assert!(tuned.total_energy() < fast.total_energy());
        assert!(tuned.devices[1].idle_time.abs() < 1e-9);
    }

    #[test]
    fn frequency_bounds_enforced() {
        let sys = system();
        assert!(matches!(
            sys.run_iteration(0.0, &[2.5, 2.0]),
            Err(SimError::FrequencyOutOfRange { device: 0, .. })
        ));
        assert!(matches!(
            sys.run_iteration(0.0, &[2.0, 0.0]),
            Err(SimError::FrequencyOutOfRange { device: 1, .. })
        ));
        assert!(sys.run_iteration(0.0, &[2.0]).is_err()); // wrong arity
        assert!(sys.run_iteration(-1.0, &[2.0, 2.0]).is_err());
    }

    #[test]
    fn clamp_freqs_respects_caps() {
        let sys = system();
        let clamped = sys.clamp_freqs(&[99.0, -1.0], 0.05);
        assert_eq!(clamped[0], 2.0);
        assert_eq!(clamped[1], 0.1);
        assert!(sys.run_iteration(0.0, &clamped).is_ok());
    }

    #[test]
    fn upload_rides_time_varying_bandwidth() {
        // Trace: 1 MB/s for 10 s then 10 MB/s. Upload starting at t=5 with
        // 10 MB: 5 MB in [5,10), then 5 MB at 10 MB/s = 0.5 s → 5.5 s total.
        let mut slots = vec![1.0; 10];
        slots.extend(vec![10.0; 10]);
        let traces =
            TraceSet::new(vec![BandwidthTrace::new(1.0, slots).unwrap().cyclic()]).unwrap();
        // 10 Gcycles at 2 GHz = 5 s compute.
        let d = simple_device(0, 0, 2.0);
        let sys = FlSystem::new(vec![d], traces, FlConfig::default()).unwrap();
        let r = sys.run_iteration(0.0, &[2.0]).unwrap();
        assert!((r.devices[0].comm_time - 5.5).abs() < 1e-9);
        // Eq. (3): realized avg bandwidth = 10 MB / 5.5 s.
        assert!((r.devices[0].avg_bandwidth - 10.0 / 5.5).abs() < 1e-9);
    }

    #[test]
    fn observe_bandwidth_state_layout() {
        let sys = system();
        let s = sys.observe_bandwidth_state(7.0, 1.0, 2).unwrap();
        // 2 devices × (H+1 = 3) entries; flat traces → constant values.
        assert_eq!(s.len(), 6);
        assert!(s[..3].iter().all(|&v| (v - 2.0).abs() < 1e-9));
        assert!(s[3..].iter().all(|&v| (v - 5.0).abs() < 1e-9));
    }

    #[test]
    fn set_lambda_validates() {
        let mut sys = system();
        assert!(sys.set_lambda(0.5).is_ok());
        assert_eq!(sys.config().lambda, 0.5);
        assert!(sys.set_lambda(-0.5).is_err());
    }

    #[test]
    fn randomized_fleet_runs() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let traces =
            TraceSet::from_profile(fl_net::synth::Profile::Walking4G, 3, 600, 1.0, &mut rng)
                .unwrap();
        let assignment = traces.assign(5, &mut rng);
        let devices = DeviceSampler::default().sample_fleet(&assignment, &mut rng);
        let sys = FlSystem::new(devices, traces, FlConfig::default()).unwrap();
        let freqs: Vec<f64> = sys.devices().iter().map(|d| d.delta_max_ghz).collect();
        let mut t = 0.0;
        for _ in 0..20 {
            let r = sys.run_iteration(t, &freqs).unwrap();
            assert!(r.duration > 0.0 && r.duration.is_finite());
            assert!(r.total_energy() > 0.0);
            t = r.end_time();
        }
    }

    proptest! {
        /// T^k is exactly the max of the per-device totals, and idle times
        /// are non-negative with at least one (the straggler) zero.
        #[test]
        fn prop_sync_invariants(f0 in 0.2f64..2.0, f1 in 0.2f64..2.0) {
            let sys = system();
            let r = sys.run_iteration(0.0, &[f0, f1]).unwrap();
            let max_total = r
                .devices
                .iter()
                .map(|d| d.total_time())
                .fold(0.0f64, f64::max);
            prop_assert!((r.duration - max_total).abs() < 1e-9);
            prop_assert!(r.devices.iter().all(|d| d.idle_time >= -1e-9));
            let min_idle = r.devices.iter().map(|d| d.idle_time).fold(f64::INFINITY, f64::min);
            prop_assert!(min_idle.abs() < 1e-9);
        }

        /// Lowering any device's frequency never lowers iteration duration
        /// and never raises its compute energy.
        #[test]
        fn prop_freq_monotonicity(f in 0.2f64..2.0) {
            let sys = system();
            let base = sys.run_iteration(0.0, &[2.0, 2.0]).unwrap();
            let slowed = sys.run_iteration(0.0, &[2.0, f]).unwrap();
            prop_assert!(slowed.duration >= base.duration - 1e-9);
            prop_assert!(
                slowed.devices[1].compute_energy <= base.devices[1].compute_energy + 1e-9
            );
        }
    }
}
