//! The synchronized-iteration engine.

use crate::fault::{DeviceFault, DeviceStatus, IterationFaults};
use crate::report::{DeviceOutcome, IterationReport};
use crate::{MobileDevice, Result, SimError};
use fl_net::TraceSet;
use serde::{Deserialize, Serialize};

/// Task-level configuration shared by all devices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlConfig {
    /// `τ`: local training passes per iteration.
    pub tau: u32,
    /// `ξ`: model size uploaded each iteration (MB).
    pub model_size_mb: f64,
    /// `λ`: energy weight in the system cost (Eq. 9).
    pub lambda: f64,
}

impl Default for FlConfig {
    fn default() -> Self {
        FlConfig {
            tau: 1,
            model_size_mb: 10.0,
            lambda: 0.25,
        }
    }
}

impl FlConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.tau == 0 {
            return Err(SimError::InvalidArgument("tau must be >= 1".to_string()));
        }
        if !(self.model_size_mb > 0.0) || !self.model_size_mb.is_finite() {
            return Err(SimError::InvalidArgument(format!(
                "model_size_mb must be positive, got {}",
                self.model_size_mb
            )));
        }
        if !(self.lambda >= 0.0) || !self.lambda.is_finite() {
            return Err(SimError::InvalidArgument(format!(
                "lambda must be non-negative, got {}",
                self.lambda
            )));
        }
        Ok(())
    }
}

/// The federated-learning system of Section III: a fleet of devices, their
/// bandwidth traces, and the synchronized-iteration timing/energy model.
///
/// `FlSystem` is deliberately *policy-free*: callers (the DRL environment,
/// the baselines, the figure harness) pick the frequency vector and this
/// type evaluates one iteration of the physics.
#[derive(Debug, Clone)]
pub struct FlSystem {
    devices: Vec<MobileDevice>,
    traces: TraceSet,
    config: FlConfig,
    obs: SimObs,
}

/// Observability handles for the iteration engine (all disabled no-ops by
/// default). Clones share the underlying atomics, so a system cloned into
/// many environments aggregates its fault tallies in one place.
#[derive(Debug, Clone, Default)]
struct SimObs {
    iterations: fl_obs::Counter,
    completed: fl_obs::Counter,
    straggled: fl_obs::Counter,
    dropped: fl_obs::Counter,
    failed: fl_obs::Counter,
    duration_s: fl_obs::Histogram,
}

impl FlSystem {
    /// Builds a system, validating devices, trace indices, and config.
    pub fn new(devices: Vec<MobileDevice>, traces: TraceSet, config: FlConfig) -> Result<Self> {
        config.validate()?;
        if devices.is_empty() {
            return Err(SimError::InvalidArgument(
                "need at least one device".to_string(),
            ));
        }
        for d in &devices {
            d.validate()?;
            if d.trace_idx >= traces.len() {
                return Err(SimError::InvalidArgument(format!(
                    "device {} references trace {} but only {} traces exist",
                    d.id,
                    d.trace_idx,
                    traces.len()
                )));
            }
        }
        Ok(FlSystem {
            devices,
            traces,
            config,
            obs: SimObs::default(),
        })
    }

    /// Attaches an observability recorder: every iteration bumps fleet
    /// outcome counters (`sim.device.*`, mirroring the `OutcomeTally`
    /// statuses) and a round-duration histogram. Counters are atomic adds
    /// — commutative, so totals are invariant to worker scheduling — and
    /// recording never alters the physics or consumes RNG.
    pub fn set_recorder(&mut self, recorder: &fl_obs::Recorder) {
        self.obs = SimObs {
            iterations: recorder.counter("sim.iterations"),
            completed: recorder.counter("sim.device.completed"),
            straggled: recorder.counter("sim.device.straggled"),
            dropped: recorder.counter("sim.device.dropped"),
            failed: recorder.counter("sim.device.failed"),
            duration_s: recorder.histogram(
                "sim.round_duration_s",
                &[0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
            ),
        };
    }

    /// The fleet.
    pub fn devices(&self) -> &[MobileDevice] {
        &self.devices
    }

    /// Number of devices `N`.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The trace pool.
    pub fn traces(&self) -> &TraceSet {
        &self.traces
    }

    /// The trace device `i` follows. Errors (instead of panicking) when
    /// the device index is outside the fleet.
    pub fn trace_of(&self, device: usize) -> Result<&fl_net::BandwidthTrace> {
        let d = self.devices.get(device).ok_or(SimError::DeviceOutOfRange {
            device,
            n_devices: self.devices.len(),
        })?;
        Ok(self
            .traces
            .get(d.trace_idx)
            .expect("trace indices validated at construction"))
    }

    /// Task configuration.
    pub fn config(&self) -> &FlConfig {
        &self.config
    }

    /// Replaces λ (used by the λ-sweep ablation without rebuilding traces).
    pub fn set_lambda(&mut self, lambda: f64) -> Result<()> {
        let mut c = self.config;
        c.lambda = lambda;
        c.validate()?;
        self.config = c;
        Ok(())
    }

    /// Clamps a raw action vector into the feasible region `(0, δ_i^max]`,
    /// with `min_frac · δ_max` as the floor so compute time stays finite.
    pub fn clamp_freqs(&self, raw: &[f64], min_frac: f64) -> Vec<f64> {
        self.devices
            .iter()
            .zip(raw)
            .map(|(d, &f)| f.clamp(min_frac * d.delta_max_ghz, d.delta_max_ghz))
            .collect()
    }

    /// Runs one synchronized iteration starting at `t_start` with the given
    /// per-device CPU frequencies (GHz).
    ///
    /// For each device: compute for `τ c_i D_i / δ_i` seconds (Eq. 1), then
    /// upload `ξ` MB through its trace starting the moment computation ends
    /// — the upload duration is solved exactly against the time-varying
    /// bandwidth, and Eq. (3)'s realized average bandwidth is reported.
    /// `T^k` is the max over devices (Eq. 5); idle time is `T^k − T_i^k`.
    pub fn run_iteration(&self, t_start: f64, freqs: &[f64]) -> Result<IterationReport> {
        // The benign schedule multiplies by 1.0 and caps at +∞ — exact
        // identities in IEEE arithmetic, so this delegation is bit-identical
        // to a dedicated fault-free loop.
        self.run_iteration_faulty(t_start, freqs, &IterationFaults::none(self.devices.len()))
    }

    /// Fault-aware variant of [`FlSystem::run_iteration`]: evaluates the
    /// same physics under a realized per-device fault schedule.
    ///
    /// Semantics (see DESIGN.md "Fault model & determinism contract"):
    ///
    /// * **Dropout** — the device skips the round: zero time, zero energy,
    ///   excluded from `T^k`, status `Dropped`.
    /// * **Straggler** — `cmp_factor` multiplies compute time *and* compute
    ///   energy (the work is re-run, e.g. thermal throttling + retries);
    ///   `com_factor` multiplies the active upload airtime and hence radio
    ///   energy. Status `Straggled` when the update still arrives.
    /// * **Blackout** — the window `[blackout_start_s, +dur)` (relative to
    ///   `t_start`) halts transmission: wall-clock upload time stretches,
    ///   but the radio is idle during the pause so `comm_energy` covers
    ///   airtime only. The post-pause remainder is *not* re-integrated
    ///   against the shifted trace (documented approximation).
    /// * **Upload failure** — full time and energy are spent but the
    ///   update is lost: status `Failed`.
    /// * **Timeout** — the server waits at most `timeout_s` per device;
    ///   `T^k` counts `min(T_i^k, timeout)` and later finishers are
    ///   `Failed` (they still burn their full energy locally).
    ///
    /// `T^k` is the max of the capped waiting times over *non-dropped*
    /// devices; when every device drops, the round is a no-op with
    /// `duration = 0`.
    pub fn run_iteration_faulty(
        &self,
        t_start: f64,
        freqs: &[f64],
        faults: &IterationFaults,
    ) -> Result<IterationReport> {
        if freqs.len() != self.devices.len() {
            return Err(SimError::InvalidArgument(format!(
                "expected {} frequencies, got {}",
                self.devices.len(),
                freqs.len()
            )));
        }
        if faults.devices.len() != self.devices.len() {
            return Err(SimError::InvalidArgument(format!(
                "expected {} device faults, got {}",
                self.devices.len(),
                faults.devices.len()
            )));
        }
        if !(t_start.is_finite()) || t_start < 0.0 {
            return Err(SimError::InvalidArgument(format!(
                "t_start must be finite and non-negative, got {t_start}"
            )));
        }
        if let Some(t) = faults.timeout_s {
            if !(t > 0.0) || !t.is_finite() {
                return Err(SimError::InvalidArgument(format!(
                    "timeout_s must be positive and finite, got {t}"
                )));
            }
        }
        let timeout = faults.timeout_s.unwrap_or(f64::INFINITY);
        let n = self.devices.len();
        let mut outcomes = Vec::with_capacity(n);
        // How long the server actually waited on each device (capped).
        let mut waited = Vec::with_capacity(n);
        let mut t_max: f64 = 0.0;
        for ((d, &freq), fault) in self.devices.iter().zip(freqs).zip(&faults.devices) {
            if !(freq > 0.0) || freq > d.delta_max_ghz + 1e-12 || !freq.is_finite() {
                return Err(SimError::FrequencyOutOfRange {
                    device: d.id,
                    freq,
                    max: d.delta_max_ghz,
                });
            }
            if fault.dropout {
                outcomes.push(DeviceOutcome {
                    freq_ghz: freq,
                    compute_time: 0.0,
                    comm_time: 0.0,
                    idle_time: 0.0,
                    compute_energy: 0.0,
                    comm_energy: 0.0,
                    avg_bandwidth: 0.0,
                    status: DeviceStatus::Dropped,
                });
                waited.push(0.0);
                continue;
            }
            let compute_time = d.compute_time(self.config.tau, freq) * fault.cmp_factor;
            let upload_start = t_start + compute_time;
            let trace = self
                .traces
                .get(d.trace_idx)
                .expect("validated at construction");
            // Airtime: seconds the radio actually transmits (Eq. 3
            // integration, inflated by the straggler factor).
            let airtime =
                trace.transfer_time(upload_start, self.config.model_size_mb)? * fault.com_factor;
            let comm_time = blackout_wall_time(t_start, upload_start, airtime, fault);
            let avg_bandwidth = if airtime > 0.0 {
                self.config.model_size_mb / airtime
            } else {
                trace.bandwidth_at(upload_start)?
            };
            let total = compute_time + comm_time;
            let capped = total.min(timeout);
            t_max = t_max.max(capped);
            let lost = fault.upload_fail || total > timeout;
            let slowed = fault.cmp_factor > 1.0 || fault.com_factor > 1.0 || comm_time > airtime;
            outcomes.push(DeviceOutcome {
                freq_ghz: freq,
                compute_time,
                comm_time,
                idle_time: 0.0, // filled in below once T^k is known
                compute_energy: d.compute_energy(self.config.tau, freq) * fault.cmp_factor,
                comm_energy: d.comm_energy(airtime),
                avg_bandwidth,
                status: if lost {
                    DeviceStatus::Failed
                } else if slowed {
                    DeviceStatus::Straggled
                } else {
                    DeviceStatus::Completed
                },
            });
            waited.push(capped);
        }
        for (o, &w) in outcomes.iter_mut().zip(&waited) {
            if o.status != DeviceStatus::Dropped {
                o.idle_time = t_max - w;
            }
        }
        self.obs.iterations.inc();
        self.obs.duration_s.observe(t_max);
        for o in &outcomes {
            match o.status {
                DeviceStatus::Completed => self.obs.completed.inc(),
                DeviceStatus::Straggled => self.obs.straggled.inc(),
                DeviceStatus::Dropped => self.obs.dropped.inc(),
                DeviceStatus::Failed => self.obs.failed.inc(),
            }
        }
        Ok(IterationReport {
            start_time: t_start,
            duration: t_max,
            devices: outcomes,
        })
    }

    /// Builds the DRL state for iteration start time `t`: for every device,
    /// the `history_len + 1` most recent `h`-second slot-average bandwidths
    /// (newest first), concatenated device-major — exactly the
    /// `s_k = (B_1^k, ..., B_N^k)` of Section IV-B1.
    pub fn observe_bandwidth_state(
        &self,
        t: f64,
        slot_h: f64,
        history_len: usize,
    ) -> Result<Vec<f64>> {
        let mut state = Vec::with_capacity(self.devices.len() * (history_len + 1));
        for d in &self.devices {
            let trace = self
                .traces
                .get(d.trace_idx)
                .expect("validated at construction");
            state.extend(trace.history(t, slot_h, history_len)?);
        }
        Ok(state)
    }
}

/// Wall-clock upload duration after applying a blackout pause.
///
/// The device needs `airtime` seconds of link time starting at
/// `upload_start`; the window `[t_start + blackout_start_s, +dur)` halts
/// transmission. The pause adds dead time only — the post-pause remainder
/// is not re-integrated against the time-shifted trace.
fn blackout_wall_time(t_start: f64, upload_start: f64, airtime: f64, fault: &DeviceFault) -> f64 {
    if fault.blackout_dur_s <= 0.0 {
        return airtime;
    }
    let b0 = t_start + fault.blackout_start_s;
    let b1 = b0 + fault.blackout_dur_s;
    if b1 <= upload_start || b0 >= upload_start + airtime {
        return airtime; // window misses the active upload entirely
    }
    let before = (b0 - upload_start).max(0.0);
    (b1 - upload_start) + (airtime - before)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultModel, FaultPlan};
    use crate::DeviceSampler;
    use fl_net::BandwidthTrace;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn flat_traces(bws: &[f64]) -> TraceSet {
        TraceSet::new(
            bws.iter()
                .map(|&b| BandwidthTrace::new(1.0, vec![b; 4]).unwrap().cyclic())
                .collect(),
        )
        .unwrap()
    }

    fn simple_device(id: usize, trace_idx: usize, dmax: f64) -> MobileDevice {
        MobileDevice {
            id,
            cycles_per_bit: 20.0,
            data_mb: 62.5, // 20 * 62.5 * 8e6 / 1e9 = 10 Gcycles
            alpha: 0.1,
            delta_max_ghz: dmax,
            tx_power_w: 0.2,
            trace_idx,
        }
    }

    fn system() -> FlSystem {
        let devices = vec![simple_device(0, 0, 2.0), simple_device(1, 1, 2.0)];
        let traces = flat_traces(&[2.0, 5.0]);
        FlSystem::new(devices, traces, FlConfig::default()).unwrap()
    }

    #[test]
    fn construction_validation() {
        let traces = flat_traces(&[1.0]);
        assert!(FlSystem::new(vec![], traces.clone(), FlConfig::default()).is_err());
        // Bad trace index.
        let d = simple_device(0, 5, 2.0);
        assert!(FlSystem::new(vec![d], traces.clone(), FlConfig::default()).is_err());
        // Bad config.
        let d = simple_device(0, 0, 2.0);
        let bad = FlConfig {
            tau: 0,
            ..FlConfig::default()
        };
        assert!(FlSystem::new(vec![d.clone()], traces.clone(), bad).is_err());
        let bad_lambda = FlConfig {
            lambda: -1.0,
            ..FlConfig::default()
        };
        assert!(FlSystem::new(vec![d], traces, bad_lambda).is_err());
    }

    #[test]
    fn iteration_physics_by_hand() {
        // Device 0: 10 Gcycles at 2 GHz = 5 s compute; 10 MB at 2 MB/s = 5 s
        // upload → T_0 = 10. Device 1: 5 s compute, 2 s upload → T_1 = 7.
        let sys = system();
        let r = sys.run_iteration(0.0, &[2.0, 2.0]).unwrap();
        assert!((r.duration - 10.0).abs() < 1e-9);
        assert!((r.devices[0].total_time() - 10.0).abs() < 1e-9);
        assert!((r.devices[1].total_time() - 7.0).abs() < 1e-9);
        assert!((r.devices[1].idle_time - 3.0).abs() < 1e-9);
        assert!((r.devices[0].idle_time).abs() < 1e-9);
        // Realized bandwidth equals the flat trace bandwidth.
        assert!((r.devices[0].avg_bandwidth - 2.0).abs() < 1e-9);
        assert!((r.devices[1].avg_bandwidth - 5.0).abs() < 1e-9);
        // Energy: α τ ε δ² = 0.1*1*10*4 = 4 J compute each; comm 0.2W * t.
        assert!((r.devices[0].compute_energy - 4.0).abs() < 1e-9);
        assert!((r.devices[0].comm_energy - 1.0).abs() < 1e-9);
        assert!((r.devices[1].comm_energy - 0.4).abs() < 1e-9);
    }

    #[test]
    fn slowing_fast_device_saves_energy_without_hurting_time() {
        // The paper's motivating observation (Fig. 3): device 1 idles 3 s at
        // full speed, so it can run slower for free.
        let sys = system();
        let fast = sys.run_iteration(0.0, &[2.0, 2.0]).unwrap();
        // Slow device 1 so its total time is exactly 10 s:
        // compute = 10/δ, comm = 2 → δ = 10/8 = 1.25.
        let tuned = sys.run_iteration(0.0, &[2.0, 1.25]).unwrap();
        assert!((tuned.duration - fast.duration).abs() < 1e-9);
        assert!(tuned.total_energy() < fast.total_energy());
        assert!(tuned.devices[1].idle_time.abs() < 1e-9);
    }

    #[test]
    fn frequency_bounds_enforced() {
        let sys = system();
        assert!(matches!(
            sys.run_iteration(0.0, &[2.5, 2.0]),
            Err(SimError::FrequencyOutOfRange { device: 0, .. })
        ));
        assert!(matches!(
            sys.run_iteration(0.0, &[2.0, 0.0]),
            Err(SimError::FrequencyOutOfRange { device: 1, .. })
        ));
        assert!(sys.run_iteration(0.0, &[2.0]).is_err()); // wrong arity
        assert!(sys.run_iteration(-1.0, &[2.0, 2.0]).is_err());
    }

    #[test]
    fn clamp_freqs_respects_caps() {
        let sys = system();
        let clamped = sys.clamp_freqs(&[99.0, -1.0], 0.05);
        assert_eq!(clamped[0], 2.0);
        assert_eq!(clamped[1], 0.1);
        assert!(sys.run_iteration(0.0, &clamped).is_ok());
    }

    #[test]
    fn upload_rides_time_varying_bandwidth() {
        // Trace: 1 MB/s for 10 s then 10 MB/s. Upload starting at t=5 with
        // 10 MB: 5 MB in [5,10), then 5 MB at 10 MB/s = 0.5 s → 5.5 s total.
        let mut slots = vec![1.0; 10];
        slots.extend(vec![10.0; 10]);
        let traces =
            TraceSet::new(vec![BandwidthTrace::new(1.0, slots).unwrap().cyclic()]).unwrap();
        // 10 Gcycles at 2 GHz = 5 s compute.
        let d = simple_device(0, 0, 2.0);
        let sys = FlSystem::new(vec![d], traces, FlConfig::default()).unwrap();
        let r = sys.run_iteration(0.0, &[2.0]).unwrap();
        assert!((r.devices[0].comm_time - 5.5).abs() < 1e-9);
        // Eq. (3): realized avg bandwidth = 10 MB / 5.5 s.
        assert!((r.devices[0].avg_bandwidth - 10.0 / 5.5).abs() < 1e-9);
    }

    #[test]
    fn observe_bandwidth_state_layout() {
        let sys = system();
        let s = sys.observe_bandwidth_state(7.0, 1.0, 2).unwrap();
        // 2 devices × (H+1 = 3) entries; flat traces → constant values.
        assert_eq!(s.len(), 6);
        assert!(s[..3].iter().all(|&v| (v - 2.0).abs() < 1e-9));
        assert!(s[3..].iter().all(|&v| (v - 5.0).abs() < 1e-9));
    }

    #[test]
    fn set_lambda_validates() {
        let mut sys = system();
        assert!(sys.set_lambda(0.5).is_ok());
        assert_eq!(sys.config().lambda, 0.5);
        assert!(sys.set_lambda(-0.5).is_err());
    }

    #[test]
    fn trace_of_rejects_out_of_range_device() {
        let sys = system();
        assert!(sys.trace_of(0).is_ok());
        assert!(sys.trace_of(1).is_ok());
        assert!(matches!(
            sys.trace_of(5),
            Err(SimError::DeviceOutOfRange {
                device: 5,
                n_devices: 2
            })
        ));
    }

    #[test]
    fn benign_faults_bitwise_match_fault_free_path() {
        let sys = system();
        let clean = sys.run_iteration(3.0, &[1.7, 1.2]).unwrap();
        let faulty = sys
            .run_iteration_faulty(3.0, &[1.7, 1.2], &IterationFaults::none(2))
            .unwrap();
        assert_eq!(clean, faulty);
        assert!(clean
            .devices
            .iter()
            .all(|d| d.status == DeviceStatus::Completed));
    }

    #[test]
    fn dropout_excludes_device_from_round() {
        // Device 0 is the straggler (T_0 = 10 s); dropping it hands the
        // round to device 1 (T_1 = 7 s) and zeroes device 0 entirely.
        let sys = system();
        let mut faults = IterationFaults::none(2);
        faults.devices[0].dropout = true;
        let r = sys.run_iteration_faulty(0.0, &[2.0, 2.0], &faults).unwrap();
        assert!((r.duration - 7.0).abs() < 1e-9);
        assert_eq!(r.devices[0].status, DeviceStatus::Dropped);
        assert_eq!(r.devices[0].total_time(), 0.0);
        assert_eq!(r.devices[0].total_energy(), 0.0);
        assert_eq!(r.devices[0].idle_time, 0.0);
        assert_eq!(r.devices[1].status, DeviceStatus::Completed);
        assert_eq!(r.survivors(), 1);
        // All dropped → no-op round.
        faults.devices[1].dropout = true;
        let r = sys.run_iteration_faulty(0.0, &[2.0, 2.0], &faults).unwrap();
        assert_eq!(r.duration, 0.0);
        assert_eq!(r.survivors(), 0);
        assert_eq!(r.total_energy(), 0.0);
    }

    #[test]
    fn straggler_inflates_time_and_energy() {
        // Device 1 at factor 2: compute 5 → 10 s (energy 4 → 8 J), upload
        // airtime 2 → 4 s (energy 0.4 → 0.8 J). Total 14 s sets T^k.
        let sys = system();
        let mut faults = IterationFaults::none(2);
        faults.devices[1].cmp_factor = 2.0;
        faults.devices[1].com_factor = 2.0;
        let r = sys.run_iteration_faulty(0.0, &[2.0, 2.0], &faults).unwrap();
        assert!((r.duration - 14.0).abs() < 1e-9);
        assert_eq!(r.devices[1].status, DeviceStatus::Straggled);
        assert!((r.devices[1].compute_time - 10.0).abs() < 1e-9);
        assert!((r.devices[1].comm_time - 4.0).abs() < 1e-9);
        assert!((r.devices[1].compute_energy - 8.0).abs() < 1e-9);
        assert!((r.devices[1].comm_energy - 0.8).abs() < 1e-9);
        // The straggler's update still arrives.
        assert_eq!(r.survivors(), 2);
    }

    #[test]
    fn upload_failure_burns_energy_but_loses_update() {
        let sys = system();
        let clean = sys.run_iteration(0.0, &[2.0, 2.0]).unwrap();
        let mut faults = IterationFaults::none(2);
        faults.devices[1].upload_fail = true;
        let r = sys.run_iteration_faulty(0.0, &[2.0, 2.0], &faults).unwrap();
        assert_eq!(r.devices[1].status, DeviceStatus::Failed);
        // Identical physics — only the survival flag changes.
        assert_eq!(r.duration, clean.duration);
        assert_eq!(r.devices[1].total_energy(), clean.devices[1].total_energy());
        assert_eq!(r.survivors(), 1);
    }

    #[test]
    fn blackout_stretches_wall_time_not_energy() {
        // Device 1: compute 5 s, upload airtime 2 s starting at t=5.
        // Blackout [6, 9): 1 s transmitted, 3 s pause, 1 s remainder →
        // wall comm time 5 s, airtime (and radio energy) unchanged.
        let sys = system();
        let mut faults = IterationFaults::none(2);
        faults.devices[1].blackout_start_s = 6.0;
        faults.devices[1].blackout_dur_s = 3.0;
        let r = sys.run_iteration_faulty(0.0, &[2.0, 2.0], &faults).unwrap();
        assert!((r.devices[1].comm_time - 5.0).abs() < 1e-9);
        assert!((r.devices[1].comm_energy - 0.4).abs() < 1e-9);
        assert_eq!(r.devices[1].status, DeviceStatus::Straggled);
        // A window that misses the upload changes nothing.
        let mut miss = IterationFaults::none(2);
        miss.devices[1].blackout_start_s = 0.0;
        miss.devices[1].blackout_dur_s = 2.0;
        let r = sys.run_iteration_faulty(0.0, &[2.0, 2.0], &miss).unwrap();
        assert_eq!(r.devices[1].status, DeviceStatus::Completed);
        assert!((r.devices[1].comm_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn timeout_caps_duration_and_fails_late_devices() {
        // T_0 = 10 s, T_1 = 7 s; timeout 8 s → device 0 misses the cutoff
        // (full energy spent, update lost), T^k = 8.
        let sys = system();
        let mut faults = IterationFaults::none(2);
        faults.timeout_s = Some(8.0);
        let r = sys.run_iteration_faulty(0.0, &[2.0, 2.0], &faults).unwrap();
        assert!((r.duration - 8.0).abs() < 1e-9);
        assert_eq!(r.devices[0].status, DeviceStatus::Failed);
        assert_eq!(r.devices[1].status, DeviceStatus::Completed);
        assert!((r.devices[1].idle_time - 1.0).abs() < 1e-9);
        let clean = sys.run_iteration(0.0, &[2.0, 2.0]).unwrap();
        assert_eq!(r.total_energy(), clean.total_energy());
        assert_eq!(r.survivors(), 1);
    }

    #[test]
    fn faulty_iteration_validates_inputs() {
        let sys = system();
        // Wrong fault arity.
        assert!(sys
            .run_iteration_faulty(0.0, &[2.0, 2.0], &IterationFaults::none(3))
            .is_err());
        // Bad timeout.
        let mut faults = IterationFaults::none(2);
        faults.timeout_s = Some(-1.0);
        assert!(sys.run_iteration_faulty(0.0, &[2.0, 2.0], &faults).is_err());
        // Frequency bounds still enforced, even for dropped devices.
        let mut faults = IterationFaults::none(2);
        faults.devices[0].dropout = true;
        assert!(sys.run_iteration_faulty(0.0, &[9.0, 2.0], &faults).is_err());
    }

    #[test]
    fn randomized_fleet_runs() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let traces =
            TraceSet::from_profile(fl_net::synth::Profile::Walking4G, 3, 600, 1.0, &mut rng)
                .unwrap();
        let assignment = traces.assign(5, &mut rng);
        let devices = DeviceSampler::default().sample_fleet(&assignment, &mut rng);
        let sys = FlSystem::new(devices, traces, FlConfig::default()).unwrap();
        let freqs: Vec<f64> = sys.devices().iter().map(|d| d.delta_max_ghz).collect();
        let mut t = 0.0;
        for _ in 0..20 {
            let r = sys.run_iteration(t, &freqs).unwrap();
            assert!(r.duration > 0.0 && r.duration.is_finite());
            assert!(r.total_energy() > 0.0);
            t = r.end_time();
        }
    }

    proptest! {
        /// T^k is exactly the max of the per-device totals, and idle times
        /// are non-negative with at least one (the straggler) zero.
        #[test]
        fn prop_sync_invariants(f0 in 0.2f64..2.0, f1 in 0.2f64..2.0) {
            let sys = system();
            let r = sys.run_iteration(0.0, &[f0, f1]).unwrap();
            let max_total = r
                .devices
                .iter()
                .map(|d| d.total_time())
                .fold(0.0f64, f64::max);
            prop_assert!((r.duration - max_total).abs() < 1e-9);
            prop_assert!(r.devices.iter().all(|d| d.idle_time >= -1e-9));
            let min_idle = r.devices.iter().map(|d| d.idle_time).fold(f64::INFINITY, f64::min);
            prop_assert!(min_idle.abs() < 1e-9);
        }

        /// Lowering any device's frequency never lowers iteration duration
        /// and never raises its compute energy.
        #[test]
        fn prop_freq_monotonicity(f in 0.2f64..2.0) {
            let sys = system();
            let base = sys.run_iteration(0.0, &[2.0, 2.0]).unwrap();
            let slowed = sys.run_iteration(0.0, &[2.0, f]).unwrap();
            prop_assert!(slowed.duration >= base.duration - 1e-9);
            prop_assert!(
                slowed.devices[1].compute_energy <= base.devices[1].compute_energy + 1e-9
            );
        }

        /// A straggler factor ≥ 1 never *decreases* `T^k`, on either
        /// device, at any frequency pair.
        #[test]
        fn prop_straggler_never_decreases_duration(
            factor in 1.0f64..4.0,
            which in 0usize..2,
            f0 in 0.2f64..2.0,
            f1 in 0.2f64..2.0,
        ) {
            let sys = system();
            let base = sys.run_iteration(0.0, &[f0, f1]).unwrap();
            let mut faults = IterationFaults::none(2);
            faults.devices[which].cmp_factor = factor;
            faults.devices[which].com_factor = factor;
            let slowed = sys.run_iteration_faulty(0.0, &[f0, f1], &faults).unwrap();
            prop_assert!(slowed.duration >= base.duration - 1e-9);
        }

        /// Surviving-set accounting under a timeout cutoff never costs
        /// more than waiting for the full set: `T^k` is capped, energy is
        /// unchanged, so the Eq. 9 cost can only shrink.
        #[test]
        fn prop_timeout_cost_at_most_full_set(
            timeout in 1.0f64..20.0,
            f0 in 0.2f64..2.0,
            f1 in 0.2f64..2.0,
        ) {
            let sys = system();
            let full = sys.run_iteration(0.0, &[f0, f1]).unwrap();
            let mut faults = IterationFaults::none(2);
            faults.timeout_s = Some(timeout);
            let cut = sys.run_iteration_faulty(0.0, &[f0, f1], &faults).unwrap();
            prop_assert!(cut.duration <= timeout + 1e-12);
            prop_assert!(cut.duration <= full.duration + 1e-12);
            let lambda = sys.config().lambda;
            prop_assert!(cut.cost(lambda) <= full.cost(lambda) + 1e-9);
        }

        /// Dropout probability extremes at the outcome level: 0 → no
        /// `Dropped` status ever; 1 → every device `Dropped`.
        #[test]
        fn prop_dropout_extremes_in_outcomes(seed in 0u64..500, k in 0u64..20) {
            let sys = system();
            let always = FaultPlan::new(
                FaultModel { dropout_prob: 1.0, ..FaultModel::none() },
                2,
                seed,
            ).unwrap();
            let r = sys
                .run_iteration_faulty(0.0, &[2.0, 2.0], &always.faults_at(k))
                .unwrap();
            prop_assert!(r.devices.iter().all(|d| d.status == DeviceStatus::Dropped));
            prop_assert_eq!(r.duration, 0.0);
            let never = FaultPlan::new(FaultModel::chaos(0.0, 0.5, Some(60.0)), 2, seed).unwrap();
            let r = sys
                .run_iteration_faulty(0.0, &[2.0, 2.0], &never.faults_at(k))
                .unwrap();
            prop_assert!(r.devices.iter().all(|d| d.status != DeviceStatus::Dropped));
        }
    }
}
