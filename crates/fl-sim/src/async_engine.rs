//! Asynchronous-protocol timing simulation.
//!
//! The paper adopts the synchronized model, citing Chen et al. (ref. 14) for
//! synchronous SGD being more efficient than asynchronous variants. This
//! module lets the repository *measure* that choice instead of citing it:
//! it simulates the asynchronous alternative, where every device loops
//! (download → compute → upload) at its own pace and the server applies
//! updates the moment they arrive. `fl-learn`'s staleness-aware
//! `AsyncFedAvg` consumes the event stream; the `abl_sync_async` bench
//! compares both protocols on identical physics.

use crate::{FlSystem, Result, SimError};
use serde::{Deserialize, Serialize};

/// One completed asynchronous round of one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsyncArrival {
    /// Which device uploaded.
    pub device: usize,
    /// When the device downloaded the model and started computing (s).
    pub start_time: f64,
    /// When its update reached the server (s).
    pub arrival_time: f64,
    /// Energy spent on this round (compute + radio), J.
    pub energy: f64,
}

impl AsyncArrival {
    /// Round latency (download → server receipt).
    pub fn latency(&self) -> f64 {
        self.arrival_time - self.start_time
    }
}

/// The full event stream of an asynchronous session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsyncSession {
    /// Arrivals in server-receipt order.
    pub arrivals: Vec<AsyncArrival>,
    /// Wall-clock span simulated (s).
    pub duration: f64,
    /// Total energy across devices (J).
    pub total_energy: f64,
}

impl AsyncSession {
    /// Updates applied per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            self.arrivals.len() as f64 / self.duration
        }
    }

    /// Rounds completed by each device.
    pub fn rounds_per_device(&self, n_devices: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_devices];
        for a in &self.arrivals {
            if let Some(c) = counts.get_mut(a.device) {
                *c += 1;
            }
        }
        counts
    }
}

/// Simulates every device looping independently at fixed frequencies from
/// `t_start` until (at least) `t_end`, returning all arrivals inside the
/// window sorted by arrival time.
///
/// Per round, a device spends `τ c_i D_i / δ_i` computing, then uploads
/// `ξ` MB through its bandwidth trace; its next round starts the instant
/// the upload lands (downloads are free, as in the synchronized model).
pub fn run_async(sys: &FlSystem, freqs: &[f64], t_start: f64, t_end: f64) -> Result<AsyncSession> {
    if freqs.len() != sys.num_devices() {
        return Err(SimError::InvalidArgument(format!(
            "expected {} frequencies, got {}",
            sys.num_devices(),
            freqs.len()
        )));
    }
    if !(t_end > t_start) || t_start < 0.0 || !t_end.is_finite() {
        return Err(SimError::InvalidArgument(format!(
            "bad window [{t_start}, {t_end})"
        )));
    }
    let tau = sys.config().tau;
    let xi = sys.config().model_size_mb;
    let mut arrivals = Vec::new();
    for (i, d) in sys.devices().iter().enumerate() {
        let freq = freqs[i];
        if !(freq > 0.0) || freq > d.delta_max_ghz + 1e-12 {
            return Err(SimError::FrequencyOutOfRange {
                device: d.id,
                freq,
                max: d.delta_max_ghz,
            });
        }
        let trace = sys.trace_of(i)?;
        let mut t = t_start;
        loop {
            let compute = d.compute_time(tau, freq);
            let comm = trace.transfer_time(t + compute, xi)?;
            let arrival = t + compute + comm;
            if arrival > t_end {
                break;
            }
            arrivals.push(AsyncArrival {
                device: i,
                start_time: t,
                arrival_time: arrival,
                energy: d.compute_energy(tau, freq) + d.comm_energy(comm),
            });
            t = arrival;
        }
    }
    arrivals.sort_by(|a, b| {
        a.arrival_time
            .partial_cmp(&b.arrival_time)
            .expect("finite times")
    });
    let total_energy = arrivals.iter().map(|a| a.energy).sum();
    Ok(AsyncSession {
        arrivals,
        duration: t_end - t_start,
        total_energy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceSampler, FlConfig, MobileDevice};
    use fl_net::{BandwidthTrace, TraceSet};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn flat_system(bws: &[f64], gcyc_factor: f64) -> FlSystem {
        let traces = TraceSet::new(
            bws.iter()
                .map(|&b| BandwidthTrace::new(1.0, vec![b; 4]).unwrap().cyclic())
                .collect(),
        )
        .unwrap();
        let devices: Vec<MobileDevice> = (0..bws.len())
            .map(|i| MobileDevice {
                id: i,
                cycles_per_bit: 20.0,
                data_mb: 62.5 * gcyc_factor, // 10 Gcycles at factor 1
                alpha: 0.1,
                delta_max_ghz: 2.0,
                tx_power_w: 0.2,
                trace_idx: i,
            })
            .collect();
        FlSystem::new(devices, traces, FlConfig::default()).unwrap()
    }

    #[test]
    fn validation() {
        let sys = flat_system(&[2.0, 2.0], 1.0);
        assert!(run_async(&sys, &[2.0], 0.0, 100.0).is_err());
        assert!(run_async(&sys, &[2.0, 3.0], 0.0, 100.0).is_err());
        assert!(run_async(&sys, &[2.0, 2.0], 100.0, 100.0).is_err());
    }

    #[test]
    fn round_timing_by_hand() {
        // One device: 10 Gc at 2 GHz = 5 s compute; 10 MB at 2 MB/s = 5 s
        // upload → arrivals every 10 s.
        let sys = flat_system(&[2.0], 1.0);
        let s = run_async(&sys, &[2.0], 0.0, 35.0).unwrap();
        let times: Vec<f64> = s.arrivals.iter().map(|a| a.arrival_time).collect();
        assert_eq!(times.len(), 3);
        assert!((times[0] - 10.0).abs() < 1e-9);
        assert!((times[1] - 20.0).abs() < 1e-9);
        assert!((times[2] - 30.0).abs() < 1e-9);
        assert!((s.arrivals[0].latency() - 10.0).abs() < 1e-9);
        assert!((s.throughput() - 3.0 / 35.0).abs() < 1e-9);
    }

    #[test]
    fn fast_device_laps_slow_device() {
        // Device 0: 10 s/round; device 1: 4x less work → 1.25 s compute +
        // 5 s upload = 6.25 s/round. In 40 s: device 0 lands 4, device 1
        // lands 6.
        let traces = TraceSet::new(vec![
            BandwidthTrace::new(1.0, vec![2.0; 4]).unwrap().cyclic(),
            BandwidthTrace::new(1.0, vec![2.0; 4]).unwrap().cyclic(),
        ])
        .unwrap();
        let mk = |id: usize, data_mb: f64| MobileDevice {
            id,
            cycles_per_bit: 20.0,
            data_mb,
            alpha: 0.1,
            delta_max_ghz: 2.0,
            tx_power_w: 0.2,
            trace_idx: id,
        };
        let sys = FlSystem::new(
            vec![mk(0, 62.5), mk(1, 15.625)],
            traces,
            FlConfig::default(),
        )
        .unwrap();
        let s = run_async(&sys, &[2.0, 2.0], 0.0, 40.0).unwrap();
        assert_eq!(s.rounds_per_device(2), vec![4, 6]);
        // Arrivals are globally sorted.
        for w in s.arrivals.windows(2) {
            assert!(w[0].arrival_time <= w[1].arrival_time);
        }
    }

    #[test]
    fn energy_accounting_matches_sync_model() {
        let sys = flat_system(&[2.0], 1.0);
        let s = run_async(&sys, &[2.0], 0.0, 25.0).unwrap();
        let d = &sys.devices()[0];
        let per_round = d.compute_energy(1, 2.0) + d.comm_energy(5.0);
        assert!((s.total_energy - 2.0 * per_round).abs() < 1e-9);
    }

    #[test]
    fn random_system_runs() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let traces =
            TraceSet::from_profile(fl_net::synth::Profile::Walking4G, 3, 1200, 1.0, &mut rng)
                .unwrap();
        let assignment = traces.assign(4, &mut rng);
        let devices = DeviceSampler::default().sample_fleet(&assignment, &mut rng);
        let sys = FlSystem::new(devices, traces, FlConfig::default()).unwrap();
        let freqs: Vec<f64> = sys.devices().iter().map(|d| d.delta_max_ghz).collect();
        let s = run_async(&sys, &freqs, 100.0, 400.0).unwrap();
        assert!(!s.arrivals.is_empty());
        assert!(s.total_energy > 0.0);
        assert!(s.rounds_per_device(4).iter().all(|&c| c > 0));
    }
}
