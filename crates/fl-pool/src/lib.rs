//! # fl-pool — work-stealing thread pool for deterministic fan-out.
//!
//! The pool runs a fixed batch of indexed tasks on `workers` scoped threads
//! and returns the results **in task-index order**, no matter which worker
//! executed which task or in what sequence. That slot-indexed collection is
//! the primitive every parallel layer above (vectorized rollouts, seed
//! sweeps, controller comparisons, row-split matmuls) relies on for
//! thread-count-invariant results: parallelism may reorder *execution*,
//! never *observation*.
//!
//! Scheduling is classic work stealing: task indices are dealt round-robin
//! into one deque per worker; a worker pops its own deque from the front
//! and, when empty, steals from the back of its neighbors'. Because tasks
//! never enqueue new tasks, a worker that finds every deque empty can
//! retire immediately — no condition variables needed.
//!
//! This crate sits *below* `fl-nn` in the dependency graph so the blocked
//! GEMM can row-split across the same pool the rollout runner uses;
//! `fl-rl` re-exports it as `fl_rl::pool` for backward compatibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crossbeam::thread as cb_thread;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Per-worker execution telemetry, reported by the benchmark binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index in `0..workers`.
    pub worker: usize,
    /// Tasks this worker executed.
    pub tasks: usize,
    /// How many of those tasks were stolen from another worker's deque.
    pub steals: usize,
    /// Wall-clock time spent inside task bodies (excludes idle/steal time).
    pub busy: Duration,
}

impl WorkerStats {
    /// JSON form for observability events. Everything here is scheduling
    /// telemetry — physical by nature, never part of a deterministic
    /// event.
    pub fn obs_value(&self) -> serde_json::Value {
        serde_json::json!({
            "worker": self.worker as f64,
            "tasks": self.tasks as f64,
            "steals": self.steals as f64,
            "busy_s": self.busy.as_secs_f64(),
        })
    }
}

/// Outcome of [`run_indexed`]: results in task order plus telemetry.
#[derive(Debug)]
pub struct PoolRun<R> {
    /// `results[i]` is the output of task `i`, regardless of scheduling.
    pub results: Vec<R>,
    /// One entry per worker, indexed by worker id.
    pub workers: Vec<WorkerStats>,
    /// Wall-clock duration of the whole batch.
    pub wall: Duration,
}

impl<R> PoolRun<R> {
    /// Total busy time across workers (the serial-equivalent cost).
    pub fn total_busy(&self) -> Duration {
        self.workers.iter().map(|w| w.busy).sum()
    }

    /// The physical `pool_round` observability event for this batch:
    /// worker count, per-worker task/steal telemetry, and wall/busy
    /// timings. `label` names the workload (e.g. `"rollout"`,
    /// `"seed_sweep"`).
    pub fn obs_event(&self, label: &str) -> fl_obs::Event {
        round_event(label, &self.workers, self.wall)
    }

    /// One-line human summary of the batch ("4 workers, 2.13x speedup").
    pub fn timing_line(&self) -> String {
        let wall = self.wall.as_secs_f64();
        let busy = self.total_busy().as_secs_f64();
        let speedup = if wall > 0.0 { busy / wall } else { 1.0 };
        let per_worker: Vec<String> = self
            .workers
            .iter()
            .map(|w| {
                format!(
                    "w{}: {} tasks ({} stolen) {:.2}s",
                    w.worker,
                    w.tasks,
                    w.steals,
                    w.busy.as_secs_f64()
                )
            })
            .collect();
        format!(
            "{} workers, wall {:.2}s, busy {:.2}s, speedup {:.2}x [{}]",
            self.workers.len(),
            wall,
            busy,
            speedup,
            per_worker.join("; ")
        )
    }
}

/// Builds the physical `pool_round` observability event from worker
/// telemetry and a wall-clock duration. [`PoolRun::obs_event`] delegates
/// here; callers that aggregate stats across many pool rounds (the batched
/// rollout runs one `env.step` fan-out per step) emit the same event shape
/// without holding a `PoolRun`.
pub fn round_event(label: &str, workers: &[WorkerStats], wall: Duration) -> fl_obs::Event {
    let per_worker = serde_json::Value::Array(workers.iter().map(WorkerStats::obs_value).collect());
    let busy: Duration = workers.iter().map(|w| w.busy).sum();
    fl_obs::Event::phys("pool_round")
        .s("label", label)
        .u("workers", workers.len() as u64)
        .u(
            "tasks",
            workers.iter().map(|w| w.tasks).sum::<usize>() as u64,
        )
        .wall_val("per_worker", per_worker)
        .wall_f("s", wall.as_secs_f64())
        .wall_f("busy_s", busy.as_secs_f64())
}

/// Default worker count: the machine's available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Worker count honoring the `FL_WORKERS` environment variable: the parsed
/// value when it is a positive integer, otherwise [`default_workers`].
///
/// Read on every call (an env lookup is nothing next to the work a pool
/// round fans out), so CI matrices and tests that vary `FL_WORKERS`
/// per-invocation see the live value. Thanks to the determinism contract
/// the value only ever changes wall-clock time, never results — callers on
/// hot paths (the parallel matmul) need no further validation or warning
/// plumbing here; `fl-bench`'s `workers_from_env_obs` adds the loud
/// variant for the CLI binaries.
pub fn env_workers() -> usize {
    match std::env::var("FL_WORKERS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(w) if w >= 1 => w,
            _ => default_workers(),
        },
        Err(_) => default_workers(),
    }
}

/// Runs `f(i, items[i])` for every item on a work-stealing pool of
/// `workers` threads and returns the results in item order.
///
/// The scheduling is nondeterministic; the output is not: `results[i]`
/// always corresponds to `items[i]`, and `f` receives each item exactly
/// once. With `workers <= 1` (or a single item) everything runs on the
/// calling thread, which doubles as the reference behavior the
/// determinism tests compare against.
pub fn run_indexed<T, R, F>(workers: usize, items: Vec<T>, f: F) -> PoolRun<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n_tasks = items.len();
    let n_workers = workers.max(1).min(n_tasks.max(1));
    let start = Instant::now();

    if n_workers <= 1 {
        let mut stats = WorkerStats {
            worker: 0,
            tasks: 0,
            steals: 0,
            busy: Duration::ZERO,
        };
        let mut results = Vec::with_capacity(n_tasks);
        for (i, item) in items.into_iter().enumerate() {
            let t0 = Instant::now();
            results.push(f(i, item));
            stats.busy += t0.elapsed();
            stats.tasks += 1;
        }
        return PoolRun {
            results,
            workers: vec![stats],
            wall: start.elapsed(),
        };
    }

    // Task slots: each item is taken exactly once by whichever worker wins
    // its index. Deques hold indices, dealt round-robin so the initial
    // distribution is balanced without coordination.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..n_workers)
        .map(|w| {
            Mutex::new(
                (0..n_tasks)
                    .filter(|i| i % n_workers == w)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();

    type WorkerOutput<R> = Option<(WorkerStats, Vec<(usize, R)>)>;
    let mut worker_outputs: Vec<WorkerOutput<R>> = Vec::new();
    worker_outputs.resize_with(n_workers, || None);

    cb_thread::scope(|scope| {
        for (w, out) in worker_outputs.iter_mut().enumerate() {
            let slots = &slots;
            let queues = &queues;
            let f = &f;
            scope.spawn(move |_| {
                let mut stats = WorkerStats {
                    worker: w,
                    tasks: 0,
                    steals: 0,
                    busy: Duration::ZERO,
                };
                let mut produced: Vec<(usize, R)> = Vec::new();
                loop {
                    // Own deque first (front), then steal (back) walking the
                    // ring of victims starting at the right neighbor.
                    let mut found: Option<(usize, bool)> =
                        queues[w].lock().pop_front().map(|i| (i, false));
                    if found.is_none() {
                        for v in 1..n_workers {
                            let victim = (w + v) % n_workers;
                            if let Some(i) = queues[victim].lock().pop_back() {
                                found = Some((i, true));
                                break;
                            }
                        }
                    }
                    let Some((idx, stolen)) = found else {
                        // Tasks never spawn tasks: empty everywhere = done.
                        break;
                    };
                    let Some(item) = slots[idx].lock().take() else {
                        continue; // lost a race for an index; keep scanning
                    };
                    let t0 = Instant::now();
                    produced.push((idx, f(idx, item)));
                    stats.busy += t0.elapsed();
                    stats.tasks += 1;
                    stats.steals += usize::from(stolen);
                }
                *out = Some((stats, produced));
            });
        }
    })
    .expect("worker pool thread panicked");

    let mut workers_out = Vec::with_capacity(n_workers);
    let mut ordered: Vec<Option<R>> = Vec::new();
    ordered.resize_with(n_tasks, || None);
    for out in worker_outputs {
        let (stats, produced) = out.expect("every worker reports");
        workers_out.push(stats);
        for (idx, r) in produced {
            debug_assert!(ordered[idx].is_none(), "task {idx} executed twice");
            ordered[idx] = Some(r);
        }
    }
    PoolRun {
        results: ordered
            .into_iter()
            .map(|r| r.expect("every task executed"))
            .collect(),
        workers: workers_out,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_task_order() {
        for workers in [1, 2, 4, 8] {
            let items: Vec<u64> = (0..37).collect();
            let run = run_indexed(workers, items, |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(
                run.results,
                (0u64..37).map(|x| x * x).collect::<Vec<_>>(),
                "workers={workers}"
            );
            let total: usize = run.workers.iter().map(|w| w.tasks).sum();
            assert_eq!(total, 37);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let run = run_indexed(4, Vec::<u8>::new(), |_, x| x);
        assert!(run.results.is_empty());
    }

    #[test]
    fn each_item_consumed_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let run = run_indexed(8, vec![(); 100], |_, ()| {
            counter.fetch_add(1, Ordering::SeqCst)
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        let mut seen: Vec<usize> = run.results;
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_tasks_get_stolen() {
        // One long task pinned to worker 0's deque plus many short ones:
        // with stealing, the short tasks finish elsewhere while worker 0 is
        // busy. We only assert correctness (stealing is opportunistic), but
        // record that steal accounting stays consistent.
        let items: Vec<u64> = (0..64).collect();
        let run = run_indexed(4, items, |i, x| {
            if i == 0 {
                std::thread::sleep(Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(run.results, (1u64..=64).collect::<Vec<_>>());
        let stolen: usize = run.workers.iter().map(|w| w.steals).sum();
        let tasks: usize = run.workers.iter().map(|w| w.tasks).sum();
        assert_eq!(tasks, 64);
        assert!(stolen <= tasks);
    }

    #[test]
    fn timing_line_mentions_every_worker() {
        let run = run_indexed(3, vec![1, 2, 3, 4, 5], |_, x| x);
        let line = run.timing_line();
        for w in 0..run.workers.len() {
            assert!(line.contains(&format!("w{w}:")), "{line}");
        }
    }

    #[test]
    fn four_workers_at_least_halve_wall_clock() {
        // The wall-clock acceptance check for the pool itself: the same
        // 8-task workload must finish at least 2x faster on 4 workers than
        // on 1. Tasks *block* rather than spin so the test also holds on a
        // single-core CI box (sleeps overlap; only the scheduler is under
        // test). CPU-bound workloads scale the same way up to the physical
        // core count — `abl_seeds` prints the live numbers per run.
        let task = |_i: usize, ()| std::thread::sleep(Duration::from_millis(30));
        let serial = run_indexed(1, vec![(); 8], task);
        let par = run_indexed(4, vec![(); 8], task);
        assert_eq!(par.workers.len(), 4);
        assert!(
            2.0 * par.wall.as_secs_f64() < serial.wall.as_secs_f64(),
            "expected >=2x speedup at 4 workers: serial {:?}, parallel {:?}",
            serial.wall,
            par.wall
        );
    }
}
