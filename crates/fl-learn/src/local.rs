//! Local training on one device's shard.

use crate::{LabeledData, LearnError, Result};
use fl_nn::{loss, Adam, Matrix, Mlp, Optimizer};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What the federated model is learning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Binary classification: sigmoid head, binary cross-entropy, labels
    /// in `{0, 1}` stored directly in the `y` column.
    Binary,
    /// `k`-way classification: linear (logit) head of width `k`, softmax
    /// cross-entropy, class indices `0..k` stored in the `y` column.
    Multiclass(usize),
}

/// Configuration of one device's local optimization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalTrainer {
    /// `τ`: passes over the local data per federated iteration.
    pub epochs: u32,
    /// Minibatch size (clamped to the shard size).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Loss/label convention.
    pub objective: Objective,
}

impl Default for LocalTrainer {
    fn default() -> Self {
        LocalTrainer {
            epochs: 1,
            batch_size: 32,
            lr: 0.01,
            objective: Objective::Binary,
        }
    }
}

impl LocalTrainer {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.epochs == 0 || self.batch_size == 0 {
            return Err(LearnError::InvalidArgument(
                "epochs and batch_size must be nonzero".to_string(),
            ));
        }
        if !(self.lr > 0.0) || !self.lr.is_finite() {
            return Err(LearnError::InvalidArgument(format!(
                "lr must be positive and finite, got {}",
                self.lr
            )));
        }
        if let Objective::Multiclass(k) = self.objective {
            if k < 2 {
                return Err(LearnError::InvalidArgument(
                    "multiclass needs at least 2 classes".to_string(),
                ));
            }
        }
        Ok(())
    }

    /// Checks the model head matches the objective.
    fn check_model(&self, model: &Mlp) -> Result<()> {
        let want = match self.objective {
            Objective::Binary => 1,
            Objective::Multiclass(k) => k,
        };
        if model.out_dim() != want {
            return Err(LearnError::InvalidArgument(format!(
                "model head width {} does not match objective ({want} expected)",
                model.out_dim()
            )));
        }
        Ok(())
    }

    /// Converts a label batch into loss targets.
    fn targets(&self, yb: &Matrix) -> Result<Matrix> {
        match self.objective {
            Objective::Binary => Ok(yb.clone()),
            Objective::Multiclass(k) => {
                let labels: Vec<usize> = yb
                    .data()
                    .iter()
                    .map(|&v| {
                        let c = v.round();
                        if c < 0.0 || c >= k as f64 || (v - c).abs() > 1e-9 {
                            Err(LearnError::InvalidArgument(format!(
                                "label {v} invalid for {k}-way classification"
                            )))
                        } else {
                            Ok(c as usize)
                        }
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(loss::one_hot(&labels, k)?)
            }
        }
    }

    /// Loss + gradient for the objective on a prediction batch.
    fn loss_and_grad(&self, pred: &Matrix, targets: &Matrix) -> Result<(f64, Matrix)> {
        match self.objective {
            Objective::Binary => Ok(loss::binary_cross_entropy(pred, targets)?),
            Objective::Multiclass(_) => Ok(loss::softmax_cross_entropy(pred, targets)?),
        }
    }

    /// Runs `τ` epochs of minibatch Adam on `model`. Returns the mean
    /// minibatch loss of the final epoch.
    pub fn train(&self, model: &mut Mlp, data: &LabeledData, rng: &mut impl Rng) -> Result<f64> {
        self.validate()?;
        self.check_model(model)?;
        if data.is_empty() {
            return Err(LearnError::InvalidArgument(
                "cannot train on an empty shard".to_string(),
            ));
        }
        let mut opt = Adam::new(model.num_params(), self.lr);
        let bs = self.batch_size.min(data.len());
        let mut indices: Vec<usize> = (0..data.len()).collect();
        let mut last_epoch_loss = 0.0;
        for _ in 0..self.epochs {
            indices.shuffle(rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in indices.chunks(bs) {
                let xb = data.x.gather_rows(chunk)?;
                let yb = data.y.gather_rows(chunk)?;
                let targets = self.targets(&yb)?;
                let pred = model.try_forward(&xb)?;
                let (l, dl) = self.loss_and_grad(&pred, &targets)?;
                model.zero_grad();
                model.backward(&dl)?;
                opt.step(model);
                epoch_loss += l;
                batches += 1;
            }
            last_epoch_loss = epoch_loss / batches.max(1) as f64;
        }
        Ok(last_epoch_loss)
    }

    /// Eq. (7): mean per-sample loss of `model` on a shard, without
    /// touching gradients.
    pub fn evaluate_loss(&self, model: &Mlp, data: &LabeledData) -> Result<f64> {
        self.check_model(model)?;
        if data.is_empty() {
            return Err(LearnError::InvalidArgument(
                "cannot evaluate an empty shard".to_string(),
            ));
        }
        let pred = model.infer(&data.x)?;
        let targets = self.targets(&data.y)?;
        let (l, _) = self.loss_and_grad(&pred, &targets)?;
        Ok(l)
    }

    /// Classification accuracy of `model` on a shard (0.5 threshold for
    /// binary, argmax for multiclass).
    pub fn evaluate_accuracy(&self, model: &Mlp, data: &LabeledData) -> Result<f64> {
        self.check_model(model)?;
        if data.is_empty() {
            return Err(LearnError::InvalidArgument(
                "cannot evaluate an empty shard".to_string(),
            ));
        }
        let pred = model.infer(&data.x)?;
        let correct = match self.objective {
            Objective::Binary => pred
                .data()
                .iter()
                .zip(data.y.data())
                .filter(|(&p, &y)| (p >= 0.5) == (y >= 0.5))
                .count(),
            Objective::Multiclass(_) => (0..pred.rows())
                .filter(|&i| {
                    let row = pred.row(i);
                    let argmax = row
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                        .map(|(j, _)| j)
                        .expect("non-empty row");
                    argmax as f64 == data.y.get(i, 0).round()
                })
                .count(),
        };
        Ok(correct as f64 / data.len() as f64)
    }

    /// The default binary model: `dim → 16 → 16 → 1`, tanh hidden, sigmoid
    /// head.
    pub fn default_model(dim: usize, rng: &mut impl Rng) -> Result<Mlp> {
        Ok(Mlp::try_new(
            &[dim, 16, 16, 1],
            fl_nn::Activation::Tanh,
            fl_nn::Activation::Sigmoid,
            rng,
        )?)
    }

    /// The default `k`-way model: `dim → 16 → 16 → k`, tanh hidden, linear
    /// logit head (pair with [`Objective::Multiclass`]).
    pub fn multiclass_model(dim: usize, classes: usize, rng: &mut impl Rng) -> Result<Mlp> {
        if classes < 2 {
            return Err(LearnError::InvalidArgument(
                "multiclass needs at least 2 classes".to_string(),
            ));
        }
        Ok(Mlp::try_new(
            &[dim, 16, 16, classes],
            fl_nn::Activation::Tanh,
            fl_nn::Activation::Identity,
            rng,
        )?)
    }

    /// Helper exposing the per-sample prediction column (binary models).
    pub fn predict(model: &Mlp, x: &Matrix) -> Result<Vec<f64>> {
        Ok(model.infer(x)?.col(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{gaussian_blobs, gaussian_blobs_multiclass};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn validation() {
        let mut t = LocalTrainer::default();
        assert!(t.validate().is_ok());
        t.epochs = 0;
        assert!(t.validate().is_err());
        let t = LocalTrainer {
            lr: 0.0,
            ..Default::default()
        };
        assert!(t.validate().is_err());
        let t = LocalTrainer {
            batch_size: 0,
            ..Default::default()
        };
        assert!(t.validate().is_err());
        let t = LocalTrainer {
            objective: Objective::Multiclass(1),
            ..Default::default()
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn local_training_reduces_loss() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let data = gaussian_blobs(200, 2, 5.0, &mut rng).unwrap();
        let mut model = LocalTrainer::default_model(2, &mut rng).unwrap();
        let trainer = LocalTrainer {
            epochs: 10,
            ..LocalTrainer::default()
        };
        let before = trainer.evaluate_loss(&model, &data).unwrap();
        trainer.train(&mut model, &data, &mut rng).unwrap();
        let after = trainer.evaluate_loss(&model, &data).unwrap();
        assert!(after < before * 0.5, "before={before}, after={after}");
        let acc = trainer.evaluate_accuracy(&model, &data).unwrap();
        assert!(acc > 0.95, "accuracy={acc}");
    }

    #[test]
    fn multiclass_training_works() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let data = gaussian_blobs_multiclass(300, 2, 4, 6.0, &mut rng).unwrap();
        let mut model = LocalTrainer::multiclass_model(2, 4, &mut rng).unwrap();
        let trainer = LocalTrainer {
            epochs: 15,
            objective: Objective::Multiclass(4),
            ..LocalTrainer::default()
        };
        let before = trainer.evaluate_loss(&model, &data).unwrap();
        trainer.train(&mut model, &data, &mut rng).unwrap();
        let after = trainer.evaluate_loss(&model, &data).unwrap();
        assert!(after < before * 0.5, "before={before}, after={after}");
        let acc = trainer.evaluate_accuracy(&model, &data).unwrap();
        assert!(acc > 0.9, "accuracy={acc}");
    }

    #[test]
    fn objective_model_mismatch_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let data = gaussian_blobs(8, 2, 5.0, &mut rng).unwrap();
        let mut binary_model = LocalTrainer::default_model(2, &mut rng).unwrap();
        let multi = LocalTrainer {
            objective: Objective::Multiclass(3),
            ..LocalTrainer::default()
        };
        assert!(multi.train(&mut binary_model, &data, &mut rng).is_err());
        assert!(multi.evaluate_loss(&binary_model, &data).is_err());
        assert!(multi.evaluate_accuracy(&binary_model, &data).is_err());
    }

    #[test]
    fn multiclass_rejects_out_of_range_labels() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let data = gaussian_blobs_multiclass(20, 2, 4, 4.0, &mut rng).unwrap();
        let mut model = LocalTrainer::multiclass_model(2, 3, &mut rng).unwrap();
        let trainer = LocalTrainer {
            objective: Objective::Multiclass(3), // data has labels 0..4
            ..LocalTrainer::default()
        };
        assert!(trainer.train(&mut model, &data, &mut rng).is_err());
    }

    #[test]
    fn empty_shard_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let data = gaussian_blobs(4, 2, 5.0, &mut rng).unwrap();
        let empty = data.subset(&[]).unwrap();
        let mut model = LocalTrainer::default_model(2, &mut rng).unwrap();
        let trainer = LocalTrainer::default();
        assert!(trainer.train(&mut model, &empty, &mut rng).is_err());
        assert!(trainer.evaluate_loss(&model, &empty).is_err());
        assert!(trainer.evaluate_accuracy(&model, &empty).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let make = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let data = gaussian_blobs(64, 2, 4.0, &mut rng).unwrap();
            let mut model = LocalTrainer::default_model(2, &mut rng).unwrap();
            LocalTrainer::default()
                .train(&mut model, &data, &mut rng)
                .unwrap();
            model.export_params()
        };
        assert_eq!(make(5), make(5));
    }

    #[test]
    fn batch_size_larger_than_shard_is_fine() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let data = gaussian_blobs(8, 2, 4.0, &mut rng).unwrap();
        let mut model = LocalTrainer::default_model(2, &mut rng).unwrap();
        let trainer = LocalTrainer {
            batch_size: 1000,
            ..LocalTrainer::default()
        };
        assert!(trainer.train(&mut model, &data, &mut rng).is_ok());
    }
}
