//! # fl-learn — a hand-built federated-learning training loop
//!
//! The paper's scheduler controls the *timing* of federated learning; the
//! learning itself (Eqs. 7–8 and constraint 10, `F(ω) < ε`) is exercised by
//! this crate: a from-scratch FedAvg (McMahan et al., the paper's ref. 1) over the `fl-nn` networks.
//!
//! * [`LabeledData`] + [`data`] — synthetic binary-classification datasets
//!   (Gaussian blobs, XOR rings) and **non-IID splitting** across devices
//!   with a tunable label-skew parameter,
//! * [`LocalTrainer`] — `τ` epochs of minibatch SGD on one device's shard
//!   (Algorithm 1's "mobile devices train the model"),
//! * [`FedAvg`] — the parameter server: broadcast, parallel local training
//!   (one crossbeam thread per device), and `D_n`-weighted model averaging
//!   (Eq. 8's weighting), with [`FedAvg::train_until`] implementing the
//!   loss-threshold stopping rule of constraint (10).

#![forbid(unsafe_code)]
// `!(x > 0.0)`-style guards reject NaN along with out-of-range values;
// clippy's suggested inversion (`x <= 0.0`) would silently accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

mod async_fedavg;
pub mod data;
mod error;
mod fedavg;
mod local;

pub use async_fedavg::{AsyncFedAvg, AsyncFedAvgConfig, AsyncUpdateReport};
pub use data::LabeledData;
pub use error::LearnError;
pub use fedavg::{aggregate_params, FedAvg, FedAvgConfig, RoundReport};
pub use local::{LocalTrainer, Objective};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, LearnError>;
