//! Error type for the fl-learn crate.

use std::fmt;

/// Errors raised by the federated-learning loop.
#[derive(Debug, Clone, PartialEq)]
pub enum LearnError {
    /// A configuration or dataset argument was invalid.
    InvalidArgument(String),
    /// A numeric failure surfaced from the NN substrate.
    Nn(fl_nn::NnError),
    /// The loss threshold was not reached within the round budget.
    DidNotConverge {
        /// Rounds executed.
        rounds: usize,
        /// Final global loss.
        final_loss: f64,
        /// Target threshold ε.
        epsilon: f64,
    },
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            LearnError::Nn(e) => write!(f, "nn error: {e}"),
            LearnError::DidNotConverge {
                rounds,
                final_loss,
                epsilon,
            } => write!(
                f,
                "did not reach F(w) < {epsilon} within {rounds} rounds (final loss {final_loss})"
            ),
        }
    }
}

impl std::error::Error for LearnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LearnError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fl_nn::NnError> for LearnError {
    fn from(e: fl_nn::NnError) -> Self {
        LearnError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = LearnError::DidNotConverge {
            rounds: 10,
            final_loss: 0.5,
            epsilon: 0.1,
        };
        let s = e.to_string();
        assert!(s.contains("10"));
        assert!(s.contains("0.5"));
        let n: LearnError = fl_nn::NnError::InvalidArgument("z".into()).into();
        assert!(n.to_string().contains("z"));
    }
}
