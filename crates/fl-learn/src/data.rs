//! Synthetic classification datasets and non-IID federated splits.

use crate::{LearnError, Result};
use fl_nn::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// A labeled binary-classification dataset: features `x` (`n x dim`) and
/// labels `y` (`n x 1`, values in `{0.0, 1.0}`).
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledData {
    /// Feature matrix, one sample per row.
    pub x: Matrix,
    /// Label column.
    pub y: Matrix,
}

impl LabeledData {
    /// Builds a dataset, validating the shapes agree.
    pub fn new(x: Matrix, y: Matrix) -> Result<Self> {
        if y.cols() != 1 || x.rows() != y.rows() {
            return Err(LearnError::InvalidArgument(format!(
                "x is {:?} but y is {:?} (need n x d and n x 1)",
                x.shape(),
                y.shape()
            )));
        }
        Ok(LabeledData { x, y })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// Fraction of positive labels.
    pub fn positive_fraction(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.y.data().iter().sum::<f64>() / self.len() as f64
    }

    /// Gathers the given sample indices into a new dataset.
    pub fn subset(&self, indices: &[usize]) -> Result<LabeledData> {
        let x = self.x.gather_rows(indices).map_err(LearnError::from)?;
        let y = self.y.gather_rows(indices).map_err(LearnError::from)?;
        LabeledData::new(x, y)
    }

    /// A shuffled copy.
    pub fn shuffled(&self, rng: &mut impl Rng) -> Result<LabeledData> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        self.subset(&idx)
    }
}

/// Two Gaussian blobs in `dim` dimensions, centered at `±separation/2`
/// along every axis. Linearly separable for large `separation`; the
/// simplest workload a federated logistic model must solve.
pub fn gaussian_blobs(
    n: usize,
    dim: usize,
    separation: f64,
    rng: &mut impl Rng,
) -> Result<LabeledData> {
    if n == 0 || dim == 0 {
        return Err(LearnError::InvalidArgument(
            "n and dim must be nonzero".to_string(),
        ));
    }
    let half = separation / 2.0;
    let mut xd = Vec::with_capacity(n * dim);
    let mut yd = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % 2;
        let center = if label == 1 { half } else { -half };
        for _ in 0..dim {
            xd.push(center + gaussian(rng));
        }
        yd.push(label as f64);
    }
    LabeledData::new(Matrix::from_vec(n, dim, xd)?, Matrix::from_vec(n, 1, yd)?)
}

/// `k` Gaussian blobs arranged on a circle of radius `separation` in the
/// first two dimensions (extra dimensions are pure noise). Labels are the
/// class indices `0..k` stored in the `y` column — pair with
/// [`crate::Objective::Multiclass`].
pub fn gaussian_blobs_multiclass(
    n: usize,
    dim: usize,
    k: usize,
    separation: f64,
    rng: &mut impl Rng,
) -> Result<LabeledData> {
    if n == 0 || dim < 2 || k < 2 {
        return Err(LearnError::InvalidArgument(
            "need n >= 1, dim >= 2, k >= 2".to_string(),
        ));
    }
    let mut xd = Vec::with_capacity(n * dim);
    let mut yd = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % k;
        let angle = std::f64::consts::TAU * label as f64 / k as f64;
        let (cx, cy) = (separation * angle.cos(), separation * angle.sin());
        xd.push(cx + gaussian(rng));
        xd.push(cy + gaussian(rng));
        for _ in 2..dim {
            xd.push(gaussian(rng));
        }
        yd.push(label as f64);
    }
    LabeledData::new(Matrix::from_vec(n, dim, xd)?, Matrix::from_vec(n, 1, yd)?)
}

/// Concentric rings (label = inner vs outer radius band) in 2-D — a
/// non-linearly-separable task that forces the hidden layer to matter.
pub fn rings(n: usize, rng: &mut impl Rng) -> Result<LabeledData> {
    if n == 0 {
        return Err(LearnError::InvalidArgument("n must be nonzero".to_string()));
    }
    let mut xd = Vec::with_capacity(n * 2);
    let mut yd = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % 2;
        let r = if label == 1 {
            2.0 + 0.3 * gaussian(rng)
        } else {
            0.7 + 0.3 * gaussian(rng)
        };
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        xd.push(r * theta.cos());
        xd.push(r * theta.sin());
        yd.push(label as f64);
    }
    LabeledData::new(Matrix::from_vec(n, 2, xd)?, Matrix::from_vec(n, 1, yd)?)
}

/// Splits a dataset across `n_parts` devices with tunable label skew.
///
/// `skew = 0.0` shuffles uniformly (IID); `skew = 1.0` sorts by label so
/// each device sees (almost) a single class — the canonical pathological
/// federated distribution. Intermediate values mix the two index orders.
/// Shard sizes may differ by one sample.
pub fn split_non_iid(
    data: &LabeledData,
    n_parts: usize,
    skew: f64,
    rng: &mut impl Rng,
) -> Result<Vec<LabeledData>> {
    if n_parts == 0 || n_parts > data.len() {
        return Err(LearnError::InvalidArgument(format!(
            "cannot split {} samples into {} parts",
            data.len(),
            n_parts
        )));
    }
    if !(0.0..=1.0).contains(&skew) {
        return Err(LearnError::InvalidArgument(format!(
            "skew must be in [0, 1], got {skew}"
        )));
    }
    // Sorted-by-label order, with ties shuffled.
    let mut sorted: Vec<usize> = (0..data.len()).collect();
    sorted.shuffle(rng);
    sorted.sort_by(|&a, &b| {
        data.y
            .get(a, 0)
            .partial_cmp(&data.y.get(b, 0))
            .expect("labels are finite")
    });
    // IID order.
    let mut iid: Vec<usize> = (0..data.len()).collect();
    iid.shuffle(rng);
    // Each shard draws a `skew` fraction of its samples from the front of
    // the label-sorted stream (concentrating one class) and the rest from
    // the shuffled stream, skipping indices another shard already took.
    let base = data.len() / n_parts;
    let extra = data.len() % n_parts;
    let mut taken = vec![false; data.len()];
    let mut sorted_cursor = 0usize;
    let mut iid_cursor = 0usize;
    let mut out = Vec::with_capacity(n_parts);
    for p in 0..n_parts {
        let size = base + usize::from(p < extra);
        let from_sorted = (size as f64 * skew).round() as usize;
        let mut indices = Vec::with_capacity(size);
        while indices.len() < from_sorted && sorted_cursor < sorted.len() {
            let i = sorted[sorted_cursor];
            sorted_cursor += 1;
            if !taken[i] {
                taken[i] = true;
                indices.push(i);
            }
        }
        while indices.len() < size && iid_cursor < iid.len() {
            let i = iid[iid_cursor];
            iid_cursor += 1;
            if !taken[i] {
                taken[i] = true;
                indices.push(i);
            }
        }
        // If the IID stream ran dry (everything left was already taken via
        // the sorted stream), fall back to the sorted remainder.
        while indices.len() < size && sorted_cursor < sorted.len() {
            let i = sorted[sorted_cursor];
            sorted_cursor += 1;
            if !taken[i] {
                taken[i] = true;
                indices.push(i);
            }
        }
        out.push(data.subset(&indices)?);
    }
    Ok(out)
}

/// Standard normal sample via Box–Muller.
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn labeled_data_validation() {
        let x = Matrix::zeros(3, 2);
        let bad_y = Matrix::zeros(2, 1);
        assert!(LabeledData::new(x.clone(), bad_y).is_err());
        let wide_y = Matrix::zeros(3, 2);
        assert!(LabeledData::new(x.clone(), wide_y).is_err());
        let y = Matrix::zeros(3, 1);
        let d = LabeledData::new(x, y).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
    }

    #[test]
    fn blobs_balanced_and_separated() {
        let d = gaussian_blobs(400, 3, 6.0, &mut rng(0)).unwrap();
        assert_eq!(d.len(), 400);
        assert!((d.positive_fraction() - 0.5).abs() < 0.01);
        // Class-conditional means are far apart.
        let mut pos_mean = 0.0;
        let mut neg_mean = 0.0;
        for i in 0..d.len() {
            let m: f64 = d.x.row(i).iter().sum::<f64>() / 3.0;
            if d.y.get(i, 0) > 0.5 {
                pos_mean += m;
            } else {
                neg_mean += m;
            }
        }
        assert!(pos_mean / 200.0 > 1.5);
        assert!(neg_mean / 200.0 < -1.5);
    }

    #[test]
    fn rings_radii_differ_by_class() {
        let d = rings(400, &mut rng(1)).unwrap();
        let mut inner = 0.0;
        let mut outer = 0.0;
        for i in 0..d.len() {
            let r = (d.x.get(i, 0).powi(2) + d.x.get(i, 1).powi(2)).sqrt();
            if d.y.get(i, 0) > 0.5 {
                outer += r;
            } else {
                inner += r;
            }
        }
        assert!(outer / 200.0 > 1.5);
        assert!(inner / 200.0 < 1.2);
    }

    #[test]
    fn subset_and_shuffle() {
        let d = gaussian_blobs(10, 2, 4.0, &mut rng(2)).unwrap();
        let s = d.subset(&[0, 2, 4]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.x.row(1), d.x.row(2));
        let sh = d.shuffled(&mut rng(3)).unwrap();
        assert_eq!(sh.len(), d.len());
        assert_ne!(sh.x, d.x); // overwhelmingly likely
    }

    #[test]
    fn iid_split_balanced_labels() {
        let d = gaussian_blobs(600, 2, 4.0, &mut rng(4)).unwrap();
        let parts = split_non_iid(&d, 3, 0.0, &mut rng(5)).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(LabeledData::len).sum::<usize>(), 600);
        for p in &parts {
            assert!((p.positive_fraction() - 0.5).abs() < 0.1);
        }
    }

    #[test]
    fn full_skew_split_separates_labels() {
        let d = gaussian_blobs(600, 2, 4.0, &mut rng(6)).unwrap();
        let parts = split_non_iid(&d, 2, 1.0, &mut rng(7)).unwrap();
        // One shard all-negative, the other all-positive.
        assert!(parts[0].positive_fraction() < 0.05);
        assert!(parts[1].positive_fraction() > 0.95);
    }

    #[test]
    fn partial_skew_between_extremes() {
        let d = gaussian_blobs(600, 2, 4.0, &mut rng(8)).unwrap();
        let parts = split_non_iid(&d, 2, 0.5, &mut rng(9)).unwrap();
        let f0 = parts[0].positive_fraction();
        assert!(f0 > 0.05 && f0 < 0.45, "fraction={f0}");
    }

    #[test]
    fn split_validation() {
        let d = gaussian_blobs(10, 2, 4.0, &mut rng(10)).unwrap();
        assert!(split_non_iid(&d, 0, 0.0, &mut rng(11)).is_err());
        assert!(split_non_iid(&d, 11, 0.0, &mut rng(11)).is_err());
        assert!(split_non_iid(&d, 2, 1.5, &mut rng(11)).is_err());
    }

    #[test]
    fn split_covers_every_sample_once() {
        let d = gaussian_blobs(101, 2, 4.0, &mut rng(12)).unwrap();
        let parts = split_non_iid(&d, 4, 0.5, &mut rng(13)).unwrap();
        let total: usize = parts.iter().map(LabeledData::len).sum();
        assert_eq!(total, 101);
        // Sizes differ by at most one.
        let sizes: Vec<usize> = parts.iter().map(LabeledData::len).collect();
        let (mn, mx) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        assert!(mx - mn <= 1);
    }
}
