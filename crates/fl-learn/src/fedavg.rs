//! The FedAvg parameter server.

use crate::local::LocalTrainer;
use crate::{LabeledData, LearnError, Result};
use fl_nn::Mlp;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Server-side FedAvg configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FedAvgConfig {
    /// Local optimization settings applied on every device.
    pub local: LocalTrainer,
    /// Run device updates on parallel threads (one per device). Determinism
    /// is preserved either way: each device gets a seed drawn from the
    /// caller's RNG *before* the fan-out, and aggregation order is fixed.
    pub parallel: bool,
}

impl Default for FedAvgConfig {
    fn default() -> Self {
        FedAvgConfig {
            local: LocalTrainer::default(),
            parallel: true,
        }
    }
}

/// `D_n`-weighted parameter averaging (the weighting of Eq. 8), extracted
/// as a pure function so partial-participation aggregation can be tested
/// against hand-computed values. `weights` are the raw per-update weights
/// (e.g. shard sizes); they are normalized internally, so only their ratios
/// matter.
pub fn aggregate_params(updates: &[Vec<f64>], weights: &[f64]) -> Result<Vec<f64>> {
    if updates.is_empty() {
        return Err(LearnError::InvalidArgument(
            "need at least one update to aggregate".to_string(),
        ));
    }
    if updates.len() != weights.len() {
        return Err(LearnError::InvalidArgument(format!(
            "{} updates but {} weights",
            updates.len(),
            weights.len()
        )));
    }
    let dim = updates[0].len();
    if updates.iter().any(|u| u.len() != dim) {
        return Err(LearnError::InvalidArgument(
            "updates have mismatched dimensions".to_string(),
        ));
    }
    if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
        return Err(LearnError::InvalidArgument(
            "weights must be finite and non-negative".to_string(),
        ));
    }
    let total: f64 = weights.iter().sum();
    if !(total > 0.0) {
        return Err(LearnError::InvalidArgument(
            "weights must not all be zero".to_string(),
        ));
    }
    // Accumulate Σ w_i·p_i first and divide by Σ w_i once at the end: with
    // integral weights (shard sizes) the intermediate sums stay exact, so
    // small hand-computed cases aggregate without rounding error.
    let mut aggregated = vec![0.0; dim];
    for (update, weight) in updates.iter().zip(weights) {
        for (agg, p) in aggregated.iter_mut().zip(update) {
            *agg += weight * p;
        }
    }
    for agg in &mut aggregated {
        *agg /= total;
    }
    Ok(aggregated)
}

/// Metrics from one federated round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Global loss `F(ω)` (Eq. 8) after aggregation.
    pub global_loss: f64,
    /// Mean of the devices' final local losses.
    pub mean_local_loss: f64,
    /// `D_n`-weighted global accuracy after aggregation.
    pub accuracy: f64,
}

/// The parameter server: owns the global model `ω` and performs
/// broadcast → local training → `D_n`-weighted averaging each iteration
/// (the Fig. 1 workflow).
#[derive(Debug, Clone)]
pub struct FedAvg {
    global: Mlp,
    config: FedAvgConfig,
}

impl FedAvg {
    /// Wraps an initial global model.
    pub fn new(global: Mlp, config: FedAvgConfig) -> Result<Self> {
        config.local.validate()?;
        Ok(FedAvg { global, config })
    }

    /// The current global model.
    pub fn global(&self) -> &Mlp {
        &self.global
    }

    /// The configuration.
    pub fn config(&self) -> &FedAvgConfig {
        &self.config
    }

    /// Runs one federated iteration over the device shards and returns the
    /// post-aggregation metrics.
    pub fn round(&mut self, shards: &[LabeledData], rng: &mut ChaCha8Rng) -> Result<RoundReport> {
        let all: Vec<usize> = (0..shards.len()).collect();
        self.round_with_participants(shards, &all, rng)
    }

    /// One round with *client selection*: only the devices in
    /// `participants` train and contribute to the average (the partial
    /// participation of McMahan et al. / the resource-aware selection of
    /// Nishio & Yonetani, which the paper cites as complementary work).
    /// The global loss/accuracy are still measured over **all** shards.
    pub fn round_with_participants(
        &mut self,
        shards: &[LabeledData],
        participants: &[usize],
        rng: &mut ChaCha8Rng,
    ) -> Result<RoundReport> {
        if participants.is_empty() {
            return Err(LearnError::InvalidArgument(
                "need at least one participating device".to_string(),
            ));
        }
        let mut seen = vec![false; shards.len()];
        for &p in participants {
            if p >= shards.len() {
                return Err(LearnError::InvalidArgument(format!(
                    "participant {p} out of range for {} shards",
                    shards.len()
                )));
            }
            if std::mem::replace(&mut seen[p], true) {
                return Err(LearnError::InvalidArgument(format!(
                    "participant {p} listed twice"
                )));
            }
        }
        let selected: Vec<LabeledData> = participants.iter().map(|&p| shards[p].clone()).collect();
        let report = self.round_inner(&selected, rng)?;
        // Re-measure quality over the full population (non-participants'
        // data still counts toward Eq. 8).
        Ok(RoundReport {
            global_loss: self.global_loss(shards)?,
            accuracy: self.global_accuracy(shards)?,
            ..report
        })
    }

    /// One round driven by per-device survival flags, as produced by the
    /// fault-injected simulator (`fl-sim`'s `IterationReport::survivor_flags`):
    /// exactly the devices whose flag is `true` contribute updates. Unlike
    /// [`FedAvg::round_with_participants`], an *empty* surviving set is not an
    /// error but a **no-op round**: every upload was lost, so the global model
    /// is left unchanged and `mean_local_loss` reports `0.0` (no local
    /// training counted toward the average).
    pub fn round_with_survivors(
        &mut self,
        shards: &[LabeledData],
        survived: &[bool],
        rng: &mut ChaCha8Rng,
    ) -> Result<RoundReport> {
        if survived.len() != shards.len() {
            return Err(LearnError::InvalidArgument(format!(
                "{} survival flags for {} shards",
                survived.len(),
                shards.len()
            )));
        }
        let participants: Vec<usize> = survived
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.then_some(i))
            .collect();
        if participants.is_empty() {
            return Ok(RoundReport {
                global_loss: self.global_loss(shards)?,
                mean_local_loss: 0.0,
                accuracy: self.global_accuracy(shards)?,
            });
        }
        self.round_with_participants(shards, &participants, rng)
    }

    /// Samples `count` participants uniformly without replacement and runs
    /// a round with them.
    pub fn round_with_sampling(
        &mut self,
        shards: &[LabeledData],
        count: usize,
        rng: &mut ChaCha8Rng,
    ) -> Result<RoundReport> {
        if count == 0 || count > shards.len() {
            return Err(LearnError::InvalidArgument(format!(
                "cannot sample {count} of {} devices",
                shards.len()
            )));
        }
        use rand::seq::SliceRandom;
        let mut idx: Vec<usize> = (0..shards.len()).collect();
        idx.shuffle(rng);
        idx.truncate(count);
        self.round_with_participants(shards, &idx, rng)
    }

    #[allow(clippy::type_complexity)] // one-off result-collection vector
    fn round_inner(&mut self, shards: &[LabeledData], rng: &mut ChaCha8Rng) -> Result<RoundReport> {
        if shards.is_empty() {
            return Err(LearnError::InvalidArgument(
                "need at least one device shard".to_string(),
            ));
        }
        if shards.iter().any(LabeledData::is_empty) {
            return Err(LearnError::InvalidArgument(
                "every shard must be non-empty".to_string(),
            ));
        }
        // Draw per-device seeds up front so parallel and serial execution
        // produce identical results.
        let seeds: Vec<u64> = shards.iter().map(|_| rng.gen()).collect();
        let trainer = self.config.local;
        let global = &self.global;

        let results: Vec<Result<(Vec<f64>, f64)>> = if self.config.parallel && shards.len() > 1 {
            let mut slots: Vec<Option<Result<(Vec<f64>, f64)>>> = Vec::new();
            slots.resize_with(shards.len(), || None);
            crossbeam::thread::scope(|scope| {
                for ((shard, seed), slot) in shards.iter().zip(&seeds).zip(slots.iter_mut()) {
                    scope.spawn(move |_| {
                        *slot = Some(Self::local_update(global, trainer, shard, *seed));
                    });
                }
            })
            .expect("local training thread panicked");
            slots
                .into_iter()
                .map(|s| s.expect("every slot filled by its thread"))
                .collect()
        } else {
            shards
                .iter()
                .zip(&seeds)
                .map(|(shard, seed)| Self::local_update(global, trainer, shard, *seed))
                .collect()
        };

        // D_n-weighted parameter average (the weighting of Eq. 8).
        let weights: Vec<f64> = shards.iter().map(|s| s.len() as f64).collect();
        let mut updates = Vec::with_capacity(shards.len());
        let mut local_loss_sum = 0.0;
        for result in results {
            let (params, local_loss) = result?;
            updates.push(params);
            local_loss_sum += local_loss;
        }
        let aggregated = aggregate_params(&updates, &weights)?;
        self.global.import_params(&aggregated)?;

        Ok(RoundReport {
            global_loss: self.global_loss(shards)?,
            mean_local_loss: local_loss_sum / shards.len() as f64,
            accuracy: self.global_accuracy(shards)?,
        })
    }

    /// One device's contribution: clone the global model, train locally,
    /// return the updated parameters and final local loss.
    fn local_update(
        global: &Mlp,
        trainer: LocalTrainer,
        shard: &LabeledData,
        seed: u64,
    ) -> Result<(Vec<f64>, f64)> {
        let mut local = global.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let local_loss = trainer.train(&mut local, shard, &mut rng)?;
        Ok((local.export_params(), local_loss))
    }

    /// Eq. (8): the `D_n`-weighted global loss over all shards.
    pub fn global_loss(&self, shards: &[LabeledData]) -> Result<f64> {
        let total: f64 = shards.iter().map(|s| s.len() as f64).sum();
        if total == 0.0 {
            return Err(LearnError::InvalidArgument(
                "global loss over zero samples".to_string(),
            ));
        }
        let mut acc = 0.0;
        for s in shards {
            acc += s.len() as f64 * self.config.local.evaluate_loss(&self.global, s)?;
        }
        Ok(acc / total)
    }

    /// `D_n`-weighted global accuracy.
    pub fn global_accuracy(&self, shards: &[LabeledData]) -> Result<f64> {
        let total: f64 = shards.iter().map(|s| s.len() as f64).sum();
        if total == 0.0 {
            return Err(LearnError::InvalidArgument(
                "accuracy over zero samples".to_string(),
            ));
        }
        let mut acc = 0.0;
        for s in shards {
            acc += s.len() as f64 * self.config.local.evaluate_accuracy(&self.global, s)?;
        }
        Ok(acc / total)
    }

    /// Constraint (10): trains until `F(ω) < ε` or the round budget runs
    /// out (error in the latter case, reporting the final loss). Returns
    /// the per-round reports.
    pub fn train_until(
        &mut self,
        shards: &[LabeledData],
        epsilon: f64,
        max_rounds: usize,
        rng: &mut ChaCha8Rng,
    ) -> Result<Vec<RoundReport>> {
        if !(epsilon > 0.0) {
            return Err(LearnError::InvalidArgument(
                "epsilon must be positive".to_string(),
            ));
        }
        let mut reports = Vec::new();
        for _ in 0..max_rounds {
            let r = self.round(shards, rng)?;
            let done = r.global_loss < epsilon;
            reports.push(r);
            if done {
                return Ok(reports);
            }
        }
        Err(LearnError::DidNotConverge {
            rounds: max_rounds,
            final_loss: reports.last().map(|r| r.global_loss).unwrap_or(f64::NAN),
            epsilon,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{gaussian_blobs, split_non_iid};

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn setup(seed: u64, n: usize, devices: usize, skew: f64) -> (FedAvg, Vec<LabeledData>) {
        let mut r = rng(seed);
        let data = gaussian_blobs(n, 2, 5.0, &mut r).unwrap();
        let shards = split_non_iid(&data, devices, skew, &mut r).unwrap();
        let model = LocalTrainer::default_model(2, &mut r).unwrap();
        let fed = FedAvg::new(model, FedAvgConfig::default()).unwrap();
        (fed, shards)
    }

    #[test]
    fn round_reduces_global_loss() {
        let (mut fed, shards) = setup(0, 300, 3, 0.0);
        let before = fed.global_loss(&shards).unwrap();
        let mut r = rng(1);
        let report = fed.round(&shards, &mut r).unwrap();
        assert!(report.global_loss < before);
        assert!(report.accuracy > 0.5);
    }

    #[test]
    fn converges_on_separable_data() {
        let (mut fed, shards) = setup(2, 300, 3, 0.0);
        let mut r = rng(3);
        let reports = fed.train_until(&shards, 0.1, 30, &mut r).unwrap();
        assert!(reports.last().unwrap().global_loss < 0.1);
        assert!(reports.last().unwrap().accuracy > 0.95);
        // Loss is (weakly) trending down: final < first.
        assert!(reports.last().unwrap().global_loss < reports[0].global_loss);
    }

    #[test]
    fn handles_non_iid_shards() {
        let (mut fed, shards) = setup(4, 400, 4, 1.0);
        let mut r = rng(5);
        // Fully skewed shards: still learns, if slower.
        for _ in 0..15 {
            fed.round(&shards, &mut r).unwrap();
        }
        let acc = fed.global_accuracy(&shards).unwrap();
        assert!(acc > 0.8, "non-IID accuracy {acc}");
    }

    #[test]
    fn parallel_matches_serial() {
        let (fed_template, shards) = setup(6, 200, 4, 0.3);
        let mut fed_par = fed_template.clone();
        let mut fed_ser = fed_template.clone();
        fed_par.config.parallel = true;
        fed_ser.config.parallel = false;
        let mut r1 = rng(7);
        let mut r2 = rng(7);
        let rp = fed_par.round(&shards, &mut r1).unwrap();
        let rs = fed_ser.round(&shards, &mut r2).unwrap();
        assert_eq!(
            fed_par.global().export_params(),
            fed_ser.global().export_params()
        );
        assert_eq!(rp, rs);
    }

    #[test]
    fn aggregation_weights_by_shard_size() {
        // Two shards of very different sizes; with zero local epochs we
        // cannot test directly, so instead: train where one shard dominates
        // and verify the global model tracks the dominant shard's loss.
        let mut r = rng(8);
        let data = gaussian_blobs(330, 2, 5.0, &mut r).unwrap();
        let big = data.subset(&(0..300).collect::<Vec<_>>()).unwrap();
        let small = data.subset(&(300..330).collect::<Vec<_>>()).unwrap();
        let model = LocalTrainer::default_model(2, &mut r).unwrap();
        let mut fed = FedAvg::new(model, FedAvgConfig::default()).unwrap();
        let shards = vec![big.clone(), small];
        for _ in 0..5 {
            fed.round(&shards, &mut r).unwrap();
        }
        let big_loss = LocalTrainer::default()
            .evaluate_loss(fed.global(), &big)
            .unwrap();
        assert!(big_loss < 0.2, "dominant shard poorly fit: {big_loss}");
    }

    #[test]
    fn partial_participation_round() {
        let (mut fed, shards) = setup(20, 400, 4, 0.0);
        let mut r = rng(21);
        // Only devices 0 and 2 train; quality measured over everyone.
        let before = fed.global_loss(&shards).unwrap();
        let report = fed
            .round_with_participants(&shards, &[0, 2], &mut r)
            .unwrap();
        assert!(report.global_loss < before);
        // Validation.
        assert!(fed.round_with_participants(&shards, &[], &mut r).is_err());
        assert!(fed.round_with_participants(&shards, &[9], &mut r).is_err());
        assert!(fed
            .round_with_participants(&shards, &[1, 1], &mut r)
            .is_err());
    }

    #[test]
    fn golden_partial_aggregate() {
        // Three devices, weights 2:1:1; device 1's upload is lost, so only
        // devices 0 and 2 are averaged with weights 2:1.
        let updates = vec![vec![1.0, 2.0], vec![3.0, 5.0], vec![10.0, 20.0]];
        let weights = [2.0, 1.0, 1.0];
        let survivors = [0usize, 2];
        let kept: Vec<Vec<f64>> = survivors.iter().map(|&i| updates[i].clone()).collect();
        let kept_w: Vec<f64> = survivors.iter().map(|&i| weights[i]).collect();
        let agg = aggregate_params(&kept, &kept_w).unwrap();
        // Hand-computed: [(2*1 + 1*10)/3, (2*2 + 1*20)/3] = [4, 8].
        assert_eq!(agg, vec![4.0, 8.0]);
        // Full-set sanity: [(2*1 + 3 + 10)/4, (2*2 + 5 + 20)/4].
        let full = aggregate_params(&updates, &weights).unwrap();
        assert_eq!(full, vec![15.0 / 4.0, 29.0 / 4.0]);
    }

    #[test]
    fn aggregate_params_rejects_bad_inputs() {
        let u = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert!(aggregate_params(&[], &[]).is_err());
        assert!(aggregate_params(&u, &[1.0]).is_err());
        assert!(aggregate_params(&[vec![1.0], vec![2.0, 3.0]], &[1.0, 1.0]).is_err());
        assert!(aggregate_params(&u, &[1.0, -1.0]).is_err());
        assert!(aggregate_params(&u, &[1.0, f64::NAN]).is_err());
        assert!(aggregate_params(&u, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn survivor_round_matches_participant_round() {
        let (fed_template, shards) = setup(24, 300, 3, 0.0);
        let mut by_flags = fed_template.clone();
        let mut by_index = fed_template.clone();
        let mut r1 = rng(25);
        let mut r2 = rng(25);
        let a = by_flags
            .round_with_survivors(&shards, &[true, false, true], &mut r1)
            .unwrap();
        let b = by_index
            .round_with_participants(&shards, &[0, 2], &mut r2)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(
            by_flags.global().export_params(),
            by_index.global().export_params()
        );
        // Arity mismatch is rejected.
        assert!(by_flags
            .round_with_survivors(&shards, &[true, false], &mut r1)
            .is_err());
    }

    #[test]
    fn all_dropped_round_is_a_noop() {
        let (mut fed, shards) = setup(26, 200, 3, 0.0);
        let before = fed.global().export_params();
        let loss_before = fed.global_loss(&shards).unwrap();
        let mut r = rng(27);
        let report = fed
            .round_with_survivors(&shards, &[false, false, false], &mut r)
            .unwrap();
        assert_eq!(fed.global().export_params(), before);
        assert_eq!(report.global_loss, loss_before);
        assert_eq!(report.mean_local_loss, 0.0);
    }

    #[test]
    fn sampled_participation_converges() {
        let (mut fed, shards) = setup(22, 400, 5, 0.0);
        let mut r = rng(23);
        for _ in 0..20 {
            fed.round_with_sampling(&shards, 2, &mut r).unwrap();
        }
        let acc = fed.global_accuracy(&shards).unwrap();
        assert!(acc > 0.9, "accuracy with 2/5 participation: {acc}");
        assert!(fed.round_with_sampling(&shards, 0, &mut r).is_err());
        assert!(fed.round_with_sampling(&shards, 6, &mut r).is_err());
    }

    #[test]
    fn rejects_bad_inputs() {
        let (mut fed, shards) = setup(9, 100, 2, 0.0);
        let mut r = rng(10);
        assert!(fed.round(&[], &mut r).is_err());
        let empty = shards[0].subset(&[]).unwrap();
        assert!(fed.round(&[empty], &mut r).is_err());
        assert!(fed.train_until(&shards, 0.0, 5, &mut r).is_err());
        assert!(fed.global_loss(&[]).is_err());
    }

    #[test]
    fn train_until_reports_non_convergence() {
        let (mut fed, shards) = setup(11, 100, 2, 0.0);
        let mut r = rng(12);
        // Impossible threshold within 1 round.
        let err = fed.train_until(&shards, 1e-12, 1, &mut r).unwrap_err();
        assert!(matches!(err, LearnError::DidNotConverge { rounds: 1, .. }));
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let (mut fed, shards) = setup(13, 120, 3, 0.2);
            let mut r = rng(seed);
            fed.round(&shards, &mut r).unwrap();
            fed.global().export_params()
        };
        assert_eq!(run(14), run(14));
        assert_ne!(run(14), run(15));
    }
}
