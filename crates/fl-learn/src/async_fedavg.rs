//! Staleness-aware asynchronous federated averaging (FedAsync-style).
//!
//! The counterpart to [`crate::FedAvg`] for the asynchronous protocol
//! simulated by `fl-sim::run_async`: the server applies each device's
//! update the moment it arrives, mixed into the global model with a weight
//! that decays in the update's *staleness* (how many server versions
//! elapsed since the device downloaded its base model). Lets the
//! `abl_sync_async` bench measure the synchronous-vs-asynchronous choice
//! the paper makes by citation.

use crate::local::LocalTrainer;
use crate::{LabeledData, LearnError, Result};
use fl_nn::Mlp;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Server-side configuration for asynchronous aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsyncFedAvgConfig {
    /// Local optimization settings applied on every device.
    pub local: LocalTrainer,
    /// Base mixing weight `α ∈ (0, 1]` applied to a fresh (staleness-0)
    /// update: `ω ← (1 − w) ω + w ω_local`.
    pub mixing: f64,
    /// Polynomial staleness decay: `w = α / (1 + s)^staleness_power`.
    pub staleness_power: f64,
}

impl Default for AsyncFedAvgConfig {
    fn default() -> Self {
        AsyncFedAvgConfig {
            local: LocalTrainer::default(),
            mixing: 0.6,
            staleness_power: 0.5,
        }
    }
}

impl AsyncFedAvgConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        self.local.validate()?;
        if !(self.mixing > 0.0 && self.mixing <= 1.0) {
            return Err(LearnError::InvalidArgument(format!(
                "mixing must be in (0, 1], got {}",
                self.mixing
            )));
        }
        if !(self.staleness_power >= 0.0) || !self.staleness_power.is_finite() {
            return Err(LearnError::InvalidArgument(format!(
                "staleness_power must be non-negative, got {}",
                self.staleness_power
            )));
        }
        Ok(())
    }
}

/// Metrics from one applied asynchronous update.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsyncUpdateReport {
    /// Which device's update was applied.
    pub device: usize,
    /// Server versions elapsed since the device's base snapshot.
    pub staleness: usize,
    /// Mixing weight actually used.
    pub weight: f64,
    /// Global loss `F(ω)` (Eq. 8 over all shards) after the update.
    pub global_loss: f64,
}

/// The asynchronous parameter server.
///
/// Devices hold base-model snapshots (taken when they start a round);
/// [`AsyncFedAvg::apply_arrival`] trains from the snapshot and folds the
/// result into the global model with a staleness-discounted weight,
/// re-snapshotting the device for its next round — exactly the event
/// semantics of `fl_sim::run_async` arrivals processed in order.
#[derive(Debug, Clone)]
pub struct AsyncFedAvg {
    global: Mlp,
    config: AsyncFedAvgConfig,
    version: usize,
    /// Per-device (snapshot parameters, snapshot version).
    snapshots: Vec<(Vec<f64>, usize)>,
}

impl AsyncFedAvg {
    /// Initializes the server; every device's first snapshot is the
    /// initial global model.
    pub fn new(global: Mlp, n_devices: usize, config: AsyncFedAvgConfig) -> Result<Self> {
        config.validate()?;
        if n_devices == 0 {
            return Err(LearnError::InvalidArgument(
                "need at least one device".to_string(),
            ));
        }
        let snapshot = (global.export_params(), 0usize);
        Ok(AsyncFedAvg {
            global,
            config,
            version: 0,
            snapshots: vec![snapshot; n_devices],
        })
    }

    /// The current global model.
    pub fn global(&self) -> &Mlp {
        &self.global
    }

    /// Server version (number of updates applied).
    pub fn version(&self) -> usize {
        self.version
    }

    /// Processes one arrival: local training from the device's snapshot,
    /// staleness-weighted mix into the global model, and a fresh snapshot
    /// for the device's next round.
    pub fn apply_arrival(
        &mut self,
        device: usize,
        shards: &[LabeledData],
        rng: &mut ChaCha8Rng,
    ) -> Result<AsyncUpdateReport> {
        if device >= self.snapshots.len() || device >= shards.len() {
            return Err(LearnError::InvalidArgument(format!(
                "device {device} out of range"
            )));
        }
        if shards[device].is_empty() {
            return Err(LearnError::InvalidArgument(format!(
                "device {device} has an empty shard"
            )));
        }
        let (snapshot, base_version) = self.snapshots[device].clone();
        let staleness = self.version - base_version;

        // Train from the snapshot the device actually downloaded.
        let mut local = self.global.clone();
        local.import_params(&snapshot)?;
        let seed: u64 = rand::Rng::gen(rng);
        let mut local_rng = ChaCha8Rng::seed_from_u64(seed);
        self.config
            .local
            .train(&mut local, &shards[device], &mut local_rng)?;

        // Staleness-discounted server mix.
        let weight =
            self.config.mixing / (1.0 + staleness as f64).powf(self.config.staleness_power);
        self.global.lerp_from(&local, weight)?;
        self.version += 1;
        self.snapshots[device] = (self.global.export_params(), self.version);

        let total: f64 = shards.iter().map(|s| s.len() as f64).sum();
        let mut loss = 0.0;
        for s in shards {
            loss += s.len() as f64 * self.config.local.evaluate_loss(&self.global, s)?;
        }
        Ok(AsyncUpdateReport {
            device,
            staleness,
            weight,
            global_loss: loss / total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{gaussian_blobs, split_non_iid};

    fn setup(seed: u64, n: usize) -> (AsyncFedAvg, Vec<LabeledData>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let data = gaussian_blobs(300, 2, 5.0, &mut rng).unwrap();
        let shards = split_non_iid(&data, n, 0.2, &mut rng).unwrap();
        let model = LocalTrainer::default_model(2, &mut rng).unwrap();
        let fed = AsyncFedAvg::new(model, n, AsyncFedAvgConfig::default()).unwrap();
        (fed, shards)
    }

    #[test]
    fn config_validation() {
        let mut c = AsyncFedAvgConfig::default();
        assert!(c.validate().is_ok());
        c.mixing = 0.0;
        assert!(c.validate().is_err());
        let c = AsyncFedAvgConfig {
            mixing: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = AsyncFedAvgConfig {
            staleness_power: -1.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn staleness_tracking() {
        let (mut fed, shards) = setup(0, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // First arrival from each: staleness 0.
        let r0 = fed.apply_arrival(0, &shards, &mut rng).unwrap();
        assert_eq!(r0.staleness, 0);
        assert_eq!(fed.version(), 1);
        // Device 1 started at version 0 but one update landed meanwhile.
        let r1 = fed.apply_arrival(1, &shards, &mut rng).unwrap();
        assert_eq!(r1.staleness, 1);
        // Device 0 re-snapshotted at version 1; two updates since.
        fed.apply_arrival(2, &shards, &mut rng).unwrap();
        let r0b = fed.apply_arrival(0, &shards, &mut rng).unwrap();
        assert_eq!(r0b.staleness, 2);
        // Staler → smaller weight.
        assert!(r0b.weight < r0.weight);
    }

    #[test]
    fn async_training_converges() {
        let (mut fed, shards) = setup(2, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let before = fed.apply_arrival(0, &shards, &mut rng).unwrap().global_loss;
        let mut last = before;
        for k in 0..30 {
            last = fed
                .apply_arrival(k % 3, &shards, &mut rng)
                .unwrap()
                .global_loss;
        }
        assert!(last < before * 0.5, "before={before}, after={last}");
    }

    #[test]
    fn rejects_bad_arrivals() {
        let (mut fed, shards) = setup(4, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert!(fed.apply_arrival(2, &shards, &mut rng).is_err());
        let empty = shards[0].subset(&[]).unwrap();
        assert!(fed
            .apply_arrival(0, &[empty, shards[1].clone()], &mut rng)
            .is_err());
        assert!(AsyncFedAvg::new(
            LocalTrainer::default_model(2, &mut rng).unwrap(),
            0,
            AsyncFedAvgConfig::default()
        )
        .is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let (mut fed, shards) = setup(6, 2);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for k in 0..6 {
                fed.apply_arrival(k % 2, &shards, &mut rng).unwrap();
            }
            fed.global().export_params()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
