//! Zero-dependency observability for the FL training stack: metric
//! registries, lightweight spans, and a JSONL event log.
//!
//! Everything funnels through a [`Recorder`]. A disabled recorder
//! (`Recorder::disabled()`, also the `Default`) is a single `Option` check
//! on every hot path — no allocation, no locking, no I/O — so
//! instrumented code costs nothing when observability is off.
//!
//! # Determinism contract
//!
//! Observability extends the repo's bit-exact reproducibility guarantees
//! (PR 1–3) with three hard rules:
//!
//! 1. **Never consumes RNG.** Nothing in this crate draws random numbers
//!    or feeds entropy back into training.
//! 2. **Never branches training.** Instrumented code must behave
//!    identically whether its recorder is enabled or disabled; recorders
//!    only observe values that training already computed.
//! 3. **Deterministic fields diff clean.** Every event carries a `det`
//!    flag. Events with `det: true` hold only fields that are invariant
//!    to worker count and to kill/resume boundaries, keyed by a stable
//!    `key`; all wall-clock timing lives in a separate `wall` sub-object.
//!    The [`det_projection`] of a log (det events, `wall` stripped,
//!    deduplicated by `(ev, key)` last-wins, sorted) is therefore
//!    byte-identical across worker counts and across a kill/resume
//!    boundary of the same run.
//!
//! # Event shape
//!
//! One JSON object per line:
//!
//! ```json
//! {"det":true,"ev":"ppo_update","key":"u00000003","policy_loss":-0.01,
//!  "wall":{"s":0.0123}}
//! ```
//!
//! `ev` names the event type, `det` marks determinism, `key` (required
//! when `det` is true) orders and deduplicates, and `wall` (optional)
//! holds physical timings that are *expected* to differ run-to-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expose;
pub mod trace;

use parking_lot::Mutex;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors surfaced by the observability layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsError {
    /// Filesystem failure (message includes the path).
    Io(String),
    /// A JSONL line failed to parse.
    Parse(String),
    /// A line parsed but violates the event schema.
    Schema(String),
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::Io(m) => write!(f, "obs io error: {m}"),
            ObsError::Parse(m) => write!(f, "obs parse error: {m}"),
            ObsError::Schema(m) => write!(f, "obs schema error: {m}"),
        }
    }
}

impl std::error::Error for ObsError {}

/// Result alias for this crate.
pub type ObsResult<T> = Result<T, ObsError>;

/// Writes `bytes` to `path` atomically: a sibling tmp file is written and
/// fsynced, then renamed over the destination (rename within one directory
/// is atomic on POSIX). A crash at any point leaves either the old file or
/// the new one — never a torn mix. The containing directory is fsynced
/// best-effort so the rename itself is durable.
///
/// This is the single atomic-write primitive for the whole workspace;
/// `fl_rl::snapshot::atomic_write` delegates here so checkpoints and event
/// logs share one crash-safety story.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> ObsResult<()> {
    let io_err = |e: std::io::Error| ObsError::Io(format!("{}: {e}", path.display()));
    let file_name = path
        .file_name()
        .ok_or_else(|| ObsError::Io(format!("{}: no file name", path.display())))?;
    let mut tmp = path.to_path_buf();
    tmp.set_file_name(format!(".{}.tmp", file_name.to_string_lossy()));
    {
        let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(bytes).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
    }
    std::fs::rename(&tmp, path).map_err(io_err)?;
    if let Some(dir) = path.parent() {
        // Directory fsync makes the rename durable; best-effort because
        // some filesystems refuse to open directories.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Builder for one structured event line.
///
/// Deterministic events ([`Event::det`]) carry a stable `key` and may only
/// hold fields that are invariant to worker count and resume boundaries;
/// put timings in the `wall` sub-object ([`Event::wall_f`]). Physical
/// events ([`Event::phys`]) have no such restriction.
#[derive(Debug, Clone)]
pub struct Event {
    ev: String,
    det: bool,
    key: Option<String>,
    fields: BTreeMap<String, Value>,
    wall: BTreeMap<String, Value>,
}

impl Event {
    /// A deterministic event: `key` must be stable across worker counts
    /// and resume boundaries, and later events with the same `(ev, key)`
    /// replace earlier ones in the [`det_projection`].
    pub fn det(ev: &str, key: impl Into<String>) -> Self {
        Event {
            ev: ev.to_string(),
            det: true,
            key: Some(key.into()),
            fields: BTreeMap::new(),
            wall: BTreeMap::new(),
        }
    }

    /// A physical (lifecycle/timing) event, excluded from the
    /// deterministic projection.
    pub fn phys(ev: &str) -> Self {
        Event {
            ev: ev.to_string(),
            det: false,
            key: None,
            fields: BTreeMap::new(),
            wall: BTreeMap::new(),
        }
    }

    /// Adds a float field.
    pub fn f(mut self, name: &str, v: f64) -> Self {
        self.fields.insert(name.to_string(), Value::Number(v));
        self
    }

    /// Adds an unsigned-integer field (exact below 2⁵³ under the f64
    /// number model).
    pub fn u(mut self, name: &str, v: u64) -> Self {
        debug_assert!(v < (1u64 << 53), "integer field {name}={v} exceeds 2^53");
        self.fields
            .insert(name.to_string(), Value::Number(v as f64));
        self
    }

    /// Adds a string field.
    pub fn s(mut self, name: &str, v: &str) -> Self {
        self.fields
            .insert(name.to_string(), Value::String(v.to_string()));
        self
    }

    /// Adds a float-array field.
    pub fn arr_f(mut self, name: &str, vs: &[f64]) -> Self {
        let arr = vs.iter().map(|&v| Value::Number(v)).collect();
        self.fields.insert(name.to_string(), Value::Array(arr));
        self
    }

    /// Adds an arbitrary JSON value field.
    pub fn val(mut self, name: &str, v: Value) -> Self {
        self.fields.insert(name.to_string(), v);
        self
    }

    /// Adds a wall-clock float (seconds, typically) to the `wall`
    /// sub-object. Wall fields are stripped by [`det_projection`].
    pub fn wall_f(mut self, name: &str, v: f64) -> Self {
        self.wall.insert(name.to_string(), Value::Number(v));
        self
    }

    /// Adds an arbitrary JSON value to the `wall` sub-object.
    pub fn wall_val(mut self, name: &str, v: Value) -> Self {
        self.wall.insert(name.to_string(), v);
        self
    }

    /// Lowers the event to its JSON object form.
    pub fn into_value(self) -> Value {
        let mut obj = self.fields;
        obj.insert("ev".to_string(), Value::String(self.ev));
        obj.insert("det".to_string(), Value::Bool(self.det));
        if let Some(k) = self.key {
            obj.insert("key".to_string(), Value::String(k));
        }
        if !self.wall.is_empty() {
            obj.insert("wall".to_string(), Value::Object(self.wall));
        }
        Value::Object(obj)
    }
}

// ---------------------------------------------------------------------------
// Metric handles
// ---------------------------------------------------------------------------

/// A monotonically increasing counter handle. Cloning is cheap; clones
/// share the same underlying atomic, so counters aggregate across cloned
/// owners (e.g. one `FlSystem` cloned into many environments).
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.0 {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge handle storing an `f64`.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disabled).
    pub fn value(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

#[derive(Debug)]
struct HistInner {
    /// Upper bucket edges, strictly increasing. Bucket `i` counts values
    /// `v <= bounds[i]` (and above the previous edge); one extra overflow
    /// bucket counts everything beyond the last edge.
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    /// Sum of observed values as f64 bits, updated by CAS.
    sum_bits: AtomicU64,
}

impl HistInner {
    fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        HistInner {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        histogram_quantile(&self.bounds, &counts, q)
    }

    fn snapshot_value(&self) -> Value {
        let mut obj = BTreeMap::new();
        obj.insert(
            "bounds".to_string(),
            Value::Array(self.bounds.iter().map(|&b| Value::Number(b)).collect()),
        );
        obj.insert(
            "counts".to_string(),
            Value::Array(
                self.counts
                    .iter()
                    .map(|c| Value::Number(c.load(Ordering::Relaxed) as f64))
                    .collect(),
            ),
        );
        obj.insert("count".to_string(), Value::Number(self.count() as f64));
        obj.insert(
            "sum".to_string(),
            Value::Number(f64::from_bits(self.sum_bits.load(Ordering::Relaxed))),
        );
        Value::Object(obj)
    }
}

/// A fixed-bucket histogram handle for non-negative values. Cloning is
/// cheap and clones share the same buckets.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistInner>>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        if let Some(h) = &self.0 {
            h.observe(v);
        }
    }

    /// Total observation count (0 when disabled).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.count())
    }

    /// Interpolated quantile estimate (see [`histogram_quantile`]); NaN
    /// when disabled or empty.
    pub fn quantile(&self, q: f64) -> f64 {
        self.0.as_ref().map_or(f64::NAN, |h| h.quantile(q))
    }
}

/// Estimates the `q`-quantile (`0 ≤ q ≤ 1`) of a fixed-bucket histogram
/// from bucket `counts` over upper-edge `bounds` (plus one trailing
/// overflow count), by linear interpolation within the bucket that
/// contains the target rank. The first bucket's lower edge is taken as
/// `0.0` — values are assumed non-negative. Returns NaN for an empty
/// histogram.
///
/// Two edge conventions are pinned by hand-computed tests:
///
/// * **Exact bucket bounds.** The target rank `q * total` is snapped to
///   the nearest integer when it is within float error of one, so a rank
///   that lands exactly on a cumulative bucket boundary reports that
///   bucket's upper edge instead of skipping into the next non-empty
///   bucket. (Without the snap, `0.1 * 30 = 3.0000000000000004` walks
///   past a bucket whose cumulative count is exactly 3.)
/// * **Overflow bucket.** Ranks landing in the `+inf` bucket report the
///   last finite edge — there is no upper edge to interpolate toward, so
///   the estimate saturates (a deliberate under-estimate; widen the
///   bounds if overflow mass matters).
pub fn histogram_quantile(bounds: &[f64], counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 || counts.len() != bounds.len() + 1 {
        return f64::NAN;
    }
    let raw = q.clamp(0.0, 1.0) * total as f64;
    // Snap ranks that are within float error of an integer: q*total is
    // computed in f64 and can land an ulp past an exact bucket boundary.
    let target = if (raw - raw.round()).abs() < 1e-9 * (total as f64).max(1.0) {
        raw.round()
    } else {
        raw
    };
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        let next = cum + c;
        if (next as f64) >= target && c > 0 {
            if i == bounds.len() {
                // Overflow bucket: no finite upper edge to interpolate to.
                return bounds[bounds.len() - 1];
            }
            let lo = if i == 0 { 0.0 } else { bounds[i - 1] };
            let hi = bounds[i];
            let frac = (target - cum as f64) / c as f64;
            return lo + frac.clamp(0.0, 1.0) * (hi - lo);
        }
        cum = next;
    }
    bounds[bounds.len() - 1]
}

/// Exact quantile of an ascending-sorted slice, by linear interpolation
/// between order statistics (the "linear" / type-7 method). NaN when
/// empty.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

// ---------------------------------------------------------------------------
// Metrics snapshot
// ---------------------------------------------------------------------------

/// Point-in-time copy of one histogram's buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket edges, strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one more entry than `bounds` (the trailing
    /// overflow bucket).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Point-in-time copy of a [`Recorder`]'s metric registries, in
/// deterministic (sorted-by-name) order. This is what
/// [`expose::render_prometheus`] serializes for scrapes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, buckets)` for every registered histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

std::thread_local! {
    static SPAN_STACK: std::cell::RefCell<Vec<&'static str>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

#[derive(Debug, Default)]
struct PhaseStat {
    count: u64,
    total: Duration,
    min: Duration,
    max: Duration,
}

/// An RAII timing guard created by [`Recorder::span`]. While alive, child
/// spans on the same thread nest under it (`update` → `update/gae`); on
/// drop, the elapsed wall time is folded into the recorder's per-phase
/// statistics. Spans never touch training state or RNG.
#[must_use = "a span measures the scope it is bound to; bind it to a local"]
#[derive(Debug)]
pub struct Span {
    active: Option<(Arc<Inner>, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((inner, start)) = self.active.take() {
            let elapsed = start.elapsed();
            let path = SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                let path = s.join("/");
                s.pop();
                path
            });
            let mut phases = inner.phases.lock();
            let stat = phases.entry(path).or_default();
            if stat.count == 0 || elapsed < stat.min {
                stat.min = elapsed;
            }
            if elapsed > stat.max {
                stat.max = elapsed;
            }
            stat.count += 1;
            stat.total += elapsed;
        }
    }
}

/// Opens a timing span on a recorder: `let _s = span!(rec, "rollout");`.
/// Sugar for [`Recorder::span`].
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr) => {
        $rec.span($name)
    };
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct SinkState {
    path: Option<PathBuf>,
    /// Events in arrival order (pre-existing file lines first on resume).
    events: Vec<Value>,
    /// `(ev, key)` → position in `events` for deterministic keyed events,
    /// so a resumed run's replayed events overwrite instead of duplicate.
    index: BTreeMap<(String, String), usize>,
}

impl SinkState {
    fn insert(&mut self, v: Value) {
        let det = v.get("det").and_then(Value::as_bool).unwrap_or(false);
        let ev = v.get("ev").and_then(Value::as_str).map(str::to_string);
        let key = v.get("key").and_then(Value::as_str).map(str::to_string);
        if det {
            if let (Some(ev), Some(key)) = (ev, key) {
                match self.index.entry((ev, key)) {
                    std::collections::btree_map::Entry::Occupied(e) => {
                        self.events[*e.get()] = v;
                        return;
                    }
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(self.events.len());
                    }
                }
            }
        }
        self.events.push(v);
    }
}

#[derive(Debug)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistInner>>>,
    phases: Mutex<BTreeMap<String, PhaseStat>>,
    sink: Mutex<SinkState>,
    mirror_stderr: AtomicBool,
}

impl Inner {
    fn new(path: Option<PathBuf>) -> Self {
        Inner {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            phases: Mutex::new(BTreeMap::new()),
            sink: Mutex::new(SinkState {
                path,
                ..Default::default()
            }),
            mirror_stderr: AtomicBool::new(true),
        }
    }
}

/// The observability hub: metric registries, span timings, and the JSONL
/// event sink. Cloning is cheap (an `Arc`); clones share all state.
///
/// `Recorder::default()` is [disabled](Recorder::disabled): every
/// operation is a no-op behind one branch, so instrumented code can hold a
/// recorder unconditionally.
#[derive(Debug, Clone, Default)]
pub struct Recorder(Option<Arc<Inner>>);

impl PartialEq for Recorder {
    /// Two disabled recorders are equal; enabled recorders are equal only
    /// if they share state. (Needed so option structs holding a recorder
    /// can keep deriving `PartialEq`.)
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Recorder {
    /// The no-op recorder: every operation is a cheap no-op.
    pub fn disabled() -> Self {
        Recorder(None)
    }

    /// An enabled recorder with no backing file — events accumulate in
    /// memory (see [`Recorder::events_text`]). Used by tests.
    pub fn in_memory() -> Self {
        Recorder(Some(Arc::new(Inner::new(None))))
    }

    /// An enabled recorder backed by a JSONL file. If the file already
    /// exists its events are loaded first, so a resumed run's replayed
    /// deterministic events overwrite their earlier copies instead of
    /// duplicating (the resume-union property the determinism tests rely
    /// on). Parent directories are created as needed.
    pub fn to_file(path: impl Into<PathBuf>) -> ObsResult<Self> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| ObsError::Io(format!("{}: {e}", dir.display())))?;
            }
        }
        let rec = Recorder(Some(Arc::new(Inner::new(Some(path.clone())))));
        if path.exists() {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| ObsError::Io(format!("{}: {e}", path.display())))?;
            let inner = rec.0.as_ref().expect("just constructed enabled");
            let mut sink = inner.sink.lock();
            for (i, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let v = serde_json::parse_value(line)
                    .map_err(|e| ObsError::Parse(format!("{}:{}: {e:?}", path.display(), i + 1)))?;
                sink.insert(v);
            }
        }
        Ok(rec)
    }

    /// Whether this recorder records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Controls whether [`Recorder::note`] also prints to stderr
    /// (default: on, preserving the "diagnostics go to stderr" contract).
    pub fn set_stderr_mirror(&self, on: bool) {
        if let Some(inner) = &self.0 {
            inner.mirror_stderr.store(on, Ordering::Relaxed);
        }
    }

    /// Registers (or fetches) a counter. The returned handle is the hot
    /// path: one atomic add per increment, no lock.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.0.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .counters
                    .lock()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        }))
    }

    /// Registers (or fetches) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.0.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .gauges
                    .lock()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits()))),
            )
        }))
    }

    /// Registers (or fetches) a histogram with the given upper bucket
    /// edges (strictly increasing; an overflow bucket is added
    /// automatically). Re-registering an existing name keeps the original
    /// bounds.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        Histogram(self.0.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .histograms
                    .lock()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistInner::new(bounds))),
            )
        }))
    }

    /// Opens a timing span; the returned guard records elapsed wall time
    /// into the per-phase table when dropped. Spans opened while another
    /// span guard is alive on the same thread nest into a `parent/child`
    /// phase path.
    pub fn span(&self, name: &'static str) -> Span {
        match &self.0 {
            Some(inner) => {
                SPAN_STACK.with(|s| s.borrow_mut().push(name));
                Span {
                    active: Some((Arc::clone(inner), Instant::now())),
                }
            }
            None => Span { active: None },
        }
    }

    /// Appends an event to the sink (no-op when disabled). Events are
    /// buffered in memory until [`Recorder::flush`].
    pub fn emit(&self, event: Event) {
        if let Some(inner) = &self.0 {
            inner.sink.lock().insert(event.into_value());
        }
    }

    /// Routes a human-readable diagnostic: always printed to stderr when
    /// the recorder is disabled or its stderr mirror is on (the default),
    /// and additionally recorded as a physical `note` event when enabled.
    /// This is the single funnel for what used to be ad-hoc `eprintln!`s.
    pub fn note(&self, msg: &str) {
        match &self.0 {
            None => eprintln!("{msg}"),
            Some(inner) => {
                if inner.mirror_stderr.load(Ordering::Relaxed) {
                    eprintln!("{msg}");
                }
                inner
                    .sink
                    .lock()
                    .insert(Event::phys("note").s("msg", msg).into_value());
            }
        }
    }

    /// Snapshots every registered counter, gauge, and histogram in
    /// deterministic name order. Empty when disabled. The three
    /// registries are locked one at a time, so the snapshot is
    /// per-registry consistent (good enough for exposition — Prometheus
    /// scrapes make the same non-atomicity assumption).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.0 else {
            return MetricsSnapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .iter()
            .map(|(k, c)| (k.clone(), c.load(Ordering::Relaxed)))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .iter()
            .map(|(k, g)| (k.clone(), f64::from_bits(g.load(Ordering::Relaxed))))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        bounds: h.bounds.clone(),
                        counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                        sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Current value of a counter by name (0 if absent or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.0.as_ref().map_or(0, |inner| {
            inner
                .counters
                .lock()
                .get(name)
                .map_or(0, |c| c.load(Ordering::Relaxed))
        })
    }

    /// Serializes the buffered events to JSONL text (empty when
    /// disabled). This is exactly what [`Recorder::flush`] writes.
    pub fn events_text(&self) -> String {
        match &self.0 {
            None => String::new(),
            Some(inner) => {
                let sink = inner.sink.lock();
                let mut out = String::new();
                for v in &sink.events {
                    out.push_str(
                        &serde_json::to_string(v).expect("Value serialization is infallible"),
                    );
                    out.push('\n');
                }
                out
            }
        }
    }

    /// Builds the physical `phase_summary` event from span timings, or
    /// `None` if no spans were recorded.
    fn phase_summary(&self) -> Option<Event> {
        let inner = self.0.as_ref()?;
        let phases = inner.phases.lock();
        if phases.is_empty() {
            return None;
        }
        let mut obj = BTreeMap::new();
        for (path, stat) in phases.iter() {
            let mut p = BTreeMap::new();
            p.insert("count".to_string(), Value::Number(stat.count as f64));
            p.insert(
                "total_s".to_string(),
                Value::Number(stat.total.as_secs_f64()),
            );
            p.insert(
                "mean_s".to_string(),
                Value::Number(stat.total.as_secs_f64() / stat.count.max(1) as f64),
            );
            p.insert("min_s".to_string(), Value::Number(stat.min.as_secs_f64()));
            p.insert("max_s".to_string(), Value::Number(stat.max.as_secs_f64()));
            obj.insert(path.clone(), Value::Object(p));
        }
        Some(Event::phys("phase_summary").val("phases", Value::Object(obj)))
    }

    /// Builds the physical `metrics_summary` event from the registries,
    /// or `None` if nothing was registered.
    fn metrics_summary(&self) -> Option<Event> {
        let inner = self.0.as_ref()?;
        let mut ev = Event::phys("metrics_summary");
        let mut any = false;
        {
            let counters = inner.counters.lock();
            if !counters.is_empty() {
                let obj = counters
                    .iter()
                    .map(|(k, c)| (k.clone(), Value::Number(c.load(Ordering::Relaxed) as f64)))
                    .collect();
                ev = ev.val("counters", Value::Object(obj));
                any = true;
            }
        }
        {
            let gauges = inner.gauges.lock();
            if !gauges.is_empty() {
                let obj = gauges
                    .iter()
                    .map(|(k, g)| {
                        (
                            k.clone(),
                            Value::Number(f64::from_bits(g.load(Ordering::Relaxed))),
                        )
                    })
                    .collect();
                ev = ev.val("gauges", Value::Object(obj));
                any = true;
            }
        }
        {
            let hists = inner.histograms.lock();
            if !hists.is_empty() {
                let obj = hists
                    .iter()
                    .map(|(k, h)| (k.clone(), h.snapshot_value()))
                    .collect();
                ev = ev.val("histograms", Value::Object(obj));
                any = true;
            }
        }
        any.then_some(ev)
    }

    /// Writes the buffered events to the backing file via
    /// [`atomic_write`]. No-op for disabled or in-memory recorders.
    pub fn flush(&self) -> ObsResult<()> {
        let Some(inner) = &self.0 else { return Ok(()) };
        let text = self.events_text();
        let sink = inner.sink.lock();
        match &sink.path {
            Some(path) => atomic_write(path, text.as_bytes()),
            None => Ok(()),
        }
    }

    /// Finalizes the log: appends the physical `phase_summary` and
    /// `metrics_summary` events, then flushes. Safe to call more than
    /// once (each call appends fresh summaries).
    pub fn finish(&self) -> ObsResult<()> {
        if let Some(ev) = self.phase_summary() {
            self.emit(ev);
        }
        if let Some(ev) = self.metrics_summary() {
            self.emit(ev);
        }
        self.flush()
    }
}

// ---------------------------------------------------------------------------
// Log analysis: schema validation & deterministic projection
// ---------------------------------------------------------------------------

/// Current event-schema version. Version 1 is the PR 4 det/phys schema;
/// version 2 adds the physical `trace` event kind (PR 9). Each version's
/// [`known_events`] list is a superset of the previous one, so validating
/// an old log against the latest version always passes.
pub const SCHEMA_VERSION: u32 = 2;

/// Event kinds introduced by schema version 1.
const KNOWN_EVENTS_V1: &[&str] = &[
    "checkpoint_load",
    "checkpoint_save",
    "episode",
    "fl_round",
    "intervention",
    "metrics_summary",
    "note",
    "phase_summary",
    "pool_round",
    "ppo_update",
    "run_meta",
    "serve_drain",
    "serve_reload",
    "serve_reload_failed",
    "serve_stalled_write",
    "serve_start",
    "serve_stop",
    "warning",
];

/// Event kinds introduced by schema version 2 (on top of version 1).
const KNOWN_EVENTS_V2: &[&str] = &["trace"];

/// The event kinds allowed at schema `version` (clamped to
/// `1..=`[`SCHEMA_VERSION`]). Later versions only ever *add* kinds, so a
/// log valid at version `n` is valid at every version `≥ n` — the
/// property that lets `obs_report` validate old logs against the latest
/// allowlist without breaking them.
pub fn known_events(version: u32) -> Vec<&'static str> {
    let version = version.clamp(1, SCHEMA_VERSION);
    let mut kinds: Vec<&'static str> = KNOWN_EVENTS_V1.to_vec();
    if version >= 2 {
        kinds.extend_from_slice(KNOWN_EVENTS_V2);
    }
    kinds.sort_unstable();
    kinds
}

/// Validates a line like [`validate_line`] and additionally checks the
/// event kind against the [`known_events`] allowlist for `version`.
/// Unknown kinds are schema errors: a typo'd emitter should fail report
/// validation rather than silently vanish from every analysis.
pub fn validate_line_versioned(line: &str, version: u32) -> ObsResult<Value> {
    let v = validate_line(line)?;
    let ev = v.get("ev").and_then(Value::as_str).unwrap_or_default();
    if !known_events(version).contains(&ev) {
        return Err(ObsError::Schema(format!(
            "unknown event kind '{ev}' (schema v{version} allowlist)"
        )));
    }
    Ok(v)
}

/// Validates one JSONL line against the event schema: a JSON object with
/// a string `ev`, a boolean `det`, a string `key` when `det` is true, and
/// an object-valued `wall` when present.
pub fn validate_line(line: &str) -> ObsResult<Value> {
    let v = serde_json::parse_value(line).map_err(|e| ObsError::Parse(format!("{e:?}")))?;
    let obj = v
        .as_object()
        .ok_or_else(|| ObsError::Schema("event is not a JSON object".to_string()))?;
    let ev = obj
        .get("ev")
        .and_then(Value::as_str)
        .ok_or_else(|| ObsError::Schema("missing string field 'ev'".to_string()))?;
    let det = obj
        .get("det")
        .and_then(Value::as_bool)
        .ok_or_else(|| ObsError::Schema(format!("event '{ev}': missing bool field 'det'")))?;
    if det && obj.get("key").and_then(Value::as_str).is_none() {
        return Err(ObsError::Schema(format!(
            "deterministic event '{ev}' has no string 'key'"
        )));
    }
    if let Some(w) = obj.get("wall") {
        if w.as_object().is_none() {
            return Err(ObsError::Schema(format!(
                "event '{ev}': 'wall' is not an object"
            )));
        }
    }
    Ok(v)
}

/// Extracts the deterministic projection of a JSONL log: keeps `det:
/// true` events, strips their `wall` sub-objects, deduplicates by `(ev,
/// key)` with the *last* occurrence winning (so resumed runs overwrite
/// replayed events), and returns the lines sorted by `(ev, key)`. Two
/// logs of the same training run — at any worker count, killed and
/// resumed or not — project to identical line sequences.
pub fn det_projection(text: &str) -> ObsResult<Vec<String>> {
    let mut keyed: BTreeMap<(String, String), String> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = validate_line(line).map_err(|e| match e {
            ObsError::Parse(m) => ObsError::Parse(format!("line {}: {m}", i + 1)),
            ObsError::Schema(m) => ObsError::Schema(format!("line {}: {m}", i + 1)),
            other => other,
        })?;
        let Some(obj) = v.as_object() else { continue };
        if obj.get("det").and_then(Value::as_bool) != Some(true) {
            continue;
        }
        let ev = obj.get("ev").and_then(Value::as_str).unwrap_or_default();
        let key = obj.get("key").and_then(Value::as_str).unwrap_or_default();
        let mut clean = obj.clone();
        clean.remove("wall");
        keyed.insert(
            (ev.to_string(), key.to_string()),
            serde_json::to_string(&Value::Object(clean))
                .expect("Value serialization is infallible"),
        );
    }
    Ok(keyed.into_values().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let c = rec.counter("x");
        c.inc();
        c.add(10);
        assert_eq!(c.value(), 0);
        rec.gauge("g").set(3.0);
        rec.histogram("h", &[1.0, 2.0]).observe(1.5);
        {
            let _s = rec.span("phase");
        }
        rec.emit(Event::det("e", "k").f("x", 1.0));
        assert_eq!(rec.events_text(), "");
        rec.finish().unwrap();
    }

    #[test]
    fn counters_and_gauges_register_and_share() {
        let rec = Recorder::in_memory();
        let a = rec.counter("hits");
        let b = rec.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(a.value(), 3);
        assert_eq!(rec.counter_value("hits"), 3);
        let g = rec.gauge("lr");
        g.set(0.125);
        assert_eq!(g.value(), 0.125);
    }

    #[test]
    fn histogram_bucket_boundaries_hand_computed() {
        // Bounds [1, 2, 4]: buckets are (-inf,1], (1,2], (2,4], (4,inf).
        let rec = Recorder::in_memory();
        let h = rec.histogram("d", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0] {
            h.observe(v);
        }
        let inner = h.0.as_ref().unwrap();
        let counts: Vec<u64> = inner
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        // 0.5 and 1.0 → bucket 0 (v <= 1); 1.5 and 2.0 → bucket 1;
        // 3.0 and 4.0 → bucket 2; 9.0 → overflow.
        assert_eq!(counts, vec![2, 2, 2, 1]);
        assert_eq!(h.count(), 7);
        let sum = f64::from_bits(inner.sum_bits.load(Ordering::Relaxed));
        assert!((sum - 21.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantile_hand_computed() {
        // 10 observations in bucket (1,2], nothing else: every quantile
        // interpolates linearly across that bucket.
        // target = q*10; cum=0, c=10 → frac = q → 1 + q*(2-1).
        let bounds = [1.0, 2.0, 4.0];
        let counts = [0u64, 10, 0, 0];
        assert!((histogram_quantile(&bounds, &counts, 0.5) - 1.5).abs() < 1e-12);
        assert!((histogram_quantile(&bounds, &counts, 0.9) - 1.9).abs() < 1e-12);
        // Split 5/5 across buckets 0 and 2: median lands exactly at the
        // top of bucket 0 (cum 5 >= target 5 → frac 1.0 → edge 1.0).
        let counts = [5u64, 0, 5, 0];
        assert!((histogram_quantile(&bounds, &counts, 0.5) - 1.0).abs() < 1e-12);
        // p75 → target 7.5 inside bucket 2: lo=2, frac=(7.5-5)/5=0.5 →
        // 2 + 0.5*(4-2) = 3.
        assert!((histogram_quantile(&bounds, &counts, 0.75) - 3.0).abs() < 1e-12);
        // All mass in overflow → reports the last finite edge.
        let counts = [0u64, 0, 0, 3];
        assert!((histogram_quantile(&bounds, &counts, 0.5) - 4.0).abs() < 1e-12);
        // Empty histogram → NaN.
        assert!(histogram_quantile(&bounds, &[0, 0, 0, 0], 0.5).is_nan());
    }

    #[test]
    fn histogram_quantile_exact_boundary_hand_computed() {
        // Regression: q*total computed in f64 can land an ulp above an
        // exact cumulative boundary. 30 observations, 3 of them in bucket
        // (0,1]: p10's target rank is exactly 3, but 0.1*30 =
        // 3.0000000000000004 — without snapping, the walk skips to the
        // next non-empty bucket and reports ~2.0 instead of 1.0.
        let bounds = [1.0, 2.0, 4.0];
        let counts = [3u64, 0, 27, 0];
        assert!((histogram_quantile(&bounds, &counts, 0.1) - 1.0).abs() < 1e-12);
        // Same shape where the boundary rank falls on a *populated*
        // bucket's top: 10 in bucket 0, 10 in bucket 1; p50 target is
        // exactly 10 → frac 1.0 → upper edge of bucket 0.
        let counts = [10u64, 10, 0, 0];
        assert!((histogram_quantile(&bounds, &counts, 0.5) - 1.0).abs() < 1e-12);
        // 0.3 * 10 = 2.9999999999999996 must snap *up* to rank 3, not
        // report slightly below the interpolated point for rank 3.
        let counts = [10u64, 0, 0, 0];
        let q03 = histogram_quantile(&bounds, &counts, 0.3);
        assert!((q03 - 0.3).abs() < 1e-12, "got {q03}");
    }

    #[test]
    fn histogram_quantile_overflow_bucket_hand_computed() {
        let bounds = [1.0, 2.0, 4.0];
        // Half the mass beyond the last finite edge: any quantile landing
        // in the overflow bucket saturates at that edge — including q=1.0.
        let counts = [0u64, 5, 0, 5];
        assert!((histogram_quantile(&bounds, &counts, 0.9) - 4.0).abs() < 1e-12);
        assert!((histogram_quantile(&bounds, &counts, 1.0) - 4.0).abs() < 1e-12);
        // q=0.5: rank 5 is exactly the top of bucket 1 → its upper edge.
        assert!((histogram_quantile(&bounds, &counts, 0.5) - 2.0).abs() < 1e-12);
        // Degenerate: single finite bucket plus overflow mass only.
        assert!((histogram_quantile(&[3.0], &[0, 7], 0.99) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_events_versions_nest() {
        let v1 = known_events(1);
        let v2 = known_events(2);
        assert!(v1.iter().all(|k| v2.contains(k)), "v2 must contain v1");
        assert!(!v1.contains(&"trace"));
        assert!(v2.contains(&"trace"));
        // Out-of-range versions clamp instead of panicking.
        assert_eq!(known_events(0), v1);
        assert_eq!(known_events(99), known_events(SCHEMA_VERSION));
    }

    #[test]
    fn validate_line_versioned_checks_allowlist() {
        let ok = "{\"ev\":\"trace\",\"det\":false}";
        assert!(validate_line_versioned(ok, 2).is_ok());
        assert!(validate_line_versioned(ok, 1).is_err(), "trace is v2-only");
        let unknown = "{\"ev\":\"no_such_kind\",\"det\":false}";
        assert!(validate_line(unknown).is_ok(), "shape check alone passes");
        assert!(validate_line_versioned(unknown, SCHEMA_VERSION).is_err());
    }

    #[test]
    fn metrics_snapshot_copies_registries() {
        let rec = Recorder::in_memory();
        rec.counter("a.hits").add(3);
        rec.gauge("b.depth").set(2.5);
        let h = rec.histogram("c.lat", &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(5.0);
        let snap = rec.metrics_snapshot();
        assert_eq!(snap.counters, vec![("a.hits".to_string(), 3)]);
        assert_eq!(snap.gauges, vec![("b.depth".to_string(), 2.5)]);
        assert_eq!(snap.histograms.len(), 1);
        let (name, hs) = &snap.histograms[0];
        assert_eq!(name, "c.lat");
        assert_eq!(hs.bounds, vec![1.0, 2.0]);
        assert_eq!(hs.counts, vec![1, 0, 1]);
        assert_eq!(hs.count(), 2);
        assert!((hs.sum - 5.5).abs() < 1e-12);
        assert_eq!(
            Recorder::disabled().metrics_snapshot(),
            MetricsSnapshot::default()
        );
    }

    #[test]
    fn quantile_sorted_hand_computed() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&xs, 0.0), 1.0);
        assert_eq!(quantile_sorted(&xs, 1.0), 4.0);
        // pos = 0.5 * 3 = 1.5 → 2 + 0.5*(3-2) = 2.5.
        assert!((quantile_sorted(&xs, 0.5) - 2.5).abs() < 1e-12);
        // pos = 0.25 * 3 = 0.75 → 1 + 0.75*1 = 1.75.
        assert!((quantile_sorted(&xs, 0.25) - 1.75).abs() < 1e-12);
        assert!(quantile_sorted(&[], 0.5).is_nan());
        assert_eq!(quantile_sorted(&[7.0], 0.9), 7.0);
    }

    #[test]
    fn spans_nest_into_paths() {
        let rec = Recorder::in_memory();
        {
            let _outer = rec.span("update");
            {
                let _inner = rec.span("gae");
            }
            {
                let _inner = rec.span("epochs");
            }
        }
        let inner = rec.0.as_ref().unwrap();
        let phases = inner.phases.lock();
        let keys: Vec<String> = phases.keys().cloned().collect();
        assert_eq!(keys, vec!["update", "update/epochs", "update/gae"]);
        assert_eq!(phases["update"].count, 1);
        assert_eq!(phases["update/gae"].count, 1);
    }

    #[test]
    fn events_dedupe_by_key_last_wins() {
        let rec = Recorder::in_memory();
        rec.emit(Event::det("ppo_update", "u00000001").f("loss", 1.0));
        rec.emit(Event::phys("note").s("msg", "hello"));
        rec.emit(Event::det("ppo_update", "u00000001").f("loss", 2.0));
        let text = rec.events_text();
        assert_eq!(text.lines().count(), 2, "{text}");
        assert!(text.contains("\"loss\":2"), "{text}");
        assert!(!text.contains("\"loss\":1,"), "{text}");
    }

    #[test]
    fn det_projection_strips_wall_sorts_and_dedupes() {
        let rec = Recorder::in_memory();
        rec.emit(Event::det("b_ev", "k2").f("x", 2.0).wall_f("s", 0.9));
        rec.emit(Event::phys("pool_round").u("workers", 4).wall_f("s", 1.0));
        rec.emit(Event::det("a_ev", "k1").f("x", 1.0).wall_f("s", 0.1));
        rec.emit(Event::det("b_ev", "k2").f("x", 3.0).wall_f("s", 0.2));
        let lines = det_projection(&rec.events_text()).unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("a_ev"), "{lines:?}");
        assert!(lines[1].contains("\"x\":3"), "{lines:?}");
        assert!(lines.iter().all(|l| !l.contains("wall")), "{lines:?}");
    }

    #[test]
    fn validate_line_rejects_schema_violations() {
        assert!(validate_line("{\"ev\":\"x\",\"det\":false}").is_ok());
        assert!(validate_line("not json").is_err());
        assert!(validate_line("[1,2]").is_err());
        assert!(validate_line("{\"det\":true}").is_err(), "missing ev");
        assert!(
            validate_line("{\"ev\":\"x\",\"det\":true}").is_err(),
            "det without key"
        );
        assert!(
            validate_line("{\"ev\":\"x\",\"det\":false,\"wall\":3}").is_err(),
            "non-object wall"
        );
    }

    #[test]
    fn file_sink_roundtrips_and_resumes() {
        let dir = std::env::temp_dir().join(format!("fl-obs-test-{}", std::process::id()));
        let path = dir.join("events.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let rec = Recorder::to_file(&path).unwrap();
            rec.emit(Event::det("episode", "e000001").f("cost", 5.0));
            rec.emit(Event::phys("note").s("msg", "first run"));
            rec.flush().unwrap();
        }
        {
            // Reopening loads the prior events; re-emitting the same key
            // overwrites instead of duplicating.
            let rec = Recorder::to_file(&path).unwrap();
            rec.emit(Event::det("episode", "e000001").f("cost", 7.0));
            rec.emit(Event::det("episode", "e000002").f("cost", 6.0));
            rec.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3, "{text}");
        let proj = det_projection(&text).unwrap();
        assert_eq!(proj.len(), 2);
        assert!(proj[0].contains("\"cost\":7"), "{proj:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finish_appends_summaries() {
        let rec = Recorder::in_memory();
        rec.counter("sim.completed").add(5);
        {
            let _s = rec.span("rollout");
        }
        rec.finish().unwrap();
        let text = rec.events_text();
        assert!(text.contains("phase_summary"), "{text}");
        assert!(text.contains("metrics_summary"), "{text}");
        assert!(text.contains("sim.completed"), "{text}");
        // Summaries are physical: the det projection ignores them.
        assert!(det_projection(&text).unwrap().is_empty());
    }

    #[test]
    fn recorder_equality_and_default() {
        assert_eq!(Recorder::default(), Recorder::disabled());
        let a = Recorder::in_memory();
        assert_eq!(a, a.clone());
        assert_ne!(a, Recorder::in_memory());
        assert_ne!(a, Recorder::disabled());
    }

    #[test]
    fn atomic_write_creates_and_replaces() {
        let dir = std::env::temp_dir().join(format!("fl-obs-aw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.txt");
        atomic_write(&path, b"one").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "one");
        atomic_write(&path, b"two").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "two");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
